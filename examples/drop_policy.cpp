/**
 * @file
 * The Drop full-queue policy and its software fallback idiom.
 *
 * With the Stall policy, a triggering store whose thread queue is
 * full simply waits at commit. With Drop, the firing is discarded and
 * a sticky overflow flag is set; software checks the flag after the
 * TWAIT fence with TCHK (bit 62), runs the inline recomputation path
 * if needed, and clears it with TCLR. This example runs the same
 * update storm under both policies on a deliberately tiny (1-entry)
 * thread queue and shows that results stay correct while the cost
 * profile shifts from commit stalls to fallback recomputation.
 *
 *   build/examples/drop_policy
 */

#include <cstdio>

#include "isa/assembler.h"
#include "sim/simulator.h"

using namespace dttsim;

namespace {

/** derived must always end up = 2 * buf[0]; bursts of 3 triggering
 *  stores per iteration overwhelm a 1-entry queue. */
const char *kProgram = R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 0
    li  s1, 32
loop:
    addi s0, s0, 1
    tsd  s0, 0(a0), 0
    tsd  s0, 8(a0), 0
    tsd  s0, 16(a0), 0
    blt  s0, s1, loop
    twait 0
    tchk t0, 0             # bit 62 = sticky overflow flag
    li   t1, 1
    slli t1, t1, 62
    and  t1, t0, t1
    beqz t1, done
    # ---- software fallback: recompute inline, clear the flag ----
    ld   t2, 0(a0)
    slli t2, t2, 1
    li   t3, derived
    sd   t2, 0(t3)
    tclr 0
done:
    li   t3, derived
    ld   s2, 0(t3)
    li   t3, result
    sd   s2, 0(t3)
    halt
handler:
    li   t1, buf
    ld   t0, 0(t1)
    slli t0, t0, 1
    li   t1, derived
    sd   t0, 0(t1)
    tret
    .data
buf:     .space 24
derived: .space 8
result:  .space 8
)";

void
runPolicy(dtt::FullQueuePolicy policy, const char *name)
{
    isa::Program prog = isa::assemble(kProgram);
    sim::SimConfig cfg;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.coalesce = false;  // maximize pressure for the demo
    cfg.dtt.fullPolicy = policy;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    std::printf("%-6s policy: cycles=%6llu  fired=%llu dropped=%llu "
                "commit-stalls=%llu  result=%llu (expect 64)\n",
                name, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.fired),
                static_cast<unsigned long long>(r.dropped),
                static_cast<unsigned long long>(r.tstoreCommitStalls),
                static_cast<unsigned long long>(
                    s.core().memory().read64(
                        prog.dataSymbol("result"))));
}

} // namespace

int
main()
{
    std::puts("Full thread-queue policies on a 1-entry queue "
              "(96 firings in bursts of 3):\n");
    runPolicy(dtt::FullQueuePolicy::Stall, "Stall");
    runPolicy(dtt::FullQueuePolicy::Drop, "Drop");
    std::puts("\nStall keeps every firing (the store waits at commit"
              " for queue space);\nDrop sheds load under pressure and"
              " relies on the TCHK/TCLR fallback path\nto restore"
              " correctness.");
    return 0;
}
