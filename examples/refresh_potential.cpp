/**
 * @file
 * The paper's motivating example, end to end: mcf's
 * refresh_potential. The baseline recomputes node potentials over the
 * whole chain forest every simplex iteration even though only a
 * handful of arc costs changed; the DTT version attaches a thread to
 * the cost fields and the main loop skips the recompute entirely.
 *
 * This example uses the text assembler (the workload library builds
 * the same kernel with the ProgramBuilder) so the DTT extension is
 * visible as actual assembly. It then runs both versions on the
 * cycle-level simulator and reports the speedup.
 *
 *   build/examples/refresh_potential [--iters=N]
 */

#include <cstdio>
#include <string>

#include "common/options.h"
#include "isa/assembler.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace dttsim;

namespace {

/** A miniature refresh_potential in dttsim assembly: one chain of 8
 *  nodes, costs updated twice per iteration (usually silently). */
const char *kMiniDtt = R"(
main:
    treg 0, refresh          # potentials follow cost changes
    li   s0, 0               # iteration count
    li   s1, 16              # iterations
outer:
    # sparse update: cost[3] = 5 (changes only on iteration 0)
    li   a0, cost
    li   t0, 5
    tsd  t0, 24(a0), 0
    # sparse update: cost[6] = 9 (changes only on iteration 0)
    li   t0, 9
    tsd  t0, 48(a0), 0
    twait 0                  # fence before consuming potentials
    li   a1, potential
    ld   s2, 56(a1)          # objective: last node's potential
    addi s0, s0, 1
    blt  s0, s1, outer
    li   a2, result
    sd   s2, 0(a2)
    halt

# DTT handler: a0 = &cost[k]. Recompute the potential prefix sums
# from node k to the end of the chain.
refresh:
    li   t0, cost
    sub  t1, a0, t0          # byte offset of the changed node
    srli t1, t1, 3           # k
    li   t2, 0               # running potential
    beq  t1, x0, from_zero
    li   t3, potential
    slli t4, t1, 3
    add  t3, t3, t4
    ld   t2, -8(t3)          # potential[k-1]
from_zero:
    li   t3, 8               # chain length
    sub  t3, t3, t1          # nodes to refresh
    li   t4, cost
    slli t5, t1, 3
    add  t4, t4, t5          # &cost[k]
    li   t6, potential
    add  t6, t6, t5          # &potential[k]
suffix:
    ld   t7, 0(t4)
    add  t2, t2, t7
    sd   t2, 0(t6)
    addi t4, t4, 8
    addi t6, t6, 8
    addi t3, t3, -1
    bne  t3, x0, suffix
    tret

    .data
cost:      .quad 1, 2, 3, 4, 1, 2, 3, 4
potential: .quad 1, 3, 6, 10, 11, 13, 16, 20
result:    .space 8
)";

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    // ----- part 1: the hand-written miniature ------------------------
    std::puts("part 1: hand-written refresh_potential DTT "
              "(see source for the assembly)\n");
    isa::Program mini = isa::assemble(kMiniDtt);
    sim::Simulator simulator(sim::SimConfig{}, mini);
    sim::SimResult mr = simulator.run();
    std::printf("  cycles=%llu  tstores=%llu  silent=%llu  "
                "spawns=%llu\n",
                static_cast<unsigned long long>(mr.cycles),
                static_cast<unsigned long long>(mr.tstores),
                static_cast<unsigned long long>(mr.silentSuppressed),
                static_cast<unsigned long long>(mr.dttSpawns));
    std::printf("  objective (potential of last node) = %llu "
                "(expect 1+2+3+5+1+2+9+4 = 27)\n\n",
                static_cast<unsigned long long>(
                    simulator.core().memory().read64(
                        mini.dataSymbol("result"))));

    // ----- part 2: the full mcf workload ------------------------------
    std::puts("part 2: the full mcf analogue from the workload "
              "library");
    workloads::WorkloadParams params;
    params.iterations = static_cast<int>(opts.getInt("iters", -1));

    const workloads::Workload &mcf = workloads::findWorkload("mcf");
    sim::SimConfig base_cfg;
    base_cfg.accel = cpu::AccelKind::None;
    sim::SimResult base = sim::runProgram(
        base_cfg, mcf.build(workloads::Variant::Baseline, params));
    sim::SimResult dtt = sim::runProgram(
        sim::SimConfig{}, mcf.build(workloads::Variant::Dtt, params));

    std::printf("  baseline: %llu cycles, %llu insts (refresh runs "
                "every iteration)\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(base.totalCommitted));
    std::printf("  DTT:      %llu cycles, %llu main + %llu thread "
                "insts\n",
                static_cast<unsigned long long>(dtt.cycles),
                static_cast<unsigned long long>(dtt.mainCommitted),
                static_cast<unsigned long long>(dtt.dttCommitted));
    std::printf("  %llu of %llu triggering stores were silent and "
                "spawned nothing\n",
                static_cast<unsigned long long>(dtt.silentSuppressed),
                static_cast<unsigned long long>(dtt.tstores));
    std::printf("  speedup: %.2fx\n",
                static_cast<double>(base.cycles)
                    / static_cast<double>(dtt.cycles));
    return 0;
}
