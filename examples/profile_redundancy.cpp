/**
 * @file
 * Redundancy profiling tool: reproduce the paper's characterization
 * (redundant loads, silent stores, reusable computation) for any
 * workload in the suite, or sweep the whole suite.
 *
 *   build/examples/profile_redundancy --workload=mcf
 *   build/examples/profile_redundancy                # whole suite
 *   build/examples/profile_redundancy --update-rate=0.8
 */

#include <cstdio>
#include <vector>

#include "common/options.h"
#include "common/table.h"
#include "profile/redundancy.h"
#include "profile/reuse.h"
#include "workloads/workload.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params;
    params.seed = static_cast<std::uint64_t>(opts.getInt("seed",
                                                         12345));
    params.iterations = static_cast<int>(opts.getInt("iters", -1));
    params.updateRate = opts.getDouble("update-rate", -1.0);

    std::vector<const workloads::Workload *> subjects;
    if (opts.has("workload"))
        subjects.push_back(&workloads::findWorkload(
            opts.get("workload")));
    else
        subjects = workloads::allWorkloads();

    TextTable t("Redundancy characterization (baseline programs)");
    t.header({"bench", "insts", "redundant loads", "silent stores",
              "reusable insts"});
    for (const workloads::Workload *w : subjects) {
        isa::Program prog =
            w->build(workloads::Variant::Baseline, params);
        profile::RedundancyReport rr =
            profile::profileRedundancy(prog);
        profile::ReuseReport ru = profile::profileReuse(prog);
        t.row({w->info().name, TextTable::num(rr.instructions),
               TextTable::pctCell(rr.redundantLoadPct()),
               TextTable::pctCell(rr.silentStorePct()),
               TextTable::pctCell(ru.reusePct())});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nRedundant load: returns the value the previous load"
              " of that address returned.");
    std::puts("Silent store:   writes the value the location already"
              " holds.");
    std::puts("Reusable inst:  repeats a remembered execution of the"
              " same static instruction\n                (8-entry"
              " reuse buffer per static instruction).");
    return 0;
}
