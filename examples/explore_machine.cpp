/**
 * @file
 * Machine-exploration tool: run one workload's baseline/DTT pair
 * across user-chosen machine parameters and print the comparison —
 * the programmatic API the bench/ binaries are built from.
 *
 *   build/examples/explore_machine --workload=art --contexts=2
 *   build/examples/explore_machine --workload=gcc --tq=4 --policy=drop
 *   build/examples/explore_machine --workload=mcf --no-coalesce
 *   build/examples/explore_machine --workload=mcf --trace=pipe.log
 */

#include <cstdio>

#include "common/log.h"
#include "common/options.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    const workloads::Workload &w =
        workloads::findWorkload(opts.get("workload", "mcf"));
    workloads::WorkloadParams params;
    params.seed = static_cast<std::uint64_t>(opts.getInt("seed",
                                                         12345));
    params.iterations = static_cast<int>(opts.getInt("iters", -1));
    params.updateRate = opts.getDouble("update-rate", -1.0);
    params.scale = static_cast<int>(opts.getInt("scale", 1));

    sim::SimConfig cfg;
    cfg.core.numContexts = static_cast<int>(opts.getInt("contexts",
                                                        4));
    cfg.dtt.threadQueueSize = static_cast<int>(opts.getInt("tq", 16));
    if (opts.get("policy", "stall") == "drop")
        cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Drop;
    cfg.dtt.silentSuppression = !opts.has("no-silent-suppression");
    cfg.dtt.coalesce = !opts.has("no-coalesce");
    cfg.dtt.spawnLatency = static_cast<Cycle>(
        opts.getInt("spawn-latency", 4));

    sim::SimConfig base_cfg = cfg;
    base_cfg.accel = cpu::AccelKind::None;
    sim::SimResult base = sim::runProgram(
        base_cfg, w.build(workloads::Variant::Baseline, params));

    std::FILE *trace = nullptr;
    if (opts.has("trace")) {
        trace = std::fopen(opts.get("trace").c_str(), "w");
        if (trace == nullptr)
            fatal("cannot open trace file '%s'",
                  opts.get("trace").c_str());
    }
    sim::Simulator dtt_sim(cfg,
                           w.build(workloads::Variant::Dtt, params));
    if (trace != nullptr)
        dtt_sim.core().setTraceFile(trace);
    sim::SimResult dtt = dtt_sim.run();
    if (trace != nullptr) {
        std::fclose(trace);
        std::printf("pipeline trace written to %s\n",
                    opts.get("trace").c_str());
    }

    std::printf("workload %s on %d contexts, tq=%d\n",
                w.info().name.c_str(), cfg.core.numContexts,
                cfg.dtt.threadQueueSize);
    auto line = [](const char *k, std::uint64_t b, std::uint64_t d) {
        std::printf("  %-22s %12llu %12llu\n", k,
                    static_cast<unsigned long long>(b),
                    static_cast<unsigned long long>(d));
    };
    std::printf("  %-22s %12s %12s\n", "", "baseline", "dtt");
    line("cycles", base.cycles, dtt.cycles);
    line("main insts", base.mainCommitted, dtt.mainCommitted);
    line("thread insts", base.dttCommitted, dtt.dttCommitted);
    line("tstores", base.tstores, dtt.tstores);
    line("silent suppressed", base.silentSuppressed,
         dtt.silentSuppressed);
    line("threads fired", base.fired, dtt.fired);
    line("coalesced", base.coalesced, dtt.coalesced);
    line("spawns", base.dttSpawns, dtt.dttSpawns);
    line("tq max occupancy", base.tqMaxOccupancy, dtt.tqMaxOccupancy);
    line("twait stall cycles", base.twaitStallCycles,
         dtt.twaitStallCycles);
    line("tstore commit stalls", base.tstoreCommitStalls,
         dtt.tstoreCommitStalls);
    line("L1D misses", base.l1dMisses, dtt.l1dMisses);
    line("L2 misses", base.l2Misses, dtt.l2Misses);
    line("branch mispredicts", base.condMispredicts,
         dtt.condMispredicts);
    std::printf("  %-22s %12.2f %12.2f\n", "IPC", base.ipc, dtt.ipc);
    std::printf("\n  speedup: %.2fx\n",
                static_cast<double>(base.cycles)
                    / static_cast<double>(dtt.cycles));
    if (opts.has("detailed")) {
        std::puts("\ndetailed DTT-machine statistics:");
        std::fputs(sim::formatDetailedStats(dtt_sim).c_str(), stdout);
    }
    return 0;
}
