/**
 * @file
 * Quickstart: author a tiny program with data-triggered threads using
 * the ProgramBuilder, run it on the cycle-level SMT simulator, and
 * read the results.
 *
 * The program keeps a running "derived" value (the square of a
 * sensor reading) up to date with a DTT: whenever the reading
 * changes, the handler recomputes the square; when a write leaves the
 * reading unchanged (a silent store), nothing runs at all.
 *
 *   build/examples/quickstart
 */

#include <cstdio>

#include "isa/builder.h"
#include "sim/simulator.h"

using namespace dttsim;
using namespace dttsim::isa::regs;

int
main()
{
    isa::ProgramBuilder b;

    // ----- data ------------------------------------------------------
    Addr reading = b.quads("reading", {3});
    Addr squared = b.quads("squared", {9});  // consistent initial value
    // A little write log: half the writes store the same value again.
    Addr updates = b.quads("updates", {4, 4, 7, 7, 7, 2, 2, 2});

    // ----- main thread ------------------------------------------------
    isa::Label handler = b.newLabel();
    b.bindNamed("main");
    b.treg(0, handler);          // attach the handler to trigger 0

    b.la(s1, updates);
    b.la(s2, reading);
    b.li(t1, 8);
    b.loop(t0, t1, [&] {
        b.ld(t2, s1, 0);         // next write from the log
        b.tsd(t2, s2, 0, 0);     // triggering store to the reading
        b.addi(s1, s1, 8);
    });

    b.twait(0);                  // fence: all triggered work done
    b.la(t3, squared);
    b.ld(s0, t3, 0);             // consume the derived value
    b.halt();

    // ----- the data-triggered thread ----------------------------------
    // a0 = address of the changed datum, a1 = the stored value.
    b.bind(handler);
    b.mul(t0, a1, a1);
    b.la(t1, squared);
    b.sd(t0, t1, 0);
    b.tret();

    isa::Program prog = b.take();

    // ----- simulate ----------------------------------------------------
    sim::SimConfig cfg;          // 4-context SMT, Table 1 machine
    sim::Simulator simulator(cfg, prog);
    sim::SimResult r = simulator.run();

    std::printf("quickstart: data-triggered threads in ~40 lines\n\n");
    std::printf("cycles                 %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("main-thread insts      %llu\n",
                static_cast<unsigned long long>(r.mainCommitted));
    std::printf("DTT insts              %llu\n",
                static_cast<unsigned long long>(r.dttCommitted));
    std::printf("triggering stores      %llu\n",
                static_cast<unsigned long long>(r.tstores));
    std::printf("  silent (suppressed)  %llu\n",
                static_cast<unsigned long long>(r.silentSuppressed));
    std::printf("  threads spawned      %llu\n",
                static_cast<unsigned long long>(r.dttSpawns));
    std::printf("final squared value    %llu  (expect 4 = 2*2)\n",
                static_cast<unsigned long long>(
                    simulator.core().memory().read64(
                        prog.dataSymbol("squared"))));
    std::printf("\nOf 8 writes, only the 3 value-changing ones could "
                "trigger (back-to-back\nchanges may additionally "
                "coalesce in the thread queue); the 5 silent\nstores "
                "never ran anything — that computation was "
                "eliminated.\n");
    return 0;
}
