/**
 * @file
 * Standalone assembler + runner: assemble a .s file written in the
 * dttsim ISA (DTT extension included) and execute it — functionally
 * or on the cycle-level simulator — printing the result report.
 *
 *   build/examples/run_asm --file=prog.s
 *   build/examples/run_asm --file=prog.s --functional
 *   build/examples/run_asm --file=prog.s --trace=pipe.log --detailed
 *   build/examples/run_asm --file=prog.s --disasm
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/options.h"
#include "cpu/executor.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "sim/report.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (!opts.has("file")) {
        std::puts("usage: run_asm --file=prog.s [--functional]"
                  " [--disasm] [--trace=out.log] [--detailed]"
                  " [--max-cycles=N]");
        return 2;
    }

    std::ifstream in(opts.get("file"));
    if (!in)
        fatal("cannot open '%s'", opts.get("file").c_str());
    std::ostringstream text;
    text << in.rdbuf();

    isa::Program prog = isa::assemble(text.str());
    std::printf("assembled %zu instructions, %d trigger(s), data end"
                " 0x%llx\n",
                static_cast<std::size_t>(prog.size()),
                prog.numTriggers(),
                static_cast<unsigned long long>(prog.dataEnd()));

    if (opts.has("disasm"))
        std::fputs(isa::disassemble(prog).c_str(), stdout);

    if (opts.has("functional")) {
        cpu::FunctionalRunner runner(prog);
        cpu::FuncRunResult r = runner.run(
            static_cast<std::uint64_t>(
                opts.getInt("max-insts", 1 << 28)));
        std::printf("functional: halted=%d main insts=%llu dtt"
                    " insts=%llu (%llu handler runs, %llu/%llu silent"
                    " tstores)\n",
                    r.halted ? 1 : 0,
                    static_cast<unsigned long long>(
                        r.mainInstructions),
                    static_cast<unsigned long long>(
                        r.dttInstructions),
                    static_cast<unsigned long long>(r.dttRuns),
                    static_cast<unsigned long long>(r.silentTstores),
                    static_cast<unsigned long long>(r.tstores));
        if (prog.hasDataSymbol("result"))
            std::printf("result = %llu\n",
                        static_cast<unsigned long long>(
                            runner.memory().read64(
                                prog.dataSymbol("result"))));
        return r.halted ? 0 : 1;
    }

    sim::SimConfig cfg;
    cfg.maxCycles = static_cast<Cycle>(
        opts.getInt("max-cycles", 1 << 28));
    sim::Simulator simulator(cfg, prog);

    std::FILE *trace = nullptr;
    if (opts.has("trace")) {
        trace = std::fopen(opts.get("trace").c_str(), "w");
        if (trace == nullptr)
            fatal("cannot open trace file '%s'",
                  opts.get("trace").c_str());
        simulator.core().setTraceFile(trace);
    }

    sim::SimResult r = simulator.run();
    std::fputs(sim::formatResult(r).c_str(), stdout);
    if (prog.hasDataSymbol("result"))
        std::printf("result = %llu\n",
                    static_cast<unsigned long long>(
                        simulator.core().memory().read64(
                            prog.dataSymbol("result"))));
    if (opts.has("detailed"))
        std::fputs(sim::formatDetailedStats(simulator).c_str(),
                   stdout);
    if (trace != nullptr)
        std::fclose(trace);
    return r.halted ? 0 : 1;
}
