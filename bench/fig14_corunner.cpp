/**
 * @file
 * Figure 14 — DTT under SMT co-scheduling: the paper's machine runs
 * DTTs on *spare* contexts; what happens when other programs occupy
 * them? Both machines run with k foreign co-runner threads pinned to
 * contexts 1..k (the baseline suffers their cache/fetch interference
 * too); DTT spawns use the remaining spare contexts. With k=2 on a
 * 4-context core a single spare context remains — per Fig. 7, that is
 * still enough to retain most of the benefit, though contention with
 * the co-runners squeezes both machines.
 */

#include "bench_util.h"
#include "common/log.h"

using namespace dttsim;

namespace {

Cycle
runWithCoRunners(const sim::SimConfig &cfg, isa::Program prog,
                 const std::vector<std::uint64_t> &entries)
{
    sim::Simulator s(cfg, std::move(prog));
    for (std::size_t i = 0; i < entries.size(); ++i)
        s.core().startCoRunner(static_cast<CtxId>(i + 1), entries[i]);
    sim::SimResult r = s.run();
    if (!r.halted)
        fatal("co-runner experiment did not complete");
    return r.cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 14: DTT speedup with k SMT co-runners"
                " (4-context core)");
    t.header({"bench", "k=0", "k=1", "k=2"});
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        std::vector<std::string> cells{w->info().name};
        for (int k = 0; k <= 2; ++k) {
            isa::Program base_prog =
                w->build(workloads::Variant::Baseline, params);
            isa::Program dtt_prog =
                w->build(workloads::Variant::Dtt, params);
            std::vector<std::uint64_t> base_entries, dtt_entries;
            for (int i = 0; i < k; ++i) {
                base_entries.push_back(
                    bench::appendCoRunner(base_prog, i));
                dtt_entries.push_back(
                    bench::appendCoRunner(dtt_prog, i));
            }
            Cycle base = runWithCoRunners(bench::machineConfig(false),
                                          base_prog, base_entries);
            Cycle dtt = runWithCoRunners(bench::machineConfig(true),
                                         dtt_prog, dtt_entries);
            cells.push_back(TextTable::num(
                static_cast<double>(base) / static_cast<double>(dtt),
                2) + "x");
        }
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nk contexts run an independent memory-bound thread on"
              " both machines;\nDTT spawns use the remaining spare"
              " contexts.\n\nFinding: co-scheduling *raises* the"
              " relative DTT benefit — the baseline's\nlong redundant"
              " recompute loses fetch/issue bandwidth and cache space"
              " to the\nco-runners for its entire duration, while the"
              " DTT main thread is short and\nits handlers were"
              " sharing the core anyway.");
    return 0;
}
