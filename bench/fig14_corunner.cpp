/**
 * @file
 * Figure 14 — DTT under SMT co-scheduling: the paper's machine runs
 * DTTs on *spare* contexts; what happens when other programs occupy
 * them? Both machines run with k foreign co-runner threads pinned to
 * contexts 1..k (the baseline suffers their cache/fetch interference
 * too); DTT spawns use the remaining spare contexts. With k=2 on a
 * 4-context core a single spare context remains — per Fig. 7, that is
 * still enough to retain most of the benefit, though contention with
 * the co-runners squeezes both machines.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig14_corunner",
                      "Figure 14: DTT speedup with k SMT co-runner "
                      "threads occupying spare contexts"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    const int max_k = 2;

    auto make_corun_job = [&](const workloads::Workload &w,
                              workloads::Variant variant, int k) {
        sim::SimJob job = h.makeJob(
            w, variant, params,
            bench::Harness::machineConfig(
                variant == workloads::Variant::Dtt),
            std::string(variant == workloads::Variant::Dtt
                            ? "dtt" : "baseline")
                + " k=" + std::to_string(k));
        for (int i = 0; i < k; ++i)
            job.coRunnerEntries.push_back(
                bench::appendCoRunner(job.program, i));
        return job;
    };

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        for (int k = 0; k <= max_k; ++k) {
            jobs.push_back(
                make_corun_job(*w, workloads::Variant::Baseline, k));
            jobs.push_back(
                make_corun_job(*w, workloads::Variant::Dtt, k));
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 14: DTT speedup with k SMT co-runners"
                " (4-context core)");
    t.header({"bench", "k=0", "k=1", "k=2"});
    std::size_t idx = 0;
    for (const workloads::Workload *w : subjects) {
        std::vector<std::string> cells{w->info().name};
        for (int k = 0; k <= max_k; ++k) {
            cells.push_back(bench::speedupCell(bench::speedupOf(
                results[idx].result, results[idx + 1].result)));
            idx += 2;
        }
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nk contexts run an independent memory-bound thread on"
              " both machines;\nDTT spawns use the remaining spare"
              " contexts.\n\nFinding: co-scheduling *raises* the"
              " relative DTT benefit — the baseline's\nlong redundant"
              " recompute loses fetch/issue bandwidth and cache space"
              " to the\nco-runners for its entire duration, while the"
              " DTT main thread is short and\nits handlers were"
              " sharing the core anyway.");
    return h.finish();
}
