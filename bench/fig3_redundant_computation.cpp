/**
 * @file
 * Figure 3 — redundant computation ceiling: fraction of dynamic
 * instructions whose operands (and, for memory ops, address + value)
 * repeat an earlier execution of the same static instruction, per an
 * 8-entry per-instruction reuse buffer. This is the pool of
 * computation data-triggered threads can eliminate.
 */

#include "harness.h"
#include "profile/reuse.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig3_redundant_computation",
                      "Figure 3: redundant (reusable) computation in "
                      "the baseline programs"});
    workloads::WorkloadParams params = h.params();

    TextTable t("Figure 3: redundant (reusable) computation,"
                " baseline programs");
    t.header({"bench", "dyn insts", "ceiling %", "ceiling loads %",
              "8-entry buf %"});
    std::vector<double> inf_pcts, inf_load_pcts, buf_pcts;
    for (const workloads::Workload *w : h.workloads()) {
        profile::ReuseReport r = profile::profileReuse(
            w->build(workloads::Variant::Baseline, params));
        inf_pcts.push_back(r.reuseInfPct());
        inf_load_pcts.push_back(r.loadReuseInfPct());
        buf_pcts.push_back(r.reusePct());
        t.row({w->info().name, TextTable::num(r.instructions),
               TextTable::pctCell(r.reuseInfPct()),
               TextTable::pctCell(r.loadReuseInfPct()),
               TextTable::pctCell(r.reusePct())});
    }
    t.row({"average", "", TextTable::pctCell(bench::mean(inf_pcts)),
           TextTable::pctCell(bench::mean(inf_load_pcts)),
           TextTable::pctCell(bench::mean(buf_pcts))});
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nceiling: unbounded per-static-instruction "
              "memoization (the redundancy pool\nDTTs draw from); the "
              "finite reuse buffer shows why value-locality hardware\n"
              "alone cannot harvest it.");
    return h.finish();
}
