/**
 * @file
 * Figure 11 — true-update-rate sweep: where DTT wins and where it
 * crosses over. As the fraction of trigger-data writes that actually
 * change values rises, more threads fire and less computation is
 * redundant, so the speedup decays toward (and below) 1.0. mcf keeps
 * winning because its handlers are much cheaper than the full
 * recompute; gcc crosses below 1.0 because its trigger rate is huge.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig11_update_rate",
                      "Figure 11: DTT speedup vs true-update rate "
                      "(default subjects: mcf, art, gcc)"});
    workloads::WorkloadParams base_params = h.params();

    const std::vector<double> rates = {0.0, 0.1, 0.25, 0.5, 0.75,
                                       1.0};
    std::vector<const workloads::Workload *> subjects;
    if (h.options().has("workload")) {
        subjects = h.workloads();
    } else {
        subjects = {&workloads::findWorkload("mcf"),
                    &workloads::findWorkload("art"),
                    &workloads::findWorkload("gcc")};
    }

    // Both variants are rebuilt per rate (the update schedule is part
    // of the generated input), so each rate contributes a distinct
    // baseline/DTT pair to the batch.
    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        for (double rate : rates) {
            workloads::WorkloadParams params = base_params;
            params.updateRate = rate;
            std::string tag = " r=" + TextTable::num(rate, 2);
            jobs.push_back(h.makeJob(
                *w, workloads::Variant::Baseline, params,
                bench::Harness::machineConfig(false),
                "baseline" + tag));
            jobs.push_back(h.makeJob(
                *w, workloads::Variant::Dtt, params,
                bench::Harness::machineConfig(true), "dtt" + tag));
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 11: speedup vs true-update rate");
    t.header({"bench", "r=0.00", "r=0.10", "r=0.25", "r=0.50",
              "r=0.75", "r=1.00"});
    std::size_t idx = 0;
    for (const workloads::Workload *w : subjects) {
        std::vector<std::string> cells{w->info().name};
        for (std::size_t r = 0; r < rates.size(); ++r) {
            cells.push_back(bench::speedupCell(bench::speedupOf(
                results[idx].result, results[idx + 1].result)));
            idx += 2;
        }
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
