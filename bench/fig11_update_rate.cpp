/**
 * @file
 * Figure 11 — true-update-rate sweep: where DTT wins and where it
 * crosses over. As the fraction of trigger-data writes that actually
 * change values rises, more threads fire and less computation is
 * redundant, so the speedup decays toward (and below) 1.0. mcf keeps
 * winning because its handlers are much cheaper than the full
 * recompute; gcc crosses below 1.0 because its trigger rate is huge.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams base_params =
        bench::paramsFromOptions(opts);

    const double rates[] = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
    std::vector<const workloads::Workload *> subjects;
    if (opts.has("workload")) {
        subjects = bench::workloadsFromOptions(opts);
    } else {
        subjects = {&workloads::findWorkload("mcf"),
                    &workloads::findWorkload("art"),
                    &workloads::findWorkload("gcc")};
    }

    TextTable t("Figure 11: speedup vs true-update rate");
    t.header({"bench", "r=0.00", "r=0.10", "r=0.25", "r=0.50",
              "r=0.75", "r=1.00"});
    for (const workloads::Workload *w : subjects) {
        std::vector<std::string> cells{w->info().name};
        for (double rate : rates) {
            workloads::WorkloadParams params = base_params;
            params.updateRate = rate;
            bench::Pair pr = bench::runPair(*w, params);
            cells.push_back(TextTable::num(pr.speedup(), 2) + "x");
        }
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
