/**
 * @file
 * Figure 2 — fraction of loads that fetch redundant data (the same
 * value the previous load of that address returned), per benchmark.
 *
 * Paper anchor: 78% of all loads fetch redundant data on average
 * across the C SPEC suite.
 */

#include "bench_util.h"
#include "profile/redundancy.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 2: redundant loads (baseline programs)");
    t.header({"bench", "loads", "redundant", "redundant %"});
    std::vector<double> pcts;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        profile::RedundancyReport r = profile::profileRedundancy(
            w->build(workloads::Variant::Baseline, params));
        pcts.push_back(r.redundantLoadPct());
        t.row({w->info().name, TextTable::num(r.loads),
               TextTable::num(r.redundantLoads),
               TextTable::pctCell(r.redundantLoadPct())});
    }
    t.row({"average", "", "", TextTable::pctCell(bench::mean(pcts))});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper anchor: 78%% of all loads fetch redundant "
                "data (suite average)\nmeasured suite average: "
                "%.1f%%\n", bench::mean(pcts));
    return 0;
}
