/**
 * @file
 * Figure 2 — fraction of loads that fetch redundant data (the same
 * value the previous load of that address returned), per benchmark.
 *
 * Paper anchor: 78% of all loads fetch redundant data on average
 * across the C SPEC suite.
 */

#include "harness.h"
#include "profile/redundancy.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig2_redundant_loads",
                      "Figure 2: fraction of loads fetching redundant "
                      "data (functional profile of the baseline "
                      "programs)"});
    workloads::WorkloadParams params = h.params();

    TextTable t("Figure 2: redundant loads (baseline programs)");
    t.header({"bench", "loads", "redundant", "redundant %"});
    std::vector<double> pcts;
    for (const workloads::Workload *w : h.workloads()) {
        profile::RedundancyReport r = profile::profileRedundancy(
            w->build(workloads::Variant::Baseline, params));
        pcts.push_back(r.redundantLoadPct());
        t.row({w->info().name, TextTable::num(r.loads),
               TextTable::num(r.redundantLoads),
               TextTable::pctCell(r.redundantLoadPct())});
    }
    t.row({"average", "", "", TextTable::pctCell(bench::mean(pcts))});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper anchor: 78%% of all loads fetch redundant "
                "data (suite average)\nmeasured suite average: "
                "%.1f%%\n", bench::mean(pcts));
    return h.finish();
}
