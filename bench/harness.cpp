#include "harness.h"

#include <cstdlib>

#include "common/log.h"
#include "net/client.h"
#include "sim/fabricfault.h"

namespace dttsim::bench {

namespace {

/** Flags every harness binary accepts. */
const std::vector<FlagSpec> &
engineFlags()
{
    static const std::vector<FlagSpec> flags = {
        {"help", "", "show this flag listing and exit"},
        {"jobs", "N",
         "worker threads for the experiment engine "
         "(default: all hardware threads)"},
        {"json", "PATH",
         "write one schema-versioned JSON record per simulated job"},
        {"cache", "MODE",
         "persistent result cache: off (default), ro (warm-start "
         "only), rw (warm-start and persist), clear (drop every "
         "cached record, then behave like rw)"},
        {"cache-dir", "PATH",
         "result-cache directory (default: bench/out/cache)"},
        {"resume", "MANIFEST",
         "resume a killed sweep from its cache MANIFEST (implies "
         "--cache=rw with that directory); only incomplete jobs "
         "re-execute and the merged --json output is byte-identical "
         "to an uninterrupted run"},
        {"retries", "N",
         "re-execute a job whose worker threw up to N more times, "
         "with jittered exponential backoff (default 0)"},
        {"retry-on", "WHAT",
         "also spend retry attempts on WHAT=timeout (deadline "
         "cancellations); by default only thrown workers retry"},
        {"job-deadline", "SECONDS",
         "per-job wall-clock deadline; a runaway simulation is "
         "cancelled and recorded as status=timeout (default: none)"},
        {"workers", "HOST:PORT[,...]",
         "farm unique jobs out to dttworkerd daemons; a worker that "
         "dies mid-sweep degrades to local execution with no job "
         "lost (docs/HARNESS.md, Distributed sweeps)"},
        {"worker-window", "N",
         "jobs kept in flight per worker (default 4)"},
        {"worker-deadline", "SECONDS",
         "give up on a silent worker after this long per request "
         "(default 600)"},
        {"worker-attempts", "N",
         "connection attempts per worker before declaring it down "
         "(default 3; each failed attempt counts against the "
         "quarantine circuit breaker)"},
        {"worker-straggler", "SECONDS",
         "hedge a remote job unanswered for this long by also "
         "re-queuing it locally; the first result wins and the "
         "duplicate is suppressed (default: off)"},
        {"fabric-faults", "SEED:SPEC",
         "arm deterministic fabric fault injection (chaos testing "
         "only; e.g. 7:connect-refused=0.5,corrupt-frame=0.1 — "
         "docs/ROBUSTNESS.md)"},
        {"claims", "MODE",
         "on (default) lets concurrent processes sharing --cache-dir "
         "claim in-flight digests so each simulates once; off "
         "disables claim files"},
        {"claim-deadline", "SECONDS",
         "in-flight claim lease; a claim older than this from a "
         "dead process is taken over (default 300)"},
        {"provenance", "",
         "record which worker executed each job in the --json "
         "records (off by default: provenance breaks byte-identity "
         "with local runs)"},
        {"accel", "KIND",
         "accelerator on the accelerated machine: none, dtt "
         "(default), sp, reuse (docs/ACCELERATORS.md)"},
        {"dtt", "", "(deprecated) alias for --accel=dtt"},
        {"no-dtt", "", "(deprecated) alias for --accel=none"},
    };
    return flags;
}

/** --accel / legacy --dtt/--no-dtt resolution (exit 2 on misuse). */
cpu::AccelKind
parseAccel(const Options &opts, const std::string &binary)
{
    cpu::AccelKind kind = cpu::AccelKind::Dtt;
    if (opts.has("dtt") && opts.has("no-dtt")) {
        std::fprintf(stderr,
                     "%s: error: --dtt and --no-dtt conflict (both "
                     "are deprecated; use --accel, see --help)\n",
                     binary.c_str());
        std::exit(2);
    }
    if (opts.has("dtt") || opts.has("no-dtt")) {
        // Deprecation shim: accepted, mapped, and nagged on stderr so
        // scripted callers migrate without breaking today.
        const bool dtt = opts.has("dtt");
        std::fprintf(stderr,
                     "%s: warning: %s is deprecated; use --accel=%s\n",
                     binary.c_str(), dtt ? "--dtt" : "--no-dtt",
                     dtt ? "dtt" : "none");
        kind = dtt ? cpu::AccelKind::Dtt : cpu::AccelKind::None;
    }
    if (opts.has("accel")) {
        std::optional<cpu::AccelKind> k =
            cpu::accelKindFromName(opts.get("accel"));
        if (!k) {
            std::fprintf(stderr,
                         "%s: error: --accel=%s is not one of "
                         "none/dtt/sp/reuse (see --help)\n",
                         binary.c_str(), opts.get("accel").c_str());
            std::exit(2);
        }
        kind = *k;
    }
    return kind;
}

/** Default cache directory, next to the other bench outputs. */
constexpr const char *kDefaultCacheDir = "bench/out/cache";

/**
 * Build the result store from --cache/--cache-dir/--resume before
 * the engine is constructed (it keeps a raw pointer). A bad mode
 * spelling is a usage error: report and exit 2, the flag-policy
 * convention.
 */
std::unique_ptr<sim::ResultStore>
makeStore(const Options &opts, const std::string &binary)
{
    std::string dir = opts.get("cache-dir", kDefaultCacheDir);
    sim::ResultStore::Mode mode = sim::ResultStore::Mode::Off;
    bool clearFirst = false;

    if (opts.has("cache")) {
        if (opts.get("cache") == "clear") {
            // Cache-lifecycle escape hatch: start this run from an
            // empty store but keep persisting (rw semantics).
            mode = sim::ResultStore::Mode::ReadWrite;
            clearFirst = true;
        } else {
            std::optional<sim::ResultStore::Mode> m =
                sim::ResultStore::parseMode(opts.get("cache"));
            if (!m) {
                std::fprintf(stderr,
                             "%s: error: --cache=%s is not one of "
                             "off/ro/rw/clear (see --help)\n",
                             binary.c_str(),
                             opts.get("cache").c_str());
                std::exit(2);
            }
            mode = *m;
        }
    }
    if (opts.has("resume")) {
        // --resume=DIR/MANIFEST (or just DIR) points the rw cache at
        // a previous run's store; resume then falls out of the
        // digest-keyed warm start.
        std::string manifest = opts.get("resume");
        if (manifest.empty()) {
            std::fprintf(stderr,
                         "%s: error: --resume needs a MANIFEST path "
                         "(see --help)\n", binary.c_str());
            std::exit(2);
        }
        std::string::size_type slash = manifest.rfind('/');
        std::string base =
            slash == std::string::npos ? manifest
                                       : manifest.substr(slash + 1);
        if (base == "MANIFEST")
            dir = slash == std::string::npos ? "."
                                             : manifest.substr(0, slash);
        else
            dir = manifest;
        mode = sim::ResultStore::Mode::ReadWrite;
    }
    if (mode == sim::ResultStore::Mode::Off)
        return nullptr;
    auto store = std::make_unique<sim::ResultStore>(dir, mode);
    if (clearFirst && !store->clear())
        std::fprintf(stderr,
                     "%s: warning: --cache=clear could not empty "
                     "'%s'; continuing with the existing records\n",
                     binary.c_str(), dir.c_str());
    return store;
}

/** Engine supervision policy from the parsed flags. */
sim::EngineConfig
makeEngineConfig(const Options &opts, sim::ResultStore *store)
{
    sim::EngineConfig cfg;
    cfg.numThreads = static_cast<int>(opts.getInt("jobs", 0));
    cfg.maxAttempts = 1 + static_cast<int>(opts.getInt("retries", 0));
    cfg.retryBackoffSeconds = 0.05;
    cfg.jobDeadlineSeconds = opts.getDouble("job-deadline", 0.0);
    if (opts.has("retry-on")) {
        if (opts.get("retry-on") != "timeout") {
            std::fprintf(stderr,
                         "error: --retry-on=%s is not supported "
                         "(only --retry-on=timeout; see --help)\n",
                         opts.get("retry-on").c_str());
            std::exit(2);
        }
        cfg.retryTimeouts = true;
    }
    if (opts.has("workers")) {
        // Validate the whole list at parse time (exit 2 on a bad
        // spec) but hand the engine the raw specs: they double as
        // the provenance labels.
        std::string err;
        std::optional<std::vector<net::Endpoint>> eps =
            net::parseEndpointList(opts.get("workers"), &err);
        if (!eps) {
            std::fprintf(stderr, "error: --workers: %s (see --help)\n",
                         err.c_str());
            std::exit(2);
        }
        for (const net::Endpoint &ep : *eps)
            cfg.workers.push_back(ep.spec());
    }
    cfg.workerWindow =
        static_cast<int>(opts.getInt("worker-window", 4));
    cfg.workerRequestSeconds =
        opts.getDouble("worker-deadline", 600.0);
    cfg.workerAttempts =
        static_cast<int>(opts.getInt("worker-attempts", 3));
    if (cfg.workerAttempts < 1) {
        std::fprintf(stderr, "error: --worker-attempts must be >= 1 "
                     "(see --help)\n");
        std::exit(2);
    }
    cfg.stragglerSeconds = opts.getDouble("worker-straggler", 0.0);
    if (cfg.stragglerSeconds < 0) {
        std::fprintf(stderr, "error: --worker-straggler must be >= 0 "
                     "(see --help)\n");
        std::exit(2);
    }
    if (opts.has("fabric-faults")) {
        std::string err;
        std::optional<fabric::FaultConfig> fc =
            fabric::parseFaultSpec(opts.get("fabric-faults"), &err);
        if (!fc) {
            std::fprintf(stderr, "error: --fabric-faults: %s "
                         "(see --help)\n", err.c_str());
            std::exit(2);
        }
        fabric::installFaultPlan(*fc);
        std::fprintf(stderr,
                     "fabric fault injection armed: %s\n",
                     fabric::formatFaultSpec(*fc).c_str());
    }
    if (opts.has("claims")) {
        const std::string mode = opts.get("claims");
        if (mode != "on" && mode != "off") {
            std::fprintf(stderr,
                         "error: --claims=%s is not on/off "
                         "(see --help)\n", mode.c_str());
            std::exit(2);
        }
        cfg.claimInFlight = mode == "on";
    }
    cfg.claimDeadlineSeconds =
        opts.getDouble("claim-deadline", 300.0);
    cfg.store = store;
    return cfg;
}

/** Workload-selection/parameter flags. */
const std::vector<FlagSpec> &
workloadFlags()
{
    static const std::vector<FlagSpec> flags = {
        {"workload", "NAME",
         "run only workload NAME (default: the full suite)"},
        {"seed", "N", "input-generation seed (default 12345)"},
        {"iters", "N", "outer iterations (default: per-workload)"},
        {"scale", "N", "working-set size multiplier (default 1)"},
        {"update-rate", "R",
         "fraction of trigger-data writes that change the value, "
         "0..1 (default: per-workload)"},
    };
    return flags;
}

void
printFlagGroup(const char *title, const std::vector<FlagSpec> &flags)
{
    if (flags.empty())
        return;
    std::printf("%s:\n", title);
    for (const FlagSpec &f : flags) {
        std::string lhs = "--" + f.name;
        if (!f.valueHint.empty())
            lhs += "=" + f.valueHint;
        std::printf("  %-18s %s\n", lhs.c_str(), f.help.c_str());
    }
}

} // namespace

double
speedupOf(const sim::SimResult &base, const sim::SimResult &r)
{
    Pair pr{base, r};
    return pr.speedup();
}

std::string
speedupCell(double speedup)
{
    return std::isfinite(speedup)
        ? TextTable::num(speedup, 2) + "x" : std::string("n/a");
}

double
mean(const std::vector<double> &vals)
{
    double sum = 0;
    std::size_t n = 0;
    for (double v : vals) {
        if (!std::isfinite(v))
            continue;
        sum += v;
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
geomean(const std::vector<double> &vals)
{
    double log_sum = 0;
    std::size_t n = 0;
    for (double v : vals) {
        if (!std::isfinite(v) || v <= 0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

std::uint64_t
appendCoRunner(isa::Program &prog, int id)
{
    constexpr std::int64_t kStride = 4096;
    constexpr std::int64_t kEntries = 1024;
    Addr base = prog.allocData(
        "corunner" + std::to_string(id),
        static_cast<std::uint64_t>(kStride * kEntries));
    auto emit = [&](isa::Opcode op, int rd, int rs1, int rs2,
                    std::int64_t imm) {
        isa::Inst inst;
        inst.op = op;
        inst.rd = static_cast<std::uint8_t>(rd);
        inst.rs1 = static_cast<std::uint8_t>(rs1);
        inst.rs2 = static_cast<std::uint8_t>(rs2);
        inst.imm = imm;
        return prog.append(inst);
    };
    using isa::Opcode;
    std::uint64_t entry =
        emit(Opcode::LI, 5, 0, 0, static_cast<std::int64_t>(base));
    emit(Opcode::LI, 8, 0, 0, 0);
    std::uint64_t loop =
        emit(Opcode::LD, 6, 5, 0, 0);
    emit(Opcode::ADD, 7, 7, 6, 0);
    emit(Opcode::ADDI, 5, 5, 0, kStride);
    emit(Opcode::ADDI, 8, 8, 0, 1);
    emit(Opcode::ANDI, 9, 8, 0, kEntries - 1);
    emit(Opcode::BNE, 0, 9, 0,
         static_cast<std::int64_t>(loop));  // rs1=x9 rs2=x0
    emit(Opcode::LI, 5, 0, 0, static_cast<std::int64_t>(base));
    emit(Opcode::JAL, 0, 0, 0, static_cast<std::int64_t>(loop));
    return entry;
}

Harness::Harness(int argc, const char *const *argv, HarnessSpec spec)
    : spec_(std::move(spec)), opts_(argc, argv),
      store_(makeStore(opts_, spec_.binary)),
      engine_(makeEngineConfig(opts_, store_.get())),
      jsonPath_(opts_.get("json")),
      accel_(parseAccel(opts_, spec_.binary))
{
    std::vector<const std::vector<FlagSpec> *> groups{&engineFlags()};
    if (spec_.workloadFlags)
        groups.push_back(&workloadFlags());
    groups.push_back(&spec_.extra);

    if (opts_.has("help")) {
        std::printf("%s — %s\n\nusage: %s [--flag[=value] ...]\n\n",
                    spec_.binary.c_str(), spec_.description.c_str(),
                    spec_.binary.c_str());
        printFlagGroup("common flags", engineFlags());
        if (spec_.workloadFlags)
            printFlagGroup("workload flags", workloadFlags());
        printFlagGroup((spec_.binary + " flags").c_str(),
                       spec_.extra);
        std::exit(0);
    }

    // The dttlint policy: an option we did not declare is a hard
    // error, not something to silently ignore.
    for (const auto &[name, value] : opts_.all()) {
        bool known = false;
        for (const auto *group : groups)
            for (const FlagSpec &f : *group)
                known = known || f.name == name;
        if (!known) {
            std::string supported;
            for (const auto *group : groups)
                for (const FlagSpec &f : *group)
                    supported += (supported.empty() ? "--" : ", --")
                        + f.name;
            std::fprintf(stderr,
                         "%s: error: unknown flag '--%s' "
                         "(supported: %s; see --help)\n",
                         spec_.binary.c_str(), name.c_str(),
                         supported.c_str());
            std::exit(2);
        }
    }
}

Harness::~Harness()
{
    // Safety net for binaries that return without calling finish();
    // exceptions from here would terminate, so swallow them.
    try {
        finish();
    } catch (...) {
    }
}

workloads::WorkloadParams
Harness::params() const
{
    workloads::WorkloadParams p;
    if (!spec_.workloadFlags)
        return p;
    p.seed = static_cast<std::uint64_t>(opts_.getInt("seed", 12345));
    p.iterations = static_cast<int>(opts_.getInt("iters", -1));
    p.scale = static_cast<int>(opts_.getInt("scale", 1));
    p.updateRate = opts_.getDouble("update-rate", -1.0);
    return p;
}

std::vector<const workloads::Workload *>
Harness::workloads() const
{
    if (spec_.workloadFlags && opts_.has("workload")) {
        // User error, not an internal bug: report and exit cleanly
        // (the dttlint convention) rather than aborting.
        try {
            return {&workloads::findWorkload(opts_.get("workload"))};
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s: %s\n", spec_.binary.c_str(),
                         e.what());
            std::exit(2);
        }
    }
    return workloads::allWorkloads();
}

sim::SimConfig
Harness::machineConfig(cpu::AccelKind kind)
{
    sim::SimConfig cfg;
    cfg.accel = kind;
    return cfg;  // defaults are the Table 1 machine
}

sim::SimConfig
Harness::machineConfig(bool enable_dtt)
{
    return machineConfig(enable_dtt ? cpu::AccelKind::Dtt
                                    : cpu::AccelKind::None);
}

sim::SimJob
Harness::makeJob(const workloads::Workload &w,
                 workloads::Variant variant,
                 const workloads::WorkloadParams &params,
                 sim::SimConfig config, std::string label) const
{
    sim::SimJob job;
    job.workload = w.info().name;
    job.variant = !label.empty() ? std::move(label)
        : variant == workloads::Variant::Dtt ? "dtt" : "baseline";
    job.config = config;
    job.program = w.build(variant, params);
    return job;
}

std::vector<sim::JobResult>
Harness::run(std::vector<sim::SimJob> jobs)
{
    std::vector<sim::JobResult> results = engine_.run(jobs);
    // Provenance is opt-in: without --provenance the worker label is
    // stripped so a distributed sweep's --json document stays
    // byte-identical to a local run's; with it, locally executed
    // jobs are labelled "local" so every v3 record carries the field.
    const bool provenance = opts_.has("provenance");
    for (sim::JobResult &jr : results) {
        if (!provenance)
            jr.worker.clear();
        else if (jr.worker.empty())
            jr.worker = "local";
    }
    for (const sim::JobResult &jr : results) {
        records_.push_back(jr);
        if (jr.deduplicated)
            continue;
        switch (jr.status) {
        case sim::JobStatus::Ok:
            break;
        case sim::JobStatus::Failed:
            ++invalidJobs_;
            warn("%s: job %s/%s ended with %s (cycles=%llu)%s%s; its "
                 "metrics are flagged and excluded from suite means",
                 spec_.binary.c_str(), jr.workload.c_str(),
                 jr.variant.c_str(),
                 haltReasonName(jr.result.haltReason),
                 static_cast<unsigned long long>(jr.result.cycles),
                 jr.result.haltDetail.empty() ? "" : ": ",
                 jr.result.haltDetail.c_str());
            break;
        case sim::JobStatus::Error:
            ++invalidJobs_;
            warn("%s: job %s/%s failed after %d attempt%s (%s: %s); "
                 "the rest of the batch completed and this job "
                 "renders as n/a",
                 spec_.binary.c_str(), jr.workload.c_str(),
                 jr.variant.c_str(), jr.attempts,
                 jr.attempts == 1 ? "" : "s", jr.error.kind.c_str(),
                 jr.error.message.c_str());
            break;
        case sim::JobStatus::Timeout:
            ++invalidJobs_;
            warn("%s: job %s/%s cancelled: %s; the rest of the batch "
                 "completed and this job renders as n/a",
                 spec_.binary.c_str(), jr.workload.c_str(),
                 jr.variant.c_str(), jr.error.message.c_str());
            break;
        }
    }
    return results;
}

std::vector<Pair>
Harness::runPairs(
    const std::vector<const workloads::Workload *> &subjects,
    const workloads::WorkloadParams &params)
{
    return runPairs(subjects, params, machineConfig(accel_));
}

std::vector<Pair>
Harness::runPairs(
    const std::vector<const workloads::Workload *> &subjects,
    const workloads::WorkloadParams &params,
    const sim::SimConfig &accel_config)
{
    // DTT and SP machines consume the trigger-annotated build (SP
    // treats triggering stores as slice tokens); reuse and none run
    // the plain build. Labels keep the historical "dtt" spelling for
    // the default machine so archived JSON diffs clean.
    const cpu::AccelKind kind = accel_config.accel;
    const workloads::Variant accel_variant =
        kind == cpu::AccelKind::Dtt || kind == cpu::AccelKind::Sp
        ? workloads::Variant::Dtt : workloads::Variant::Baseline;
    const std::string accel_label =
        kind == cpu::AccelKind::Dtt ? "" : cpu::accelKindName(kind);

    std::vector<sim::SimJob> jobs;
    jobs.reserve(subjects.size() * 2);
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(makeJob(*w, workloads::Variant::Baseline,
                               params,
                               machineConfig(cpu::AccelKind::None)));
        jobs.push_back(makeJob(*w, accel_variant, params,
                               accel_config, accel_label));
    }
    std::vector<sim::JobResult> results = run(std::move(jobs));
    std::vector<Pair> pairs(subjects.size());
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        pairs[i].base = results[2 * i].result;
        pairs[i].dtt = results[2 * i + 1].result;
    }
    return pairs;
}

int
Harness::finish()
{
    if (finished_)
        return invalidJobs_ ? 1 : 0;
    finished_ = true;

    if (!jsonPath_.empty()) {
        json::Value doc = json::Value::object();
        doc.set("schema_version",
                json::Value(std::uint64_t(sim::kResultsSchemaVersion)));
        doc.set("binary", json::Value(spec_.binary));
        doc.set("jobs", json::Value(std::uint64_t(engine_.threads())));
        json::Value records = json::Value::array();
        for (const sim::JobResult &jr : records_)
            records.push(sim::jobResultToJson(jr));
        doc.set("records", std::move(records));

        // Atomic tmp + rename: a reader (or a crash mid-write) sees
        // either the previous complete document or the new one,
        // never a torn file — the property resume relies on.
        const std::string tmp = jsonPath_ + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (!f) {
            std::fprintf(stderr,
                         "%s: error: cannot write --json file '%s'\n",
                         spec_.binary.c_str(), jsonPath_.c_str());
            return 2;
        }
        std::string text = doc.dump(2);
        text += '\n';
        bool ok =
            std::fwrite(text.data(), 1, text.size(), f) == text.size()
            && std::fflush(f) == 0;
        ok = (std::fclose(f) == 0) && ok;
        if (!ok || std::rename(tmp.c_str(), jsonPath_.c_str()) != 0) {
            std::remove(tmp.c_str());
            std::fprintf(stderr,
                         "%s: error: cannot write --json file '%s'\n",
                         spec_.binary.c_str(), jsonPath_.c_str());
            return 2;
        }
    }

    // Resilience summary (stderr, so tables stay clean): how much
    // work the cache saved and what the retry layer spent.
    if (store_ != nullptr || engine_.retries() > 0) {
        double wall = 0.0;
        for (const sim::JobResult &jr : records_)
            if (!jr.deduplicated && !jr.cached)
                wall += jr.wallSeconds;
        std::fprintf(
            stderr,
            "%s: %llu submitted, %llu executed, %llu cache hit(s), "
            "%llu retrie(s), %.2fs simulated wall time%s%s\n",
            spec_.binary.c_str(),
            static_cast<unsigned long long>(engine_.submitted()),
            static_cast<unsigned long long>(engine_.executed()),
            static_cast<unsigned long long>(engine_.cacheHits()),
            static_cast<unsigned long long>(engine_.retries()),
            wall, store_ != nullptr ? "; cache " : "",
            store_ != nullptr ? store_->dir().c_str() : "");
    }
    if (engine_.remoteExecuted() > 0 || engine_.workersLost() > 0
        || engine_.claimWaits() > 0
        || engine_.workersQuarantined() > 0
        || engine_.hedgedJobs() > 0
        || (store_ != nullptr && store_->staleClaimsTaken() > 0)) {
        std::fprintf(
            stderr,
            "%s: fabric: %llu executed remotely, %llu worker(s) "
            "lost, %llu claim wait(s), %llu stale claim(s) taken "
            "over, %llu worker(s) quarantined, %llu job(s) hedged "
            "(%llu duplicate(s) suppressed)\n",
            spec_.binary.c_str(),
            static_cast<unsigned long long>(engine_.remoteExecuted()),
            static_cast<unsigned long long>(engine_.workersLost()),
            static_cast<unsigned long long>(engine_.claimWaits()),
            static_cast<unsigned long long>(
                store_ != nullptr ? store_->staleClaimsTaken() : 0),
            static_cast<unsigned long long>(
                engine_.workersQuarantined()),
            static_cast<unsigned long long>(engine_.hedgedJobs()),
            static_cast<unsigned long long>(
                engine_.duplicatesSuppressed()));
    }

    if (invalidJobs_) {
        warn("%s: %d job(s) failed, timed out or never halted; see "
             "flags above", spec_.binary.c_str(), invalidJobs_);
        return 1;
    }
    return 0;
}

} // namespace dttsim::bench
