/**
 * @file
 * Table 2 — benchmark suite: the SPEC CPU2000 C analogues, the kernel
 * each reproduces, the trigger data, and per-benchmark dynamic sizes
 * (baseline instruction counts from a functional run).
 */

#include "harness.h"
#include "cpu/executor.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"tab2_benchmarks",
                      "Table 2: the benchmark suite (SPEC CPU2000 C "
                      "analogues) with functional instruction "
                      "counts"});
    workloads::WorkloadParams params = h.params();

    TextTable t("Table 2: benchmark suite (SPEC CPU2000 C analogues)");
    t.header({"bench", "SPEC", "trigger data", "trigs", "upd-rate",
              "iters", "base dyn insts"});
    for (const workloads::Workload *w : h.workloads()) {
        workloads::WorkloadInfo info = w->info();
        cpu::FunctionalRunner runner(
            w->build(workloads::Variant::Baseline, params));
        cpu::FuncRunResult r = runner.run();
        int iters = params.iterations > 0 ? params.iterations
                                          : info.defaultIterations;
        double rate = params.updateRate >= 0 ? params.updateRate
                                             : info.defaultUpdateRate;
        t.row({info.name, info.specAnalogue, info.triggerDesc,
               std::to_string(info.staticTriggers),
               TextTable::num(rate, 2), std::to_string(iters),
               TextTable::num(r.mainInstructions)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
    std::puts("Kernels:");
    for (const workloads::Workload *w : h.workloads()) {
        workloads::WorkloadInfo info = w->info();
        std::printf("  %-7s %s\n", info.name.c_str(),
                    info.kernelDesc.c_str());
    }
    return h.finish();
}
