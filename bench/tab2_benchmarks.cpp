/**
 * @file
 * Table 2 — benchmark suite: the SPEC CPU2000 C analogues, the kernel
 * each reproduces, the trigger data, and per-benchmark dynamic sizes
 * (baseline instruction counts from a functional run).
 */

#include "bench_util.h"
#include "cpu/executor.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Table 2: benchmark suite (SPEC CPU2000 C analogues)");
    t.header({"bench", "SPEC", "trigger data", "trigs", "upd-rate",
              "iters", "base dyn insts"});
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        workloads::WorkloadInfo info = w->info();
        cpu::FunctionalRunner runner(
            w->build(workloads::Variant::Baseline, params));
        cpu::FuncRunResult r = runner.run();
        int iters = params.iterations > 0 ? params.iterations
                                          : info.defaultIterations;
        double rate = params.updateRate >= 0 ? params.updateRate
                                             : info.defaultUpdateRate;
        t.row({info.name, info.specAnalogue, info.triggerDesc,
               std::to_string(info.staticTriggers),
               TextTable::num(rate, 2), std::to_string(iters),
               TextTable::num(r.mainInstructions)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
    std::puts("Kernels:");
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        workloads::WorkloadInfo info = w->info();
        std::printf("  %-7s %s\n", info.name.c_str(),
                    info.kernelDesc.c_str());
    }
    return 0;
}
