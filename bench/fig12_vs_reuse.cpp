/**
 * @file
 * Figure 12 — DTT vs hardware instruction reuse: the value-locality
 * comparison the paper draws against reuse/memoization hardware.
 * Instruction reuse can bypass the *execution* of a redundant
 * instruction (and its D-cache access), but the instruction still
 * flows through fetch, rename, issue and commit; data-triggered
 * threads eliminate the instructions altogether, so most of the
 * redundancy the reuse machine can only accelerate, DTT removes.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig12_vs_reuse",
                      "Figure 12: speedup over baseline — hardware "
                      "instruction reuse vs DTT"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    auto reuse_config = [](int entries) {
        sim::SimConfig cfg = bench::Harness::machineConfig(false);
        cfg.core.reuseBuffer = true;
        cfg.core.reuseEntriesPerPc = entries;
        return cfg;
    };

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params,
                                 bench::Harness::machineConfig(false)));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params, reuse_config(8), "reuse-8"));
        // "Ideal": effectively unbounded per-PC buffers.
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params, reuse_config(1 << 20),
                                 "reuse-ideal"));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Dtt, params,
                                 bench::Harness::machineConfig(true)));
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 12: speedup over baseline — HW instruction"
                " reuse vs DTT");
    t.header({"bench", "reuse-8", "ideal reuse", "ideal reused insts",
              "dtt"});
    std::vector<double> r8_s, rinf_s, dtt_s;
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const sim::SimResult &base = results[4 * i].result;
        const sim::SimResult &r8 = results[4 * i + 1].result;
        const sim::SimResult &rinf = results[4 * i + 2].result;
        const sim::SimResult &dtt = results[4 * i + 3].result;
        double s8 = bench::speedupOf(base, r8);
        double sinf = bench::speedupOf(base, rinf);
        double ds = bench::speedupOf(base, dtt);
        r8_s.push_back(s8);
        rinf_s.push_back(sinf);
        dtt_s.push_back(ds);
        t.row({subjects[i]->info().name, bench::speedupCell(s8),
               bench::speedupCell(sinf),
               TextTable::num(rinf.reusedInsts),
               bench::speedupCell(ds)});
    }
    t.row({"arith-mean", bench::speedupCell(bench::mean(r8_s)),
           bench::speedupCell(bench::mean(rinf_s)), "",
           bench::speedupCell(bench::mean(dtt_s))});
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nRealistic reuse buffers (8 entries/PC) capture almost"
              " none of the array-scale\nredundancy; even *unbounded*"
              " reuse only bypasses execution latency — the\nredundant"
              " instructions still consume fetch/issue/commit"
              " bandwidth, which is\nwhy eliminating them with DTTs"
              " wins.");
    return h.finish();
}
