/**
 * @file
 * Figure 12 — the redundancy-elimination head-to-head: data-triggered
 * threads vs speculative-precomputation helper threads vs a
 * computation-reuse machine, all three behind the pluggable
 * cpu::Accelerator interface on the same Table-1 core, over the full
 * workload suite and under each family's transparent fault sites.
 *
 * The mechanisms attack the same redundancy differently:
 *
 *  - DTT (--accel=dtt) runs the handler only when the trigger data
 *    actually changed (silent-store suppression) — redundant work is
 *    *eliminated*;
 *  - SP (--accel=sp) dispatches the precompute slice on *every*
 *    triggering store, changed or not — redundant work is *hidden*
 *    but still executed, and still consumes fetch/issue/commit
 *    bandwidth on a helper context;
 *  - reuse (--accel=reuse) bypasses execution of individually
 *    redundant instructions at fetch — but they still flow through
 *    the front end and commit, so the win is capped by execution
 *    latency alone.
 *
 * Each family is also swept under its own transparent fault sites
 * (DTT: deny-spawn/squash/spurious-coalesce; SP: deny-spawn/squash;
 * reuse: table flush), and every faulted run's archDigest must match
 * its family's fault-free run — divergence makes the binary exit
 * nonzero.
 */

#include "harness.h"

#include "common/log.h"

using namespace dttsim;

namespace {

struct Family
{
    cpu::AccelKind kind;
    workloads::Variant variant;
    std::uint32_t transparentMask;
    const char *name;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h(
        argc, argv,
        {"fig12_vs_reuse",
         "Figure 12: DTT vs speculative precomputation vs "
         "computation reuse, per-family fault matrix",
         true,
         {{"fault-seed", "N", "base seed of the fault plan "
                              "(default 7)"}}});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(h.options().getInt("fault-seed", 7));

    const std::vector<Family> families = {
        {cpu::AccelKind::Dtt, workloads::Variant::Dtt,
         sim::faultSiteBit(sim::FaultSite::DenySpawn)
             | sim::faultSiteBit(sim::FaultSite::SquashThread)
             | sim::faultSiteBit(sim::FaultSite::SpuriousCoalesce),
         "dtt"},
        {cpu::AccelKind::Sp, workloads::Variant::Dtt,
         sim::faultSiteBit(sim::FaultSite::DenySpawn)
             | sim::faultSiteBit(sim::FaultSite::SquashThread),
         "sp"},
        {cpu::AccelKind::Reuse, workloads::Variant::Baseline,
         sim::faultSiteBit(sim::FaultSite::FlushReuseTable),
         "reuse"},
    };
    const std::vector<double> rates = {0.0, 0.2, 0.5};

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(
            *w, workloads::Variant::Baseline, params,
            bench::Harness::machineConfig(cpu::AccelKind::None)));
        for (const Family &f : families) {
            for (double rate : rates) {
                sim::SimConfig cfg =
                    bench::Harness::machineConfig(f.kind);
                cfg.fault.seed = fault_seed;
                cfg.fault.rate = rate;
                cfg.fault.siteMask =
                    rate > 0.0 ? f.transparentMask : 0u;
                jobs.push_back(h.makeJob(
                    *w, f.variant, params, cfg,
                    rate > 0.0 ? strfmt("%s rate=%g", f.name, rate)
                               : std::string(f.name)));
            }
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    // Differential correctness, per family: transparent faults may
    // cost cycles but never change the architectural result, so every
    // faulted run must reproduce its family's fault-free archDigest.
    // (Families are compared within themselves, not across: DTT/SP
    // run the trigger-annotated program variant, reuse the plain
    // one.) Non-Ok jobs carry sanitized payloads and are already
    // flagged by the harness, so they are skipped here.
    const std::size_t stride = 1 + families.size() * rates.size();
    int diverged = 0;
    for (std::size_t wi = 0; wi < subjects.size(); ++wi) {
        for (std::size_t fi = 0; fi < families.size(); ++fi) {
            const std::size_t ref_idx =
                wi * stride + 1 + fi * rates.size();
            if (results[ref_idx].status != sim::JobStatus::Ok)
                continue;
            const std::uint64_t want =
                results[ref_idx].result.archDigest;
            for (std::size_t ri = 1; ri < rates.size(); ++ri) {
                const sim::JobResult &jr = results[ref_idx + ri];
                if (jr.status != sim::JobStatus::Ok)
                    continue;
                if (jr.result.archDigest != want) {
                    ++diverged;
                    std::fprintf(
                        stderr,
                        "DIVERGED: %s/%s archDigest %016llx != "
                        "fault-free %016llx\n",
                        jr.workload.c_str(), jr.variant.c_str(),
                        static_cast<unsigned long long>(
                            jr.result.archDigest),
                        static_cast<unsigned long long>(want));
                }
            }
        }
    }

    TextTable t("Figure 12: speedup over baseline — DTT vs "
                "speculative precomputation vs computation reuse");
    std::vector<std::string> head{"bench"};
    for (const Family &f : families)
        head.push_back(f.name);
    for (const Family &f : families)
        head.push_back(strfmt("%s@%g", f.name, rates.back()));
    head.push_back("reused insts");
    t.header(head);

    std::vector<std::vector<double>> clean_s(families.size());
    std::vector<std::vector<double>> fault_s(families.size());
    for (std::size_t wi = 0; wi < subjects.size(); ++wi) {
        const sim::SimResult &base = results[wi * stride].result;
        std::vector<std::string> cells{subjects[wi]->info().name};
        for (std::size_t fi = 0; fi < families.size(); ++fi) {
            const sim::SimResult &r =
                results[wi * stride + 1 + fi * rates.size()].result;
            double s = bench::speedupOf(base, r);
            clean_s[fi].push_back(s);
            cells.push_back(bench::speedupCell(s));
        }
        for (std::size_t fi = 0; fi < families.size(); ++fi) {
            const sim::SimResult &r =
                results[wi * stride + 1 + fi * rates.size()
                        + rates.size() - 1]
                    .result;
            double s = bench::speedupOf(base, r);
            fault_s[fi].push_back(s);
            cells.push_back(bench::speedupCell(s));
        }
        const sim::SimResult &reuse_r =
            results[wi * stride + 1 + 2 * rates.size()].result;
        cells.push_back(TextTable::num(reuse_r.reusedInsts));
        t.row(cells);
    }
    std::vector<std::string> foot{"geomean"};
    for (std::size_t fi = 0; fi < families.size(); ++fi)
        foot.push_back(bench::speedupCell(bench::geomean(clean_s[fi])));
    for (std::size_t fi = 0; fi < families.size(); ++fi)
        foot.push_back(bench::speedupCell(bench::geomean(fault_s[fi])));
    foot.push_back("");
    t.row(foot);
    std::fputs(t.render().c_str(), stdout);

    std::printf("\narchDigest check: %d divergence%s across %zu "
                "workloads x %zu families x %zu rates\n\n",
                diverged, diverged == 1 ? "" : "s", subjects.size(),
                families.size(), rates.size());
    std::puts(
        "Finding: the three mechanisms rank by how much of the "
        "redundant work they\nremove. Computation reuse bypasses "
        "execution latency only — the redundant\ninstructions still "
        "consume fetch/issue/commit bandwidth, so it barely moves.\n"
        "Speculative precomputation hides handler latency on a spare "
        "context but\nfires on every triggering store (no silent-"
        "store suppression), so it trails\nDTT wherever the update "
        "rate is low. DTT eliminates the redundant work\n"
        "outright, and all three degrade gracefully — never "
        "incorrectly, as the\narchDigest check proves — under their "
        "transparent fault sites.");

    int rc = h.finish();
    return diverged > 0 ? 1 : rc;
}
