/**
 * @file
 * Figure 12 — DTT vs hardware instruction reuse: the value-locality
 * comparison the paper draws against reuse/memoization hardware.
 * Instruction reuse can bypass the *execution* of a redundant
 * instruction (and its D-cache access), but the instruction still
 * flows through fetch, rename, issue and commit; data-triggered
 * threads eliminate the instructions altogether, so most of the
 * redundancy the reuse machine can only accelerate, DTT removes.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 12: speedup over baseline — HW instruction"
                " reuse vs DTT");
    t.header({"bench", "reuse-8", "ideal reuse", "ideal reused insts",
              "dtt"});
    std::vector<double> r8_s, rinf_s, dtt_s;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        isa::Program base_prog =
            w->build(workloads::Variant::Baseline, params);
        sim::SimResult base = sim::runProgram(
            bench::machineConfig(false), base_prog);

        auto run_reuse = [&](int entries, std::uint64_t *reused) {
            sim::SimConfig cfg = bench::machineConfig(false);
            cfg.core.reuseBuffer = true;
            cfg.core.reuseEntriesPerPc = entries;
            sim::Simulator s(cfg, base_prog);
            sim::SimResult r = s.run();
            if (reused)
                *reused = s.core().stats().get("reusedInsts");
            return static_cast<double>(base.cycles)
                / static_cast<double>(r.cycles);
        };
        double r8 = run_reuse(8, nullptr);
        std::uint64_t reused_inf = 0;
        // "Ideal": effectively unbounded per-PC buffers.
        double rinf = run_reuse(1 << 20, &reused_inf);

        sim::SimResult dtt = sim::runProgram(
            bench::machineConfig(true),
            w->build(workloads::Variant::Dtt, params));
        double ds = static_cast<double>(base.cycles)
            / static_cast<double>(dtt.cycles);

        r8_s.push_back(r8);
        rinf_s.push_back(rinf);
        dtt_s.push_back(ds);
        t.row({w->info().name, TextTable::num(r8, 2) + "x",
               TextTable::num(rinf, 2) + "x",
               TextTable::num(reused_inf),
               TextTable::num(ds, 2) + "x"});
    }
    t.row({"arith-mean", TextTable::num(bench::mean(r8_s), 2) + "x",
           TextTable::num(bench::mean(rinf_s), 2) + "x", "",
           TextTable::num(bench::mean(dtt_s), 2) + "x"});
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nRealistic reuse buffers (8 entries/PC) capture almost"
              " none of the array-scale\nredundancy; even *unbounded*"
              " reuse only bypasses execution latency — the\nredundant"
              " instructions still consume fetch/issue/commit"
              " bandwidth, which is\nwhy eliminating them with DTTs"
              " wins.");
    return 0;
}
