/**
 * @file
 * Figure 10 — dynamic-activity (energy) proxy: committed micro-ops
 * and weighted cache/memory accesses, DTT vs baseline. The paper's
 * energy argument is that eliminated computation is eliminated
 * dynamic energy; activity counts are the dominant term of such a
 * model (L1 access = 1 unit, L2 = 4, DRAM = 40).
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 10: dynamic-activity proxy (lower is better)");
    t.header({"bench", "uops base", "uops dtt", "mem-units base",
              "mem-units dtt", "activity reduction"});
    std::vector<double> reductions;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        bench::Pair pr = bench::runPair(*w, params);
        // Total activity: 1 unit per committed uop + memory units.
        std::uint64_t act_base =
            pr.base.totalCommitted + pr.base.activityUnits;
        std::uint64_t act_dtt =
            pr.dtt.totalCommitted + pr.dtt.activityUnits;
        double red = pct(act_base > act_dtt ? act_base - act_dtt : 0,
                         act_base);
        reductions.push_back(red);
        t.row({w->info().name, TextTable::num(pr.base.totalCommitted),
               TextTable::num(pr.dtt.totalCommitted),
               TextTable::num(pr.base.activityUnits),
               TextTable::num(pr.dtt.activityUnits),
               TextTable::pctCell(red)});
    }
    t.row({"average", "", "", "", "",
           TextTable::pctCell(bench::mean(reductions))});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
