/**
 * @file
 * Figure 10 — dynamic-activity (energy) proxy: committed micro-ops
 * and weighted cache/memory accesses, DTT vs baseline. The paper's
 * energy argument is that eliminated computation is eliminated
 * dynamic energy; activity counts are the dominant term of such a
 * model (L1 access = 1 unit, L2 = 4, DRAM = 40).
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig10_energy_proxy",
                      "Figure 10: dynamic-activity (energy) proxy, "
                      "DTT vs baseline"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    std::vector<bench::Pair> pairs = h.runPairs(subjects, params);

    TextTable t("Figure 10: dynamic-activity proxy (lower is better)");
    t.header({"bench", "uops base", "uops dtt", "mem-units base",
              "mem-units dtt", "activity reduction"});
    std::vector<double> reductions;
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const bench::Pair &pr = pairs[i];
        // Total activity: 1 unit per committed uop + memory units.
        std::uint64_t act_base =
            pr.base.totalCommitted + pr.base.activityUnits;
        std::uint64_t act_dtt =
            pr.dtt.totalCommitted + pr.dtt.activityUnits;
        double red = pct(act_base > act_dtt ? act_base - act_dtt : 0,
                         act_base);
        reductions.push_back(pr.valid() ? red : std::nan(""));
        t.row({subjects[i]->info().name,
               TextTable::num(pr.base.totalCommitted),
               TextTable::num(pr.dtt.totalCommitted),
               TextTable::num(pr.base.activityUnits),
               TextTable::num(pr.dtt.activityUnits),
               TextTable::pctCell(red)});
    }
    t.row({"average", "", "", "", "",
           TextTable::pctCell(bench::mean(reductions))});
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
