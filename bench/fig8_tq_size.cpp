/**
 * @file
 * Figure 8 — thread-queue sizing: DTT speedup as the queue shrinks,
 * under the Stall full-queue policy (the triggering store's commit
 * waits for space). gcc, with its high trigger rate, is where small
 * queues hurt; low-trigger benchmarks barely notice.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    const int sizes[] = {1, 2, 4, 8, 16};

    for (bool coalesce : {true, false}) {
        TextTable t(std::string("Figure 8")
                    + (coalesce ? "a" : "b")
                    + ": speedup vs thread-queue size (Stall policy,"
                    + " duplicate squash "
                    + (coalesce ? "ON)" : "OFF)"));
        t.header({"bench", "tq=1", "tq=2", "tq=4", "tq=8", "tq=16",
                  "stalls@1"});
        for (const workloads::Workload *w :
             bench::workloadsFromOptions(opts)) {
            sim::SimResult base = sim::runProgram(
                bench::machineConfig(false),
                w->build(workloads::Variant::Baseline, params));
            isa::Program dtt_prog =
                w->build(workloads::Variant::Dtt, params);
            std::vector<std::string> cells{w->info().name};
            std::uint64_t stalls_at_1 = 0;
            for (int size : sizes) {
                sim::SimConfig cfg = bench::machineConfig(true);
                cfg.dtt.threadQueueSize = size;
                cfg.dtt.coalesce = coalesce;
                sim::SimResult r = sim::runProgram(cfg, dtt_prog);
                if (size == 1)
                    stalls_at_1 = r.tstoreCommitStalls;
                cells.push_back(TextTable::num(
                    static_cast<double>(base.cycles)
                        / static_cast<double>(r.cycles), 2) + "x");
            }
            cells.push_back(TextTable::num(stalls_at_1));
            t.row(cells);
        }
        std::fputs(t.render().c_str(), stdout);
        std::puts("");
    }
    std::puts("Finding: thread-queue capacity is uncritical at "
              "SPEC-like trigger rates.\nEven a 1-entry queue costs "
              "<1% (stalls@1 column): the commit-stalled store\nsits "
              "in the ROB while the out-of-order core keeps running, "
              "and the spawn\nlogic drains the queue within a few "
              "cycles per entry. Duplicate squash\n(8a vs 8b) adds "
              "little here because an iteration's updates target\n"
              "distinct addresses; it matters when the same datum is "
              "rewritten in bursts.");
    return 0;
}
