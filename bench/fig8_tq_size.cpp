/**
 * @file
 * Figure 8 — thread-queue sizing: DTT speedup as the queue shrinks,
 * under the Stall full-queue policy (the triggering store's commit
 * waits for space). gcc, with its high trigger rate, is where small
 * queues hurt; low-trigger benchmarks barely notice.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig8_tq_size",
                      "Figure 8: DTT speedup vs thread-queue size "
                      "(Stall policy), duplicate squash on and off"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    const std::vector<int> sizes = {1, 2, 4, 8, 16};
    const bool coalesce_modes[] = {true, false};

    // One batch for the whole figure: the baseline job of each
    // workload is submitted once per coalesce mode and deduplicated
    // by the engine (it used to be re-simulated for 8a and again for
    // 8b).
    std::vector<sim::SimJob> jobs;
    for (bool coalesce : coalesce_modes) {
        for (const workloads::Workload *w : subjects) {
            jobs.push_back(h.makeJob(
                *w, workloads::Variant::Baseline, params,
                bench::Harness::machineConfig(false)));
            for (int size : sizes) {
                sim::SimConfig cfg =
                    bench::Harness::machineConfig(true);
                cfg.dtt.threadQueueSize = size;
                cfg.dtt.coalesce = coalesce;
                jobs.push_back(h.makeJob(
                    *w, workloads::Variant::Dtt, params, cfg,
                    std::string("dtt tq=") + std::to_string(size)
                        + (coalesce ? " squash" : " no-squash")));
            }
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    const std::size_t stride = 1 + sizes.size();
    std::size_t idx = 0;
    for (bool coalesce : coalesce_modes) {
        TextTable t(std::string("Figure 8")
                    + (coalesce ? "a" : "b")
                    + ": speedup vs thread-queue size (Stall policy,"
                    + " duplicate squash "
                    + (coalesce ? "ON)" : "OFF)"));
        t.header({"bench", "tq=1", "tq=2", "tq=4", "tq=8", "tq=16",
                  "stalls@1"});
        for (const workloads::Workload *w : subjects) {
            const sim::SimResult &base = results[idx].result;
            std::vector<std::string> cells{w->info().name};
            std::uint64_t stalls_at_1 = 0;
            for (std::size_t s = 0; s < sizes.size(); ++s) {
                const sim::SimResult &r = results[idx + 1 + s].result;
                if (sizes[s] == 1)
                    stalls_at_1 = r.tstoreCommitStalls;
                cells.push_back(
                    bench::speedupCell(bench::speedupOf(base, r)));
            }
            cells.push_back(TextTable::num(stalls_at_1));
            t.row(cells);
            idx += stride;
        }
        std::fputs(t.render().c_str(), stdout);
        std::puts("");
    }
    std::puts("Finding: thread-queue capacity is uncritical at "
              "SPEC-like trigger rates.\nEven a 1-entry queue costs "
              "<1% (stalls@1 column): the commit-stalled store\nsits "
              "in the ROB while the out-of-order core keeps running, "
              "and the spawn\nlogic drains the queue within a few "
              "cycles per entry. Duplicate squash\n(8a vs 8b) adds "
              "little here because an iteration's updates target\n"
              "distinct addresses; it matters when the same datum is "
              "rewritten in bursts.");
    return h.finish();
}
