/**
 * @file
 * Figure 9 — ablation: silent-store suppression on vs off. With
 * suppression off, every triggering store spawns its thread even when
 * the value did not change, so the redundant computation is merely
 * *moved* to spare contexts instead of eliminated. The gap between
 * the two bars is the contribution of redundancy elimination itself.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig9_ablation_silent",
                      "Figure 9: silent-store suppression ablation "
                      "(on vs off)"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    sim::SimConfig off_cfg = bench::Harness::machineConfig(true);
    off_cfg.dtt.silentSuppression = false;

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params,
                                 bench::Harness::machineConfig(false)));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Dtt, params,
                                 bench::Harness::machineConfig(true),
                                 "dtt suppress-on"));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Dtt, params,
                                 off_cfg, "dtt suppress-off"));
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 9: silent-store suppression ablation");
    t.header({"bench", "speedup (on)", "speedup (off)",
              "spawns (on)", "spawns (off)"});
    std::vector<double> on_s, off_s;
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const sim::SimResult &base = results[3 * i].result;
        const sim::SimResult &r_on = results[3 * i + 1].result;
        const sim::SimResult &r_off = results[3 * i + 2].result;
        double s_on = bench::speedupOf(base, r_on);
        double s_off = bench::speedupOf(base, r_off);
        on_s.push_back(s_on);
        off_s.push_back(s_off);
        t.row({subjects[i]->info().name, bench::speedupCell(s_on),
               bench::speedupCell(s_off),
               TextTable::num(r_on.dttSpawns),
               TextTable::num(r_off.dttSpawns)});
    }
    t.row({"arith-mean", bench::speedupCell(bench::mean(on_s)),
           bench::speedupCell(bench::mean(off_s)), "", ""});
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
