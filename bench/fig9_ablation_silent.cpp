/**
 * @file
 * Figure 9 — ablation: silent-store suppression on vs off. With
 * suppression off, every triggering store spawns its thread even when
 * the value did not change, so the redundant computation is merely
 * *moved* to spare contexts instead of eliminated. The gap between
 * the two bars is the contribution of redundancy elimination itself.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 9: silent-store suppression ablation");
    t.header({"bench", "speedup (on)", "speedup (off)",
              "spawns (on)", "spawns (off)"});
    std::vector<double> on_s, off_s;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        sim::SimResult base = sim::runProgram(
            bench::machineConfig(false),
            w->build(workloads::Variant::Baseline, params));
        isa::Program dtt_prog =
            w->build(workloads::Variant::Dtt, params);

        sim::SimConfig on = bench::machineConfig(true);
        sim::SimResult r_on = sim::runProgram(on, dtt_prog);

        sim::SimConfig off = bench::machineConfig(true);
        off.dtt.silentSuppression = false;
        sim::SimResult r_off = sim::runProgram(off, dtt_prog);

        double s_on = static_cast<double>(base.cycles)
            / static_cast<double>(r_on.cycles);
        double s_off = static_cast<double>(base.cycles)
            / static_cast<double>(r_off.cycles);
        on_s.push_back(s_on);
        off_s.push_back(s_off);
        t.row({w->info().name, TextTable::num(s_on, 2) + "x",
               TextTable::num(s_off, 2) + "x",
               TextTable::num(r_on.dttSpawns),
               TextTable::num(r_off.dttSpawns)});
    }
    t.row({"arith-mean", TextTable::num(bench::mean(on_s), 2) + "x",
           TextTable::num(bench::mean(off_s), 2) + "x", "", ""});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
