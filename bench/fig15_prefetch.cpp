/**
 * @file
 * Figure 15 — prefetching ablation: can a next-line prefetcher
 * recover what DTT recovers? Both machines get the prefetcher; it
 * hides some miss latency of the redundant scans, but the scans
 * still execute, so the DTT advantage persists nearly unchanged —
 * redundancy elimination and latency tolerance are orthogonal.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig15_prefetch",
                      "Figure 15: next-line prefetch ablation "
                      "(prefetcher on both machines)"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    auto config = [](bool dtt, bool pf) {
        sim::SimConfig cfg = bench::Harness::machineConfig(dtt);
        cfg.mem.nextLinePrefetch = pf;
        return cfg;
    };

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params, config(false, false),
                                 "baseline"));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params, config(false, true),
                                 "baseline pf"));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Dtt, params,
                                 config(true, false), "dtt"));
        jobs.push_back(h.makeJob(*w, workloads::Variant::Dtt, params,
                                 config(true, true), "dtt pf"));
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 15: next-line prefetch ablation");
    t.header({"bench", "base pf-gain", "dtt speedup (no pf)",
              "dtt speedup (pf both)"});
    std::vector<double> no_pf, with_pf;
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const sim::SimResult &base = results[4 * i].result;
        const sim::SimResult &base_pf = results[4 * i + 1].result;
        const sim::SimResult &dtt = results[4 * i + 2].result;
        const sim::SimResult &dtt_pf = results[4 * i + 3].result;
        double s0 = bench::speedupOf(base, dtt);
        double s1 = bench::speedupOf(base_pf, dtt_pf);
        no_pf.push_back(s0);
        with_pf.push_back(s1);
        t.row({subjects[i]->info().name,
               bench::speedupCell(bench::speedupOf(base, base_pf)),
               bench::speedupCell(s0), bench::speedupCell(s1)});
    }
    t.row({"arith-mean", "",
           bench::speedupCell(bench::mean(no_pf)),
           bench::speedupCell(bench::mean(with_pf))});
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
