/**
 * @file
 * Figure 15 — prefetching ablation: can a next-line prefetcher
 * recover what DTT recovers? Both machines get the prefetcher; it
 * hides some miss latency of the redundant scans, but the scans
 * still execute, so the DTT advantage persists nearly unchanged —
 * redundancy elimination and latency tolerance are orthogonal.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 15: next-line prefetch ablation");
    t.header({"bench", "base pf-gain", "dtt speedup (no pf)",
              "dtt speedup (pf both)"});
    std::vector<double> no_pf, with_pf;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        isa::Program base_prog =
            w->build(workloads::Variant::Baseline, params);
        isa::Program dtt_prog =
            w->build(workloads::Variant::Dtt, params);

        auto run = [&](bool dtt, bool pf) {
            sim::SimConfig cfg = bench::machineConfig(dtt);
            cfg.mem.nextLinePrefetch = pf;
            return sim::runProgram(cfg, dtt ? dtt_prog : base_prog)
                .cycles;
        };
        Cycle base = run(false, false);
        Cycle base_pf = run(false, true);
        Cycle dtt = run(true, false);
        Cycle dtt_pf = run(true, true);

        double s0 = static_cast<double>(base)
            / static_cast<double>(dtt);
        double s1 = static_cast<double>(base_pf)
            / static_cast<double>(dtt_pf);
        no_pf.push_back(s0);
        with_pf.push_back(s1);
        t.row({w->info().name,
               TextTable::num(static_cast<double>(base)
                                  / static_cast<double>(base_pf), 2)
                   + "x",
               TextTable::num(s0, 2) + "x",
               TextTable::num(s1, 2) + "x"});
    }
    t.row({"arith-mean", "",
           TextTable::num(bench::mean(no_pf), 2) + "x",
           TextTable::num(bench::mean(with_pf), 2) + "x"});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
