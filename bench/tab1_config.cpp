/**
 * @file
 * Table 1 — simulated machine configuration: the SMT out-of-order
 * core, memory hierarchy and DTT hardware parameters every other
 * experiment uses.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"tab1_config",
                      "Table 1: the simulated machine configuration "
                      "(no simulation is run)",
                      /*workload_flags=*/false});
    sim::SimConfig cfg = bench::Harness::machineConfig(true);

    TextTable t("Table 1: simulated machine configuration");
    t.header({"parameter", "value"});
    auto row = [&](const char *k, const std::string &v) {
        t.row({k, v});
    };
    const cpu::CoreConfig &c = cfg.core;
    row("hardware contexts (SMT)", std::to_string(c.numContexts));
    row("fetch width / threads per cycle",
        std::to_string(c.fetchWidth) + " insts / "
        + std::to_string(c.fetchThreads) + " threads (ICOUNT)");
    row("frontend depth", std::to_string(c.frontendDepth) + " cycles");
    row("dispatch / issue / commit width",
        std::to_string(c.dispatchWidth) + " / "
        + std::to_string(c.issueWidth) + " / "
        + std::to_string(c.commitWidth));
    row("ROB / IQ / LQ / SQ (shared)",
        std::to_string(c.robSize) + " / " + std::to_string(c.iqSize)
        + " / " + std::to_string(c.lqSize) + " / "
        + std::to_string(c.sqSize));
    row("per-context queue reservation",
        std::to_string(c.queueReservePerCtx) + " entries");
    row("int ALU / int mul-div / FP ALU / FP mul-div / mem ports",
        std::to_string(c.intAlu) + " / " + std::to_string(c.intMulDiv)
        + " / " + std::to_string(c.fpAlu) + " / "
        + std::to_string(c.fpMulDiv) + " / "
        + std::to_string(c.memPorts));
    row("branch predictor",
        "gshare " + std::to_string(c.bpred.historyBits)
        + "-bit history, " + std::to_string(c.bpred.btbEntries)
        + "-entry BTB, " + std::to_string(c.bpred.rasEntries)
        + "-entry RAS");
    row("mispredict redirect penalty",
        std::to_string(c.mispredictPenalty) + " cycles + refill");

    const mem::HierarchyConfig &m = cfg.mem;
    auto cache_str = [](const mem::CacheConfig &cc) {
        return std::to_string(cc.sizeBytes / 1024) + " KiB, "
            + std::to_string(cc.assoc) + "-way, "
            + std::to_string(cc.lineBytes) + "B lines, "
            + std::to_string(cc.hitLatency) + "-cycle hit";
    };
    row("L1 I-cache", cache_str(m.l1i));
    row("L1 D-cache", cache_str(m.l1d));
    row("unified L2", cache_str(m.l2));
    row("memory latency", std::to_string(m.memLatency) + " cycles");

    const dtt::DttConfig &d = cfg.dtt;
    row("thread registry entries", std::to_string(d.maxTriggers));
    row("thread queue entries", std::to_string(d.threadQueueSize));
    row("full thread-queue policy",
        d.fullPolicy == dtt::FullQueuePolicy::Stall ? "stall store"
                                                    : "drop + flag");
    row("silent-store suppression", d.silentSuppression ? "on" : "off");
    row("duplicate squash (coalescing)", d.coalesce ? "on" : "off");
    row("per-trigger serialization",
        d.serializePerTrigger ? "on" : "off");
    row("context spawn latency",
        std::to_string(d.spawnLatency) + " cycles");

    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
