/**
 * @file
 * Figure 6 — committed-instruction reduction: how much computation
 * the DTT transformation removes from the main thread, and how little
 * of it comes back as data-triggered thread work (the rest was
 * skipped outright thanks to silent-store suppression).
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 6: committed instructions, baseline vs DTT");
    t.header({"bench", "baseline", "dtt main", "dtt threads",
              "main reduction", "total reduction"});
    std::vector<double> main_red, total_red;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        bench::Pair pr = bench::runPair(*w, params);
        double mr = pct(pr.base.totalCommitted - pr.dtt.mainCommitted,
                        pr.base.totalCommitted);
        double tr = pct(pr.base.totalCommitted - pr.dtt.totalCommitted,
                        pr.base.totalCommitted);
        main_red.push_back(mr);
        total_red.push_back(tr);
        t.row({w->info().name, TextTable::num(pr.base.totalCommitted),
               TextTable::num(pr.dtt.mainCommitted),
               TextTable::num(pr.dtt.dttCommitted),
               TextTable::pctCell(mr), TextTable::pctCell(tr)});
    }
    t.row({"average", "", "", "",
           TextTable::pctCell(bench::mean(main_red)),
           TextTable::pctCell(bench::mean(total_red))});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
