/**
 * @file
 * Figure 6 — committed-instruction reduction: how much computation
 * the DTT transformation removes from the main thread, and how little
 * of it comes back as data-triggered thread work (the rest was
 * skipped outright thanks to silent-store suppression).
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig6_insn_reduction",
                      "Figure 6: committed-instruction reduction, "
                      "baseline vs DTT"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    std::vector<bench::Pair> pairs = h.runPairs(subjects, params);

    TextTable t("Figure 6: committed instructions, baseline vs DTT");
    t.header({"bench", "baseline", "dtt main", "dtt threads",
              "main reduction", "total reduction"});
    std::vector<double> main_red, total_red;
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const bench::Pair &pr = pairs[i];
        double mr = pct(pr.base.totalCommitted - pr.dtt.mainCommitted,
                        pr.base.totalCommitted);
        double tr = pct(pr.base.totalCommitted - pr.dtt.totalCommitted,
                        pr.base.totalCommitted);
        main_red.push_back(pr.valid() ? mr : std::nan(""));
        total_red.push_back(pr.valid() ? tr : std::nan(""));
        t.row({subjects[i]->info().name,
               TextTable::num(pr.base.totalCommitted),
               TextTable::num(pr.dtt.mainCommitted),
               TextTable::num(pr.dtt.dttCommitted),
               TextTable::pctCell(mr), TextTable::pctCell(tr)});
    }
    t.row({"average", "", "", "",
           TextTable::pctCell(bench::mean(main_red)),
           TextTable::pctCell(bench::mean(total_red))});
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
