/**
 * @file
 * Figure 5 — the paper's headline result: speedup of the DTT machine
 * running the DTT-transformed program over the baseline machine
 * running the original program, per benchmark.
 *
 * Paper anchors: speedups of up to 5.9X; suite average 46%.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    TextTable t("Figure 5: DTT speedup over baseline");
    t.header({"bench", "base cycles", "dtt cycles", "base IPC",
              "dtt IPC", "spawns", "speedup"});
    std::vector<double> speedups;
    double best = 0;
    std::string best_name;
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        bench::Pair pr = bench::runPair(*w, params);
        double s = pr.speedup();
        speedups.push_back(s);
        if (s > best) {
            best = s;
            best_name = w->info().name;
        }
        t.row({w->info().name, TextTable::num(pr.base.cycles),
               TextTable::num(pr.dtt.cycles),
               TextTable::num(pr.base.ipc, 2),
               TextTable::num(pr.dtt.ipc, 2),
               TextTable::num(pr.dtt.dttSpawns),
               TextTable::num(s, 2) + "x"});
    }
    t.row({"arith-mean", "", "", "", "", "",
           TextTable::num(bench::mean(speedups), 2) + "x"});
    t.row({"geo-mean", "", "", "", "", "",
           TextTable::num(bench::geomean(speedups), 2) + "x"});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper anchors: up to 5.9X, averaging 46%%\n"
                "measured: up to %.2fX (%s); average %.0f%% (arith) /"
                " %.0f%% (geo)\n",
                best, best_name.c_str(),
                (bench::mean(speedups) - 1.0) * 100.0,
                (bench::geomean(speedups) - 1.0) * 100.0);
    return 0;
}
