/**
 * @file
 * Figure 5 — the paper's headline result: speedup of the DTT machine
 * running the DTT-transformed program over the baseline machine
 * running the original program, per benchmark.
 *
 * Paper anchors: speedups of up to 5.9X; suite average 46%.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig5_speedup",
                      "Figure 5: speedup of the DTT machine over the "
                      "baseline machine, per benchmark"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    std::vector<bench::Pair> pairs = h.runPairs(subjects, params);

    TextTable t("Figure 5: DTT speedup over baseline");
    t.header({"bench", "base cycles", "dtt cycles", "base IPC",
              "dtt IPC", "spawns", "speedup"});
    std::vector<double> speedups;
    double best = 0;
    std::string best_name;
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const bench::Pair &pr = pairs[i];
        double s = pr.speedup();
        speedups.push_back(s);
        if (s > best) {
            best = s;
            best_name = subjects[i]->info().name;
        }
        t.row({subjects[i]->info().name,
               TextTable::num(pr.base.cycles),
               TextTable::num(pr.dtt.cycles),
               TextTable::num(pr.base.ipc, 2),
               TextTable::num(pr.dtt.ipc, 2),
               TextTable::num(pr.dtt.dttSpawns),
               bench::speedupCell(s)});
    }
    t.row({"arith-mean", "", "", "", "", "",
           bench::speedupCell(bench::mean(speedups))});
    t.row({"geo-mean", "", "", "", "", "",
           bench::speedupCell(bench::geomean(speedups))});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\npaper anchors: up to 5.9X, averaging 46%%\n"
                "measured: up to %.2fX (%s); average %.0f%% (arith) /"
                " %.0f%% (geo)\n",
                best, best_name.c_str(),
                (bench::mean(speedups) - 1.0) * 100.0,
                (bench::geomean(speedups) - 1.0) * 100.0);
    return h.finish();
}
