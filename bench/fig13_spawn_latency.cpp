/**
 * @file
 * Figure 13 — spawn-cost sensitivity: how expensive may initializing
 * a hardware context be before DTT's benefit erodes? The paper's
 * hardware spawns in a few cycles; software-assisted schemes (the
 * follow-on software-DTT work) pay hundreds. The sweep shows the
 * benefit is robust up to tens of cycles at SPEC-like trigger rates
 * and which benchmarks feel it first (high spawn counts: gcc).
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig13_spawn_latency",
                      "Figure 13: DTT speedup vs context spawn "
                      "latency"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    const std::vector<Cycle> latencies = {1, 4, 16, 64, 256};

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params,
                                 bench::Harness::machineConfig(false)));
        for (Cycle lat : latencies) {
            sim::SimConfig cfg = bench::Harness::machineConfig(true);
            cfg.dtt.spawnLatency = lat;
            jobs.push_back(h.makeJob(
                *w, workloads::Variant::Dtt, params, cfg,
                "dtt lat=" + std::to_string(lat)));
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 13: speedup vs context spawn latency");
    t.header({"bench", "lat=1", "lat=4", "lat=16", "lat=64",
              "lat=256"});
    const std::size_t stride = 1 + latencies.size();
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const sim::SimResult &base = results[i * stride].result;
        std::vector<std::string> cells{subjects[i]->info().name};
        for (std::size_t l = 0; l < latencies.size(); ++l)
            cells.push_back(bench::speedupCell(bench::speedupOf(
                base, results[i * stride + 1 + l].result)));
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
