/**
 * @file
 * Figure 13 — spawn-cost sensitivity: how expensive may initializing
 * a hardware context be before DTT's benefit erodes? The paper's
 * hardware spawns in a few cycles; software-assisted schemes (the
 * follow-on software-DTT work) pay hundreds. The sweep shows the
 * benefit is robust up to tens of cycles at SPEC-like trigger rates
 * and which benchmarks feel it first (high spawn counts: gcc).
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    const Cycle latencies[] = {1, 4, 16, 64, 256};

    TextTable t("Figure 13: speedup vs context spawn latency");
    t.header({"bench", "lat=1", "lat=4", "lat=16", "lat=64",
              "lat=256"});
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        sim::SimResult base = sim::runProgram(
            bench::machineConfig(false),
            w->build(workloads::Variant::Baseline, params));
        isa::Program dtt_prog =
            w->build(workloads::Variant::Dtt, params);
        std::vector<std::string> cells{w->info().name};
        for (Cycle lat : latencies) {
            sim::SimConfig cfg = bench::machineConfig(true);
            cfg.dtt.spawnLatency = lat;
            sim::SimResult r = sim::runProgram(cfg, dtt_prog);
            cells.push_back(TextTable::num(
                static_cast<double>(base.cycles)
                    / static_cast<double>(r.cycles), 2) + "x");
        }
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
