/**
 * @file
 * Engineering microbenchmarks (google-benchmark): simulator
 * throughput for the functional reference and the cycle-level core,
 * the cost of the DTT controller's hot operations, and the parallel
 * experiment engine's batch throughput with the result cache cold
 * and warm.
 *
 * Flag handling is split: `--benchmark_*` flags go to
 * google-benchmark, everything else goes through the shared
 * bench::Harness parser (so unknown flags are hard errors and
 * `--help` works like every other bench binary).
 *
 * `--bench-json=PATH` additionally writes a machine-readable
 * BENCH_sim.json performance summary (schema v1, docs/PERFORMANCE.md)
 * with one record per throughput benchmark: inst/s for the
 * functional, OoO-baseline and OoO-DTT simulators, and jobs/s for the
 * engine with a cold and a warm result cache at each worker count.
 * Rates in the summary are computed from the raw work counters over
 * wall-clock time (not google-benchmark's CPU-time rates), so the
 * multi-threaded engine rows measure what a sweep user experiences.
 * Validate with tools/check_bench_json.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/controller.h"
#include "cpu/executor.h"
#include "harness.h"
#include "mem/hierarchy.h"
#include "sim/engine.h"
#include "sim/resultstore.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace dttsim;

namespace {

isa::Program
mcfBaseline()
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    return workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, p);
}

void
BM_FunctionalRunner(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        cpu::FunctionalRunner runner(prog);
        cpu::FuncRunResult r = runner.run();
        insts += r.mainInstructions;
        benchmark::DoNotOptimize(r.halted);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["insts"] =
        benchmark::Counter(static_cast<double>(insts));
}
BENCHMARK(BM_FunctionalRunner)->Unit(benchmark::kMillisecond);

void
BM_OooCore(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.accel = cpu::AccelKind::None;
        sim::SimResult r = sim::runProgram(cfg, prog);
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["insts"] =
        benchmark::Counter(static_cast<double>(insts));
}
BENCHMARK(BM_OooCore)->Unit(benchmark::kMillisecond);

void
BM_OooCoreDtt(benchmark::State &state)
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    isa::Program prog = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, p);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimResult r = sim::runProgram(sim::SimConfig{}, prog);
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["insts"] =
        benchmark::Counter(static_cast<double>(insts));
}
BENCHMARK(BM_OooCoreDtt)->Unit(benchmark::kMillisecond);

/**
 * The cycle-level core with the shadow-memory redundancy profiler
 * attached to its commit stream (SimConfig::shadowProfile). The
 * delta vs BM_OooCore is the whole profiling overhead — the
 * acceptance bound is <= 3x (docs/SHADOW.md tracks the measured
 * ratio).
 */
void
BM_ShadowProfile(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.accel = cpu::AccelKind::None;
        cfg.shadowProfile = true;
        sim::Simulator simulator(cfg, prog);
        sim::SimResult r = simulator.run();
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(
            simulator.shadowReport().redundantLoads);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["insts"] =
        benchmark::Counter(static_cast<double>(insts));
}
BENCHMARK(BM_ShadowProfile)->Unit(benchmark::kMillisecond);

/** The shared engine batch: mcf baseline+DTT at 4 seeds (8 unique
 *  jobs — the seed is part of the digest, so nothing dedups). */
std::vector<sim::SimJob>
engineJobs()
{
    const workloads::Workload &mcf = workloads::findWorkload("mcf");
    std::vector<sim::SimJob> jobs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        workloads::WorkloadParams p;
        p.iterations = 2;
        p.seed = seed;
        for (auto variant : {workloads::Variant::Baseline,
                             workloads::Variant::Dtt}) {
            sim::SimJob job;
            job.workload = "mcf";
            job.variant =
                variant == workloads::Variant::Dtt ? "dtt"
                                                   : "baseline";
            job.config.accel =
                variant == workloads::Variant::Dtt
                    ? cpu::AccelKind::Dtt
                    : cpu::AccelKind::None;
            job.program = mcf.build(variant, p);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/**
 * Engine batch throughput vs worker count: the same 8-pair batch
 * (mcf baseline+DTT at 4 seeds) at 1..N threads. The speedup over
 * the 1-thread row is the harness-level parallelism every figure
 * binary now inherits.
 */
void
BM_EngineBatch(benchmark::State &state)
{
    std::vector<sim::SimJob> jobs = engineJobs();
    std::uint64_t sims = 0;
    for (auto _ : state) {
        sim::Engine engine(static_cast<int>(state.range(0)));
        auto results = engine.run(jobs);
        sims += results.size();
        benchmark::DoNotOptimize(results.front().result.cycles);
    }
    state.counters["sims/s"] = benchmark::Counter(
        static_cast<double>(sims), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/** A throwaway ResultStore directory, removed on destruction. */
struct ScratchDir
{
    std::string path;

    ScratchDir()
    {
        char tmpl[] = "/tmp/dttsim-bench-cache-XXXXXX";
        const char *d = mkdtemp(tmpl);
        path = d != nullptr ? d : "/tmp/dttsim-bench-cache";
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

/**
 * Engine batch with a cold persistent cache: every iteration clears
 * the store (outside the timed region), so all 8 jobs execute and
 * persist (append + group-committed fsync). This is the first run of
 * a sweep; the delta vs BM_EngineBatch is the durability overhead.
 */
void
BM_EngineColdCache(benchmark::State &state)
{
    std::vector<sim::SimJob> jobs = engineJobs();
    ScratchDir dir;
    sim::ResultStore store(dir.path,
                           sim::ResultStore::Mode::ReadWrite);
    std::uint64_t sims = 0;
    for (auto _ : state) {
        state.PauseTiming();
        store.clear();
        state.ResumeTiming();
        sim::EngineConfig cfg;
        cfg.numThreads = static_cast<int>(state.range(0));
        cfg.store = &store;
        sim::Engine engine(cfg);
        auto results = engine.run(jobs);
        sims += results.size();
        benchmark::DoNotOptimize(results.front().result.cycles);
    }
    state.counters["jobs/s"] = benchmark::Counter(
        static_cast<double>(sims), benchmark::Counter::kIsRate);
    state.counters["jobs"] =
        benchmark::Counter(static_cast<double>(sims));
}
BENCHMARK(BM_EngineColdCache)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/**
 * Engine batch with a warm persistent cache: the store is populated
 * once before timing, so every job warm-starts from a digest lookup
 * without simulating. This is every figure binary after the first in
 * a sweep — the case the parallel in-worker lookup path serves — and
 * should scale with the worker count.
 */
void
BM_EngineWarmCache(benchmark::State &state)
{
    std::vector<sim::SimJob> jobs = engineJobs();
    ScratchDir dir;
    sim::ResultStore store(dir.path,
                           sim::ResultStore::Mode::ReadWrite);
    {
        sim::EngineConfig cfg;
        cfg.store = &store;
        sim::Engine warmup(cfg);
        warmup.run(jobs);
    }
    std::uint64_t sims = 0;
    for (auto _ : state) {
        sim::EngineConfig cfg;
        cfg.numThreads = static_cast<int>(state.range(0));
        cfg.store = &store;
        sim::Engine engine(cfg);
        auto results = engine.run(jobs);
        sims += results.size();
        benchmark::DoNotOptimize(results.front().result.cycles);
    }
    state.counters["jobs/s"] = benchmark::Counter(
        static_cast<double>(sims), benchmark::Counter::kIsRate);
    state.counters["jobs"] =
        benchmark::Counter(static_cast<double>(sims));
}
BENCHMARK(BM_EngineWarmCache)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_ControllerTstore(benchmark::State &state)
{
    dtt::DttConfig cfg;
    dtt::DttController ctrl(cfg, 4);
    ctrl.onTregCommit(0, 100);
    std::uint64_t i = 0;
    for (auto _ : state) {
        // Alternate silent and fired-but-coalesced commits.
        ctrl.onTstoreCommit(0, 0x1000, i, (i & 1) != 0);
        benchmark::DoNotOptimize(ctrl.chk(0));
        ++i;
        if (ctrl.queue().size() > 0)
            ctrl.takeSpawn();
    }
}
BENCHMARK(BM_ControllerTstore);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Hierarchy h{mem::HierarchyConfig{}};
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.accessData(a, false));
        a = (a + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

/** One finished (non-aggregate) benchmark run, as captured for the
 *  --bench-json emitter. */
struct CapturedRun
{
    std::string name;       ///< e.g. "BM_EngineWarmCache/4"
    double realSeconds = 0; ///< wall-clock total across iterations
    std::uint64_t iterations = 0;
    std::map<std::string, double> counters;
};

/** ConsoleReporter that also records every iteration run, so the
 *  summary emitter works from the same numbers the console shows. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<CapturedRun> runs;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.run_type != Run::RT_Iteration
                || run.error_occurred)
                continue;
            CapturedRun c;
            c.name = run.benchmark_name();
            c.realSeconds = run.real_accumulated_time;
            c.iterations =
                static_cast<std::uint64_t>(run.iterations);
            for (const auto &[key, counter] : run.counters)
                c.counters[key] = counter.value;
            runs.push_back(std::move(c));
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

/** Keep in sync with tools/check_bench_json.cpp and the schema
 *  description in docs/PERFORMANCE.md. */
constexpr std::uint64_t kBenchSchemaVersion = 1;

/** Schema row derived from one captured google-benchmark run, keyed
 *  by the benchmark function's name. */
struct RowSpec
{
    const char *benchmark; ///< captured name up to the first '/'
    const char *name;      ///< schema name
    const char *metric;    ///< "inst_per_sec" or "jobs_per_sec"
    const char *work;      ///< raw-total counter to rate over time
    bool threaded;         ///< Arg() is a worker count
};

constexpr RowSpec kRows[] = {
    {"BM_FunctionalRunner", "functional", "inst_per_sec", "insts",
     false},
    {"BM_OooCore", "ooo_baseline", "inst_per_sec", "insts", false},
    {"BM_OooCoreDtt", "ooo_dtt", "inst_per_sec", "insts", false},
    {"BM_ShadowProfile", "ooo_shadow", "inst_per_sec", "insts",
     false},
    {"BM_EngineColdCache", "engine_cold", "jobs_per_sec", "jobs",
     true},
    {"BM_EngineWarmCache", "engine_warm", "jobs_per_sec", "jobs",
     true},
};

/** Write the BENCH_sim.json summary (atomic tmp + rename). */
bool
writeBenchJson(const std::string &path,
               const std::vector<CapturedRun> &runs)
{
    json::Value doc = json::Value::object();
    doc.set("schema_version", kBenchSchemaVersion);
    doc.set("binary", "micro_sim_throughput");
    json::Value records = json::Value::array();

    for (const CapturedRun &run : runs) {
        const std::string base =
            run.name.substr(0, run.name.find('/'));
        const RowSpec *row = nullptr;
        for (const RowSpec &r : kRows)
            if (base == r.benchmark)
                row = &r;
        if (row == nullptr)
            continue; // not part of the summary schema
        auto work = run.counters.find(row->work);
        if (work == run.counters.end() || run.realSeconds <= 0.0) {
            std::fprintf(stderr,
                         "bench-json: skipping %s (no %s counter or "
                         "zero elapsed time)\n",
                         run.name.c_str(), row->work);
            continue;
        }
        json::Value rec = json::Value::object();
        rec.set("name", row->name);
        if (row->threaded) {
            // "BM_EngineWarmCache/4" — the Arg() is the worker count.
            std::size_t slash = run.name.find('/');
            std::uint64_t threads =
                slash == std::string::npos
                    ? 1
                    : std::strtoull(run.name.c_str() + slash + 1,
                                    nullptr, 10);
            rec.set("threads", threads);
        }
        rec.set("metric", row->metric);
        rec.set("value", work->second / run.realSeconds);
        rec.set("seconds", run.realSeconds);
        rec.set("iterations", run.iterations);
        records.push(std::move(rec));
    }
    doc.set("benchmarks", std::move(records));

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench-json: cannot open %s\n",
                     tmp.c_str());
        return false;
    }
    const std::string text = doc.dump(2) + "\n";
    bool ok = std::fwrite(text.data(), 1, text.size(), f)
        == text.size();
    ok = std::fclose(f) == 0 && ok;
    ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::fprintf(stderr, "bench-json: failed to write %s\n",
                     path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    std::printf("bench-json: wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark owns --benchmark_* flags; the shared Harness
    // parser owns (and hard-errors on) everything else.
    std::vector<char *> gbench_args{argv[0]};
    std::vector<const char *> harness_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_", 0) == 0)
            gbench_args.push_back(argv[i]);
        else
            harness_args.push_back(argv[i]);
    }
    bench::Harness h(
        static_cast<int>(harness_args.size()), harness_args.data(),
        {"micro_sim_throughput",
         "Engineering microbenchmarks (google-benchmark); "
         "--benchmark_* flags pass through to the benchmark library",
         /*workload_flags=*/false,
         {{"bench-json", "PATH",
           "write a machine-readable BENCH_sim.json performance "
           "summary (schema v1, docs/PERFORMANCE.md) to PATH"}}});

    int gbench_argc = static_cast<int>(gbench_args.size());
    benchmark::Initialize(&gbench_argc, gbench_args.data());
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const std::string benchJson = h.options().get("bench-json");
    if (!benchJson.empty()
        && !writeBenchJson(benchJson, reporter.runs))
        return 1;
    return h.finish();
}
