/**
 * @file
 * Engineering microbenchmarks (google-benchmark): simulator
 * throughput for the functional reference and the cycle-level core,
 * plus the cost of the DTT controller's hot operations.
 */

#include <benchmark/benchmark.h>

#include "core/controller.h"
#include "cpu/executor.h"
#include "mem/hierarchy.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace dttsim;

namespace {

isa::Program
mcfBaseline()
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    return workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, p);
}

void
BM_FunctionalRunner(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        cpu::FunctionalRunner runner(prog);
        cpu::FuncRunResult r = runner.run();
        insts += r.mainInstructions;
        benchmark::DoNotOptimize(r.halted);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalRunner)->Unit(benchmark::kMillisecond);

void
BM_OooCore(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.enableDtt = false;
        sim::SimResult r = sim::runProgram(cfg, prog);
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooCore)->Unit(benchmark::kMillisecond);

void
BM_OooCoreDtt(benchmark::State &state)
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    isa::Program prog = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, p);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimResult r = sim::runProgram(sim::SimConfig{}, prog);
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooCoreDtt)->Unit(benchmark::kMillisecond);

void
BM_ControllerTstore(benchmark::State &state)
{
    dtt::DttConfig cfg;
    dtt::DttController ctrl(cfg, 4);
    ctrl.onTregCommit(0, 100);
    std::uint64_t i = 0;
    for (auto _ : state) {
        // Alternate silent and fired-but-coalesced commits.
        ctrl.onTstoreCommit(0, 0x1000, i, (i & 1) != 0);
        benchmark::DoNotOptimize(ctrl.chk(0));
        ++i;
        if (ctrl.queue().size() > 0)
            ctrl.takeSpawn();
    }
}
BENCHMARK(BM_ControllerTstore);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Hierarchy h{mem::HierarchyConfig{}};
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.accessData(a, false));
        a = (a + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

} // namespace

BENCHMARK_MAIN();
