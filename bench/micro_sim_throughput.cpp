/**
 * @file
 * Engineering microbenchmarks (google-benchmark): simulator
 * throughput for the functional reference and the cycle-level core,
 * the cost of the DTT controller's hot operations, and the parallel
 * experiment engine's batch throughput.
 *
 * Flag handling is split: `--benchmark_*` flags go to
 * google-benchmark, everything else goes through the shared
 * bench::Harness parser (so unknown flags are hard errors and
 * `--help` works like every other bench binary).
 */

#include <benchmark/benchmark.h>

#include "core/controller.h"
#include "cpu/executor.h"
#include "harness.h"
#include "mem/hierarchy.h"
#include "sim/engine.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace dttsim;

namespace {

isa::Program
mcfBaseline()
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    return workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, p);
}

void
BM_FunctionalRunner(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        cpu::FunctionalRunner runner(prog);
        cpu::FuncRunResult r = runner.run();
        insts += r.mainInstructions;
        benchmark::DoNotOptimize(r.halted);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalRunner)->Unit(benchmark::kMillisecond);

void
BM_OooCore(benchmark::State &state)
{
    isa::Program prog = mcfBaseline();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.enableDtt = false;
        sim::SimResult r = sim::runProgram(cfg, prog);
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooCore)->Unit(benchmark::kMillisecond);

void
BM_OooCoreDtt(benchmark::State &state)
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    isa::Program prog = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, p);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::SimResult r = sim::runProgram(sim::SimConfig{}, prog);
        insts += r.totalCommitted;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooCoreDtt)->Unit(benchmark::kMillisecond);

/**
 * Engine batch throughput vs worker count: the same 8-pair batch
 * (mcf baseline+DTT at 4 seeds) at 1..N threads. The speedup over
 * the 1-thread row is the harness-level parallelism every figure
 * binary now inherits.
 */
void
BM_EngineBatch(benchmark::State &state)
{
    const workloads::Workload &mcf = workloads::findWorkload("mcf");
    std::vector<sim::SimJob> jobs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        workloads::WorkloadParams p;
        p.iterations = 2;
        p.seed = seed;
        for (auto variant : {workloads::Variant::Baseline,
                             workloads::Variant::Dtt}) {
            sim::SimJob job;
            job.workload = "mcf";
            job.variant =
                variant == workloads::Variant::Dtt ? "dtt"
                                                   : "baseline";
            job.config.enableDtt =
                variant == workloads::Variant::Dtt;
            job.program = mcf.build(variant, p);
            jobs.push_back(std::move(job));
        }
    }
    std::uint64_t sims = 0;
    for (auto _ : state) {
        sim::Engine engine(static_cast<int>(state.range(0)));
        auto results = engine.run(jobs);
        sims += results.size();
        benchmark::DoNotOptimize(results.front().result.cycles);
    }
    state.counters["sims/s"] = benchmark::Counter(
        static_cast<double>(sims), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ControllerTstore(benchmark::State &state)
{
    dtt::DttConfig cfg;
    dtt::DttController ctrl(cfg, 4);
    ctrl.onTregCommit(0, 100);
    std::uint64_t i = 0;
    for (auto _ : state) {
        // Alternate silent and fired-but-coalesced commits.
        ctrl.onTstoreCommit(0, 0x1000, i, (i & 1) != 0);
        benchmark::DoNotOptimize(ctrl.chk(0));
        ++i;
        if (ctrl.queue().size() > 0)
            ctrl.takeSpawn();
    }
}
BENCHMARK(BM_ControllerTstore);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Hierarchy h{mem::HierarchyConfig{}};
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.accessData(a, false));
        a = (a + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark owns --benchmark_* flags; the shared Harness
    // parser owns (and hard-errors on) everything else.
    std::vector<char *> gbench_args{argv[0]};
    std::vector<const char *> harness_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_", 0) == 0)
            gbench_args.push_back(argv[i]);
        else
            harness_args.push_back(argv[i]);
    }
    bench::Harness h(
        static_cast<int>(harness_args.size()), harness_args.data(),
        {"micro_sim_throughput",
         "Engineering microbenchmarks (google-benchmark); "
         "--benchmark_* flags pass through to the benchmark library",
         /*workload_flags=*/false});

    int gbench_argc = static_cast<int>(gbench_args.size());
    benchmark::Initialize(&gbench_argc, gbench_args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return h.finish();
}
