/**
 * @file
 * Figure 16 — graceful degradation under fault injection: DTT speedup
 * as the injection rate at the *transparent* fault sites (deny-spawn,
 * squash-with-requeue, spurious-coalesce) rises, for each full-queue
 * degradation policy. Transparent faults delay or redo triggered
 * work but never lose it, so every DTT run must end with the same
 * architectural memory image (the archDigest column is checked across
 * all policy/rate variants of each workload); the speedup degrades
 * smoothly toward — never below — the baseline as faults eat the
 * DTT's latency advantage.
 *
 * The lossy sites (drop-firing, evict-pending) are deliberately not
 * swept here: the builder workloads do not use the TCHK software
 * fallback, so a lost firing would change the answer. That regime is
 * exercised by tests/test_faults.cpp on fallback-idiom programs.
 */

#include "harness.h"

#include "common/log.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(
        argc, argv,
        {"fig16_fault_degradation",
         "Figure 16: DTT speedup vs fault-injection rate per "
         "full-queue degradation policy (transparent sites)",
         true,
         {{"fault-seed", "N", "base seed of the fault plan "
                              "(default 7)"}}});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(h.options().getInt("fault-seed", 7));

    struct Policy
    {
        dtt::FullQueuePolicy policy;
        const char *name;
    };
    const std::vector<Policy> policies = {
        {dtt::FullQueuePolicy::Stall, "stall"},
        {dtt::FullQueuePolicy::StallBounded, "stall-bounded"},
        {dtt::FullQueuePolicy::Drop, "drop"},
        {dtt::FullQueuePolicy::DropOldest, "drop-oldest"},
    };
    const std::vector<double> rates = {0.0, 0.05, 0.2, 0.5, 0.8};

    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params,
                                 bench::Harness::machineConfig(false)));
        for (const Policy &p : policies) {
            for (double rate : rates) {
                sim::SimConfig cfg = bench::Harness::machineConfig(true);
                cfg.dtt.fullPolicy = p.policy;
                cfg.dtt.stallBound = 64;
                cfg.fault.seed = fault_seed;
                cfg.fault.rate = rate;
                cfg.fault.siteMask =
                    rate > 0.0 ? sim::kTransparentSites : 0u;
                jobs.push_back(h.makeJob(
                    *w, workloads::Variant::Dtt, params, cfg,
                    strfmt("dtt %s rate=%g", p.name, rate)));
            }
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    // Differential correctness across the whole sweep: every DTT run
    // of a workload must end with the memory image of that workload's
    // first DTT run (the baseline runs a different program variant
    // and is excluded).
    const std::size_t stride = 1 + policies.size() * rates.size();
    int diverged = 0;
    for (std::size_t wi = 0; wi < subjects.size(); ++wi) {
        const std::size_t base_idx = wi * stride;
        // Jobs that never produced a simulation (worker error,
        // deadline) carry a sanitized payload whose archDigest is
        // meaningless; the harness already flagged them and forces a
        // nonzero exit, so they are excluded here rather than
        // reported as false divergences.
        if (results[base_idx + 1].status != sim::JobStatus::Ok)
            continue;
        const std::uint64_t want =
            results[base_idx + 1].result.archDigest;
        for (std::size_t j = 2; j <= policies.size() * rates.size();
             ++j) {
            const sim::JobResult &jr = results[base_idx + j];
            if (jr.status != sim::JobStatus::Ok)
                continue;
            if (jr.result.archDigest != want) {
                ++diverged;
                std::fprintf(stderr,
                             "DIVERGED: %s/%s archDigest %016llx != "
                             "fault-free %016llx\n",
                             jr.workload.c_str(), jr.variant.c_str(),
                             static_cast<unsigned long long>(
                                 jr.result.archDigest),
                             static_cast<unsigned long long>(want));
            }
        }
    }

    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        TextTable t(strfmt("Figure 16.%zu: speedup vs fault rate "
                           "(policy %s, transparent sites)",
                           pi + 1, policies[pi].name));
        std::vector<std::string> head{"bench"};
        for (double rate : rates)
            head.push_back(strfmt("rate=%g", rate));
        t.header(head);
        std::vector<std::vector<double>> byRate(rates.size());
        for (std::size_t wi = 0; wi < subjects.size(); ++wi) {
            const sim::SimResult &base =
                results[wi * stride].result;
            std::vector<std::string> cells{subjects[wi]->info().name};
            for (std::size_t ri = 0; ri < rates.size(); ++ri) {
                const sim::SimResult &r =
                    results[wi * stride + 1 + pi * rates.size() + ri]
                        .result;
                double s = bench::speedupOf(base, r);
                byRate[ri].push_back(s);
                cells.push_back(bench::speedupCell(s));
            }
            t.row(cells);
        }
        std::vector<std::string> foot{"geomean"};
        for (std::size_t ri = 0; ri < rates.size(); ++ri)
            foot.push_back(bench::speedupCell(bench::geomean(byRate[ri])));
        t.row(foot);
        std::fputs(t.render().c_str(), stdout);
        std::puts("");
    }

    std::printf("archDigest check: %d divergence%s across %zu "
                "workloads x %zu policies x %zu rates\n\n",
                diverged, diverged == 1 ? "" : "s", subjects.size(),
                policies.size(), rates.size());
    std::puts(
        "Finding: transparent faults (denied spawns, squashed-and-"
        "requeued threads,\nforced coalesces) degrade the DTT "
        "speedup smoothly toward 1.0x but never\nbelow it — lost "
        "latency, never lost work, as the archDigest check proves.\n"
        "The full-queue policy rows barely differ because the 16-"
        "entry queue stays\nunsaturated at these trigger rates; the "
        "policy choice matters exactly at\nsaturation, where the "
        "Drop-class policies trade the Stall livelock hazard\nfor "
        "lost firings that only the TCHK software-fallback idiom "
        "recovers.");

    int rc = h.finish();
    return diverged > 0 ? 1 : rc;
}
