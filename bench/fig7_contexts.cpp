/**
 * @file
 * Figure 7 — sensitivity to the number of hardware contexts available
 * to data-triggered threads: 1 main context + 1/2/3/7 spare contexts.
 * Workloads stripe their trigger data across 4 trigger ids, so
 * speedup saturates once enough contexts cover the concurrent
 * triggers.
 */

#include "bench_util.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    workloads::WorkloadParams params = bench::paramsFromOptions(opts);

    const int dtt_ctxs[] = {1, 2, 3, 7};

    TextTable t("Figure 7: speedup vs spare SMT contexts for DTTs");
    t.header({"bench", "+1 ctx", "+2 ctx", "+3 ctx", "+7 ctx"});
    for (const workloads::Workload *w : bench::workloadsFromOptions(
             opts)) {
        sim::SimResult base = sim::runProgram(
            bench::machineConfig(false),
            w->build(workloads::Variant::Baseline, params));
        isa::Program dtt_prog =
            w->build(workloads::Variant::Dtt, params);
        std::vector<std::string> cells{w->info().name};
        for (int spare : dtt_ctxs) {
            sim::SimConfig cfg = bench::machineConfig(true);
            cfg.core.numContexts = 1 + spare;
            sim::SimResult r = sim::runProgram(cfg, dtt_prog);
            cells.push_back(TextTable::num(
                static_cast<double>(base.cycles)
                    / static_cast<double>(r.cycles), 2) + "x");
        }
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
