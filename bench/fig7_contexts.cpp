/**
 * @file
 * Figure 7 — sensitivity to the number of hardware contexts available
 * to data-triggered threads: 1 main context + 1/2/3/7 spare contexts.
 * Workloads stripe their trigger data across 4 trigger ids, so
 * speedup saturates once enough contexts cover the concurrent
 * triggers.
 */

#include "harness.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig7_contexts",
                      "Figure 7: DTT speedup vs spare SMT contexts"});
    workloads::WorkloadParams params = h.params();
    std::vector<const workloads::Workload *> subjects = h.workloads();

    const std::vector<int> dtt_ctxs = {1, 2, 3, 7};

    // Per workload: one baseline run plus one DTT run per context
    // count, all submitted as a single engine batch.
    std::vector<sim::SimJob> jobs;
    for (const workloads::Workload *w : subjects) {
        jobs.push_back(h.makeJob(*w, workloads::Variant::Baseline,
                                 params,
                                 bench::Harness::machineConfig(false)));
        for (int spare : dtt_ctxs) {
            sim::SimConfig cfg = bench::Harness::machineConfig(true);
            cfg.core.numContexts = 1 + spare;
            jobs.push_back(h.makeJob(
                *w, workloads::Variant::Dtt, params, cfg,
                "dtt +" + std::to_string(spare) + "ctx"));
        }
    }
    std::vector<sim::JobResult> results = h.run(std::move(jobs));

    TextTable t("Figure 7: speedup vs spare SMT contexts for DTTs");
    t.header({"bench", "+1 ctx", "+2 ctx", "+3 ctx", "+7 ctx"});
    const std::size_t stride = 1 + dtt_ctxs.size();
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const sim::SimResult &base = results[i * stride].result;
        std::vector<std::string> cells{subjects[i]->info().name};
        for (std::size_t c = 0; c < dtt_ctxs.size(); ++c)
            cells.push_back(bench::speedupCell(bench::speedupOf(
                base, results[i * stride + 1 + c].result)));
        t.row(cells);
    }
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
