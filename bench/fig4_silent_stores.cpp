/**
 * @file
 * Figure 4 — silent stores: fraction of stores that write the value
 * the location already holds. Silent stores are what the DTT
 * hardware's trigger-suppression exploits: a silent triggering store
 * fires no thread, eliminating the attached computation entirely.
 */

#include "harness.h"
#include "profile/redundancy.h"

using namespace dttsim;

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"fig4_silent_stores",
                      "Figure 4: fraction of stores that are silent "
                      "(functional profile of the baseline programs)"});
    workloads::WorkloadParams params = h.params();

    TextTable t("Figure 4: silent stores (baseline programs)");
    t.header({"bench", "stores", "silent", "silent %"});
    std::vector<double> pcts;
    for (const workloads::Workload *w : h.workloads()) {
        profile::RedundancyReport r = profile::profileRedundancy(
            w->build(workloads::Variant::Baseline, params));
        pcts.push_back(r.silentStorePct());
        t.row({w->info().name, TextTable::num(r.stores),
               TextTable::num(r.silentStores),
               TextTable::pctCell(r.silentStorePct())});
    }
    t.row({"average", "", "", TextTable::pctCell(bench::mean(pcts))});
    std::fputs(t.render().c_str(), stdout);
    return h.finish();
}
