#pragma once

/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries: the
 * default machine configuration (Table 1), paired baseline/DTT runs,
 * and common option handling (--iters, --seed, --workload, --scale).
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::bench {

/** The simulated machine of Table 1. */
inline sim::SimConfig
machineConfig(bool enable_dtt)
{
    sim::SimConfig cfg;
    cfg.enableDtt = enable_dtt;
    return cfg;  // defaults are the Table 1 machine
}

/** Workload parameters from common command-line options. */
inline workloads::WorkloadParams
paramsFromOptions(const Options &opts)
{
    workloads::WorkloadParams p;
    p.seed = static_cast<std::uint64_t>(opts.getInt("seed", 12345));
    p.iterations = static_cast<int>(opts.getInt("iters", -1));
    p.scale = static_cast<int>(opts.getInt("scale", 1));
    p.updateRate = opts.getDouble("update-rate", -1.0);
    return p;
}

/** Workload subset from --workload=name (default: all). */
inline std::vector<const workloads::Workload *>
workloadsFromOptions(const Options &opts)
{
    if (opts.has("workload"))
        return {&workloads::findWorkload(opts.get("workload"))};
    return workloads::allWorkloads();
}

/** Result of one baseline-vs-DTT comparison. */
struct Pair
{
    sim::SimResult base;
    sim::SimResult dtt;

    double
    speedup() const
    {
        return dtt.cycles == 0
            ? 0.0
            : static_cast<double>(base.cycles)
                / static_cast<double>(dtt.cycles);
    }
};

/** Run the baseline machine on the Baseline variant and the DTT
 *  machine on the DTT variant. */
inline Pair
runPair(const workloads::Workload &w,
        const workloads::WorkloadParams &params,
        sim::SimConfig dtt_cfg = machineConfig(true))
{
    Pair pr;
    pr.base = sim::runProgram(
        machineConfig(false),
        w.build(workloads::Variant::Baseline, params));
    pr.dtt = sim::runProgram(
        dtt_cfg, w.build(workloads::Variant::Dtt, params));
    return pr;
}

/**
 * Append an infinite co-running thread to @p prog and return its
 * entry PC. Used with OooCore::startCoRunner to occupy SMT contexts
 * with foreign work. The co-runner is a memory-bound pointer walk
 * over a 4 MiB region (mostly cache misses) — a realistic neighbour
 * whose in-flight loads keep its ICOUNT high, so it shares fetch the
 * way real co-scheduled programs do (a cache-resident spin loop
 * would pathologically hog the ICOUNT fetch slots instead).
 */
inline std::uint64_t
appendCoRunner(isa::Program &prog, int id)
{
    constexpr std::int64_t kStride = 4096;
    constexpr std::int64_t kEntries = 1024;
    Addr base = prog.allocData(
        "corunner" + std::to_string(id),
        static_cast<std::uint64_t>(kStride * kEntries));
    auto emit = [&](isa::Opcode op, int rd, int rs1, int rs2,
                    std::int64_t imm) {
        isa::Inst inst;
        inst.op = op;
        inst.rd = static_cast<std::uint8_t>(rd);
        inst.rs1 = static_cast<std::uint8_t>(rs1);
        inst.rs2 = static_cast<std::uint8_t>(rs2);
        inst.imm = imm;
        return prog.append(inst);
    };
    using isa::Opcode;
    std::uint64_t entry =
        emit(Opcode::LI, 5, 0, 0, static_cast<std::int64_t>(base));
    emit(Opcode::LI, 8, 0, 0, 0);
    std::uint64_t loop =
        emit(Opcode::LD, 6, 5, 0, 0);
    emit(Opcode::ADD, 7, 7, 6, 0);
    emit(Opcode::ADDI, 5, 5, 0, kStride);
    emit(Opcode::ADDI, 8, 8, 0, 1);
    emit(Opcode::ANDI, 9, 8, 0, kEntries - 1);
    emit(Opcode::BNE, 0, 9, 0,
         static_cast<std::int64_t>(loop));  // rs1=x9 rs2=x0
    emit(Opcode::LI, 5, 0, 0, static_cast<std::int64_t>(base));
    emit(Opcode::JAL, 0, 0, 0, static_cast<std::int64_t>(loop));
    return entry;
}

/** Geometric mean helper (the paper-style suite average uses the
 *  arithmetic mean of speedups; both are reported). */
inline double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : vals)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(vals.size()));
}

inline double
mean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double s = 0;
    for (double v : vals)
        s += v;
    return s / static_cast<double>(vals.size());
}

} // namespace dttsim::bench
