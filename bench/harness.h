#pragma once

/**
 * @file
 * The redesigned bench harness API. Every figure/table binary is a
 * thin `main()` on top of `bench::Harness`, which owns
 *
 *  - option parsing with a declared flag set: unknown flags are hard
 *    errors (the dttlint policy) and `--help` lists every supported
 *    flag;
 *  - the Table-1 machine configuration;
 *  - a supervised `sim::Engine` sized by `--jobs N` (default: all
 *    hardware threads), so every figure runs its experiment batch in
 *    parallel with within-batch dedup of identical jobs, crash-
 *    isolated failures (`--retries`, `--job-deadline`) and an
 *    optional persistent result cache (`--cache {off,ro,rw}`,
 *    `--cache-dir`, `--resume MANIFEST`) for cross-binary warm
 *    starts and kill/resume sweeps;
 *  - the `--json <path>` structured-results emitter: one
 *    schema-versioned record per executed job (docs/HARNESS.md),
 *    written atomically (tmp + rename) and fully deterministic, so
 *    a resumed sweep merges to byte-identical output.
 *
 * Pattern:
 *
 *     int main(int argc, char **argv) {
 *         bench::Harness h(argc, argv,
 *                          {"fig5_speedup", "Figure 5: ..."});
 *         auto pairs = h.runPairs(h.workloads(), h.params());
 *         ... render table ...
 *         return h.finish();
 *     }
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/table.h"
#include "isa/program.h"
#include "sim/engine.h"
#include "sim/resultstore.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::bench {

/** One binary-specific flag, for --help and unknown-flag checking. */
struct FlagSpec
{
    std::string name;       ///< without the leading "--"
    std::string valueHint;  ///< e.g. "N"; empty for boolean flags
    std::string help;
};

/** Static description of a bench binary. */
struct HarnessSpec
{
    HarnessSpec(std::string binary_, std::string description_,
                bool workload_flags = true,
                std::vector<FlagSpec> extra_ = {})
        : binary(std::move(binary_)),
          description(std::move(description_)),
          workloadFlags(workload_flags), extra(std::move(extra_))
    {
    }

    std::string binary;
    std::string description;
    /** Accept the workload-selection/parameter flags (--workload,
     *  --seed, --iters, --scale, --update-rate). Off for binaries
     *  that do not build workloads (tab1_config). */
    bool workloadFlags;
    /** Binary-specific flags beyond the common set. */
    std::vector<FlagSpec> extra;
};

/** Result of one baseline-vs-DTT comparison. */
struct Pair
{
    sim::SimResult base;
    sim::SimResult dtt;

    /** Both runs halted within the cycle budget and made progress.
     *  Invalid pairs must not enter suite means. */
    bool
    valid() const
    {
        return base.halted && dtt.halted && !base.hitMaxCycles
            && !dtt.hitMaxCycles && base.cycles > 0 && dtt.cycles > 0;
    }

    /** Baseline-over-DTT cycle ratio; quiet NaN when either run is
     *  invalid, which mean()/geomean() skip and tables flag. */
    double
    speedup() const
    {
        return valid() ? static_cast<double>(base.cycles)
                             / static_cast<double>(dtt.cycles)
                       : std::nan("");
    }
};

/** Cycle ratio of two runs; NaN when either is invalid. */
double speedupOf(const sim::SimResult &base, const sim::SimResult &r);

/** "1.46x", or "n/a" for the NaN of an invalid run. */
std::string speedupCell(double speedup);

/** Arithmetic mean over the finite entries of @p vals (invalid runs
 *  contribute NaN and are skipped); 0 when none are finite. */
double mean(const std::vector<double> &vals);

/** Geometric mean over the finite entries of @p vals. */
double geomean(const std::vector<double> &vals);

/**
 * Append an infinite co-running thread to @p prog and return its
 * entry PC (submitted via SimJob::coRunnerEntries). The co-runner is
 * a memory-bound pointer walk over a 4 MiB region (mostly cache
 * misses) — a realistic neighbour whose in-flight loads keep its
 * ICOUNT high, so it shares fetch the way real co-scheduled programs
 * do (a cache-resident spin loop would pathologically hog the ICOUNT
 * fetch slots instead).
 */
std::uint64_t appendCoRunner(isa::Program &prog, int id);

/** The redesigned harness every bench binary runs through. */
class Harness
{
  public:
    /**
     * Parses argv against the declared flag set. `--help` prints the
     * flag listing and exits(0); an unknown flag is a hard error
     * (FatalError) naming the supported flags.
     */
    Harness(int argc, const char *const *argv, HarnessSpec spec);

    /** finish() runs late (idempotently) even on early return. */
    ~Harness();

    const Options &options() const { return opts_; }

    /** Workload parameters from --seed/--iters/--scale/--update-rate. */
    workloads::WorkloadParams params() const;

    /** Workload subset from --workload=name (default: all). */
    std::vector<const workloads::Workload *> workloads() const;

    /** Worker threads (--jobs, default 0 = hardware concurrency). */
    int jobs() const { return engine_.threads(); }

    /** Accelerator selected by --accel={none,dtt,sp,reuse} for the
     *  accelerated leg of comparisons (default: dtt, the paper's
     *  machine). An unknown value exits 2 at parse time. */
    cpu::AccelKind accel() const { return accel_; }

    sim::Engine &engine() { return engine_; }

    /** The persistent result cache (--cache/--cache-dir/--resume);
     *  nullptr when caching is off. */
    const sim::ResultStore *store() const { return store_.get(); }

    /** The simulated machine of Table 1, carrying @p kind as its
     *  accelerator. */
    static sim::SimConfig machineConfig(cpu::AccelKind kind);

    /** @deprecated Pre-accelerator-interface spelling; forwards to
     *  machineConfig(Dtt/None). New code names the AccelKind. */
    static sim::SimConfig machineConfig(bool enable_dtt);

    /** Build a job for @p w's @p variant under @p config. The variant
     *  label defaults to "baseline"/"dtt"; pass @p label to tag swept
     *  configs (e.g. "dtt tq=4"). */
    sim::SimJob makeJob(const workloads::Workload &w,
                        workloads::Variant variant,
                        const workloads::WorkloadParams &params,
                        sim::SimConfig config,
                        std::string label = "") const;

    /**
     * Run a batch through the engine. Results come back in
     * submission order; every record is retained for the --json
     * emitter, and any job that did not end JobStatus::Ok (threw,
     * timed out, never halted) is counted and flagged by finish() —
     * the batch itself always completes.
     */
    std::vector<sim::JobResult> run(std::vector<sim::SimJob> jobs);

    /** Baseline-vs-accelerated pairs for @p subjects, one engine
     *  batch. The accelerated leg is the --accel machine (default:
     *  the paper's DTT machine). */
    std::vector<Pair>
    runPairs(const std::vector<const workloads::Workload *> &subjects,
             const workloads::WorkloadParams &params);

    /** Same, with a custom accelerated-machine config; its
     *  config.accel picks the program variant (DTT/SP run the
     *  trigger-annotated build, reuse/none run the plain build) and
     *  the default record label. */
    std::vector<Pair>
    runPairs(const std::vector<const workloads::Workload *> &subjects,
             const workloads::WorkloadParams &params,
             const sim::SimConfig &accel_config);

    /**
     * Emit the --json results file (if requested), report invalid
     * jobs on stderr, and return the process exit code. Idempotent;
     * called by the destructor as a safety net.
     */
    int finish();

  private:
    HarnessSpec spec_;
    Options opts_;
    /** Declared before engine_: the engine holds a raw pointer. */
    std::unique_ptr<sim::ResultStore> store_;
    sim::Engine engine_;
    std::string jsonPath_;
    cpu::AccelKind accel_ = cpu::AccelKind::Dtt;
    std::vector<sim::JobResult> records_;
    int invalidJobs_ = 0;
    bool finished_ = false;
};

} // namespace dttsim::bench
