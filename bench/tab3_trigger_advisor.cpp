/**
 * @file
 * Table 3 — trigger advisor output: the compiler-support pass. Two
 * rankings per workload's *baseline* program:
 *
 *  (a) trigger-data candidates — stores whose data is mostly
 *      rewritten silently yet heavily re-read afterwards: the stores
 *      to convert into triggering stores (mcf: the arc-cost updates);
 *  (b) redundant-computation sites — high-volume stores that mostly
 *      rewrite unchanged values: the *output* of redundant
 *      computation a DTT handler should absorb (mcf: the potential[]
 *      writes of refresh_potential).
 *
 * The top entries match what the hand-written DTT variants
 * instrument, supporting the paper's claim that profile guidance can
 * place triggers automatically.
 */

#include "harness.h"
#include "isa/disasm.h"
#include "profile/advisor.h"

using namespace dttsim;

namespace {

void
printRanking(bench::Harness &h,
             const workloads::WorkloadParams &params,
             profile::AdvisorRanking ranking, const char *title)
{
    TextTable t(title);
    t.header({"bench", "rank", "pc", "instruction", "execs",
              "silent %", "reads/store"});
    auto top_k =
        static_cast<std::size_t>(h.options().getInt("top", 3));
    for (const workloads::Workload *w : h.workloads()) {
        isa::Program prog =
            w->build(workloads::Variant::Baseline, params);
        auto candidates = profile::adviseTriggers(prog, top_k,
                                                  ranking);
        int rank = 1;
        for (const auto &c : candidates) {
            t.row({rank == 1 ? w->info().name : "",
                   std::to_string(rank), std::to_string(c.storePc),
                   isa::disassemble(prog.at(c.storePc)),
                   TextTable::num(c.executions),
                   TextTable::pctCell(c.silentPct),
                   TextTable::num(c.meanReadsPerStore, 1)});
            ++rank;
        }
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv,
                     {"tab3_trigger_advisor",
                      "Table 3: profile-guided trigger-placement "
                      "rankings over the baseline programs",
                      /*workload_flags=*/true,
                      {{"top", "N",
                        "candidates listed per workload (default 3)"}}});
    workloads::WorkloadParams params = h.params();

    printRanking(h, params, profile::AdvisorRanking::TriggerData,
                 "Table 3a: trigger-data candidates (convert these"
                 " stores to tstores)");
    printRanking(h, params,
                 profile::AdvisorRanking::RedundantComputation,
                 "Table 3b: redundant-computation sites (absorb into"
                 " DTT handlers)");
    return h.finish();
}
