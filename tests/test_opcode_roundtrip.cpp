/**
 * @file
 * Exhaustive opcode round-trip (parameterized over the whole opcode
 * table): build a representative instruction for every opcode,
 * disassemble it, reassemble the text, and compare the decoded
 * fields. Guards the opcode table / assembler / disassembler triple
 * against drift when opcodes are added.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/opcodes.h"

namespace dttsim::isa {
namespace {

/** A representative instruction for @p op (registers/imms chosen to
 *  exercise each field; branch targets point at instruction 0). */
Inst
representative(Opcode op)
{
    Inst i;
    i.op = op;
    switch (opInfo(op).format) {
      case Format::R:
      case Format::FR:
      case Format::FCmp:
        i.rd = 1;
        i.rs1 = 2;
        i.rs2 = 3;
        break;
      case Format::FR1:
      case Format::FCvtFI:
      case Format::FCvtIF:
        i.rd = 4;
        i.rs1 = 5;
        break;
      case Format::I:
      case Format::JumpR:
        i.rd = 6;
        i.rs1 = 7;
        i.imm = -42;
        break;
      case Format::LI:
        i.rd = 8;
        i.imm = 0x123456789ll;
        break;
      case Format::FLI:
        i.rd = 9;
        i.fimm = -2.5;
        break;
      case Format::Load:
        i.rd = 10;
        i.rs1 = 11;
        i.imm = 16;
        break;
      case Format::Store:
        i.rs2 = 12;
        i.rs1 = 13;
        i.imm = -8;
        break;
      case Format::TStore:
        i.rs2 = 14;
        i.rs1 = 15;
        i.imm = 24;
        i.trig = 3;
        break;
      case Format::Branch:
        i.rs1 = 16;
        i.rs2 = 17;
        i.imm = 0;
        break;
      case Format::Jump:
        i.rd = 1;
        i.imm = 0;
        break;
      case Format::TReg:
        i.trig = 2;
        i.imm = 0;
        break;
      case Format::Trig:
        i.trig = 1;
        break;
      case Format::TChk:
        i.rd = 18;
        i.trig = 4;
        break;
      case Format::None:
        break;
    }
    return i;
}

class OpcodeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(OpcodeRoundTrip, DisasmReassemblesIdentically)
{
    auto op = static_cast<Opcode>(GetParam());
    Inst want = representative(op);
    std::string text = disassemble(want);

    // TRET must not appear as the first (entry) instruction of a
    // runnable program, but assembly-wise any single line is valid.
    Program p = assemble(text + "\n");
    ASSERT_EQ(p.size(), 1u) << text;
    const Inst &got = p.at(0);
    EXPECT_EQ(got.op, want.op) << text;
    EXPECT_EQ(got.rd, want.rd) << text;
    EXPECT_EQ(got.rs1, want.rs1) << text;
    EXPECT_EQ(got.rs2, want.rs2) << text;
    EXPECT_EQ(got.imm, want.imm) << text;
    EXPECT_EQ(got.trig, want.trig) << text;
    EXPECT_EQ(got.fimm, want.fimm) << text;
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            mnemonic(static_cast<Opcode>(info.param)));
    });

} // namespace
} // namespace dttsim::isa
