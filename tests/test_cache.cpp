/**
 * @file
 * Cache and hierarchy tests: hit/miss behaviour, LRU replacement,
 * dirty-victim writebacks, geometry validation, latency composition
 * through the hierarchy, and a parameterized invariant sweep over
 * geometries (property-style).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/rng.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"

namespace dttsim::mem {
namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.name = "t";
    c.sizeBytes = 4 * 64;  // 4 lines
    c.assoc = 2;           // 2 sets x 2 ways
    c.lineBytes = 64;
    c.hitLatency = 2;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x140, false).hit);  // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Set 0 holds lines whose (addr/64) is even. Three distinct lines
    // mapping to set 0 with assoc 2 -> the first gets evicted.
    c.access(0 * 64, false);   // A
    c.access(4 * 64, false);   // B (set 0 again: 2 sets)
    c.access(0 * 64, false);   // touch A -> B becomes LRU
    c.access(8 * 64, false);   // C evicts B
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(4 * 64));
    EXPECT_TRUE(c.contains(8 * 64));
}

TEST(Cache, DirtyVictimWritesBack)
{
    Cache c(smallCache());
    c.access(0 * 64, true);    // dirty A in set 0
    c.access(4 * 64, false);   // clean B
    CacheAccess r = c.access(8 * 64, false);  // evicts A (LRU, dirty)
    EXPECT_TRUE(r.writebackVictim);
    EXPECT_EQ(c.stats().get("writebacks"), 1u);
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache c(smallCache());
    c.access(0, false);
    c.access(0, true);         // hit, marks dirty
    c.access(4 * 64, false);
    CacheAccess r = c.access(8 * 64, false);
    EXPECT_TRUE(r.writebackVictim);
}

TEST(Cache, FlushInvalidates)
{
    Cache c(smallCache());
    c.access(0, false);
    EXPECT_TRUE(c.contains(0));
    c.flush();
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, GeometryValidation)
{
    CacheConfig c = smallCache();
    c.lineBytes = 48;  // not a power of two
    EXPECT_THROW(Cache bad(c), FatalError);
    c = smallCache();
    c.assoc = 0;
    EXPECT_THROW(Cache bad(c), FatalError);
    c = smallCache();
    c.assoc = 3;  // lines(4) % assoc != 0
    EXPECT_THROW(Cache bad(c), FatalError);
}

// ----- parameterized invariant sweep --------------------------------

struct Geometry
{
    std::uint64_t size;
    std::uint32_t assoc;
    std::uint32_t line;
};

class CacheSweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheSweep, InvariantsHoldUnderRandomStream)
{
    Geometry g = GetParam();
    CacheConfig cfg;
    cfg.name = "sweep";
    cfg.sizeBytes = g.size;
    cfg.assoc = g.assoc;
    cfg.lineBytes = g.line;
    Cache c(cfg);

    Rng rng(g.size * 31 + g.assoc * 7 + g.line);
    std::uint64_t hits = 0, misses = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr a = rng.below(64 * 1024);
        bool wr = rng.chance(0.3);
        CacheAccess r = c.access(a, wr);
        (r.hit ? hits : misses) += 1;
        // A line just accessed must be resident.
        EXPECT_TRUE(c.contains(a));
    }
    EXPECT_EQ(c.accesses(), hits + misses);
    EXPECT_EQ(c.misses(), misses);
    // Evictions can never exceed misses; writebacks never exceed
    // evictions.
    EXPECT_LE(c.stats().get("evictions"), c.misses());
    EXPECT_LE(c.stats().get("writebacks"), c.stats().get("evictions"));
    // Working set (64 KiB) exceeds every swept cache: some misses.
    EXPECT_GT(misses, 0u);
    EXPECT_GT(hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(Geometry{1024, 1, 32}, Geometry{4096, 2, 64},
                      Geometry{8192, 4, 64}, Geometry{8192, 8, 128},
                      Geometry{32768, 4, 64}, Geometry{2048, 32, 64}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "s" + std::to_string(info.param.size) + "_a"
            + std::to_string(info.param.assoc) + "_l"
            + std::to_string(info.param.line);
    });

// ----- hierarchy -----------------------------------------------------

TEST(Hierarchy, LatencyComposition)
{
    HierarchyConfig cfg;
    cfg.l1d.hitLatency = 2;
    cfg.l2.hitLatency = 12;
    cfg.memLatency = 200;
    Hierarchy h(cfg);

    // Cold: L1 miss + L2 miss + memory.
    EXPECT_EQ(h.accessData(0, false, 0), 2u + 12u + 200u);
    // After the fill lands: L1 hit.
    EXPECT_EQ(h.accessData(0, false, 1000), 2u);
    EXPECT_EQ(h.memAccesses(), 1u);
}

TEST(Hierarchy, InFlightFillMergesSameLine)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    Cycle first = h.accessData(0, false, 0);   // miss, fill at 'first'
    // A second access to the same line 10 cycles later pays only the
    // remaining fill latency (plus the L1 lookup).
    Cycle second = h.accessData(8, false, 10);
    EXPECT_EQ(second, cfg.l1d.hitLatency + (first - 10));
    EXPECT_EQ(h.fillMerges(), 1u);
    EXPECT_EQ(h.memAccesses(), 1u);  // no duplicate DRAM fetch
}

TEST(Hierarchy, MshrExhaustionDelaysNewMisses)
{
    HierarchyConfig cfg;
    cfg.mshrs = 2;
    Hierarchy h(cfg);
    h.accessData(0 * 4096, false, 0);
    h.accessData(1 * 4096, false, 0);
    // Third distinct miss at the same cycle must wait for a free
    // MSHR.
    Cycle third = h.accessData(2 * 4096, false, 0);
    EXPECT_GT(third, cfg.l1d.hitLatency + cfg.l2.hitLatency
                         + cfg.memLatency);
    EXPECT_GT(h.mshrStallCycles(), 0u);
}

TEST(Hierarchy, FillModelingCanBeDisabled)
{
    HierarchyConfig cfg;
    cfg.modelFills = false;
    Hierarchy h(cfg);
    h.accessData(0, false, 0);
    // Idealized model: the tag is usable immediately.
    EXPECT_EQ(h.accessData(8, false, 0), cfg.l1d.hitLatency);
    EXPECT_EQ(h.fillMerges(), 0u);
}

TEST(Hierarchy, NextLinePrefetchWarmsL2)
{
    HierarchyConfig cfg;
    cfg.nextLinePrefetch = true;
    Hierarchy h(cfg);
    h.accessData(0, false, 0);                 // miss, prefetch line 1
    EXPECT_EQ(h.prefetches(), 1u);
    // Far later, line 1 hits in L2 (L1 miss, no DRAM trip) — and its
    // own L1 miss prefetches line 2.
    Cycle lat = h.accessData(64, false, 5000);
    EXPECT_EQ(lat, cfg.l1d.hitLatency + cfg.l2.hitLatency);
    EXPECT_EQ(h.prefetches(), 2u);
    EXPECT_EQ(h.memAccesses(), 3u);  // demand + two prefetch fills
}

TEST(Hierarchy, RejectsMixedLineSizes)
{
    HierarchyConfig cfg;
    cfg.l1d.lineBytes = 32;
    EXPECT_THROW(Hierarchy bad(cfg), FatalError);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyConfig cfg;
    cfg.l1d.sizeBytes = 2 * 64;  // 2 lines, direct-ish
    cfg.l1d.assoc = 1;
    cfg.l1d.hitLatency = 2;
    cfg.l2.hitLatency = 12;
    Hierarchy h(cfg);

    h.accessData(0, false);
    // Evict line 0 from L1 (same set, different tag).
    h.accessData(2 * 64, false);
    // L1 miss, L2 hit.
    EXPECT_EQ(h.accessData(0, false), 2u + 12u);
}

TEST(Hierarchy, InstAndDataAreSeparateL1s)
{
    Hierarchy h(HierarchyConfig{});
    h.accessInst(0x40);
    // Same address on the data side still cold in L1D but warm in L2.
    Cycle lat = h.accessData(0x40, false);
    EXPECT_EQ(lat, h.l1d().hitLatency() + h.l2().hitLatency());
}

TEST(Hierarchy, ActivityUnitsWeighting)
{
    Hierarchy h(HierarchyConfig{});
    h.accessData(0, false);  // L1D + L2 + mem
    // 1 (l1d) + 4 (l2) + 40 (mem) = 45
    EXPECT_EQ(h.activityUnits(), 45u);
    h.accessData(0, false);  // L1 hit only
    EXPECT_EQ(h.activityUnits(), 46u);
}

} // namespace
} // namespace dttsim::mem
