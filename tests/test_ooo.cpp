/**
 * @file
 * Timing-core tests: architectural correctness against the functional
 * reference (including a randomized property sweep over core
 * configurations), plus first-order timing sanity — dependence chains
 * serialize, mispredicted branches cost cycles, cache misses stall.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/executor.h"
#include "cpu/ooo_core.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "mem/hierarchy.h"

namespace dttsim::cpu {
namespace {

using namespace isa::regs;
using isa::FReg;
using isa::Reg;

struct RunOutcome
{
    CoreRunResult result;
    ArchState arch;
};

RunOutcome
runOnCore(const isa::Program &p, CoreConfig cfg = CoreConfig{})
{
    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    OooCore core(cfg, p, hierarchy, nullptr);
    RunOutcome o;
    o.result = core.run(10'000'000);
    o.arch = core.archState(0);
    return o;
}

TEST(OooCore, RunsSimpleProgramToHalt)
{
    isa::Program p = isa::assemble(R"(
        li   x5, 40
        addi x5, x5, 2
        halt
    )");
    RunOutcome o = runOnCore(p);
    EXPECT_TRUE(o.result.halted);
    EXPECT_EQ(o.result.mainCommitted, 3u);
    EXPECT_EQ(o.arch.getX(5), 42u);
}

TEST(OooCore, MemoryResultsMatchFunctional)
{
    isa::Program p = isa::assemble(R"(
        li   a0, buf
        li   x5, 123
        sd   x5, 0(a0)
        ld   x6, 0(a0)
        addi x6, x6, 1
        sd   x6, 8(a0)
        halt
        .data
    buf: .space 16
    )");
    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    OooCore core(CoreConfig{}, p, hierarchy, nullptr);
    core.run(1'000'000);
    EXPECT_EQ(core.memory().read64(isa::kDataBase + 8), 124u);
}

TEST(OooCore, LoopCommitsExpectedInstructionCount)
{
    isa::ProgramBuilder b;
    b.li(s0, 0);
    b.li(t1, 100);
    b.loop(t0, t1, [&] { b.add(s0, s0, t0); });
    b.halt();
    isa::Program p = b.take();

    FunctionalRunner ref(p);
    FuncRunResult fr = ref.run();

    RunOutcome o = runOnCore(p);
    EXPECT_TRUE(o.result.halted);
    EXPECT_EQ(o.result.mainCommitted, fr.mainInstructions);
    EXPECT_EQ(o.arch.getX(s0.idx), 4950u);
}

TEST(OooCore, DependenceChainSlowerThanIndependent)
{
    // A hot loop (warm I-cache) of 32 multiplies, dependent vs
    // independent, iterated 200 times so compute dominates the cold
    // misses.
    auto mk = [](bool dependent) {
        isa::ProgramBuilder b;
        b.li(t2, 3);
        b.li(t3, 1);
        b.li(t1, 200);
        b.loop(t0, t1, [&] {
            for (int i = 0; i < 32; ++i) {
                if (dependent)
                    b.mul(t3, t3, t2);
                else
                    b.mul(Reg{static_cast<std::uint8_t>(20 + (i % 8))},
                          t2, t2);
            }
        });
        b.halt();
        return b.take();
    };
    RunOutcome dep = runOnCore(mk(true));
    RunOutcome ind = runOnCore(mk(false));
    // Serial: >= 3 cycles per mul. Independent: 2 mul pipes.
    EXPECT_GT(dep.result.cycles, ind.result.cycles * 2);
}

TEST(OooCore, MispredictsCostCycles)
{
    // Data-dependent unpredictable branches vs the same loop with a
    // never-taken branch.
    auto mk = [](bool random_pattern) {
        isa::ProgramBuilder b;
        Rng rng(7);
        std::vector<std::int64_t> bits(512);
        for (auto &v : bits)
            v = random_pattern ? static_cast<std::int64_t>(
                    rng.below(2)) : 0;
        Addr data = b.quads("bits", bits);
        b.li(s0, 0);
        b.la(s1, data);
        b.li(t1, 512);
        b.loop(t0, t1, [&] {
            b.ld(t2, s1, 0);
            isa::Label skip = b.newLabel();
            b.beqz(t2, skip);
            b.addi(s0, s0, 1);
            b.bind(skip);
            b.addi(s1, s1, 8);
        });
        b.halt();
        return b.take();
    };
    RunOutcome noisy = runOnCore(mk(true));
    RunOutcome quiet = runOnCore(mk(false));
    EXPECT_GT(noisy.result.cycles, quiet.result.cycles * 6 / 5);
}

TEST(OooCore, CacheMissesCostCycles)
{
    // Dependent pointer chase: each load's address comes from the
    // previous load, so miss latency is exposed. A ring spanning
    // 4 MiB (misses) vs a ring inside one 4 KiB page (L1 hits).
    auto mk = [](std::int64_t stride, int ring) {
        // The data segment starts at kDataBase, so the ring's links
        // can be computed before emission.
        Addr base = isa::kDataBase;
        std::vector<std::int64_t> links(
            static_cast<std::size_t>(stride / 8 * ring), 0);
        for (int i = 0; i < ring; ++i)
            links[static_cast<std::size_t>(i) *
                  static_cast<std::size_t>(stride / 8)] =
                static_cast<std::int64_t>(base
                    + static_cast<Addr>(((i + 1) % ring))
                    * static_cast<Addr>(stride));
        isa::ProgramBuilder b;
        Addr got = b.quads("ring", links);
        EXPECT_EQ(got, base);
        b.la(s1, base);
        b.li(t1, 2000);
        b.loop(t0, t1, [&] { b.ld(s1, s1, 0); });
        b.halt();
        return b.take();
    };
    RunOutcome strided = runOnCore(mk(4096, 1024));  // 4 MiB ring
    RunOutcome local = runOnCore(mk(8, 64));         // 512 B ring
    EXPECT_GT(strided.result.cycles, local.result.cycles * 3);
}

TEST(OooCore, RespectsMaxCycles)
{
    isa::Program p = isa::assemble(R"(
    spin:
        jal x0, spin
    )");
    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    OooCore core(CoreConfig{}, p, hierarchy, nullptr);
    CoreRunResult r = core.run(5000);
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.hitMaxCycles);
    EXPECT_EQ(r.cycles, 5000u);
}

TEST(OooCore, SingleContextConfigWorks)
{
    CoreConfig cfg;
    cfg.numContexts = 1;
    isa::Program p = isa::assemble("li x5, 9\n halt");
    RunOutcome o = runOnCore(p, cfg);
    EXPECT_TRUE(o.result.halted);
    EXPECT_EQ(o.arch.getX(5), 9u);
}

TEST(OooCore, SubroutineCallsExecuteCorrectly)
{
    isa::Program p = isa::assemble(R"(
    main:
        li   x5, 0
        li   x6, 50
    loop:
        jal  ra, inc
        addi x6, x6, -1
        bne  x6, x0, loop
        halt
    inc:
        addi x5, x5, 2
        jalr x0, ra, 0
    )");
    RunOutcome o = runOnCore(p);
    EXPECT_EQ(o.arch.getX(5), 100u);
}

// ----- randomized property: OOO == functional ------------------------

/**
 * Generate a random but always-terminating program: straight-line ALU
 * blocks, loads/stores into a private array, short forward branches,
 * and counted loops.
 */
isa::Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    isa::ProgramBuilder b;
    std::vector<std::int64_t> init(64);
    for (auto &v : init)
        v = static_cast<std::int64_t>(rng.next());
    Addr arr = b.quads("arr", init);
    Addr fpdata = b.doubles("fp", {1.5, -2.25, 3.0, 0.5});
    Addr result = b.space("result", 8);

    auto reg = [&] {
        // x18..x27 computation registers.
        return Reg{static_cast<std::uint8_t>(18 + rng.below(10))};
    };
    auto freg = [&] {
        return FReg{static_cast<std::uint8_t>(rng.below(8))};
    };

    b.la(s0, arr);
    b.la(s1, fpdata);
    for (int i = 18; i <= 27; ++i)
        b.li(Reg{static_cast<std::uint8_t>(i)},
             static_cast<std::int64_t>(rng.next() & 0xffff));

    int blocks = 3 + static_cast<int>(rng.below(4));
    for (int blk = 0; blk < blocks; ++blk) {
        int kind = static_cast<int>(rng.below(3));
        if (kind == 0) {
            // ALU/memory straight-line block.
            for (int i = 0; i < 12; ++i) {
                switch (rng.below(8)) {
                  case 0: b.add(reg(), reg(), reg()); break;
                  case 1: b.sub(reg(), reg(), reg()); break;
                  case 2: b.mul(reg(), reg(), reg()); break;
                  case 3: b.xor_(reg(), reg(), reg()); break;
                  case 4: {
                      Reg r = reg();
                      b.andi(r, r, 0x1f8);
                      b.add(r, r, s0);
                      b.ld(reg(), r, 0);
                      break;
                  }
                  case 5: {
                      Reg r = reg();
                      b.andi(r, r, 0x1f8);
                      b.add(r, r, s0);
                      b.sd(reg(), r, 0);
                      break;
                  }
                  case 6: b.srli(reg(), reg(), rng.below(8)); break;
                  default: b.addi(reg(), reg(),
                                  rng.range(-100, 100)); break;
                }
            }
        } else if (kind == 1) {
            // Forward branch over a small block.
            isa::Label skip = b.newLabel();
            Reg a = reg(), c = reg();
            b.blt(a, c, skip);
            b.addi(reg(), reg(), 7);
            b.mul(reg(), reg(), reg());
            b.bind(skip);
        } else {
            // Counted loop with FP work.
            b.li(t1, static_cast<std::int64_t>(2 + rng.below(6)));
            FReg facc = freg();
            b.loop(t0, t1, [&] {
                b.fld(FReg{0}, s1, 8 * rng.range(0, 3));
                b.fadd(facc, facc, FReg{0});
                b.add(reg(), reg(), t0);
            });
            b.fcvtwd(reg(), facc);
        }
    }

    // Fold all computation registers into the result.
    b.li(t2, 0);
    for (int i = 18; i <= 27; ++i)
        b.xor_(t2, t2, Reg{static_cast<std::uint8_t>(i)});
    b.la(t3, result);
    b.sd(t2, t3, 0);
    b.halt();
    return b.take();
}

struct PropertyParam
{
    std::uint64_t seed;
    int variant;  // config variant
};

class OooProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OooProperty, MatchesFunctionalReference)
{
    auto [seed, cfg_variant] = GetParam();
    isa::Program p = randomProgram(static_cast<std::uint64_t>(seed));

    FunctionalRunner ref(p);
    FuncRunResult fr = ref.run(1u << 22);
    ASSERT_TRUE(fr.halted);
    Addr result = p.dataSymbol("result");
    std::uint64_t want = ref.memory().read64(result);

    CoreConfig cfg;
    switch (cfg_variant) {
      case 0:
        break;  // defaults
      case 1:
        cfg.fetchWidth = 2;
        cfg.issueWidth = 1;
        cfg.commitWidth = 1;
        cfg.robSize = 16;
        cfg.iqSize = 4;
        cfg.lqSize = 4;
        cfg.sqSize = 4;
        break;
      case 2:
        cfg.numContexts = 2;
        cfg.frontendDepth = 12;
        cfg.intAlu = 1;
        cfg.intMulDiv = 1;
        cfg.fpAlu = 1;
        cfg.fpMulDiv = 1;
        cfg.memPorts = 1;
        break;
      default:
        cfg.fetchWidth = 16;
        cfg.issueWidth = 12;
        cfg.commitWidth = 16;
        cfg.robSize = 512;
        cfg.iqSize = 128;
        break;
    }

    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    OooCore core(cfg, p, hierarchy, nullptr);
    CoreRunResult r = core.run(20'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.mainCommitted, fr.mainInstructions);
    EXPECT_EQ(core.memory().read64(result), want);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, OooProperty,
    ::testing::Combine(::testing::Range(1, 13),
                       ::testing::Range(0, 4)));

} // namespace
} // namespace dttsim::cpu
