/**
 * @file
 * Fabric fault-plan tests: the spec parser (sites, bare rates, the
 * straggler delay, malformed input), the canonical round-trip
 * spelling, determinism of the per-site decision streams (same
 * {seed, rate} → identical stream, different seeds → different
 * streams), the corruptLine contract (deterministic, never injects a
 * newline), and the process-global install/clear lifecycle.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fabricfault.h"

namespace dttsim::fabric {
namespace {

/** clearFaultPlan() on scope exit: the plan is process-global. */
struct PlanGuard
{
    ~PlanGuard() { clearFaultPlan(); }
};

TEST(FaultSpec, SiteNamesRoundTrip)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        FaultSite s = static_cast<FaultSite>(i);
        std::optional<FaultSite> back =
            faultSiteFromName(faultSiteName(s));
        ASSERT_TRUE(back) << faultSiteName(s);
        EXPECT_EQ(*back, s);
    }
    EXPECT_FALSE(faultSiteFromName("meteor-strike"));
}

TEST(FaultSpec, ParsesSitesBareRatesAndDelay)
{
    std::string err;
    std::optional<FaultConfig> c =
        parseFaultSpec("7:connect-refused=0.5,corrupt-frame=0.25",
                       &err);
    ASSERT_TRUE(c) << err;
    EXPECT_EQ(c->seed, 7u);
    EXPECT_DOUBLE_EQ(
        c->rates[static_cast<std::size_t>(FaultSite::ConnectRefused)],
        0.5);
    EXPECT_DOUBLE_EQ(
        c->rates[static_cast<std::size_t>(FaultSite::CorruptFrame)],
        0.25);
    EXPECT_DOUBLE_EQ(
        c->rates[static_cast<std::size_t>(FaultSite::TornAppend)],
        0.0);
    EXPECT_TRUE(c->enabled());

    // A bare rate arms every site.
    c = parseFaultSpec("13:0.125", &err);
    ASSERT_TRUE(c) << err;
    for (double r : c->rates)
        EXPECT_DOUBLE_EQ(r, 0.125);

    // delay= sets the straggler sleep without arming a site.
    c = parseFaultSpec("3:reply-delay=0.5,delay=1.5", &err);
    ASSERT_TRUE(c) << err;
    EXPECT_DOUBLE_EQ(c->delaySeconds, 1.5);
    EXPECT_DOUBLE_EQ(
        c->rates[static_cast<std::size_t>(FaultSite::ReplyDelay)],
        0.5);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    std::string err;
    EXPECT_FALSE(parseFaultSpec("", &err));
    EXPECT_FALSE(parseFaultSpec("no-seed", &err));
    EXPECT_FALSE(parseFaultSpec("7:", &err));
    EXPECT_FALSE(parseFaultSpec("7:meteor-strike=0.5", &err));
    EXPECT_NE(err.find("meteor-strike"), std::string::npos);
    EXPECT_FALSE(parseFaultSpec("7:connect-refused=1.5", &err));
    EXPECT_FALSE(parseFaultSpec("7:connect-refused=-0.5", &err));
}

TEST(FaultSpec, FormatRoundTrips)
{
    std::string err;
    std::optional<FaultConfig> c =
        parseFaultSpec("42:reply-delay=0.5,torn-append=0.25,delay=2.5",
                       &err);
    ASSERT_TRUE(c) << err;
    std::string spelled = formatFaultSpec(*c);
    std::optional<FaultConfig> back = parseFaultSpec(spelled, &err);
    ASSERT_TRUE(back) << spelled << ": " << err;
    EXPECT_EQ(back->seed, c->seed);
    for (std::size_t i = 0; i < kNumFaultSites; ++i)
        EXPECT_DOUBLE_EQ(back->rates[i], c->rates[i]) << i;
    EXPECT_DOUBLE_EQ(back->delaySeconds, c->delaySeconds);
}

/** The first @p n decisions of @p site under @p config. */
std::vector<bool>
decisionStream(const FaultConfig &config, FaultSite site,
               std::size_t n)
{
    FaultPlan plan(config);
    std::vector<bool> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(plan.inject(site));
    return out;
}

TEST(FaultPlan, DecisionStreamsAreDeterministic)
{
    FaultConfig c;
    c.seed = 99;
    c.rates[static_cast<std::size_t>(FaultSite::MidFrameEof)] = 0.3;
    std::vector<bool> a =
        decisionStream(c, FaultSite::MidFrameEof, 256);
    std::vector<bool> b =
        decisionStream(c, FaultSite::MidFrameEof, 256);
    EXPECT_EQ(a, b);

    // The stream actually mixes decisions at rate 0.3.
    std::size_t fired = 0;
    for (bool x : a)
        fired += x ? 1 : 0;
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, a.size());

    // A different seed draws a different stream.
    FaultConfig c2 = c;
    c2.seed = 100;
    EXPECT_NE(decisionStream(c2, FaultSite::MidFrameEof, 256), a);
}

TEST(FaultPlan, SitesDrawIndependentStreams)
{
    FaultConfig c;
    c.seed = 7;
    for (std::size_t i = 0; i < kNumFaultSites; ++i)
        c.rates[i] = 0.5;
    std::vector<bool> eof =
        decisionStream(c, FaultSite::MidFrameEof, 256);
    std::vector<bool> torn =
        decisionStream(c, FaultSite::TornAppend, 256);
    EXPECT_NE(eof, torn);  // decorrelated by site index
}

TEST(FaultPlan, UnarmedSitesNeverFireAndCountersTrack)
{
    FaultConfig c;
    c.seed = 5;
    c.rates[static_cast<std::size_t>(FaultSite::ConnectRefused)] = 1.0;
    FaultPlan plan(c);
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(plan.inject(FaultSite::ConnectRefused));
        EXPECT_FALSE(plan.inject(FaultSite::TornAppend));
    }
    EXPECT_EQ(plan.injected(FaultSite::ConnectRefused), 16u);
    EXPECT_EQ(plan.injected(FaultSite::TornAppend), 0u);
    EXPECT_EQ(plan.injectedTotal(), 16u);
}

TEST(FaultPlan, CorruptLineIsDeterministicAndNewlineSafe)
{
    FaultConfig c;
    c.seed = 11;
    c.rates[static_cast<std::size_t>(FaultSite::CorruptFrame)] = 1.0;
    const std::string original =
        "{\"type\":\"result\",\"id\":1,\"cycles\":123456}";

    FaultPlan a(c), b(c);
    std::string la = original, lb = original;
    a.corruptLine(&la);
    b.corruptLine(&lb);
    EXPECT_EQ(la, lb);        // same stream index → same flip
    EXPECT_NE(la, original);  // and it really flipped a byte
    EXPECT_EQ(la.size(), original.size());
    EXPECT_EQ(la.find('\n'), std::string::npos);

    // The next draw hits a (generally) different position: the
    // corruption stream advances per injected frame.
    std::string lc = original;
    a.corruptLine(&lc);
    EXPECT_NE(lc, original);

    // Empty lines are left alone.
    std::string empty;
    a.corruptLine(&empty);
    EXPECT_TRUE(empty.empty());
}

TEST(FaultPlanGlobal, InstallClearLifecycle)
{
    PlanGuard guard;
    EXPECT_EQ(faultPlan(), nullptr);

    FaultConfig c;
    c.seed = 1;
    c.rates[static_cast<std::size_t>(FaultSite::ConnectRefused)] = 1.0;
    installFaultPlan(c);
    ASSERT_NE(faultPlan(), nullptr);
    EXPECT_TRUE(faultPlan()->armed(FaultSite::ConnectRefused));

    // Installing a disabled config is a clear.
    installFaultPlan(FaultConfig{});
    EXPECT_EQ(faultPlan(), nullptr);

    installFaultPlan(c);
    ASSERT_NE(faultPlan(), nullptr);
    clearFaultPlan();
    EXPECT_EQ(faultPlan(), nullptr);
}

} // namespace
} // namespace dttsim::fabric
