/**
 * @file
 * Sparse memory tests: sized accesses, endianness, page-boundary
 * straddles, zero-fill semantics and bulk initialization.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "mem/memory.h"

namespace dttsim::mem {
namespace {

TEST(Memory, UntouchedReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read8(0), 0u);
    EXPECT_EQ(m.read64(0xdeadbeef), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

TEST(Memory, ByteWriteReadBack)
{
    Memory m;
    m.write8(100, 0xab);
    EXPECT_EQ(m.read8(100), 0xabu);
    EXPECT_EQ(m.read8(101), 0u);
    EXPECT_EQ(m.pagesAllocated(), 1u);
}

TEST(Memory, LittleEndian64)
{
    Memory m;
    m.write64(0x1000, 0x0807060504030201ull);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(m.read8(0x1000 + std::uint64_t(i)),
                  static_cast<std::uint8_t>(i + 1));
}

TEST(Memory, Word32SignBitsPreserved)
{
    Memory m;
    m.write32(8, 0xfffffffe);
    EXPECT_EQ(m.read32(8), 0xfffffffeu);
    EXPECT_EQ(m.read64(8), 0xfffffffeull);  // upper bytes untouched
}

TEST(Memory, PageStraddle64)
{
    Memory m;
    Addr a = Memory::kPageSize - 4;  // straddles two pages
    m.write64(a, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(a), 0x1122334455667788ull);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(Memory, DoubleRoundTrip)
{
    Memory m;
    m.writeDouble(64, -3.25);
    EXPECT_EQ(m.readDouble(64), -3.25);
}

TEST(Memory, SizedDispatch)
{
    Memory m;
    m.write(0, 1, 0x1ff);   // truncated to byte
    EXPECT_EQ(m.read(0, 1), 0xffu);
    m.write(8, 4, 0x1'00000002ull);
    EXPECT_EQ(m.read(8, 4), 2u);
    m.write(16, 8, 77);
    EXPECT_EQ(m.read(16, 8), 77u);
    EXPECT_THROW(m.read(0, 3), PanicError);
    EXPECT_THROW(m.write(0, 2, 0), PanicError);
}

TEST(Memory, WriteBytesBulk)
{
    Memory m;
    std::uint8_t data[] = {1, 2, 3, 4, 5};
    m.writeBytes(Memory::kPageSize - 2, data, 5);  // crosses a page
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(m.read8(Memory::kPageSize - 2 + i),
                  static_cast<std::uint8_t>(i + 1));
}

TEST(Memory, MoveSemantics)
{
    Memory m;
    m.write64(0, 42);
    Memory m2 = std::move(m);
    EXPECT_EQ(m2.read64(0), 42u);
}

} // namespace
} // namespace dttsim::mem
