/**
 * @file
 * Accelerator-interface conformance suite, run against all three
 * implementations (accel::DttAccel, sp::PrecomputeUnit,
 * reuse::ReuseUnit):
 *
 *  - lifecycle: attach is idempotent on the same port and fatal on a
 *    second port; reset returns the unit to its just-constructed
 *    state;
 *  - determinism: a batch of accelerated jobs produces byte-identical
 *    results under Engine --jobs 1 and --jobs 8;
 *  - fault transparency: each accelerator's transparent fault sites
 *    leave the architectural result untouched at any rate;
 *  - equivalence pins: the refactored DTT path is byte-identical to
 *    the golden table (tests/test_golden_digests.cpp runs the full
 *    table; here we pin run-to-run stability), and the reuse unit is
 *    byte-identical to the legacy in-core reuse buffer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/dtt_accel.h"
#include "accel/reuse_unit.h"
#include "accel/sp_unit.h"
#include "common/log.h"
#include "sim/engine.h"
#include "sim/faultplan.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

workloads::WorkloadParams
smallParams()
{
    workloads::WorkloadParams params;
    params.iterations = 2;
    return params;
}

// ----- a minimal port: what a fourth accelerator's tests would use ----

class FakePort final : public cpu::AccelPort
{
  public:
    struct Spawn
    {
        CtxId ctx;
        TriggerId trig;
        std::uint64_t entryPc;
        Addr addr;
        std::uint64_t value;
        Cycle latency;
    };

    Cycle now() const override { return now_; }
    int numContexts() const override { return 4; }

    bool
    contextFree(CtxId ctx) const override
    {
        return free_[static_cast<std::size_t>(ctx)];
    }

    void
    startThread(CtxId ctx, TriggerId trig, std::uint64_t entry_pc,
                Addr addr, std::uint64_t value,
                Cycle spawn_latency) override
    {
        free_[static_cast<std::size_t>(ctx)] = false;
        spawns.push_back({ctx, trig, entry_pc, addr, value,
                          spawn_latency});
    }

    std::size_t programSize() const override { return 64; }

    void release(CtxId ctx) { free_[static_cast<std::size_t>(ctx)] = true; }

    std::vector<Spawn> spawns;
    Cycle now_ = 0;

  private:
    bool free_[4] = {false, true, true, true};  // ctx 0 = main thread
};

std::vector<std::unique_ptr<cpu::Accelerator>>
allAccelerators()
{
    std::vector<std::unique_ptr<cpu::Accelerator>> v;
    v.push_back(
        std::make_unique<accel::DttAccel>(dtt::DttConfig{}, 4));
    v.push_back(
        std::make_unique<sp::PrecomputeUnit>(sp::SpConfig{}, 4));
    v.push_back(
        std::make_unique<reuse::ReuseUnit>(reuse::ReuseConfig{}));
    return v;
}

// ----- naming ---------------------------------------------------------

TEST(AccelKind, NamesRoundTrip)
{
    using cpu::AccelKind;
    for (AccelKind k : {AccelKind::None, AccelKind::Dtt,
                        AccelKind::Sp, AccelKind::Reuse})
        EXPECT_EQ(cpu::accelKindFromName(cpu::accelKindName(k)), k);
    EXPECT_EQ(cpu::accelKindFromName("gpu"), std::nullopt);
    EXPECT_EQ(cpu::accelKindFromName(""), std::nullopt);
}

// ----- lifecycle: attach ----------------------------------------------

TEST(AccelConformance, AttachIsIdempotentOnTheSamePort)
{
    for (auto &a : allAccelerators()) {
        FakePort port;
        a->attach(port);
        EXPECT_NO_THROW(a->attach(port))
            << cpu::accelKindName(a->kind());
    }
}

TEST(AccelConformance, AttachingASecondPortIsFatal)
{
    for (auto &a : allAccelerators()) {
        FakePort first, second;
        a->attach(first);
        EXPECT_THROW(a->attach(second), FatalError)
            << cpu::accelKindName(a->kind());
    }
}

TEST(AccelConformance, PortUseBeforeAttachPanics)
{
    // tick() is the first hook that needs the port on every
    // implementation that spawns; the reuse unit has no spawn loop,
    // so its unattached tick() is legitimately a no-op.
    accel::DttAccel dtt(dtt::DttConfig{}, 4);
    sp::PrecomputeUnit sp(sp::SpConfig{}, 4);
    dtt.controller()->onTregCommit(0, 0x40);
    dtt.controller()->onTstoreCommit(0, 0x100, 1, false);
    sp.tregCommit(0, 0x40);
    sp.tstoreFetched(0);
    sp.tstoreCommit(0, 0x100, 1, false);
    EXPECT_THROW(dtt.tick(), PanicError);
    EXPECT_THROW(sp.tick(), PanicError);
}

// ----- lifecycle: reset -----------------------------------------------

TEST(AccelConformance, ResetRestoresConstructedState)
{
    // Drive each unit to visibly dirty state through the public event
    // API, reset, and check the observable state is as-constructed.
    {
        accel::DttAccel a(dtt::DttConfig{}, 4);
        FakePort port;
        a.attach(port);
        a.tregCommit(0, 0x40);
        a.tstoreFetched(0);
        a.tstoreCommit(0, 0x100, 7, /*silent=*/false);
        EXPECT_FALSE(a.waitSatisfied(0));
        EXPECT_NE(a.chk(0), 0);
        a.reset();
        EXPECT_TRUE(a.waitSatisfied(0));
        EXPECT_EQ(a.chk(0), 0);
        EXPECT_TRUE(a.controller()->queue().empty());
        a.tick();  // port binding survives reset
        EXPECT_TRUE(port.spawns.empty());
    }
    {
        sp::PrecomputeUnit a(sp::SpConfig{}, 4);
        FakePort port;
        a.attach(port);
        a.tregCommit(0, 0x40);
        a.tstoreFetched(0);
        a.tstoreCommit(0, 0x100, 7, /*silent=*/false);
        EXPECT_FALSE(a.waitSatisfied(0));
        EXPECT_EQ(a.tokenQueue().size(), 1);
        a.reset();
        EXPECT_TRUE(a.waitSatisfied(0));
        EXPECT_EQ(a.chk(0), 0);
        EXPECT_TRUE(a.tokenQueue().empty());
        EXPECT_EQ(a.stats().counter("tokens").value(), 0u);
        a.tick();
        EXPECT_TRUE(port.spawns.empty());
    }
    {
        reuse::ReuseUnit a(reuse::ReuseConfig{});
        FakePort port;
        a.attach(port);
        ReuseProbe probe;
        probe.numSrc = 1;
        probe.src[0] = 5;
        EXPECT_FALSE(a.fetchProbe(3, probe));
        EXPECT_TRUE(a.fetchProbe(3, probe));  // warmed: hit
        a.reset();
        EXPECT_FALSE(a.fetchProbe(3, probe));  // cold again
        EXPECT_EQ(a.stats().counter("hits").value(), 0u);
    }
    {
        // reset() before attach() must not blow up on any unit.
        for (auto &a : allAccelerators())
            EXPECT_NO_THROW(a->reset())
                << cpu::accelKindName(a->kind());
    }
}

// ----- SP unit semantics ----------------------------------------------

TEST(SpUnit, DispatchesTokensAndSerializesPerTrigger)
{
    sp::PrecomputeUnit a(sp::SpConfig{}, 4);
    FakePort port;
    a.attach(port);
    a.tregCommit(0, 0x40);

    // Two tokens for one trigger: serialization dispatches one slice
    // at a time even with three free contexts.
    for (int i = 0; i < 2; ++i) {
        a.tstoreFetched(0);
        EXPECT_FALSE(a.tstoreCommit(0, 0x100 + 8 * i, 1, false));
    }
    a.tick();
    ASSERT_EQ(port.spawns.size(), 1u);
    EXPECT_EQ(port.spawns[0].ctx, 1);
    EXPECT_EQ(port.spawns[0].entryPc, 0x40u);
    EXPECT_EQ(port.spawns[0].addr, 0x100u);
    a.tick();  // trigger still running: nothing new dispatches
    EXPECT_EQ(port.spawns.size(), 1u);
    EXPECT_FALSE(a.waitSatisfied(0));

    a.tretCommit(1);
    port.release(1);
    a.tick();
    ASSERT_EQ(port.spawns.size(), 2u);
    EXPECT_EQ(port.spawns[1].addr, 0x108u);
    a.tretCommit(port.spawns[1].ctx);
    EXPECT_TRUE(a.waitSatisfied(0));
}

TEST(SpUnit, EveryTokenFiresEvenWhenSilent)
{
    // The defining contrast with DTT: no silent-store suppression.
    sp::PrecomputeUnit a(sp::SpConfig{}, 4);
    FakePort port;
    a.attach(port);
    a.tregCommit(0, 0x40);
    a.tstoreFetched(0);
    EXPECT_FALSE(a.tstoreCommit(0, 0x100, 1, /*silent=*/true));
    EXPECT_EQ(a.tokenQueue().size(), 1);
    EXPECT_EQ(a.stats().counter("enqueued").value(), 1u);
}

TEST(SpUnit, FullQueueStallsByDefaultAndSkipsWhenOptedIn)
{
    sp::SpConfig cfg;
    cfg.tokenQueueSize = 1;
    {
        sp::PrecomputeUnit a(cfg, 4);
        FakePort port;
        a.attach(port);
        a.tregCommit(0, 0x40);
        a.tstoreFetched(0);
        EXPECT_FALSE(a.tstoreCommit(0, 0x100, 1, false));
        a.tstoreFetched(0);
        // Lossless default: the second token stalls its store...
        EXPECT_TRUE(a.tstoreCommit(0, 0x108, 2, false));
        EXPECT_EQ(a.stats().counter("stallEvents").value(), 1u);
        // ...and no overflow flag is raised.
        EXPECT_EQ(a.chk(0) >> 62, 0);
    }
    {
        sp::SpConfig lossy = cfg;
        lossy.skipWhenBusy = true;
        sp::PrecomputeUnit a(lossy, 4);
        FakePort port;
        a.attach(port);
        a.tregCommit(0, 0x40);
        a.tstoreFetched(0);
        EXPECT_FALSE(a.tstoreCommit(0, 0x100, 1, false));
        a.tstoreFetched(0);
        // Skip-one-slice: never stalls, raises the sticky overflow
        // flag for the software fallback idiom.
        EXPECT_FALSE(a.tstoreCommit(0, 0x108, 2, false));
        EXPECT_EQ(a.stats().counter("skippedSlices").value(), 1u);
        EXPECT_NE(a.chk(0) & (std::int64_t(1) << 62), 0);
        a.tclrCommit(0);
        EXPECT_EQ(a.chk(0) & (std::int64_t(1) << 62), 0);
    }
}

TEST(SpUnit, DropTokenFaultIsLossyAndFlagged)
{
    sim::FaultConfig fc;
    fc.seed = 1;
    fc.rate = 1.0;
    fc.siteMask = sim::faultSiteBit(sim::FaultSite::DropToken);
    sim::FaultPlan plan(fc);

    sp::PrecomputeUnit a(sp::SpConfig{}, 4);
    FakePort port;
    a.attach(port);
    a.setFaultPlan(&plan);
    a.tregCommit(0, 0x40);
    a.tstoreFetched(0);
    EXPECT_FALSE(a.tstoreCommit(0, 0x100, 1, false));
    EXPECT_TRUE(a.tokenQueue().empty());  // token lost in flight
    EXPECT_EQ(a.stats().counter("faultDroppedTokens").value(), 1u);
    EXPECT_NE(a.chk(0) & (std::int64_t(1) << 62), 0);
}

// ----- simulator wiring -----------------------------------------------

TEST(AccelConformance, SimulatorExposesTheConfiguredAccelerator)
{
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, smallParams());
    for (cpu::AccelKind k :
         {cpu::AccelKind::None, cpu::AccelKind::Dtt, cpu::AccelKind::Sp,
          cpu::AccelKind::Reuse}) {
        sim::SimConfig cfg;
        cfg.accel = k;
        sim::Simulator s(cfg, p);
        if (k == cpu::AccelKind::None) {
            EXPECT_EQ(s.accelerator(), nullptr);
        } else {
            ASSERT_NE(s.accelerator(), nullptr);
            EXPECT_EQ(s.accelerator()->kind(), k);
        }
        EXPECT_EQ(s.controller() != nullptr, k == cpu::AccelKind::Dtt);
    }
}

// ----- determinism across engine thread counts ------------------------

TEST(AccelConformance, DeterministicUnderJobs1And8)
{
    const char *names[] = {"mcf", "equake", "twolf"};
    std::vector<sim::SimJob> jobs;
    for (const char *name : names) {
        const workloads::Workload &w = workloads::findWorkload(name);
        for (cpu::AccelKind k : {cpu::AccelKind::Dtt, cpu::AccelKind::Sp,
                                 cpu::AccelKind::Reuse}) {
            sim::SimJob job;
            job.workload = name;
            job.variant = cpu::accelKindName(k);
            job.config.accel = k;
            job.program = w.build(k == cpu::AccelKind::Reuse
                                      ? workloads::Variant::Baseline
                                      : workloads::Variant::Dtt,
                                  smallParams());
            jobs.push_back(std::move(job));
        }
    }
    std::vector<sim::JobResult> serial = sim::Engine(1).run(jobs);
    std::vector<sim::JobResult> parallel = sim::Engine(8).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].status, sim::JobStatus::Ok);
        EXPECT_TRUE(serial[i].result == parallel[i].result)
            << jobs[i].workload << "/" << jobs[i].variant;
        EXPECT_EQ(serial[i].digest, parallel[i].digest);
        EXPECT_EQ(serial[i].accel, parallel[i].accel);
    }
}

// ----- fault-site rollback transparency -------------------------------

TEST(AccelConformance, SpTransparentSitesPreserveArchState)
{
    // DenySpawn delays dispatch; SquashThread kills a running slice
    // whose stores the core rolls back and whose token the unit
    // requeues. Neither may change the architectural result. (The
    // DTT equivalent runs in test_faults.cpp's transparent matrix.)
    for (const char *name : {"mcf", "equake"}) {
        isa::Program p = workloads::findWorkload(name).build(
            workloads::Variant::Dtt, smallParams());
        sim::SimConfig clean;
        clean.accel = cpu::AccelKind::Sp;
        sim::SimResult ref = sim::runProgram(clean, p);
        ASSERT_TRUE(ref.halted);

        sim::SimConfig faulted = clean;
        faulted.fault.seed = 99;
        faulted.fault.rate = 0.3;
        faulted.fault.siteMask =
            sim::faultSiteBit(sim::FaultSite::DenySpawn)
            | sim::faultSiteBit(sim::FaultSite::SquashThread);
        sim::SimResult r = sim::runProgram(faulted, p);
        ASSERT_TRUE(r.halted) << name;
        EXPECT_GT(r.faultsInjected, 0u) << name;
        EXPECT_EQ(r.archDigest, ref.archDigest) << name;
    }
}

TEST(AccelConformance, ReuseTableFlushIsTimingOnly)
{
    for (const char *name : {"mcf", "equake"}) {
        isa::Program p = workloads::findWorkload(name).build(
            workloads::Variant::Baseline, smallParams());
        sim::SimConfig clean;
        clean.accel = cpu::AccelKind::Reuse;
        sim::SimResult ref = sim::runProgram(clean, p);
        ASSERT_TRUE(ref.halted);

        sim::SimConfig faulted = clean;
        faulted.fault.seed = 99;
        faulted.fault.rate = 0.5;
        faulted.fault.siteMask =
            sim::faultSiteBit(sim::FaultSite::FlushReuseTable);
        sim::SimResult r = sim::runProgram(faulted, p);
        ASSERT_TRUE(r.halted) << name;
        EXPECT_EQ(r.archDigest, ref.archDigest) << name;
        // Flush-on-hit only converts hits back into executions: the
        // committed instruction stream is identical.
        EXPECT_EQ(r.totalCommitted, ref.totalCommitted) << name;
        EXPECT_LE(r.reusedInsts, ref.reusedInsts) << name;
    }
}

// ----- equivalence pins -----------------------------------------------

TEST(AccelConformance, DttRunsAreStableAcrossRepetition)
{
    // The golden table (test_golden_digests.cpp) pins the refactored
    // DTT path against pre-refactor digests; this pins run-to-run.
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, smallParams());
    sim::SimConfig cfg;  // accel defaults to Dtt
    sim::SimResult a = sim::runProgram(cfg, p);
    sim::SimResult b = sim::runProgram(cfg, p);
    ASSERT_TRUE(a.halted);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.dttSpawns, 0u);
}

TEST(AccelConformance, SpPreservesTheDttArchitecturalResult)
{
    // Variant::Dtt programs run unmodified under --accel=sp and must
    // reach the same final memory image: precomputation changes when
    // handlers run, never what the program computes.
    for (const char *name : {"mcf", "twolf"}) {
        isa::Program p = workloads::findWorkload(name).build(
            workloads::Variant::Dtt, smallParams());
        sim::SimConfig dtt_cfg;
        sim::SimConfig sp_cfg;
        sp_cfg.accel = cpu::AccelKind::Sp;
        sim::SimResult dtt_r = sim::runProgram(dtt_cfg, p);
        sim::SimResult sp_r = sim::runProgram(sp_cfg, p);
        ASSERT_TRUE(dtt_r.halted);
        ASSERT_TRUE(sp_r.halted);
        EXPECT_EQ(dtt_r.archDigest, sp_r.archDigest) << name;
        // SP fires on silent stores too, so it never fires less.
        EXPECT_GE(sp_r.fired, dtt_r.fired) << name;
    }
}

TEST(AccelConformance, ReuseUnitMatchesTheLegacyInCoreBuffer)
{
    // The pluggable reuse unit must be byte-identical to the legacy
    // CoreConfig::reuseBuffer machine it replaces (same table
    // geometry, same probe points, same hit timing).
    for (const workloads::Workload *w : workloads::allWorkloads()) {
        isa::Program p =
            w->build(workloads::Variant::Baseline, smallParams());
        sim::SimConfig legacy;
        legacy.accel = cpu::AccelKind::None;
        legacy.core.reuseBuffer = true;
        legacy.core.reuseEntriesPerPc = 8;
        sim::SimConfig unit;
        unit.accel = cpu::AccelKind::Reuse;
        unit.reuse.entriesPerPc = 8;
        sim::SimResult a = sim::runProgram(legacy, p);
        sim::SimResult b = sim::runProgram(unit, p);
        ASSERT_TRUE(a.halted) << w->info().name;
        EXPECT_EQ(a.cycles, b.cycles) << w->info().name;
        EXPECT_EQ(a.reusedInsts, b.reusedInsts) << w->info().name;
        EXPECT_EQ(a.archDigest, b.archDigest) << w->info().name;
        EXPECT_EQ(a.totalCommitted, b.totalCommitted)
            << w->info().name;
    }
}

// ----- config validation ----------------------------------------------

TEST(AccelConformance, ValidateRejectsNonsenseAccelConfigs)
{
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, smallParams());
    {
        sim::SimConfig cfg;
        cfg.accel = cpu::AccelKind::Sp;
        cfg.sp.tokenQueueSize = 0;
        EXPECT_FALSE(cfg.validate().empty());
        EXPECT_THROW(sim::Simulator(cfg, p), FatalError);
    }
    {
        sim::SimConfig cfg;
        cfg.accel = cpu::AccelKind::Sp;
        cfg.sp.maxTriggers = 0;
        EXPECT_FALSE(cfg.validate().empty());
    }
    {
        sim::SimConfig cfg;
        cfg.accel = cpu::AccelKind::Reuse;
        cfg.reuse.entriesPerPc = 0;
        EXPECT_FALSE(cfg.validate().empty());
    }
    {
        // Fault injection needs an accelerator to inject into.
        sim::SimConfig cfg;
        cfg.accel = cpu::AccelKind::None;
        cfg.fault.rate = 0.5;
        cfg.fault.siteMask = sim::kTransparentSites;
        EXPECT_FALSE(cfg.validate().empty());
    }
}

} // namespace
} // namespace dttsim
