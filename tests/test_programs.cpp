/**
 * @file
 * Whole-stack program tests (second batch): classic algorithms run
 * through assembler -> functional reference -> timing simulator,
 * asserting identical results — sorting, matrix multiply, string
 * search, GCD, and a DTT-ified incremental histogram.
 */

#include <gtest/gtest.h>

#include "cpu/executor.h"
#include "isa/assembler.h"
#include "sim/simulator.h"

namespace dttsim {
namespace {

std::uint64_t
runBoth(const std::string &src)
{
    isa::Program prog = isa::assemble(src);
    cpu::FunctionalRunner ref(prog);
    EXPECT_TRUE(ref.run(1u << 26).halted);
    std::uint64_t func_val =
        ref.memory().read64(prog.dataSymbol("result"));

    sim::Simulator s(sim::SimConfig{}, prog);
    EXPECT_TRUE(s.run().halted);
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")),
              func_val);
    return func_val;
}

TEST(Programs, BubbleSortProducesSortedChecksum)
{
    // Sort 16 values, fold them positionally (order-sensitive).
    std::uint64_t v = runBoth(R"(
    main:
        li  s0, arr
        li  s1, 16          # n
        li  t0, 0           # i
    outer:
        addi t1, s1, -1
        bge  t0, t1, fold
        li  t2, 0           # j
    inner:
        sub  t3, s1, t0
        addi t3, t3, -1
        bge  t2, t3, next_i
        slli t4, t2, 3
        add  t4, t4, s0
        ld   t5, 0(t4)
        ld   t6, 8(t4)
        bge  t6, t5, no_swap
        sd   t6, 0(t4)
        sd   t5, 8(t4)
    no_swap:
        addi t2, t2, 1
        j    inner
    next_i:
        addi t0, t0, 1
        j    outer
    fold:
        li  t0, 0
        li  t1, 0
    fold_loop:
        bge  t0, s1, done
        slli t2, t0, 3
        add  t2, t2, s0
        ld   t3, 0(t2)
        li   t4, 31
        mul  t1, t1, t4
        add  t1, t1, t3
        addi t0, t0, 1
        j    fold_loop
    done:
        li  t5, result
        sd  t1, 0(t5)
        halt
        .data
    arr: .quad 9, 3, 14, 1, 12, 5, 16, 7, 2, 11, 8, 15, 4, 13, 6, 10
    result: .space 8
    )");
    // Sorted 1..16 folded with base 31.
    std::uint64_t want = 0;
    for (std::uint64_t i = 1; i <= 16; ++i)
        want = want * 31 + i;
    EXPECT_EQ(v, want);
}

TEST(Programs, MatrixMultiply4x4)
{
    std::uint64_t v = runBoth(R"(
    main:
        li  s0, matA
        li  s1, matB
        li  s2, matC
        li  t0, 0           # i
    row:
        li  t1, 0           # j
    col:
        li  t2, 0           # k
        li  s6, 0           # acc
    dot:
        slli t3, t0, 5      # i*4*8
        slli t4, t2, 3
        add  t3, t3, t4
        add  t3, t3, s0
        ld   t5, 0(t3)      # A[i][k]
        slli t3, t2, 5
        slli t4, t1, 3
        add  t3, t3, t4
        add  t3, t3, s1
        ld   t6, 0(t3)      # B[k][j]
        mul  t5, t5, t6
        add  s6, s6, t5
        addi t2, t2, 1
        li   t7, 4
        blt  t2, t7, dot
        slli t3, t0, 5
        slli t4, t1, 3
        add  t3, t3, t4
        add  t3, t3, s2
        sd   s6, 0(t3)
        addi t1, t1, 1
        li   t7, 4
        blt  t1, t7, col
        addi t0, t0, 1
        li   t7, 4
        blt  t0, t7, row
        # checksum C
        li  t0, 0
        li  s6, 0
    fold:
        slli t3, t0, 3
        add  t3, t3, s2
        ld   t4, 0(t3)
        xor  s6, s6, t4
        slli s6, s6, 1
        addi t0, t0, 1
        li   t7, 16
        blt  t0, t7, fold
        li  t5, result
        sd  s6, 0(t5)
        halt
        .data
    matA: .quad 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
    matB: .quad 1, 0, 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 0, 0, 1, 1
    matC: .space 128
    result: .space 8
    )");
    EXPECT_NE(v, 0u);
}

TEST(Programs, EuclidGcd)
{
    std::uint64_t v = runBoth(R"(
    main:
        li  t0, 462
        li  t1, 1071
    loop:
        beqz t1, done
        rem  t2, t0, t1
        mv   t0, t1
        mv   t1, t2
        j    loop
    done:
        li  t3, result
        sd  t0, 0(t3)
        halt
        .data
    result: .space 8
    )");
    EXPECT_EQ(v, 21u);
}

TEST(Programs, NaiveStringSearch)
{
    std::uint64_t v = runBoth(R"(
    main:
        li  s0, hay
        li  s1, 24          # haystack length
        li  s2, needle
        li  s3, 3           # needle length
        li  s4, 0           # match count
        li  t0, 0           # position
    pos:
        sub  t1, s1, s3
        blt  t1, t0, done
        li   t2, 0          # offset in needle
    cmp:
        bge  t2, s3, hit
        add  t3, s0, t0
        add  t3, t3, t2
        lb   t4, 0(t3)
        add  t5, s2, t2
        lb   t6, 0(t5)
        bne  t4, t6, miss
        addi t2, t2, 1
        j    cmp
    hit:
        addi s4, s4, 1
    miss:
        addi t0, t0, 1
        j    pos
    done:
        li  t7, result
        sd  s4, 0(t7)
        halt
        .data
    hay:    .byte 97, 98, 99, 97, 98, 97, 98, 99, 100, 97, 98, 99
            .byte 99, 98, 97, 97, 98, 99, 97, 97, 98, 99, 98, 97
    needle: .byte 97, 98, 99
    result: .space 8
    )");
    // "abc" occurs at positions 0, 5, 9, 15(? count verified by the
    // functional reference equivalence; here pin the exact value):
    EXPECT_EQ(v, 5u);
}

TEST(Programs, IncrementalHistogramWithDtt)
{
    // Samples stream into 4 buckets; a DTT maintains the running
    // maximum bucket count whenever a bucket changes.
    std::uint64_t v = runBoth(R"(
    main:
        treg 0, maxer
        li  s0, samples
        li  s1, 24
        li  t0, 0
    feed:
        bge  t0, s1, done
        slli t1, t0, 3
        add  t1, t1, s0
        ld   t2, 0(t1)       # sample value 0..3
        slli t2, t2, 3
        li   t3, buckets
        add  t3, t3, t2
        ld   t4, 0(t3)
        addi t4, t4, 1
        tsd  t4, 0(t3), 0    # bucket update triggers the maxer
        addi t0, t0, 1
        j    feed
    done:
        twait 0
        li  t5, curmax
        ld  t6, 0(t5)
        li  t7, result
        sd  t6, 0(t7)
        halt
    maxer:
        li  t0, buckets
        li  t1, 0            # max
        li  t2, 0            # idx
    scan:
        ld   t3, 0(t0)
        bge  t1, t3, keep
        mv   t1, t3
    keep:
        addi t0, t0, 8
        addi t2, t2, 1
        li   t4, 4
        blt  t2, t4, scan
        li  t5, curmax
        sd  t1, 0(t5)
        tret
        .data
    samples: .quad 0, 1, 2, 2, 3, 1, 1, 0, 2, 1, 1, 3
             .quad 1, 2, 0, 1, 3, 1, 2, 1, 0, 2, 1, 1
    buckets: .space 32
    curmax:  .space 8
    result:  .space 8
    )");
    // Bucket 1 receives 11 samples: the maintained max must be 11.
    EXPECT_EQ(v, 11u);
}

} // namespace
} // namespace dttsim
