/**
 * @file
 * Profiler tests: redundant-load and silent-store classification on
 * hand-built programs with known counts, and the instruction-reuse
 * (redundant computation) analysis.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "profile/redundancy.h"
#include "profile/reuse.h"

namespace dttsim::profile {
namespace {

TEST(Redundancy, RepeatLoadsOfUnchangedDataAreRedundant)
{
    // Load the same location 5 times: 4 redundant.
    RedundancyReport r = profileRedundancy(isa::assemble(R"(
        li a0, buf
        ld x5, 0(a0)
        ld x5, 0(a0)
        ld x5, 0(a0)
        ld x5, 0(a0)
        ld x5, 0(a0)
        halt
        .data
    buf: .quad 7
    )"));
    EXPECT_EQ(r.loads, 5u);
    EXPECT_EQ(r.redundantLoads, 4u);
    EXPECT_DOUBLE_EQ(r.redundantLoadPct(), 80.0);
}

TEST(Redundancy, StoreChangingValueBreaksRedundancy)
{
    RedundancyReport r = profileRedundancy(isa::assemble(R"(
        li a0, buf
        ld x5, 0(a0)       # first load: not redundant
        li x6, 9
        sd x6, 0(a0)       # non-silent store
        ld x5, 0(a0)       # value changed: not redundant
        ld x5, 0(a0)       # redundant
        halt
        .data
    buf: .quad 7
    )"));
    EXPECT_EQ(r.loads, 3u);
    EXPECT_EQ(r.redundantLoads, 1u);
    EXPECT_EQ(r.stores, 1u);
    EXPECT_EQ(r.silentStores, 0u);
}

TEST(Redundancy, SilentStorePreservesLoadRedundancy)
{
    RedundancyReport r = profileRedundancy(isa::assemble(R"(
        li a0, buf
        ld x5, 0(a0)
        li x6, 7
        sd x6, 0(a0)       # silent (buf already 7)
        ld x5, 0(a0)       # still redundant
        halt
        .data
    buf: .quad 7
    )"));
    EXPECT_EQ(r.silentStores, 1u);
    EXPECT_EQ(r.redundantLoads, 1u);
}

TEST(Redundancy, DistinctAddressesIndependent)
{
    RedundancyReport r = profileRedundancy(isa::assemble(R"(
        li a0, buf
        ld x5, 0(a0)
        ld x5, 8(a0)
        ld x5, 0(a0)
        halt
        .data
    buf: .quad 1, 2
    )"));
    EXPECT_EQ(r.loads, 3u);
    EXPECT_EQ(r.redundantLoads, 1u);
}

TEST(Redundancy, CountsOnlyMainThread)
{
    // Handler loads are not classified.
    RedundancyReport r = profileRedundancy(isa::assemble(R"(
    main:
        treg 0, handler
        li a0, buf
        li x5, 3
        tsd x5, 0(a0), 0
        halt
    handler:
        li x6, buf
        ld x7, 0(x6)
        ld x7, 0(x6)
        tret
        .data
    buf: .space 8
    )"));
    EXPECT_EQ(r.loads, 0u);
    EXPECT_EQ(r.stores, 1u);
}

TEST(Reuse, RepeatedIdenticalComputationIsReusable)
{
    // The loop body recomputes the same values from the same inputs
    // every iteration (loop-invariant), so the second iteration
    // onward is fully reusable except the induction updates.
    ReuseReport r = profileReuse(isa::assemble(R"(
        li x8, 10
        li x9, 0
    top:
        li x5, 6            # same operands every iteration
        li x6, 7
        mul x7, x5, x6
        addi x9, x9, 1
        blt x9, x8, top
        halt
    )"));
    // li/mul: reusable from iteration 2 (3 insts x 9 iters = 27).
    // addi/blt: operands change every iteration, never reusable.
    EXPECT_EQ(r.reusable, 27u);
}

TEST(Reuse, ChangingOperandsNotReusable)
{
    ReuseReport r = profileReuse(isa::assemble(R"(
        li x5, 0
        addi x5, x5, 1
        addi x5, x5, 1
        addi x5, x5, 1
        halt
    )"));
    // Each addi sees a different x5: the two reexecutions differ.
    EXPECT_EQ(r.reusable, 0u);
}

TEST(Reuse, LoadReuseRequiresSameMemoryValue)
{
    ReuseReport r = profileReuse(isa::assemble(R"(
        li a0, buf
        ld x5, 0(a0)
        ld x5, 0(a0)       # static inst repeated? No: distinct pcs
        halt
        .data
    buf: .quad 3
    )"));
    // Distinct static loads never match each other.
    EXPECT_EQ(r.reusableLoads, 0u);

    ReuseReport r2 = profileReuse(isa::assemble(R"(
        li x8, 3
        li x9, 0
        li a0, buf
    top:
        ld x5, 0(a0)       # same static load, same addr, same value
        addi x9, x9, 1
        blt x9, x8, top
        halt
        .data
    buf: .quad 3
    )"));
    EXPECT_EQ(r2.reusableLoads, 2u);
}

TEST(Reuse, StoreReuseTracksValueAndAddress)
{
    ReuseReport r = profileReuse(isa::assemble(R"(
        li x8, 3
        li x9, 0
        li a0, buf
        li x5, 7
    top:
        sd x5, 0(a0)       # identical silent re-store
        addi x9, x9, 1
        blt x9, x8, top
        halt
        .data
    buf: .space 8
    )"));
    // sd reusable twice (identical re-store); the one-shot li's and
    // the changing addi/blt are not.
    EXPECT_EQ(r.reusable, 2u);
}

TEST(Reuse, WorkloadStyleRedundancyIsHigh)
{
    // A baseline-style kernel rereading unchanged data has high load
    // reuse.
    ReuseReport r = profileReuse(isa::assemble(R"(
        li x8, 20
        li x9, 0
        li a0, buf
    rescan:
        li  x5, 0
        li  x6, 4
    inner:
        slli x7, x5, 3
        add  x7, x7, a0
        ld   x7, 0(x7)
        addi x5, x5, 1
        blt  x5, x6, inner
        addi x9, x9, 1
        blt  x9, x8, rescan
        halt
        .data
    buf: .quad 1, 2, 3, 4
    )"));
    EXPECT_GT(r.loadReusePct(), 90.0);
}

} // namespace
} // namespace dttsim::profile
