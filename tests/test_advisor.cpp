/**
 * @file
 * Trigger-advisor tests: the compiler-support pass must identify
 * trigger-data stores (silent, heavily re-read) and redundant-
 * computation sites (high-volume silent writers) on hand-built
 * programs with known structure, and on the mcf workload it must
 * pick the same store the hand-written DTT variant instruments.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "profile/advisor.h"
#include "workloads/workload.h"

namespace dttsim::profile {
namespace {

TEST(Advisor, FindsSilentHeavilyReadStore)
{
    // Store A rewrites the same value (silent) and its datum is read
    // 4 times per iteration; store B always changes and is read once.
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 16
        li a0, dataA
        li a1, dataB
    top:
        li t0, 7
        sd t0, 0(a0)        # store A: silent after iteration 1
        add t1, s0, s0
        sd t1, 0(a1)        # store B: changes every iteration
        ld t2, 0(a0)
        ld t2, 0(a0)
        ld t2, 0(a0)
        ld t2, 0(a0)
        ld t3, 0(a1)
        addi s0, s0, 1
        blt s0, s1, top
        halt
        .data
    dataA: .space 8
    dataB: .space 8
    )");
    auto ranked = adviseTriggers(prog, 5,
                                 AdvisorRanking::TriggerData);
    ASSERT_GE(ranked.size(), 2u);
    // Store A is at pc 4+1=5? Identify by properties instead of pc.
    const TriggerCandidate &top = ranked[0];
    EXPECT_EQ(top.executions, 16u);
    EXPECT_GT(top.silentPct, 90.0);  // 15/16 silent
    EXPECT_NEAR(top.meanReadsPerStore, 4.0, 0.5);
    EXPECT_GT(top.triggerScore, ranked[1].triggerScore);
}

TEST(Advisor, NeverSilentStoreScoresZero)
{
    isa::Program prog = isa::assemble(R"(
        li s0, 1
        li s1, 16
        li a0, data
    top:
        sd s0, 0(a0)         # value changes every iteration
        ld t0, 0(a0)
        addi s0, s0, 1
        blt s0, s1, top
        halt
        .data
    data: .space 8
    )");
    auto ranked = adviseTriggers(prog, 5,
                                 AdvisorRanking::TriggerData);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked[0].silent, 0u);
    EXPECT_EQ(ranked[0].triggerScore, 0.0);
}

TEST(Advisor, NoiseFilterDropsRareStores)
{
    isa::Program prog = isa::assemble(R"(
        li a0, data
        li t0, 1
        sd t0, 0(a0)         # executes once
        halt
        .data
    data: .space 8
    )");
    EXPECT_TRUE(adviseTriggers(prog, 5).empty());
}

TEST(Advisor, McfTopTriggerIsTheCostUpdateStore)
{
    workloads::WorkloadParams params;
    params.iterations = 6;
    isa::Program prog = workloads::mcfWorkload().build(
        workloads::Variant::Baseline, params);

    auto trig = adviseTriggers(prog, 1, AdvisorRanking::TriggerData);
    ASSERT_EQ(trig.size(), 1u);
    // The cost-update store executes iterations x 8 updates times.
    EXPECT_EQ(trig[0].executions, 6u * 8u);
    EXPECT_GT(trig[0].meanReadsPerStore, 2.0);

    auto elim = adviseTriggers(prog, 1,
                               AdvisorRanking::RedundantComputation);
    ASSERT_EQ(elim.size(), 1u);
    // The redundant-computation site is the potential[] writer:
    // executes nodes x iterations times, nearly always silently.
    EXPECT_GT(elim[0].executions, 10000u);
    EXPECT_GT(elim[0].silentPct, 90.0);
}

TEST(Advisor, StaticallyUnsafeStoresAreExcluded)
{
    // Both loop stores execute 16 times and would pass the noise
    // filter, but the store to 'shared' writes a chunk the trigger-0
    // thread body also writes: converting it to a triggering store
    // would race, so the advisor must never recommend it. The store
    // to 'priv' is untouched by any handler and stays eligible.
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li s0, 0
            li s1, 16
            li a0, trig_a
            li a1, shared
            li a2, priv
            li t0, 7
        top:
            sd t0, 0(a1)       # conflicts with the handler's writes
            sd t0, 0(a2)       # safe
            tsd s0, 0(a0), 0
            twait 0
            ld t1, 0(a1)
            ld t2, 0(a2)
            addi s0, s0, 1
            blt s0, s1, top
            halt
        handler:
            li t5, 1
            li t6, shared
            sd t5, 0(t6)
            tret
        .data
        trig_a: .space 8
        shared: .space 8
        priv: .space 8
    )");

    std::uint64_t handlerPc = prog.label("handler");
    std::vector<std::uint64_t> sdPcs;
    for (std::uint64_t pc = 0; pc < handlerPc; ++pc)
        if (prog.text()[pc].op == isa::Opcode::SD)
            sdPcs.push_back(pc);
    ASSERT_EQ(sdPcs.size(), 2u);
    std::uint64_t sharedPc = sdPcs[0];
    std::uint64_t privPc = sdPcs[1];

    auto ranked = adviseTriggers(prog, 10,
                                 AdvisorRanking::TriggerData);
    bool sawShared = false;
    bool sawPriv = false;
    for (const TriggerCandidate &c : ranked) {
        sawShared = sawShared || c.storePc == sharedPc;
        sawPriv = sawPriv || c.storePc == privPc;
    }
    EXPECT_FALSE(sawShared);
    EXPECT_TRUE(sawPriv);
}

TEST(Advisor, ShadowProfileAgreesWithHandAnnotatedMcfTrigger)
{
    // Acceptance pin for the shadow-profile ranking: on mcf it must
    // auto-select the very store the hand-written DTT variant
    // instruments — the same site the TriggerData ranking picks.
    workloads::WorkloadParams params;
    params.iterations = 6;
    isa::Program prog = workloads::mcfWorkload().build(
        workloads::Variant::Baseline, params);

    auto byTrig = adviseTriggers(prog, 1, AdvisorRanking::TriggerData);
    auto byShadow = adviseTriggers(prog, 1,
                                   AdvisorRanking::ShadowProfile);
    ASSERT_EQ(byTrig.size(), 1u);
    ASSERT_EQ(byShadow.size(), 1u);
    EXPECT_EQ(byShadow[0].storePc, byTrig[0].storePc);
    EXPECT_EQ(byShadow[0].executions, 6u * 8u);
    EXPECT_GT(byShadow[0].meanReadsPerStore, 2.0);
    EXPECT_GT(byShadow[0].silentPct, 50.0);
}

TEST(Advisor, TiedScoresBreakByAscendingPc)
{
    // Two stores with byte-identical behaviour (both silent after
    // iteration 1, both re-read twice) score equally; the ranking
    // must then order them by program counter, not by map/hash
    // iteration order. Regression pin for deterministic advice.
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 16
        li a0, dataA
        li a1, dataB
        li t0, 7
    top:
        sd t0, 0(a0)
        sd t0, 0(a1)
        ld t1, 0(a0)
        ld t1, 0(a0)
        ld t2, 0(a1)
        ld t2, 0(a1)
        addi s0, s0, 1
        blt s0, s1, top
        halt
        .data
    dataA: .space 8
    dataB: .space 8
    )");

    for (AdvisorRanking ranking : {AdvisorRanking::TriggerData,
                                   AdvisorRanking::ShadowProfile}) {
        auto ranked = adviseTriggers(prog, 5, ranking);
        ASSERT_EQ(ranked.size(), 2u);
        EXPECT_EQ(ranked[0].triggerScore, ranked[1].triggerScore);
        EXPECT_LT(ranked[0].storePc, ranked[1].storePc);
    }
}

TEST(Advisor, RankingsAreSorted)
{
    workloads::WorkloadParams params;
    params.iterations = 3;
    isa::Program prog = workloads::gzipWorkload().build(
        workloads::Variant::Baseline, params);
    auto ranked = adviseTriggers(prog, 10,
                                 AdvisorRanking::TriggerData);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].triggerScore, ranked[i].triggerScore);
}

} // namespace
} // namespace dttsim::profile
