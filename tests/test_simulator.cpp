/**
 * @file
 * Simulator-facade tests: wiring, result-record population, the
 * accelerator-kind switch, and the cycle guard.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/simulator.h"

namespace dttsim::sim {
namespace {

const char *kDttProgram = R"(
main:
    treg 0, handler
    li  a0, buf
    li  x5, 7
    tsd x5, 0(a0), 0
    twait 0
    halt
handler:
    li  x6, out
    li  x7, 42
    sd  x7, 0(x6)
    tret
    .data
buf: .space 8
out: .space 8
)";

TEST(Simulator, PopulatesResultRecord)
{
    isa::Program p = isa::assemble(kDttProgram);
    SimResult r = runProgram(SimConfig{}, p);
    EXPECT_TRUE(r.halted);
    EXPECT_FALSE(r.hitMaxCycles);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.mainCommitted, 0u);
    EXPECT_GT(r.dttCommitted, 0u);
    EXPECT_EQ(r.totalCommitted, r.mainCommitted + r.dttCommitted);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(r.tstores, 1u);
    EXPECT_EQ(r.fired, 1u);
    EXPECT_EQ(r.dttSpawns, 1u);
    EXPECT_GT(r.l1dAccesses, 0u);
    EXPECT_GT(r.l1iAccesses, 0u);
    EXPECT_GT(r.activityUnits, 0u);
}

TEST(Simulator, EnableDttFalseGivesBaselineMachine)
{
    isa::Program p = isa::assemble(kDttProgram);
    SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    Simulator s(cfg, p);
    EXPECT_EQ(s.controller(), nullptr);
    SimResult r = s.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.dttSpawns, 0u);
    EXPECT_EQ(r.dttCommitted, 0u);
    // The triggering store behaved as a plain store; the handler
    // never ran.
    EXPECT_EQ(s.core().memory().read64(p.dataSymbol("out")), 0u);
    EXPECT_EQ(s.core().memory().read64(p.dataSymbol("buf")), 7u);
}

TEST(Simulator, DttMachineRunsHandler)
{
    isa::Program p = isa::assemble(kDttProgram);
    SimConfig cfg;
    Simulator s(cfg, p);
    s.run();
    EXPECT_EQ(s.core().memory().read64(p.dataSymbol("out")), 42u);
}

TEST(Simulator, MaxCyclesGuard)
{
    isa::Program p = isa::assemble("spin:\n jal x0, spin");
    SimConfig cfg;
    cfg.maxCycles = 2000;
    SimResult r = runProgram(cfg, p);
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.hitMaxCycles);
    EXPECT_EQ(r.cycles, 2000u);
}

TEST(Simulator, BranchStatsPropagate)
{
    isa::Program p = isa::assemble(R"(
        li x5, 0
        li x6, 100
    top:
        addi x5, x5, 1
        blt  x5, x6, top
        halt
    )");
    SimResult r = runProgram(SimConfig{}, p);
    EXPECT_EQ(r.condBranches, 100u);
    // gshare warms one history pattern at a time: ~historyBits + 2
    // mispredicts while the all-taken history fills, then none.
    EXPECT_LT(r.condMispredicts, 20u);
}

TEST(Simulator, ConfigurableCoreGeometry)
{
    isa::Program p = isa::assemble(kDttProgram);
    SimConfig narrow;
    narrow.core.fetchWidth = 1;
    narrow.core.issueWidth = 1;
    narrow.core.commitWidth = 1;
    SimResult slow = runProgram(narrow, p);
    SimResult fast = runProgram(SimConfig{}, p);
    EXPECT_TRUE(slow.halted);
    EXPECT_GT(slow.cycles, fast.cycles);
}

} // namespace
} // namespace dttsim::sim
