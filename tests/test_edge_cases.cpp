/**
 * @file
 * Edge-case coverage across modules: extreme operand values in the
 * executor, FP conversion clamping, fetch-path corner cases in the
 * timing core, trace output, controller misuse diagnostics, and the
 * DTT opcodes under a null controller.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/log.h"
#include "core/controller.h"
#include "cpu/executor.h"
#include "cpu/ooo_core.h"
#include "isa/assembler.h"
#include "mem/hierarchy.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

std::uint64_t
regAfter(const std::string &body, int reg)
{
    cpu::FunctionalRunner runner(isa::assemble(body + "\n halt\n"));
    EXPECT_TRUE(runner.run(1u << 20).halted);
    return runner.mainState().getX(reg);
}

TEST(ExecutorEdge, ShiftAmountsMaskTo63)
{
    EXPECT_EQ(regAfter("li x5, 1\n li x6, 64\n sll x7, x5, x6", 7),
              1u);  // 64 & 63 == 0
    EXPECT_EQ(regAfter("li x5, 1\n li x6, 65\n sll x7, x5, x6", 7),
              2u);
    EXPECT_EQ(regAfter("li x5, -1\n li x6, 127\n srl x7, x5, x6", 7),
              1u);  // 127 & 63 == 63
}

TEST(ExecutorEdge, ImmediateLogicalsWithNegativeImm)
{
    EXPECT_EQ(regAfter("li x5, 0x0f\n xori x5, x5, -1", 5),
              ~0x0full);
    EXPECT_EQ(regAfter("li x5, 0\n ori x5, x5, -16", 5),
              static_cast<std::uint64_t>(-16));
    EXPECT_EQ(regAfter("li x5, -1\n andi x5, x5, -16", 5),
              static_cast<std::uint64_t>(-16));
}

TEST(ExecutorEdge, SltiBoundaries)
{
    EXPECT_EQ(regAfter("li x5, -1\n slti x6, x5, 0", 6), 1u);
    EXPECT_EQ(regAfter("li x5, 0\n slti x6, x5, 0", 6), 0u);
}

TEST(ExecutorEdge, FcvtClampsNonFinite)
{
    // inf -> INT64_MAX, -inf -> INT64_MIN, nan -> 0.
    cpu::FunctionalRunner runner(isa::assemble(R"(
        fli f1, 1.0
        fli f2, 0.0
        fdiv f3, f1, f2      # +inf
        fneg f4, f3          # -inf
        fsub f5, f3, f3      # nan
        fcvtwd x5, f3
        fcvtwd x6, f4
        fcvtwd x7, f5
        halt
    )"));
    ASSERT_TRUE(runner.run().halted);
    EXPECT_EQ(runner.mainState().getX(5),
              0x7fffffffffffffffull);
    EXPECT_EQ(runner.mainState().getX(6),
              0x8000000000000000ull);
    EXPECT_EQ(runner.mainState().getX(7), 0u);
}

TEST(ExecutorEdge, MulWrapsLikeHardware)
{
    EXPECT_EQ(regAfter(
        "li x5, 0x7fffffffffffffff\n li x6, 2\n mul x7, x5, x6", 7),
        0xfffffffffffffffeull);
}

TEST(ExecutorEdge, JalrComputedTarget)
{
    // Jump table: x5 selects one of two blocks via jalr.
    cpu::FunctionalRunner runner(isa::assemble(R"(
    main:
        li   x5, 4          # target pc (blockB)
        jalr x0, x5, 0
    blockA:
        li   x6, 1
        halt
    blockB:
        li   x6, 2
        halt
    )"));
    ASSERT_TRUE(runner.run().halted);
    EXPECT_EQ(runner.mainState().getX(6), 2u);
}

TEST(ExecutorEdge, DttOpsAreNoOpsWithoutHooks)
{
    // Null-hooks functional run: treg/twait/tchk/tclr behave as
    // no-ops, tstores are plain stores.
    mem::Memory memory;
    isa::Program p = isa::assemble(R"(
        treg 0, main
    main:
        li  a0, buf
        li  x5, 3
        tsd x5, 0(a0), 0
        twait 0
        tchk x6, 0
        tclr 0
        halt
        .data
    buf: .space 8
    )");
    cpu::loadData(p, memory);
    cpu::ArchState st;
    st.reset(p.entry(), cpu::stackFor(0));
    for (int i = 0; i < 32; ++i) {
        cpu::StepInfo info = cpu::step(st, memory, p, nullptr);
        if (info.halted)
            break;
    }
    EXPECT_EQ(memory.read64(p.dataSymbol("buf")), 3u);
    EXPECT_EQ(st.getX(6), 0u);  // tchk with no hooks reads 0
}

TEST(CoreEdge, TraceFileReceivesPipelineEvents)
{
    isa::Program prog = isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 1
        tsd x5, 0(a0), 0
        twait 0
        halt
    handler:
        tret
        .data
    buf: .space 8
    )");
    std::string path = ::testing::TempDir() + "dttsim_trace.log";
    std::FILE *f = std::fopen(path.c_str(), "w+");
    ASSERT_NE(f, nullptr);
    {
        sim::Simulator s(sim::SimConfig{}, prog);
        s.core().setTraceFile(f);
        ASSERT_TRUE(s.run().halted);
    }
    std::fflush(f);
    std::rewind(f);
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_NE(contents.find("FET"), std::string::npos);
    EXPECT_NE(contents.find("DIS"), std::string::npos);
    EXPECT_NE(contents.find("ISS"), std::string::npos);
    EXPECT_NE(contents.find("CMP"), std::string::npos);
    EXPECT_NE(contents.find("RET"), std::string::npos);
    EXPECT_NE(contents.find("SPW"), std::string::npos);
    EXPECT_NE(contents.find("tsd"), std::string::npos);
}

TEST(CoreEdge, IcountPolicySharesFetchFairly)
{
    // Two long-running threads (main + co-runner) on a narrow core:
    // both must make progress (ICOUNT prevents starvation).
    isa::Program prog = isa::assemble(R"(
        li x5, 0
        li x6, 3000
    top:
        addi x5, x5, 1
        blt  x5, x6, top
        halt
    )");
    isa::Inst addi;
    addi.op = isa::Opcode::ADDI;
    addi.rd = 7;
    addi.rs1 = 7;
    addi.imm = 1;
    std::uint64_t spin = prog.append(addi);
    isa::Inst jal;
    jal.op = isa::Opcode::JAL;
    jal.imm = static_cast<std::int64_t>(spin);
    prog.append(jal);

    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    cfg.core.fetchWidth = 2;
    sim::Simulator s(cfg, prog);
    s.core().startCoRunner(1, spin);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    std::uint64_t co = s.core().stats().get("coRunnerCommitted");
    // The co-runner committed a comparable amount of work.
    EXPECT_GT(co, r.mainCommitted / 4);
}

TEST(ControllerEdge, RegistryCapacityEnforced)
{
    dtt::DttConfig cfg;
    cfg.maxTriggers = 2;
    dtt::DttController c(cfg, 4);
    c.onTregCommit(1, 10);
    EXPECT_THROW(c.onTregCommit(2, 10), FatalError);
    EXPECT_THROW(c.chk(-1), FatalError);
}

TEST(ControllerEdge, TstoreDoneUnderflowPanics)
{
    dtt::DttController c(dtt::DttConfig{}, 4);
    EXPECT_THROW(c.onTstoreDone(0), PanicError);
}

TEST(ControllerEdge, SpawnLatencyDelaysFirstHandlerWork)
{
    auto run_with_latency = [](Cycle lat) {
        isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li  a0, buf
            li  x5, 1
            tsd x5, 0(a0), 0
            twait 0
            halt
        handler:
            tret
            .data
        buf: .space 8
        )");
        sim::SimConfig cfg;
        cfg.dtt.spawnLatency = lat;
        return sim::runProgram(cfg, prog).cycles;
    };
    EXPECT_GT(run_with_latency(200), run_with_latency(1) + 100);
}

TEST(SimulatorEdge, ZeroIterationWorkloadStillWellFormed)
{
    // iterations=1 is the practical minimum; builds and matches.
    workloads::WorkloadParams p;
    p.iterations = 1;
    for (const char *name : {"mcf", "gcc", "vortex"}) {
        isa::Program prog = workloads::findWorkload(name).build(
            workloads::Variant::Dtt, p);
        cpu::FunctionalRunner ref(prog);
        ASSERT_TRUE(ref.run(1ull << 26).halted) << name;
        sim::Simulator s(sim::SimConfig{}, prog);
        ASSERT_TRUE(s.run().halted) << name;
        EXPECT_EQ(workloads::resultChecksum(prog, s.core().memory()),
                  workloads::resultChecksum(prog, ref.memory()))
            << name;
    }
}

} // namespace
} // namespace dttsim
