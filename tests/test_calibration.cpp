/**
 * @file
 * Calibration regression: the headline reproduction is a *shape* —
 * who wins, by roughly what factor, where the crossover sits. These
 * tests pin that shape in wide bands so refactoring the simulator or
 * workloads cannot silently drift the reproduction away from the
 * paper's results (up to 5.9X, averaging 46%, gcc-class crossover).
 * Reduced iteration counts keep runtime modest; bands are set
 * accordingly wide.
 */

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

double
speedupOf(const std::string &name, int iterations)
{
    const workloads::Workload &w = workloads::findWorkload(name);
    workloads::WorkloadParams p;
    p.iterations = iterations;
    sim::SimConfig base_cfg;
    base_cfg.accel = cpu::AccelKind::None;
    sim::SimResult base = sim::runProgram(
        base_cfg, w.build(workloads::Variant::Baseline, p));
    sim::SimResult dtt = sim::runProgram(
        sim::SimConfig{}, w.build(workloads::Variant::Dtt, p));
    EXPECT_TRUE(base.halted && dtt.halted) << name;
    return static_cast<double>(base.cycles)
        / static_cast<double>(dtt.cycles);
}

TEST(Calibration, ArtIsTheMultiXHeadliner)
{
    double s = speedupOf("art", 10);
    EXPECT_GT(s, 3.5);
    EXPECT_LT(s, 8.0);
}

TEST(Calibration, McfAndTwolfAreStrongWinners)
{
    EXPECT_GT(speedupOf("mcf", 8), 1.25);
    EXPECT_GT(speedupOf("twolf", 8), 1.25);
}

TEST(Calibration, GccIsTheCrossover)
{
    double s = speedupOf("gcc", 8);
    EXPECT_GT(s, 0.85);
    EXPECT_LT(s, 1.08);
}

TEST(Calibration, SuiteAverageInPaperBand)
{
    // Paper: "averaging 46%". Accept a generous band around it at
    // reduced iteration counts.
    double sum = 0;
    int n = 0;
    for (const workloads::Workload *w : workloads::allWorkloads()) {
        sum += speedupOf(w->info().name, 6);
        ++n;
    }
    double mean = sum / n;
    EXPECT_GT(mean, 1.25);
    EXPECT_LT(mean, 1.75);
}

TEST(Calibration, EveryWinnerActuallyWins)
{
    // All benchmarks except the designated crossover must not lose.
    for (const workloads::Workload *w : workloads::allWorkloads()) {
        if (w->info().name == "gcc")
            continue;
        EXPECT_GT(speedupOf(w->info().name, 6), 0.99)
            << w->info().name;
    }
}

} // namespace
} // namespace dttsim
