/**
 * @file
 * Whole-stack integration tests: nontrivial assembly programs
 * (recursion through the stack, FP numerics, pointer structures,
 * multi-trigger pipelines) run on both the functional reference and
 * the timing simulator, checking results and first-order behaviour.
 */

#include <gtest/gtest.h>

#include "cpu/executor.h"
#include "isa/assembler.h"
#include "sim/simulator.h"

namespace dttsim {
namespace {

std::uint64_t
runBoth(const std::string &src, const char *symbol)
{
    isa::Program prog = isa::assemble(src);

    cpu::FunctionalRunner ref(prog);
    EXPECT_TRUE(ref.run(1u << 24).halted);
    std::uint64_t func_val =
        ref.memory().read64(prog.dataSymbol(symbol));

    sim::Simulator s(sim::SimConfig{}, prog);
    sim::SimResult r = s.run();
    EXPECT_TRUE(r.halted);
    std::uint64_t sim_val =
        s.core().memory().read64(prog.dataSymbol(symbol));
    EXPECT_EQ(func_val, sim_val);
    return sim_val;
}

TEST(Integration, RecursiveFibonacciViaStack)
{
    // fib(12) = 144 with real call/return and stack spills.
    std::uint64_t v = runBoth(R"(
    main:
        li   a0, 12
        call fib
        li   t0, result
        sd   a0, 0(t0)
        halt
    fib:
        li   t0, 2
        blt  a0, t0, base
        addi sp, sp, -24
        sd   ra, 0(sp)
        sd   a0, 8(sp)
        addi a0, a0, -1
        call fib
        sd   a0, 16(sp)        # fib(n-1)
        ld   a0, 8(sp)
        addi a0, a0, -2
        call fib
        ld   t1, 16(sp)
        add  a0, a0, t1
        ld   ra, 0(sp)
        addi sp, sp, 24
        ret
    base:
        ret                    # fib(0)=0, fib(1)=1: a0 unchanged
        .data
    result: .space 8
    )", "result");
    EXPECT_EQ(v, 144u);
}

TEST(Integration, LinkedListSum)
{
    // Walk a 5-node list laid out in the data segment.
    std::uint64_t v = runBoth(R"(
    main:
        li   t0, n0
        li   t1, 0
    walk:
        beqz t0, done
        ld   t2, 0(t0)      # value
        add  t1, t1, t2
        ld   t0, 8(t0)      # next
        j    walk
    done:
        li   t3, result
        sd   t1, 0(t3)
        halt
        .data
    n0: .quad 10
        .quad 0x100010      # &n1: nodes are 16B from kDataBase
    n1: .quad 20
        .quad 0x100020
    n2: .quad 30
        .quad 0x100030
    n3: .quad 31
        .quad 0x100040
    n4: .quad 9
        .quad 0
    result: .space 8
    )", "result");
    EXPECT_EQ(v, 100u);
}

TEST(Integration, NewtonSqrtConverges)
{
    // Newton iteration for sqrt(2), fixed-point result (x * 2^32).
    std::uint64_t v = runBoth(R"(
    main:
        fli  f1, 2.0          # target
        fli  f2, 1.0          # x0
        li   t0, 20
    iter:
        fdiv f3, f1, f2
        fadd f2, f2, f3
        fli  f4, 0.5
        fmul f2, f2, f4
        addi t0, t0, -1
        bnez t0, iter
        fli  f5, 4294967296.0
        fmul f2, f2, f5
        fcvtwd t1, f2
        li   t2, result
        sd   t1, 0(t2)
        halt
        .data
    result: .space 8
    )", "result");
    // sqrt(2) * 2^32 = 6074000999.79...
    EXPECT_EQ(v, 6074000999u);
}

TEST(Integration, ChainedTriggersPipeline)
{
    // Trigger 0's handler triggers trigger 1 (a two-stage dataflow
    // pipeline): raw -> squared -> squared+1.
    std::uint64_t v = runBoth(R"(
    main:
        treg 0, stage1
        treg 1, stage2
        li  a0, raw
        li  t0, 6
        tsd t0, 0(a0), 0
        twait 0
        twait 1
        li  t1, final
        ld  t2, 0(t1)
        li  t3, result
        sd  t2, 0(t3)
        halt
    stage1:
        mul t0, a1, a1
        li  t1, mid
        tsd t0, 0(t1), 1     # nested trigger
        tret
    stage2:
        addi t0, a1, 1
        li  t1, final
        sd  t0, 0(t1)
        tret
        .data
    raw:    .space 8
    mid:    .space 8
    final:  .space 8
    result: .space 8
    )", "result");
    EXPECT_EQ(v, 37u);
}

TEST(Integration, TwoIndependentTriggersRunConcurrently)
{
    isa::Program prog = isa::assemble(R"(
    main:
        treg 0, h0
        treg 1, h1
        li  a0, bufA
        li  a1, bufB
        li  t0, 5
        tsd t0, 0(a0), 0
        tsd t0, 0(a1), 1
        twait 0
        twait 1
        li  t1, outA
        ld  t2, 0(t1)
        li  t1, outB
        ld  t3, 0(t1)
        add t2, t2, t3
        li  t1, result
        sd  t2, 0(t1)
        halt
    h0:
        li  t0, 400
    spin0:
        addi t0, t0, -1
        bnez t0, spin0
        li  t1, outA
        li  t2, 1
        sd  t2, 0(t1)
        tret
    h1:
        li  t0, 400
    spin1:
        addi t0, t0, -1
        bnez t0, spin1
        li  t1, outB
        li  t2, 2
        sd  t2, 0(t1)
        tret
        .data
    bufA:   .space 8
    bufB:   .space 8
    outA:   .space 8
    outB:   .space 8
    result: .space 8
    )");
    sim::Simulator s(sim::SimConfig{}, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")), 3u);
    EXPECT_EQ(r.dttSpawns, 2u);
    // Two ~1200-cycle handlers overlapping: total must be well under
    // the serial sum plus main-thread time.
    EXPECT_LT(r.cycles, 3500u);
}

TEST(Integration, TwaitStallCyclesAccounted)
{
    isa::Program prog = isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  t0, 1
        tsd t0, 0(a0), 0
        twait 0
        halt
    handler:
        li  t0, 2000
    spin:
        addi t0, t0, -1
        bnez t0, spin
        tret
        .data
    buf: .space 8
    )");
    sim::SimResult r = sim::runProgram(sim::SimConfig{}, prog);
    ASSERT_TRUE(r.halted);
    // The main thread had nothing to overlap: most of the run is
    // attributed to the TWAIT stall.
    EXPECT_GT(r.twaitStallCycles, r.cycles / 2);
}

TEST(Integration, HeavySmtContentionStillCorrect)
{
    // Many triggers with busy handlers on a narrow 2-wide machine.
    isa::Program prog = isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  s0, 0
        li  s1, 30
    loop:
        addi s0, s0, 1
        tsd  s0, 0(a0), 0
        addi s0, s0, 1
        tsd  s0, 8(a0), 0
        blt  s0, s1, loop
        twait 0
        li  t0, acc
        ld  t1, 0(t0)
        li  t2, result
        sd  t1, 0(t2)
        halt
    handler:
        li  t0, acc
        ld  t1, 0(t0)
        addi t1, t1, 1
        sd  t1, 0(t0)
        li  t2, 50
    spin:
        addi t2, t2, -1
        bnez t2, spin
        tret
        .data
    buf:    .space 16
    acc:    .space 8
    result: .space 8
    )");
    sim::SimConfig cfg;
    cfg.core.fetchWidth = 2;
    cfg.core.issueWidth = 2;
    cfg.core.commitWidth = 2;
    cfg.core.numContexts = 3;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    // Every spawned handler bumped acc exactly once.
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")),
              r.dttSpawns);
    EXPECT_GT(r.dttSpawns, 0u);
}

} // namespace
} // namespace dttsim
