/**
 * @file
 * Fault-injection subsystem tests: FaultPlan determinism, the
 * differential-correctness matrix (every workload under transparent
 * faults must end byte-identical to the fault-free run), lossy-site
 * recovery through the software fallback idiom, the degradation
 * policies, and the forward-progress watchdog (the pinned livelock
 * reproducer). Registered under the `fault-smoke` ctest label.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/controller.h"
#include "isa/assembler.h"
#include "sim/diffcheck.h"
#include "sim/engine.h"
#include "sim/faultplan.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

using sim::FaultConfig;
using sim::FaultPlan;
using sim::FaultSite;

// ----- FaultPlan determinism ------------------------------------------

FaultConfig
planConfig(std::uint64_t seed, double rate, std::uint32_t mask)
{
    FaultConfig f;
    f.seed = seed;
    f.rate = rate;
    f.siteMask = mask;
    return f;
}

TEST(FaultPlan, SameSeedSameDecisions)
{
    FaultPlan a(planConfig(42, 0.3, sim::kAllFaultSites));
    FaultPlan b(planConfig(42, 0.3, sim::kAllFaultSites));
    for (int i = 0; i < 2000; ++i) {
        a.onCycle(static_cast<Cycle>(i));
        b.onCycle(static_cast<Cycle>(i));
        FaultSite s = static_cast<FaultSite>(
            i % static_cast<int>(FaultSite::NumSites));
        EXPECT_EQ(a.inject(s), b.inject(s));
    }
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
}

TEST(FaultPlan, DecisionsIndependentOfInterleaving)
{
    // Per-site opportunity counters: site A's decisions must not
    // depend on how many site-B opportunities happened in between.
    FaultPlan a(planConfig(7, 0.5, sim::kAllFaultSites));
    FaultPlan b(planConfig(7, 0.5, sim::kAllFaultSites));
    std::vector<bool> va, vb;
    for (int i = 0; i < 500; ++i) {
        va.push_back(a.inject(FaultSite::DenySpawn));
        a.inject(FaultSite::DropFiring);  // interleaved noise
    }
    for (int i = 0; i < 500; ++i)
        vb.push_back(b.inject(FaultSite::DenySpawn));
    EXPECT_EQ(va, vb);
}

TEST(FaultPlan, RateZeroAndOneAndMaskGating)
{
    FaultPlan never(planConfig(1, 0.0, sim::kAllFaultSites));
    FaultPlan always(planConfig(1, 1.0, sim::kAllFaultSites));
    FaultPlan masked(planConfig(1, 1.0,
                                sim::faultSiteBit(FaultSite::DenySpawn)));
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(never.inject(FaultSite::DropFiring));
        EXPECT_TRUE(always.inject(FaultSite::DropFiring));
        EXPECT_FALSE(masked.inject(FaultSite::DropFiring));
        EXPECT_TRUE(masked.inject(FaultSite::DenySpawn));
        EXPECT_FALSE(masked.armed(FaultSite::SquashThread));
        EXPECT_TRUE(masked.armed(FaultSite::DenySpawn));
    }
    EXPECT_EQ(never.injected(), 0u);
    EXPECT_EQ(never.fingerprint(), FaultPlan(planConfig(2, 0.0, 0))
                                       .fingerprint());
}

TEST(FaultPlan, RejectsNonsenseConfig)
{
    EXPECT_THROW(FaultPlan(planConfig(0, 1.5, 1)), FatalError);
    EXPECT_THROW(FaultPlan(planConfig(0, -0.1, 1)), FatalError);
    EXPECT_THROW(FaultPlan(planConfig(0, 0.5, 0xffffffffu)),
                 FatalError);
}

// ----- transparent-site differential matrix ---------------------------

sim::DiffChecker &
sharedChecker()
{
    static sim::DiffChecker checker;
    return checker;
}

class TransparentFaultMatrix
    : public ::testing::TestWithParam<const workloads::Workload *>
{
};

TEST_P(TransparentFaultMatrix, ByteIdenticalUnderEverySiteAndPolicy)
{
    const workloads::Workload &w = *GetParam();
    workloads::WorkloadParams params;
    params.iterations = 2;
    isa::Program prog = w.build(workloads::Variant::Dtt, params);

    const std::uint32_t site_masks[] = {
        sim::faultSiteBit(FaultSite::DenySpawn),
        sim::faultSiteBit(FaultSite::SquashThread),
        sim::faultSiteBit(FaultSite::SpuriousCoalesce),
        sim::kTransparentSites,
    };
    const dtt::FullQueuePolicy policies[] = {
        dtt::FullQueuePolicy::Stall,
        dtt::FullQueuePolicy::DropOldest,
    };
    for (dtt::FullQueuePolicy policy : policies) {
        for (std::uint32_t mask : site_masks) {
            sim::SimConfig cfg;
            cfg.dtt.fullPolicy = policy;
            cfg.fault = planConfig(99, 0.3, mask);
            sim::DiffReport rep =
                sharedChecker().check(cfg, prog, /*compare_regs=*/true);
            EXPECT_TRUE(rep.ok)
                << w.info().name << " policy "
                << dtt::fullQueuePolicyName(policy) << " mask 0x"
                << std::hex << mask << ": " << rep.detail;
        }
    }
}

std::vector<const workloads::Workload *>
allSubjects()
{
    return workloads::allWorkloads();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TransparentFaultMatrix,
    ::testing::ValuesIn(allSubjects()),
    [](const ::testing::TestParamInfo<const workloads::Workload *> &i) {
        return i.param->info().name;
    });

TEST(TransparentFaults, SquashRollsBackPartialNonIdempotentHandler)
{
    // Regression for the ammp-class divergence: a handler that
    // maintains an accumulator by deltas (acc += new - old after
    // updating the cache of old) is NOT idempotent under partial
    // execution. If a squash lands between the cache update and the
    // accumulator update without rolling the first store back, the
    // delta is lost forever and no re-run can repair it. The store
    // undo log must make the squash invisible.
    isa::Program prog = isa::assemble(R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 0
    li  s1, 40
loop:
    addi s0, s0, 1
    tsd  s0, 0(a0), 0
    twait 0
    blt  s0, s1, loop
    halt
handler:
    ld   t0, 0(a0)       # new value
    slli t0, t0, 1       # f(new) = 2*new
    li   t1, cache
    ld   t2, 0(t1)       # old f
    sd   t0, 0(t1)       # cache = f(new)   <- squash window opens
    sub  t2, t0, t2      # delta
    li   t1, acc
    ld   t3, 0(t1)
    add  t3, t3, t2
    sd   t3, 0(t1)       # acc += delta     <- squash window closes
    tret
    .data
buf:   .space 8
cache: .space 8
acc:   .space 8
)");
    // Squash every spawned thread once (rate 1.0 injects on the
    // first draw; the requeued re-run draws again and is squashed
    // again... so use a high-but-sub-1 rate across several seeds to
    // land squashes in many different windows).
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        sim::SimConfig cfg;
        cfg.fault = planConfig(
            seed, 0.7, sim::faultSiteBit(FaultSite::SquashThread));
        sim::DiffReport rep =
            sharedChecker().check(cfg, prog, /*compare_regs=*/true);
        EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.detail;
        EXPECT_GT(rep.faulted.faultsInjected, 0u);
    }
}

// ----- lossy sites + the software fallback idiom ----------------------

/** The Drop-recovery idiom (mirrors test_policies.cpp): after TWAIT,
 *  TCHK bit 62 routes to an inline recompute + TCLR. Final memory is
 *  identical whether the handler or the fallback produced it. */
const char *kFallbackProgram = R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 0
    li  s1, 12
loop:
    addi s0, s0, 1
    tsd  s0, 0(a0), 0
    tsd  s0, 8(a0), 0
    tsd  s0, 16(a0), 0
    blt  s0, s1, loop
    twait 0
    tchk t0, 0
    li   t1, 1
    slli t1, t1, 62
    and  t1, t0, t1
    beqz t1, done
    ld   t2, 0(a0)
    slli t2, t2, 1
    li   t3, derived
    sd   t2, 0(t3)
    tclr 0
done:
    li   t3, derived
    ld   s2, 0(t3)
    li   t3, result
    sd   s2, 0(t3)
    halt
handler:
    li   t1, buf
    ld   t0, 0(t1)
    slli t0, t0, 1
    li   t1, derived
    sd   t0, 0(t1)
    tret
    .data
buf:     .space 24
derived: .space 8
result:  .space 8
)";

TEST(LossyFaults, FallbackProgramSurvivesDroppedFirings)
{
    isa::Program prog = isa::assemble(kFallbackProgram);
    for (std::uint32_t mask :
         {sim::faultSiteBit(FaultSite::DropFiring),
          sim::faultSiteBit(FaultSite::EvictPending),
          sim::kLossySites, sim::kAllFaultSites}) {
        for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
            sim::SimConfig cfg;
            cfg.fault = planConfig(seed, 0.5, mask);
            // The fallback path leaves different register temporaries
            // behind by design; memory must still be byte-identical.
            sim::DiffReport rep = sharedChecker().check(
                cfg, prog, /*compare_regs=*/false);
            EXPECT_TRUE(rep.ok) << "mask 0x" << std::hex << mask
                                << std::dec << " seed " << seed << ": "
                                << rep.detail;
            EXPECT_TRUE(rep.faulted.halted);
        }
    }
}

TEST(LossyFaults, FallbacklessProgramDivergesAndIsReported)
{
    // The same program WITHOUT the fallback: a dropped firing must be
    // caught by the differential checker as a hard structured
    // failure naming the divergent symbol and the preceding fault.
    isa::Program prog = isa::assemble(R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 0
    li  s1, 12
loop:
    addi s0, s0, 1
    tsd  s0, 0(a0), 0
    blt  s0, s1, loop
    twait 0
    halt
handler:
    li   t1, buf
    ld   t0, 0(t1)
    slli t0, t0, 1
    li   t1, derived
    sd   t0, 0(t1)
    tret
    .data
buf:     .space 8
derived: .space 8
)");
    sim::SimConfig cfg;
    // Drop every firing: `derived` is never written (stays zero).
    cfg.fault = planConfig(5, 1.0,
                           sim::faultSiteBit(FaultSite::DropFiring));
    sim::DiffReport rep =
        sharedChecker().check(cfg, prog, /*compare_regs=*/false);
    ASSERT_FALSE(rep.ok);
    EXPECT_EQ(rep.faulted.haltReason, HaltReason::Diverged);
    EXPECT_FALSE(rep.faulted.halted);
    EXPECT_NE(rep.detail.find("derived"), std::string::npos)
        << rep.detail;
    EXPECT_NE(rep.detail.find("drop-firing"), std::string::npos)
        << rep.detail;
}

// ----- degradation policies (controller level) ------------------------

dtt::DttController
madeController(dtt::FullQueuePolicy policy, int tq, int stall_bound)
{
    dtt::DttConfig cfg;
    cfg.threadQueueSize = tq;
    cfg.fullPolicy = policy;
    cfg.stallBound = stall_bound;
    cfg.coalesce = false;
    return dtt::DttController(cfg, 4);
}

TEST(DegradationPolicy, DropOldestEvictsVictimAndKeepsNewest)
{
    dtt::DttController ctrl =
        madeController(dtt::FullQueuePolicy::DropOldest, 2, 1024);
    ctrl.onTregCommit(0, 100);
    ctrl.onTregCommit(1, 200);
    EXPECT_EQ(ctrl.onTstoreCommit(0, 8, 1, false),
              dtt::TstoreOutcome::Fired);
    EXPECT_EQ(ctrl.onTstoreCommit(1, 16, 2, false),
              dtt::TstoreOutcome::Fired);
    // Queue full: the third firing evicts trigger 0's entry (oldest).
    EXPECT_EQ(ctrl.onTstoreCommit(1, 24, 3, false),
              dtt::TstoreOutcome::Fired);
    EXPECT_EQ(ctrl.queue().size(), 2u);
    EXPECT_EQ(ctrl.queue().pendingFor(0), 0);
    EXPECT_EQ(ctrl.queue().pendingFor(1), 2);
    // The victim's trigger carries the sticky overflow flag.
    EXPECT_TRUE(ctrl.chk(0) & (std::int64_t(1) << 62));
    EXPECT_FALSE(ctrl.chk(1) & (std::int64_t(1) << 62));
    EXPECT_EQ(ctrl.stats().get("evictedOldest"), 1u);
    EXPECT_EQ(ctrl.stats().get("dropped"), 1u);
}

TEST(DegradationPolicy, StallBoundedDegradesToDropAtTheBound)
{
    dtt::DttController ctrl =
        madeController(dtt::FullQueuePolicy::StallBounded, 1, 3);
    ctrl.onTregCommit(0, 100);
    EXPECT_EQ(ctrl.onTstoreCommit(0, 8, 1, false),
              dtt::TstoreOutcome::Fired);
    // Three stalled retries, then the bound converts to Drop.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(ctrl.onTstoreCommit(0, 16, 2, false),
                  dtt::TstoreOutcome::Stall);
    EXPECT_EQ(ctrl.onTstoreCommit(0, 16, 2, false),
              dtt::TstoreOutcome::Dropped);
    EXPECT_TRUE(ctrl.chk(0) & (std::int64_t(1) << 62));
    EXPECT_EQ(ctrl.stats().get("stallBoundedDrops"), 1u);
    // The counter reset: the next full-queue episode stalls again.
    EXPECT_EQ(ctrl.onTstoreCommit(0, 24, 3, false),
              dtt::TstoreOutcome::Stall);
}

// ----- forward-progress watchdog --------------------------------------

/** The pinned livelock reproducer: Stall policy, a single context (no
 *  spawner), a 1-entry queue and non-silent stores to distinct
 *  addresses. The second committing tstore stalls forever; before the
 *  watchdog this burned the whole maxCycles budget. */
const char *kLivelockProgram = R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 1
    tsd s0, 0(a0), 0
    addi s0, s0, 1
    tsd s0, 8(a0), 0
    halt
handler:
    tret
    .data
buf: .space 16
)";

TEST(Watchdog, ConvertsLivelockIntoStructuredDeadlockHalt)
{
    sim::SimConfig cfg;
    cfg.core.numContexts = 1;
    cfg.core.watchdogWindow = 2000;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.coalesce = false;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Stall;
    cfg.maxCycles = 1ull << 30;
    sim::SimResult r =
        sim::runProgram(cfg, isa::assemble(kLivelockProgram));
    EXPECT_FALSE(r.halted);
    EXPECT_FALSE(r.hitMaxCycles);
    EXPECT_EQ(r.haltReason, HaltReason::Deadlock);
    // Detected within the bounded window, not at the cycle limit.
    EXPECT_LT(r.cycles, 10000u);
    EXPECT_NE(r.haltDetail.find("no commit"), std::string::npos);
    EXPECT_NE(r.haltDetail.find("ctx0"), std::string::npos);
}

TEST(Watchdog, SameLivelockUnderStallBoundedCompletes)
{
    // The degradation policy converts the same machine + program into
    // a completing run (the firing is dropped at the bound instead of
    // wedging commit).
    sim::SimConfig cfg;
    cfg.core.numContexts = 1;
    cfg.core.watchdogWindow = 2000;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.coalesce = false;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::StallBounded;
    cfg.dtt.stallBound = 64;
    sim::SimResult r =
        sim::runProgram(cfg, isa::assemble(kLivelockProgram));
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.haltReason, HaltReason::Halted);
    EXPECT_GT(r.dropped, 0u);
}

TEST(Watchdog, TotalSpawnStarvationDeadlocks)
{
    // DenySpawn at rate 1.0: pending threads never get a context, so
    // the main thread's TWAIT never satisfies and commits stop.
    isa::Program prog = isa::assemble(R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 5
    tsd s0, 0(a0), 0
    twait 0
    halt
handler:
    tret
    .data
buf: .space 8
)");
    sim::SimConfig cfg;
    cfg.core.watchdogWindow = 2000;
    cfg.fault = planConfig(3, 1.0,
                           sim::faultSiteBit(FaultSite::DenySpawn));
    sim::SimResult r = sim::runProgram(cfg, prog);
    EXPECT_EQ(r.haltReason, HaltReason::Deadlock);
    EXPECT_FALSE(r.halted);
    EXPECT_LT(r.cycles, 10000u);
    EXPECT_GT(r.faultsInjected, 0u);
}

TEST(Watchdog, DisabledFallsBackToCycleLimit)
{
    sim::SimConfig cfg;
    cfg.core.numContexts = 1;
    cfg.core.watchdogWindow = 0;  // disabled
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.coalesce = false;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Stall;
    cfg.maxCycles = 5000;
    sim::SimResult r =
        sim::runProgram(cfg, isa::assemble(kLivelockProgram));
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.hitMaxCycles);
    EXPECT_EQ(r.haltReason, HaltReason::CycleLimit);
    EXPECT_EQ(r.cycles, 5000u);
}

// ----- config validation + warnings -----------------------------------

TEST(FaultConfigValidation, RejectsBadRateMaskAndBaselineFaults)
{
    sim::SimConfig cfg;
    cfg.fault.rate = 1.5;
    cfg.fault.siteMask = sim::kAllFaultSites;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = sim::SimConfig{};
    cfg.fault.rate = 0.5;
    cfg.fault.siteMask = 0x80000000u;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = sim::SimConfig{};
    cfg.accel = cpu::AccelKind::None;
    cfg.fault.rate = 0.5;
    cfg.fault.siteMask = sim::kAllFaultSites;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = sim::SimConfig{};
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::StallBounded;
    cfg.dtt.stallBound = 0;
    EXPECT_FALSE(cfg.validate().empty());
}

TEST(FaultConfigValidation, WarnsOnStallWithSingleContext)
{
    sim::SimConfig cfg;
    EXPECT_TRUE(cfg.warnings().empty());
    EXPECT_TRUE(cfg.validate().empty());

    cfg.core.numContexts = 1;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Stall;
    EXPECT_FALSE(cfg.warnings().empty());
    // A hazard, not an error: the config still simulates (watchdog).
    EXPECT_TRUE(cfg.validate().empty());
}

// ----- engine fingerprint stability -----------------------------------

TEST(EngineFaults, FingerprintStableAcrossWorkerCounts)
{
    workloads::WorkloadParams params;
    params.iterations = 2;
    isa::Program prog = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, params);

    std::vector<sim::SimJob> jobs;
    for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
        sim::SimJob job;
        job.workload = "mcf";
        job.variant = "dtt faulted";
        job.program = prog;
        job.config.fault =
            planConfig(seed, 0.4, sim::kTransparentSites);
        jobs.push_back(std::move(job));
    }
    std::vector<sim::JobResult> serial = sim::Engine(1).run(jobs);
    std::vector<sim::JobResult> parallel = sim::Engine(8).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_GT(serial[i].result.faultsInjected, 0u);
        EXPECT_NE(serial[i].result.faultFingerprint, 0u);
        EXPECT_EQ(serial[i].result, parallel[i].result)
            << "job " << i << " fingerprints "
            << serial[i].result.faultFingerprint << " vs "
            << parallel[i].result.faultFingerprint;
    }
    // Different seeds produce different fault traces.
    EXPECT_NE(serial[0].result.faultFingerprint,
              serial[1].result.faultFingerprint);
}

} // namespace
} // namespace dttsim
