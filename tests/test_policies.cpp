/**
 * @file
 * DTT policy end-to-end tests on the timing core: the Drop full-queue
 * policy with the software TCHK/TCLR fallback idiom, coalescing
 * on/off equivalence, per-trigger serialization guarantees, spawn-
 * latency monotonicity, and configuration sweeps of the full machine
 * against the functional reference (parameterized).
 */

#include <gtest/gtest.h>

#include "accel/dtt_accel.h"
#include "common/log.h"
#include "cpu/executor.h"
#include "isa/assembler.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

/**
 * The Drop-policy fallback idiom: updates fire triggers; if the
 * 1-entry queue overflowed (sticky flag via TCHK bit 62), the main
 * thread recomputes inline and clears the flag with TCLR. The final
 * "derived" value must be correct either way: derived = last stored
 * value * 2.
 */
const char *kDropProgram = R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 0
    li  s1, 12
loop:
    addi s0, s0, 1
    tsd  s0, 0(a0), 0      # always fires (value changes)
    tsd  s0, 8(a0), 0      # second firing may overflow tq=1
    tsd  s0, 16(a0), 0
    blt  s0, s1, loop
    twait 0                # drain whatever did run
    tchk t0, 0
    li   t1, 1
    slli t1, t1, 62
    and  t1, t0, t1
    beqz t1, done          # no overflow: handlers kept up
    # fallback: recompute inline and clear the sticky flag
    ld   t2, 0(a0)
    slli t2, t2, 1
    li   t3, derived
    sd   t2, 0(t3)
    tclr 0
done:
    li   t3, derived
    ld   s2, 0(t3)
    li   t3, result
    sd   s2, 0(t3)
    halt
handler:
    ld   t0, 0(a0)         # a0 = &buf[k]; derived from buf[0]
    li   t1, buf
    ld   t0, 0(t1)
    slli t0, t0, 1
    li   t1, derived
    sd   t0, 0(t1)
    tret
    .data
buf:     .space 24
derived: .space 8
result:  .space 8
)";

TEST(DropPolicy, FallbackRecoversDroppedWork)
{
    isa::Program prog = isa::assemble(kDropProgram);
    sim::SimConfig cfg;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Drop;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    // Final derived value must equal last stored value * 2 whether
    // the handler or the fallback computed it.
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")),
              24u);
}

TEST(DropPolicy, StallPolicySameResultNoOverflow)
{
    isa::Program prog = isa::assemble(kDropProgram);
    sim::SimConfig cfg;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Stall;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")),
              24u);
}

TEST(DropPolicy, DropsAreCounted)
{
    isa::Program prog = isa::assemble(kDropProgram);
    sim::SimConfig cfg;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Drop;
    cfg.dtt.coalesce = false;  // maximize queue pressure
    sim::SimResult r = sim::runProgram(cfg, prog);
    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.dropped + r.coalesced, 0u);
}

TEST(DropPolicy, TchkBit62ReachesSoftwareAfterDrop)
{
    // End-to-end: the value TCHK materializes into a register after a
    // drop carries bit 62, and the program's fallback branch actually
    // takes — observed by storing the TCHK value and a branch marker.
    isa::Program prog = isa::assemble(R"(
main:
    treg 0, handler
    li  a0, buf
    li  s0, 1
    tsd s0, 0(a0), 0
    addi s0, s0, 1
    tsd s0, 8(a0), 0      # tq=1, coalesce off: this firing drops
    addi s0, s0, 1
    tsd s0, 16(a0), 0     # and so does this one
    twait 0
    tchk t0, 0
    li   t1, chkval
    sd   t0, 0(t1)
    li   t1, 1
    slli t1, t1, 62
    and  t1, t0, t1
    beqz t1, done
    li   t2, 1
    li   t1, tookfb
    sd   t2, 0(t1)
    tclr 0
done:
    halt
handler:
    tret
    .data
buf:    .space 24
chkval: .space 8
tookfb: .space 8
)");
    sim::SimConfig cfg;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.coalesce = false;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Drop;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.dropped, 0u);
    std::uint64_t chkval =
        s.core().memory().read64(prog.dataSymbol("chkval"));
    EXPECT_TRUE(chkval & (1ull << 62)) << "chkval=" << chkval;
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("tookfb")),
              1u);
}

TEST(DropPolicy, TwaitReleasesAfterFallbackRedoesDroppedWork)
{
    // TWAIT only fences hardware-tracked work: dropped firings leave
    // no queue entry, no running thread and no in-flight tstore, so
    // the fence must release (bounded run, Halted reason) and the
    // software fallback redoes the lost computation afterwards.
    isa::Program prog = isa::assemble(kDropProgram);
    sim::SimConfig cfg;
    cfg.dtt.threadQueueSize = 1;
    cfg.dtt.coalesce = false;
    cfg.dtt.fullPolicy = dtt::FullQueuePolicy::Drop;
    cfg.maxCycles = 1ull << 22;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.haltReason, HaltReason::Halted);
    EXPECT_GT(r.dropped, 0u);
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")),
              24u);
}

// ----- machine-config sweep against the functional reference --------

struct MachineVariant
{
    const char *name;
    sim::SimConfig cfg;
};

sim::SimConfig
variantConfig(int which)
{
    sim::SimConfig cfg;
    switch (which) {
      case 0:
        break;  // defaults
      case 1:
        cfg.dtt.threadQueueSize = 1;
        break;
      case 2:
        cfg.dtt.coalesce = false;
        break;
      case 3:
        cfg.core.numContexts = 2;
        break;
      case 4:
        cfg.dtt.spawnLatency = 64;
        break;
      case 5:
        cfg.core.numContexts = 8;
        cfg.dtt.threadQueueSize = 2;
        break;
      default:
        cfg.core.fetchWidth = 2;
        cfg.core.issueWidth = 2;
        cfg.core.commitWidth = 2;
        cfg.core.robSize = 32;
        cfg.core.iqSize = 16;
        break;
    }
    return cfg;
}

class DttMachineSweep
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(DttMachineSweep, ChecksumMatchesFunctionalReference)
{
    auto [wl_name, variant] = GetParam();
    const workloads::Workload &w = workloads::findWorkload(wl_name);
    workloads::WorkloadParams params;
    params.iterations = 3;
    isa::Program prog = w.build(workloads::Variant::Dtt, params);

    cpu::FunctionalRunner ref(prog);
    ASSERT_TRUE(ref.run(1ull << 28).halted);
    std::uint64_t want = workloads::resultChecksum(prog,
                                                   ref.memory());

    sim::Simulator s(variantConfig(variant), prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(workloads::resultChecksum(prog, s.core().memory()),
              want);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DttMachineSweep,
    ::testing::Combine(::testing::Values("mcf", "art", "gcc", "twolf"),
                       ::testing::Range(0, 7)),
    [](const ::testing::TestParamInfo<DttMachineSweep::ParamType> &i) {
        return std::string(std::get<0>(i.param)) + "_v"
            + std::to_string(std::get<1>(i.param));
    });

// ----- serialization guarantee ---------------------------------------

TEST(Serialization, SameTriggerNeverConcurrent)
{
    // A long-running handler plus rapid-fire triggers: with
    // serialization, the status table must never show running > 1
    // for the trigger. Verified via the controller after each tick.
    isa::Program prog = isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  s0, 0
        li  s1, 8
    loop:
        addi s0, s0, 1
        tsd  s0, 0(a0), 0
        tsd  s0, 8(a0), 0
        blt  s0, s1, loop
        twait 0
        halt
    handler:
        li  t0, 64
    spin:
        addi t0, t0, -1
        bne  t0, x0, spin
        tret
        .data
    buf: .space 16
    )");
    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    dtt::DttConfig dcfg;
    accel::DttAccel accel(dcfg, 4);
    cpu::OooCore core(cpu::CoreConfig{}, prog, hierarchy, &accel);
    int max_running = 0;
    for (int i = 0; i < 200000 && !core.halted(); ++i) {
        core.tick();
        max_running = std::max(
            max_running,
            accel.controller()->statusTable().of(0).running);
    }
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(max_running, 1);
}

TEST(Serialization, DisabledAllowsConcurrency)
{
    isa::Program prog = isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  s0, 0
        li  s1, 8
    loop:
        addi s0, s0, 1
        tsd  s0, 0(a0), 0
        tsd  s0, 8(a0), 0
        blt  s0, s1, loop
        twait 0
        halt
    handler:
        li  t0, 64
    spin:
        addi t0, t0, -1
        bne  t0, x0, spin
        tret
        .data
    buf: .space 16
    )");
    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    dtt::DttConfig dcfg;
    dcfg.serializePerTrigger = false;
    accel::DttAccel accel(dcfg, 4);
    cpu::OooCore core(cpu::CoreConfig{}, prog, hierarchy, &accel);
    int max_running = 0;
    for (int i = 0; i < 200000 && !core.halted(); ++i) {
        core.tick();
        max_running = std::max(
            max_running,
            accel.controller()->statusTable().of(0).running);
    }
    ASSERT_TRUE(core.halted());
    EXPECT_GT(max_running, 1);
}

// ----- co-runners -------------------------------------------------------

/** Append a small infinite co-runner loop; returns its entry PC. */
std::uint64_t
appendSpinner(isa::Program &prog)
{
    // top: addi x7, x7, 1 ; jal x0, top
    isa::Inst addi;
    addi.op = isa::Opcode::ADDI;
    addi.rd = 7;
    addi.rs1 = 7;
    addi.imm = 1;
    std::uint64_t top = prog.append(addi);
    isa::Inst jal;
    jal.op = isa::Opcode::JAL;
    jal.rd = 0;
    jal.imm = static_cast<std::int64_t>(top);
    prog.append(jal);
    return top;
}

TEST(CoRunner, DttChecksumUnaffected)
{
    workloads::WorkloadParams params;
    params.iterations = 3;
    isa::Program prog = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, params);

    cpu::FunctionalRunner ref(prog);
    ASSERT_TRUE(ref.run(1ull << 28).halted);
    std::uint64_t want = workloads::resultChecksum(prog,
                                                   ref.memory());

    std::uint64_t entry = appendSpinner(prog);
    sim::Simulator s(sim::SimConfig{}, prog);
    s.core().startCoRunner(1, entry);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(workloads::resultChecksum(prog, s.core().memory()),
              want);
    // Spawns happened on the remaining spare contexts.
    EXPECT_GT(r.dttSpawns, 0u);
    EXPECT_GT(s.core().stats().get("coRunnerCommitted"), 0u);
}

TEST(CoRunner, SlowsTheMainThread)
{
    isa::Program prog = isa::assemble(R"(
        li x5, 0
        li x6, 2000
    top:
        addi x5, x5, 1
        blt  x5, x6, top
        halt
    )");
    // A narrow machine makes the fetch/issue interference visible
    // (on the wide default core a 1-IPC dependence-bound loop shares
    // happily with a tiny spinner).
    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    cfg.core.fetchWidth = 2;
    cfg.core.fetchThreads = 2;
    cfg.core.issueWidth = 1;
    cfg.core.commitWidth = 2;
    sim::SimResult alone = sim::runProgram(cfg, prog);

    std::uint64_t entry = appendSpinner(prog);
    sim::Simulator s(cfg, prog);
    s.core().startCoRunner(1, entry);
    sim::SimResult shared = s.run();
    ASSERT_TRUE(shared.halted);
    EXPECT_GT(shared.cycles, alone.cycles);
}

TEST(CoRunner, ValidatesArguments)
{
    isa::Program prog = isa::assemble("halt");
    std::uint64_t entry = appendSpinner(prog);
    sim::Simulator s(sim::SimConfig{}, prog);
    EXPECT_THROW(s.core().startCoRunner(0, entry), FatalError);
    EXPECT_THROW(s.core().startCoRunner(99, entry), FatalError);
    s.core().startCoRunner(1, entry);
    EXPECT_THROW(s.core().startCoRunner(1, entry), FatalError);
}

TEST(CoRunner, MayHaltWithoutEndingSimulation)
{
    isa::Program prog = isa::assemble(R"(
        li x5, 0
        li x6, 500
    top:
        addi x5, x5, 1
        blt  x5, x6, top
        halt
    )");
    // Co-runner halts almost immediately; main keeps going.
    isa::Inst halt_inst;
    halt_inst.op = isa::Opcode::HALT;
    std::uint64_t entry = prog.append(halt_inst);
    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    sim::Simulator s(cfg, prog);
    s.core().startCoRunner(1, entry);
    sim::SimResult r = s.run();
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.mainCommitted, 1000u);
}

// ----- spawn latency ---------------------------------------------------

TEST(SpawnLatency, HigherLatencyNeverFaster)
{
    workloads::WorkloadParams params;
    params.iterations = 4;
    isa::Program prog = workloads::findWorkload("gcc").build(
        workloads::Variant::Dtt, params);
    Cycle prev = 0;
    for (Cycle lat : {Cycle(1), Cycle(64), Cycle(512)}) {
        sim::SimConfig cfg;
        cfg.dtt.spawnLatency = lat;
        sim::SimResult r = sim::runProgram(cfg, prog);
        ASSERT_TRUE(r.halted);
        EXPECT_GE(r.cycles + 64, prev);  // allow tiny scheduling noise
        prev = r.cycles;
    }
}

} // namespace
} // namespace dttsim
