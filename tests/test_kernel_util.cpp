/**
 * @file
 * Workload-generation utility tests: update-schedule properties (the
 * silent/real accounting that drives every characterization figure),
 * the striped-store emission helper, and the mixer pass.
 */

#include <gtest/gtest.h>

#include "cpu/executor.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {
namespace {

using namespace isa::regs;

TEST(UpdateSchedule, RateZeroIsAllSilent)
{
    Rng rng(1);
    std::vector<std::int64_t> mirror(32, 5);
    std::vector<std::int64_t> before = mirror;
    UpdateSchedule s = makeSchedule(rng, mirror, 4, 8, 0.0,
                                    [&](std::int64_t) {
                                        return std::int64_t(99);
                                    });
    EXPECT_EQ(s.realWrites, 0u);
    EXPECT_EQ(s.silentWrites, 32u);
    EXPECT_EQ(mirror, before);  // nothing changed
    for (std::size_t i = 0; i < s.indices.size(); ++i)
        EXPECT_EQ(s.values[i], 5);  // rewrites of the current value
}

TEST(UpdateSchedule, RateOneMostlyRealWrites)
{
    Rng rng(2);
    std::vector<std::int64_t> mirror(32, 0);
    UpdateSchedule s = makeSchedule(rng, mirror, 4, 8, 1.0,
                                    [&](std::int64_t) {
                                        return rng.range(1, 1000);
                                    });
    // Values drawn from [1,1000] over a zero mirror: collisions with
    // the current value are rare but possible after the first write.
    EXPECT_GT(s.realWrites, 28u);
    EXPECT_EQ(s.realWrites + s.silentWrites, 32u);
}

TEST(UpdateSchedule, MirrorTracksFinalState)
{
    Rng rng(3);
    std::vector<std::int64_t> mirror(16, 0);
    UpdateSchedule s = makeSchedule(rng, mirror, 3, 4, 0.7,
                                    [&](std::int64_t) {
                                        return rng.range(1, 9);
                                    });
    // Replaying the schedule over a fresh copy reproduces the mirror.
    std::vector<std::int64_t> replay(16, 0);
    for (std::size_t i = 0; i < s.indices.size(); ++i)
        replay[static_cast<std::size_t>(s.indices[i])] = s.values[i];
    EXPECT_EQ(replay, mirror);
}

TEST(UpdateSchedule, DimensionsMatch)
{
    Rng rng(4);
    std::vector<std::int64_t> mirror(8, 0);
    UpdateSchedule s = makeSchedule(rng, mirror, 5, 3, 0.5,
                                    [&](std::int64_t) {
                                        return std::int64_t(1);
                                    });
    EXPECT_EQ(s.iterations, 5);
    EXPECT_EQ(s.updatesPerIter, 3);
    EXPECT_EQ(s.indices.size(), 15u);
    EXPECT_EQ(s.values.size(), 15u);
    for (std::int64_t idx : s.indices) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, 8);
    }
}

TEST(StripedStore, BaselineAndDttWriteTheSameValue)
{
    for (bool dtt : {false, true}) {
        for (std::int64_t stripe = 0; stripe < 4; ++stripe) {
            isa::ProgramBuilder b;
            Addr slot = b.space("slot", 8);
            b.li(t3, 77);
            b.la(t5, slot);
            b.li(t4, stripe);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
            b.halt();
            isa::Program p = b.take();
            cpu::FunctionalRunner runner(p);
            ASSERT_TRUE(runner.run(1000).halted);
            EXPECT_EQ(runner.memory().read64(slot), 77u)
                << "dtt=" << dtt << " stripe=" << stripe;
            if (dtt) {
                // The DTT variant emitted a triggering store with the
                // stripe as its static trigger id.
                bool found = false;
                for (const auto &inst : p.text())
                    found = found || (inst.op == isa::Opcode::TSD
                                      && inst.trig == stripe);
                EXPECT_TRUE(found) << stripe;
            }
        }
    }
}

TEST(Mixer, DeterministicAndSensitiveToData)
{
    auto run_mixer = [](std::uint64_t seed) {
        Rng rng(seed);
        isa::ProgramBuilder b;
        Addr data = b.quads("mix", makeMixerData(rng, 64));
        Addr result = b.space("result", 8);
        b.li(s0, 0);
        emitMixer(b, data, 64, s0);
        b.la(t6, result);
        b.sd(s0, t6, 0);
        b.halt();
        cpu::FunctionalRunner runner(b.take());
        EXPECT_TRUE(runner.run(100000).halted);
        return runner.memory().read64(result);
    };
    EXPECT_EQ(run_mixer(7), run_mixer(7));
    EXPECT_NE(run_mixer(7), run_mixer(8));
}

TEST(Epilogue, StoresChecksumAndHalts)
{
    isa::ProgramBuilder b;
    Addr result = b.space("result", 8);
    b.li(s0, 424242);
    emitEpilogue(b, s0, result, t0);
    cpu::FunctionalRunner runner(b.take());
    ASSERT_TRUE(runner.run(100).halted);
    EXPECT_EQ(runner.memory().read64(result), 424242u);
}

} // namespace
} // namespace dttsim::workloads
