/**
 * @file
 * Unit tests for the common infrastructure: counters, histograms,
 * stat groups, table rendering, option parsing, RNG determinism and
 * the error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace dttsim {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10);  // buckets [0,10) [10,20) [20,30) [30,40)
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);   // overflow
    h.sample(1000); // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 39 + 40 + 1000) / 6.0);
}

TEST(StatGroup, NamedCountersAndDump)
{
    StatGroup g("grp");
    ++g.counter("a");
    g.counter("b") += 5;
    ++g.counter("a");
    EXPECT_EQ(g.get("a"), 2u);
    EXPECT_EQ(g.get("b"), 5u);
    EXPECT_EQ(g.get("missing"), 0u);
    auto dump = g.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");  // registration order
    EXPECT_EQ(dump[1].first, "b");
    g.reset();
    EXPECT_EQ(g.get("a"), 0u);
}

TEST(Ratios, EdgeCases)
{
    EXPECT_DOUBLE_EQ(pct(1, 2), 50.0);
    EXPECT_DOUBLE_EQ(pct(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(ratio(3, 0), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("Title");
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "23"});
    std::string s = t.render();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable t("T");
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), PanicError);
}

TEST(TextTable, CellFormatters)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::num(std::uint64_t(42)), "42");
    EXPECT_EQ(TextTable::pctCell(12.345, 1), "12.3%");
}

TEST(Options, ParsesFlagsAndValues)
{
    const char *argv[] = {"prog", "--flag", "--k=v", "--n=42",
                          "--d=2.5"};
    Options o(5, argv);
    EXPECT_TRUE(o.has("flag"));
    EXPECT_FALSE(o.has("missing"));
    EXPECT_EQ(o.get("k"), "v");
    EXPECT_EQ(o.get("missing", "dflt"), "dflt");
    EXPECT_EQ(o.getInt("n", 0), 42);
    EXPECT_EQ(o.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(o.getDouble("d", 0), 2.5);
}

TEST(Options, RejectsPositional)
{
    const char *argv[] = {"prog", "positional"};
    EXPECT_THROW(Options(2, argv), FatalError);
}

TEST(Rng, DeterministicStream)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool any_diff = false;
    Rng a2(7);
    for (int i = 0; i < 100; ++i)
        any_diff = any_diff || a2.next() != c.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, RangesRespected)
{
    Rng r(123);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        EXPECT_LT(r.below(10), 10u);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Log, PanicAndFatalThrowTypedErrors)
{
    EXPECT_THROW(panic("x %d", 1), PanicError);
    EXPECT_THROW(fatal("y %s", "z"), FatalError);
    EXPECT_EQ(strfmt("a%db", 7), "a7b");
}

} // namespace
} // namespace dttsim
