/**
 * @file
 * Hardware instruction-reuse machine tests: the reuse buffer must
 * preserve architectural results exactly (it only changes timing),
 * accelerate latency-bound redundant computation, and leave
 * miss-free/unique computation unchanged. Also covers the shared
 * ReuseBufferSet structure directly.
 */

#include <gtest/gtest.h>

#include "common/reuse_buffer.h"
#include "cpu/executor.h"
#include "isa/assembler.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

TEST(ReuseBufferSet, HitMissAndLru)
{
    ReuseBufferSet set(4, 2);
    ReuseProbe a;
    a.src[0] = 1;
    a.numSrc = 1;
    ReuseProbe b = a;
    b.src[0] = 2;
    ReuseProbe c = a;
    c.src[0] = 3;

    EXPECT_FALSE(set.lookupInsert(0, a));
    EXPECT_TRUE(set.lookupInsert(0, a));
    EXPECT_FALSE(set.lookupInsert(0, b));
    // Touch a so b becomes LRU; insert c -> evicts b.
    EXPECT_TRUE(set.lookupInsert(0, a));
    EXPECT_FALSE(set.lookupInsert(0, c));
    EXPECT_TRUE(set.lookupInsert(0, a));
    EXPECT_FALSE(set.lookupInsert(0, b));  // was evicted

    // Distinct PCs have distinct buffers.
    EXPECT_FALSE(set.lookupInsert(1, a));
}

TEST(ReuseBufferSet, MemoryFieldsDistinguish)
{
    ReuseBufferSet set(1, 4);
    ReuseProbe p;
    p.numSrc = 1;
    p.src[0] = 5;
    p.hasMem = true;
    p.addr = 0x100;
    p.memValue = 7;
    EXPECT_FALSE(set.lookupInsert(0, p));
    EXPECT_TRUE(set.lookupInsert(0, p));
    ReuseProbe q = p;
    q.memValue = 8;  // same address, different value
    EXPECT_FALSE(set.lookupInsert(0, q));
    ReuseProbe r = p;
    r.addr = 0x108;
    EXPECT_FALSE(set.lookupInsert(0, r));
}

sim::SimResult
runWith(const isa::Program &prog, bool reuse,
        std::uint64_t *final_val = nullptr,
        const isa::Program *syms = nullptr)
{
    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    cfg.core.reuseBuffer = reuse;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    if (final_val && syms)
        *final_val = s.core().memory().read64(
            syms->dataSymbol("result"));
    return r;
}

TEST(ReuseMachine, PreservesArchitecturalResults)
{
    workloads::WorkloadParams params;
    params.iterations = 3;
    for (const workloads::Workload *w : workloads::allWorkloads()) {
        isa::Program prog =
            w->build(workloads::Variant::Baseline, params);
        std::uint64_t plain_val = 0, reuse_val = 0;
        sim::SimResult plain = runWith(prog, false, &plain_val, &prog);
        sim::SimResult reused = runWith(prog, true, &reuse_val, &prog);
        ASSERT_TRUE(plain.halted);
        ASSERT_TRUE(reused.halted);
        EXPECT_EQ(plain.totalCommitted, reused.totalCommitted)
            << w->info().name;
        EXPECT_EQ(plain_val, reuse_val) << w->info().name;
    }
}

TEST(ReuseMachine, AcceleratesLatencyBoundRedundantLoop)
{
    // A dependent chain of multiplies recomputed with identical
    // inputs every outer iteration: reuse collapses the 3-cycle mul
    // chain to 1-cycle buffer hits.
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 200
    outer:
        li t0, 3
        li t1, 1
        mul t1, t1, t0
        mul t1, t1, t0
        mul t1, t1, t0
        mul t1, t1, t0
        mul t1, t1, t0
        mul t1, t1, t0
        mul t1, t1, t0
        mul t1, t1, t0
        addi s0, s0, 1
        blt s0, s1, outer
        halt
    )");
    sim::SimResult plain = runWith(prog, false);
    sim::SimResult reused = runWith(prog, true);
    EXPECT_LT(reused.cycles, plain.cycles);
}

TEST(ReuseMachine, CountsReusedInstructions)
{
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 10
        li t0, 6
        li t1, 7
    top:
        mul t2, t0, t1       # identical every iteration
        addi s0, s0, 1
        blt s0, s1, top
        halt
    )");
    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    cfg.core.reuseBuffer = true;
    sim::Simulator s(cfg, prog);
    s.run();
    // 10 executions, first is a miss.
    EXPECT_EQ(s.core().stats().get("reusedInsts"), 9u);
}

TEST(ReuseMachine, StoresAndBranchesNeverReused)
{
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 10
        li a0, buf
        li t0, 5
    top:
        sd t0, 0(a0)         # identical silent store each iteration
        beq t0, t0, skip     # identical always-taken branch
    skip:
        addi s0, s0, 1
        blt s0, s1, top
        halt
        .data
    buf: .space 8
    )");
    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    cfg.core.reuseBuffer = true;
    sim::Simulator s(cfg, prog);
    s.run();
    EXPECT_EQ(s.core().stats().get("reusedInsts"), 0u);
}

TEST(ReuseMachine, ComposesWithDttMachine)
{
    // Reuse buffer and DTT hardware enabled together: results must
    // still match the functional reference exactly.
    workloads::WorkloadParams params;
    params.iterations = 3;
    isa::Program prog = workloads::findWorkload("mcf").build(
        workloads::Variant::Dtt, params);

    cpu::FunctionalRunner ref(prog);
    ASSERT_TRUE(ref.run(1ull << 28).halted);
    std::uint64_t want =
        workloads::resultChecksum(prog, ref.memory());

    sim::SimConfig cfg;
    cfg.core.reuseBuffer = true;
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(workloads::resultChecksum(prog, s.core().memory()),
              want);
    EXPECT_GT(r.dttSpawns, 0u);
}

TEST(ReuseMachine, LoadReuseSkipsDataCache)
{
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 100
        li a0, buf
    top:
        ld t0, 0(a0)         # same address, unchanged value
        addi s0, s0, 1
        blt s0, s1, top
        halt
        .data
    buf: .quad 42
    )");
    sim::SimResult plain = runWith(prog, false);
    sim::SimResult reused = runWith(prog, true);
    // The reused loads never probe the D-cache (first miss only).
    EXPECT_LT(reused.l1dAccesses, plain.l1dAccesses / 2);
}

} // namespace
} // namespace dttsim
