/**
 * @file
 * Workload parameter sweeps (property-style): the baseline/DTT
 * checksum equivalence must hold at *every* update rate and scale,
 * not just the calibrated defaults — this exercises silent-store
 * suppression (r=0 fires nothing), trigger storms (r=1), and larger
 * working sets under the functional reference.
 */

#include <gtest/gtest.h>

#include "cpu/executor.h"
#include "workloads/workload.h"

namespace dttsim::workloads {
namespace {

std::uint64_t
functionalChecksum(const isa::Program &p)
{
    cpu::FunctionalRunner runner(p);
    EXPECT_TRUE(runner.run(1ull << 28).halted);
    return resultChecksum(p, runner.memory());
}

class UpdateRateSweep
    : public ::testing::TestWithParam<std::tuple<const Workload *,
                                                 int>>
{
};

TEST_P(UpdateRateSweep, ChecksumsMatchAtEveryRate)
{
    auto [w, rate_pct] = GetParam();
    WorkloadParams p;
    p.iterations = 3;
    p.updateRate = static_cast<double>(rate_pct) / 100.0;
    std::uint64_t base =
        functionalChecksum(w->build(Variant::Baseline, p));
    std::uint64_t dtt = functionalChecksum(w->build(Variant::Dtt, p));
    EXPECT_EQ(base, dtt);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, UpdateRateSweep,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Values(0, 50, 100)),
    [](const ::testing::TestParamInfo<UpdateRateSweep::ParamType>
           &info) {
        return std::get<0>(info.param)->info().name + "_r"
            + std::to_string(std::get<1>(info.param));
    });

class ScaleSweep : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(ScaleSweep, ChecksumsMatchAtScale2)
{
    WorkloadParams p;
    p.iterations = 2;
    p.scale = 2;
    std::uint64_t base = functionalChecksum(
        GetParam()->build(Variant::Baseline, p));
    std::uint64_t dtt = functionalChecksum(
        GetParam()->build(Variant::Dtt, p));
    EXPECT_EQ(base, dtt);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ScaleSweep, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<const Workload *> &info) {
        return info.param->info().name;
    });

} // namespace
} // namespace dttsim::workloads
