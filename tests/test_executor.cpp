/**
 * @file
 * Functional executor tests: instruction semantics for every opcode
 * class, edge cases (division, shifts, conversions), DTT event
 * reporting (silent-store detection), and the FunctionalRunner's
 * inline handler execution including nested triggers.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "cpu/executor.h"
#include "isa/assembler.h"

namespace dttsim::cpu {
namespace {

/** Run source to HALT on the functional runner. */
FunctionalRunner
runSrc(const std::string &src, FuncRunResult *out = nullptr)
{
    FunctionalRunner runner(isa::assemble(src));
    FuncRunResult r = runner.run(1u << 22);
    EXPECT_TRUE(r.halted) << "program did not halt";
    if (out)
        *out = r;
    return runner;
}

std::uint64_t
regAfter(const std::string &body, int reg)
{
    FunctionalRunner runner = runSrc(body + "\n halt\n");
    return runner.mainState().getX(reg);
}

TEST(Executor, IntegerAluBasics)
{
    EXPECT_EQ(regAfter("li x5, 40\n addi x5, x5, 2", 5), 42u);
    EXPECT_EQ(regAfter("li x5, 7\n li x6, 3\n sub x7, x5, x6", 7), 4u);
    EXPECT_EQ(regAfter("li x5, 6\n li x6, 7\n mul x7, x5, x6", 7), 42u);
    EXPECT_EQ(regAfter("li x5, 0xf0\n andi x5, x5, 0x3c", 5), 0x30u);
    EXPECT_EQ(regAfter("li x5, 1\n slli x5, x5, 8", 5), 256u);
    EXPECT_EQ(regAfter("li x5, -8\n srai x5, x5, 1", 5),
              static_cast<std::uint64_t>(-4));
    EXPECT_EQ(regAfter("li x5, -8\n srli x5, x5, 60", 5), 15u);
    EXPECT_EQ(regAfter("li x5, -1\n li x6, 1\n slt x7, x5, x6", 7), 1u);
    EXPECT_EQ(regAfter("li x5, -1\n li x6, 1\n sltu x7, x5, x6", 7),
              0u);
}

TEST(Executor, X0IsHardwiredZero)
{
    EXPECT_EQ(regAfter("li x0, 42\n add x5, x0, x0", 5), 0u);
}

TEST(Executor, DivisionEdgeCases)
{
    EXPECT_EQ(regAfter("li x5, 7\n li x6, 2\n div x7, x5, x6", 7), 3u);
    EXPECT_EQ(regAfter("li x5, -7\n li x6, 2\n div x7, x5, x6", 7),
              static_cast<std::uint64_t>(-3));
    EXPECT_EQ(regAfter("li x5, 7\n li x6, 0\n div x7, x5, x6", 7), 0u);
    EXPECT_EQ(regAfter("li x5, 7\n li x6, 0\n rem x7, x5, x6", 7), 7u);
    EXPECT_EQ(regAfter("li x5, 7\n li x6, 3\n rem x7, x5, x6", 7), 1u);
    // INT64_MIN / -1 must not trap.
    EXPECT_EQ(regAfter("li x5, -9223372036854775808\n li x6, -1\n"
                       " div x7, x5, x6", 7),
              0x8000000000000000ull);
}

TEST(Executor, LoadStoreSizes)
{
    FunctionalRunner r = runSrc(R"(
        li   a0, buf
        li   x5, 0x1122334455667788
        sd   x5, 0(a0)
        ld   x6, 0(a0)
        lw   x7, 0(a0)
        lb   x8, 0(a0)
        sw   x5, 16(a0)
        ld   x9, 16(a0)
        sb   x5, 32(a0)
        ld   x10, 32(a0)
        halt
        .data
    buf: .space 64
    )");
    const ArchState &st = r.mainState();
    EXPECT_EQ(st.getX(6), 0x1122334455667788ull);
    EXPECT_EQ(st.getX(7), 0x55667788ull);     // lw sign-extends: +ve
    EXPECT_EQ(st.getX(8), 0x88ull);           // lb zero-extends
    EXPECT_EQ(st.getX(9), 0x55667788ull);     // sw truncates
    EXPECT_EQ(st.getX(10), 0x88ull);          // sb truncates
}

TEST(Executor, LwSignExtendsNegative)
{
    FunctionalRunner r = runSrc(R"(
        li  a0, buf
        li  x5, 0xfffffffe
        sw  x5, 0(a0)
        lw  x6, 0(a0)
        halt
        .data
    buf: .space 8
    )");
    EXPECT_EQ(r.mainState().getX(6), static_cast<std::uint64_t>(-2));
}

TEST(Executor, FloatingPoint)
{
    FunctionalRunner r = runSrc(R"(
        fli   f1, 2.0
        fli   f2, 0.5
        fadd  f3, f1, f2
        fsub  f4, f1, f2
        fmul  f5, f1, f2
        fdiv  f6, f1, f2
        fli   f7, 9.0
        fsqrt f7, f7
        fneg  f8, f1
        fabs  f9, f8
        fmin  f10, f1, f2
        fmax  f11, f1, f2
        li    x5, -3
        fcvtdw f12, x5
        fli   f13, 2.75
        fcvtwd x6, f13
        feq   x7, f1, f1
        flt   x8, f2, f1
        fle   x9, f1, f2
        halt
    )");
    const ArchState &st = r.mainState();
    EXPECT_EQ(st.getF(3), 2.5);
    EXPECT_EQ(st.getF(4), 1.5);
    EXPECT_EQ(st.getF(5), 1.0);
    EXPECT_EQ(st.getF(6), 4.0);
    EXPECT_EQ(st.getF(7), 3.0);
    EXPECT_EQ(st.getF(8), -2.0);
    EXPECT_EQ(st.getF(9), 2.0);
    EXPECT_EQ(st.getF(10), 0.5);
    EXPECT_EQ(st.getF(11), 2.0);
    EXPECT_EQ(st.getF(12), -3.0);
    EXPECT_EQ(st.getX(6), 2u);   // truncation toward zero
    EXPECT_EQ(st.getX(7), 1u);
    EXPECT_EQ(st.getX(8), 1u);
    EXPECT_EQ(st.getX(9), 0u);
}

TEST(Executor, FpMemoryRoundTrip)
{
    FunctionalRunner r = runSrc(R"(
        li   a0, buf
        fli  f1, -7.25
        fsd  f1, 0(a0)
        fld  f2, 0(a0)
        halt
        .data
    buf: .space 8
    )");
    EXPECT_EQ(r.mainState().getF(2), -7.25);
}

TEST(Executor, BranchesAndJumps)
{
    EXPECT_EQ(regAfter(R"(
        li x5, 0
        li x6, 3
    top:
        addi x5, x5, 1
        blt  x5, x6, top
    )", 5), 3u);

    // JAL/JALR link and return.
    FunctionalRunner r = runSrc(R"(
    main:
        li   x5, 1
        jal  ra, func
        addi x5, x5, 100
        halt
    func:
        addi x5, x5, 10
        jalr x0, ra, 0
    )");
    EXPECT_EQ(r.mainState().getX(5), 111u);
}

TEST(Executor, BranchVariants)
{
    EXPECT_EQ(regAfter(R"(
        li x5, -1
        li x6, 1
        li x7, 0
        bge  x5, x6, over1
        addi x7, x7, 1
    over1:
        bltu x6, x5, over2
        addi x7, x7, 2
    over2:
        bgeu x5, x6, over3
        addi x7, x7, 100
    over3:
        bne  x5, x6, over4
        addi x7, x7, 200
    over4:
    )", 7), 1u);  // only the bge falls through; the rest are taken
}

TEST(Executor, SilentTstoreDetected)
{
    FuncRunResult result;
    runSrc(R"(
        li  a0, buf
        li  x5, 7
        tsd x5, 0(a0), 0    # changes 0 -> 7 (fires)
        tsd x5, 0(a0), 0    # silent
        li  x6, 8
        tsd x6, 0(a0), 0    # fires
        halt
        .data
    buf: .space 8
    )", &result);
    EXPECT_EQ(result.tstores, 3u);
    EXPECT_EQ(result.silentTstores, 1u);
}

TEST(Executor, TsbSilentComparesByteOnly)
{
    FuncRunResult result;
    runSrc(R"(
        li  a0, buf
        li  x5, 0x1ff        # low byte 0xff
        tsb x5, 0(a0), 0     # fires (0 -> 0xff)
        li  x6, 0x2ff        # same low byte
        tsb x6, 0(a0), 0     # silent at byte granularity
        halt
        .data
    buf: .space 8
    )", &result);
    EXPECT_EQ(result.silentTstores, 1u);
}

TEST(Executor, InlineHandlerRunsOnRealTrigger)
{
    // Handler adds 100 to out for every *value-changing* store.
    FunctionalRunner r = runSrc(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 7
        tsd x5, 0(a0), 0     # fires
        tsd x5, 0(a0), 0     # silent - no handler
        li  x5, 9
        tsd x5, 0(a0), 0     # fires
        halt
    handler:
        li   x6, out
        ld   x7, 0(x6)
        addi x7, x7, 100
        sd   x7, 0(x6)
        tret
        .data
    buf: .space 8
    out: .space 8
    )");
    // out lives 8 bytes after buf (the first data symbol).
    EXPECT_EQ(r.memory().read64(isa::kDataBase + 8), 200u);
}

TEST(Executor, HandlerReceivesAddressAndValue)
{
    FunctionalRunner r = runSrc(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 77
        tsd x5, 8(a0), 0
        halt
    handler:
        li  x6, out
        sd  a0, 0(x6)        # triggering address
        sd  a1, 8(x6)        # stored value
        tret
        .data
    buf: .space 16
    out: .space 16
    )");
    Addr buf = isa::kDataBase;
    Addr out = buf + 16;
    EXPECT_EQ(r.memory().read64(out), buf + 8);
    EXPECT_EQ(r.memory().read64(out + 8), 77u);
}

TEST(Executor, NestedTriggersRun)
{
    FunctionalRunner r = runSrc(R"(
    main:
        treg 0, h0
        treg 1, h1
        li  a0, buf
        li  x5, 1
        tsd x5, 0(a0), 0
        halt
    h0:
        li  x6, buf
        li  x7, 5
        tsd x7, 8(x6), 1     # nested trigger
        tret
    h1:
        li  x6, out
        li  x7, 42
        sd  x7, 0(x6)
        tret
        .data
    buf: .space 16
    out: .space 8
    )");
    EXPECT_EQ(r.memory().read64(isa::kDataBase + 16), 42u);
}

TEST(Executor, UnregisteredTriggerIsIgnored)
{
    FuncRunResult result;
    runSrc(R"(
        li  a0, buf
        li  x5, 3
        tsd x5, 0(a0), 7
        halt
        .data
    buf: .space 8
    )", &result);
    EXPECT_EQ(result.dttRuns, 0u);
}

TEST(Executor, TunregStopsHandler)
{
    FunctionalRunner r = runSrc(R"(
    main:
        treg 0, handler
        tunreg 0
        li  a0, buf
        li  x5, 3
        tsd x5, 0(a0), 0
        halt
    handler:
        li  x6, out
        li  x7, 1
        sd  x7, 0(x6)
        tret
        .data
    buf: .space 8
    out: .space 8
    )");
    EXPECT_EQ(r.memory().read64(isa::kDataBase + 8), 0u);
}

TEST(Executor, TchkReturnsZeroInline)
{
    // Inline semantics: by the time TCHK executes, no work is
    // outstanding.
    EXPECT_EQ(regAfter("tchk x5, 0", 5), 0u);
}

TEST(Executor, MainThreadTretIsFatal)
{
    FunctionalRunner runner(isa::assemble("tret\n halt"));
    EXPECT_THROW(runner.run(), FatalError);
}

TEST(Executor, HaltInsideHandlerIsFatal)
{
    FunctionalRunner runner(isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 1
        tsd x5, 0(a0), 0
        halt
    handler:
        halt
        .data
    buf: .space 8
    )"));
    EXPECT_THROW(runner.run(), FatalError);
}

TEST(Executor, RunawayHandlerHitsBudget)
{
    FunctionalRunner runner(isa::assemble(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 1
        tsd x5, 0(a0), 0
        halt
    handler:
        jal x0, handler
        .data
    buf: .space 8
    )"));
    EXPECT_THROW(runner.run(100000), FatalError);
}

TEST(Executor, StepInfoReportsMemoryEffects)
{
    isa::Program p = isa::assemble(R"(
        li a0, buf
        li x5, 5
        sd x5, 0(a0)
        ld x6, 0(a0)
        halt
        .data
    buf: .space 8
    )");
    mem::Memory m;
    loadData(p, m);
    ArchState st;
    st.reset(p.entry(), stackFor(0));
    step(st, m, p, nullptr);   // li
    step(st, m, p, nullptr);   // li
    StepInfo store = step(st, m, p, nullptr);
    ASSERT_TRUE(store.mem.valid);
    EXPECT_FALSE(store.mem.isLoad);
    EXPECT_EQ(store.mem.value, 5u);
    EXPECT_EQ(store.mem.oldValue, 0u);
    StepInfo load = step(st, m, p, nullptr);
    ASSERT_TRUE(load.mem.valid);
    EXPECT_TRUE(load.mem.isLoad);
    EXPECT_EQ(load.mem.value, 5u);
    StepInfo halt_info = step(st, m, p, nullptr);
    EXPECT_TRUE(halt_info.halted);
}

} // namespace
} // namespace dttsim::cpu
