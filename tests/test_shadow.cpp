/**
 * @file
 * Shadow-memory analyzer tests: cell-level classification semantics
 * (redundant vs fresh loads, silent vs dead stores, partial-width
 * overlap, page-boundary straddling), profiler-level site accounting
 * (killer edges, downstream reads, value-locality runs), the
 * static/dynamic cross-checker (A010/A011/A012 + agreement
 * arithmetic), suppression-record round-trips, determinism under
 * concurrent profiling, and the commit-hook equivalence between the
 * OOO core and the functional reference.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/shadow.h"
#include "common/log.h"
#include "isa/assembler.h"
#include "profile/redundancy.h"
#include "profile/shadowprof.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim {
namespace {

using analysis::LoadClass;
using analysis::ShadowMemory;
using analysis::StoreClass;

// ------------------------------------------------------------------
// Cell-level semantics

TEST(ShadowMemory, FirstLoadFreshRepeatRedundant)
{
    ShadowMemory shadow;
    EXPECT_EQ(shadow.load(1, 0x100, 8, 42), LoadClass::Fresh);
    EXPECT_EQ(shadow.load(1, 0x100, 8, 42), LoadClass::Redundant);
    EXPECT_EQ(shadow.load(2, 0x100, 8, 42), LoadClass::Redundant);
}

TEST(ShadowMemory, ValueChangeBreaksRedundancySilentStoreDoesNot)
{
    ShadowMemory shadow;
    shadow.load(1, 0x100, 8, 7);
    // Silent store: the next load still matches its predecessor.
    EXPECT_EQ(shadow.store(2, 0x100, 8, 7, 7), StoreClass::Silent);
    EXPECT_EQ(shadow.load(1, 0x100, 8, 7), LoadClass::Redundant);
    // Value-changing store: the next load is fresh, the one after
    // redundant again.
    EXPECT_EQ(shadow.store(2, 0x100, 8, 9, 7), StoreClass::Live);
    EXPECT_EQ(shadow.load(1, 0x100, 8, 9), LoadClass::Fresh);
    EXPECT_EQ(shadow.load(1, 0x100, 8, 9), LoadClass::Redundant);
}

TEST(ShadowMemory, PartialWidthOverlapIsByteExact)
{
    ShadowMemory shadow;
    shadow.load(1, 0x200, 8, 0);
    // A one-byte store inside the loaded word: only byte 3 changes.
    shadow.store(2, 0x203, 1, 0x63, 0);
    EXPECT_EQ(shadow.load(1, 0x200, 8, 0x63ull << 24),
              LoadClass::Fresh);
    EXPECT_EQ(shadow.load(1, 0x200, 8, 0x63ull << 24),
              LoadClass::Redundant);
    // A narrower reload of untouched bytes is redundant.
    EXPECT_EQ(shadow.load(3, 0x204, 4, 0), LoadClass::Redundant);
}

TEST(ShadowMemory, DeadStoreAttributionAndDownstreamCredit)
{
    ShadowMemory shadow;
    analysis::ByteAttribution killed;

    // Store at pc 10, overwritten unread by pc 11: 8 dead bytes.
    shadow.store(10, 0x300, 8, 1, 0);
    shadow.store(11, 0x300, 8, 2, 1, &killed);
    ASSERT_EQ(killed.count, 1);
    EXPECT_EQ(killed.edges[0].pc, 10u);
    EXPECT_EQ(killed.edges[0].bytes, 8);

    // A load between stores consumes the bytes: no kill, and the
    // writer is credited as the source.
    analysis::ByteAttribution sourced;
    shadow.load(12, 0x300, 8, 2, &sourced);
    ASSERT_EQ(sourced.count, 1);
    EXPECT_EQ(sourced.edges[0].pc, 11u);
    EXPECT_EQ(sourced.edges[0].bytes, 8);
    killed.clear();
    shadow.store(13, 0x300, 8, 3, 2, &killed);
    EXPECT_EQ(killed.count, 0);
}

TEST(ShadowMemory, PartiallyReadStoreKillsOnlyUnreadBytes)
{
    ShadowMemory shadow;
    shadow.store(10, 0x400, 8, 5, 0);
    shadow.load(11, 0x400, 4, 5);  // reads the low half only
    analysis::ByteAttribution killed;
    shadow.store(12, 0x400, 8, 6, 5, &killed);
    ASSERT_EQ(killed.count, 1);
    EXPECT_EQ(killed.edges[0].pc, 10u);
    EXPECT_EQ(killed.edges[0].bytes, 4);  // the unread high half
}

TEST(ShadowMemory, PageBoundaryStraddle)
{
    ShadowMemory shadow;
    const Addr addr = ShadowMemory::kPageSize - 4;  // 4 bytes each side
    EXPECT_EQ(shadow.load(1, addr, 8, 77), LoadClass::Fresh);
    EXPECT_EQ(shadow.pagesAllocated(), 2u);
    EXPECT_EQ(shadow.load(1, addr, 8, 77), LoadClass::Redundant);
    // A store on the far side of the boundary breaks it again.
    shadow.store(2, addr + 6, 1, 0xff, 0);
    EXPECT_EQ(shadow.load(1, addr, 8, 77 | (0xffull << 48)),
              LoadClass::Fresh);
}

TEST(ShadowMemory, FinalizeDeadSweepsUnreadBytesOnce)
{
    ShadowMemory shadow;
    shadow.store(21, 0x500, 8, 1, 0);
    shadow.store(22, 0x600, 4, 2, 0);
    shadow.load(23, 0x600, 4, 2);  // pc 22's bytes get read

    std::map<std::uint32_t, std::uint64_t> dead;
    shadow.finalizeDead([&](std::uint32_t pc, std::uint64_t bytes) {
        dead[pc] += bytes;
    });
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[21], 8u);

    // Idempotent: a second sweep reports nothing.
    dead.clear();
    shadow.finalizeDead([&](std::uint32_t pc, std::uint64_t bytes) {
        dead[pc] += bytes;
    });
    EXPECT_TRUE(dead.empty());
}

TEST(ShadowMemory, ValueRunBuckets)
{
    EXPECT_EQ(analysis::valueRunBucket(1), 0);
    EXPECT_EQ(analysis::valueRunBucket(2), 1);
    EXPECT_EQ(analysis::valueRunBucket(3), 1);
    EXPECT_EQ(analysis::valueRunBucket(4), 2);
    EXPECT_EQ(analysis::valueRunBucket(255), 7);
    EXPECT_EQ(analysis::valueRunBucket(1ull << 40),
              analysis::kValueRunBuckets - 1);
}

// ------------------------------------------------------------------
// Profiler-level accounting

TEST(ShadowProfiler, CountsRepeatLoadsAsRedundant)
{
    isa::Program prog = isa::assemble(R"(
        li a0, data
        ld t0, 0(a0)
        ld t0, 0(a0)
        ld t0, 0(a0)
        ld t0, 0(a0)
        ld t0, 0(a0)
        halt
        .data
    data: .space 8
    )");
    analysis::ShadowReport r = profile::profileShadow(prog);
    EXPECT_EQ(r.loads, 5u);
    EXPECT_EQ(r.redundantLoads, 4u);
}

TEST(ShadowProfiler, MixedWidthReloadIsRedundant)
{
    // The legacy address-keyed profiler compared the 8-byte value of
    // the ld against the 4-byte value of the lw and misclassified
    // the lw as fresh whenever the high bytes were nonzero. The
    // byte-granular cells classify it exactly.
    isa::Program prog = isa::assemble(R"(
        li a0, data
        li t3, 171
        sb t3, 7(a0)
        li t2, 4660
        sw t2, 0(a0)
        ld t0, 0(a0)
        lw t1, 0(a0)
        halt
        .data
    data: .space 8
    )");
    profile::RedundancyReport r = profile::profileRedundancy(prog);
    EXPECT_EQ(r.loads, 2u);
    EXPECT_EQ(r.redundantLoads, 1u);  // the lw
}

TEST(ShadowProfiler, SiteAccountingOnHandBuiltLoop)
{
    // Store A rewrites 7 every iteration (silent after the first)
    // and is read twice; store B counts up (silent only on the first
    // iteration, which writes 0 over zeroed memory) and its value is
    // overwritten unread every iteration (dead).
    isa::Program prog = isa::assemble(R"(
        li s0, 0
        li s1, 16
        li a0, dataA
        li a1, dataB
        li t0, 7
    top:
        sd t0, 0(a0)
        sd s0, 0(a1)
        ld t1, 0(a0)
        ld t2, 0(a0)
        addi s0, s0, 1
        blt s0, s1, top
        halt
        .data
    dataA: .space 8
    dataB: .space 8
    )");
    analysis::ShadowReport r = profile::profileShadow(prog);

    std::uint64_t sdA = 0, sdB = 0, ld1 = 0;
    for (std::uint64_t pc = 0; pc < prog.text().size(); ++pc) {
        if (prog.text()[pc].op == isa::Opcode::SD)
            (sdA == 0 ? sdA : sdB) = pc;
        if (prog.text()[pc].op == isa::Opcode::LD && ld1 == 0)
            ld1 = pc;
    }
    ASSERT_NE(sdA, 0u);
    ASSERT_NE(sdB, 0u);

    const analysis::RedundancySite &a = r.sites.at(sdA);
    EXPECT_FALSE(a.isLoad);
    EXPECT_EQ(a.executions, 16u);
    EXPECT_EQ(a.silent, 15u);
    EXPECT_EQ(a.width, 8u);
    EXPECT_EQ(a.downstreamReadBytes, 16u * 2u * 8u);
    EXPECT_EQ(a.deadBytes, 0u);
    // One long same-value run of 16 stores: bucket log2(16) = 4.
    EXPECT_EQ(a.valueRuns[4], 1u);

    const analysis::RedundancySite &b = r.sites.at(sdB);
    EXPECT_EQ(b.executions, 16u);
    EXPECT_EQ(b.silent, 1u);  // 0 written over zeroed memory
    // 15 overwrites kill the previous value unread; the final value
    // dies at exit.
    EXPECT_EQ(b.deadBytes, 15u * 8u);
    EXPECT_EQ(b.deadAtExitBytes, 8u);
    ASSERT_EQ(b.killers.size(), 1u);
    EXPECT_EQ(b.killers.begin()->first, sdB);
    EXPECT_EQ(b.killers.begin()->second, 15u * 8u);
    // 16 one-long runs (the value changes every store).
    EXPECT_EQ(b.valueRuns[0], 16u);

    const analysis::RedundancySite &l = r.sites.at(ld1);
    EXPECT_TRUE(l.isLoad);
    EXPECT_EQ(l.executions, 16u);
    EXPECT_EQ(l.redundant, 15u);  // fresh once, then the silent
                                  // stores keep it redundant
    EXPECT_EQ(r.deadStoreBytes, 15u * 8u);
    // dataB's final value is never read; dataA's is (by the lds).
    EXPECT_EQ(r.deadAtExitBytes, 8u);
}

TEST(ShadowProfiler, HandlerInstructionsAreNotClassified)
{
    // Inline-DTT functional execution reports handler steps at depth
    // > 0; the profiler must ignore them (main-thread convention).
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li s0, 0
            li s1, 12
            li a0, trig
        top:
            tsd s0, 0(a0), 0
            twait 0
            addi s0, s0, 1
            blt s0, s1, top
            halt
        handler:
            li t5, out
            li t6, 1
            sd t6, 0(t5)
            ld t6, 0(t5)
            tret
        .data
        trig: .space 8
        out: .space 8
    )");
    analysis::ShadowReport r = profile::profileShadow(prog);
    std::uint64_t handlerPc = prog.label("handler");
    for (const auto &[pc, site] : r.sites)
        EXPECT_LT(pc, handlerPc) << "handler site " << pc
                                 << " leaked into the profile";
}

TEST(ShadowProfiler, DeterministicAcrossConcurrentInstances)
{
    workloads::WorkloadParams params;
    params.iterations = 2;
    isa::Program prog = workloads::mcfWorkload().build(
        workloads::Variant::Baseline, params);

    const analysis::ShadowReport reference =
        profile::profileShadow(prog);
    ASSERT_FALSE(reference.sites.empty());

    // No globals, no thread-locals: eight concurrent profilers must
    // produce byte-identical reports (the --jobs 8 regime of the
    // experiment engine).
    std::vector<analysis::ShadowReport> reports(8);
    std::vector<std::thread> threads;
    for (auto &slot : reports)
        threads.emplace_back([&prog, &slot] {
            slot = profile::profileShadow(prog);
        });
    for (auto &t : threads)
        t.join();
    for (const analysis::ShadowReport &r : reports)
        EXPECT_TRUE(r == reference);
}

// ------------------------------------------------------------------
// Cross-checker

analysis::RedundancySite
loadSite(std::uint64_t pc, std::uint64_t execs, std::uint64_t red)
{
    analysis::RedundancySite s;
    s.pc = pc;
    s.isLoad = true;
    s.width = 8;
    s.executions = execs;
    s.redundant = red;
    return s;
}

analysis::RedundancySite
storeSite(std::uint64_t pc, std::uint64_t execs, std::uint64_t silent)
{
    analysis::RedundancySite s;
    s.pc = pc;
    s.isLoad = false;
    s.width = 8;
    s.executions = execs;
    s.silent = silent;
    return s;
}

analysis::Diagnostic
a008At(std::uint64_t pc)
{
    return {analysis::DiagId::RedundantLoad, analysis::Severity::Lint,
            pc, "test"};
}

bool
hasDiag(const std::vector<analysis::Diagnostic> &diags,
        analysis::DiagId id, std::uint64_t pc)
{
    for (const analysis::Diagnostic &d : diags)
        if (d.id == id && d.pc == pc)
            return true;
    return false;
}

TEST(CrossChecker, EmitsA010ForDynamicOnlyHotSite)
{
    analysis::AnalysisResult statics;  // no A008 findings
    analysis::ShadowReport dyn;
    dyn.sites[5] = loadSite(5, 100, 90);
    dyn.sites[6] = loadSite(6, 100, 10);  // below redundantFrac
    dyn.sites[7] = loadSite(7, 4, 4);     // below minExecutions

    std::vector<analysis::Diagnostic> out;
    analysis::AgreementReport a = analysis::CrossChecker().run(
        statics, dyn, {}, "prog", out);
    EXPECT_EQ(a.dynamicSites, 1u);
    EXPECT_EQ(a.dynamicOnly, 1u);
    EXPECT_EQ(a.agree, 0u);
    EXPECT_TRUE(hasDiag(out,
                        analysis::DiagId::DynamicRedundantLoad, 5));
    EXPECT_FALSE(hasDiag(out,
                         analysis::DiagId::DynamicRedundantLoad, 6));
    EXPECT_FALSE(hasDiag(out,
                         analysis::DiagId::DynamicRedundantLoad, 7));
}

TEST(CrossChecker, EmitsA011ForNeverExecutedStaticFinding)
{
    analysis::AnalysisResult statics;
    statics.diagnostics.push_back(a008At(7));
    statics.diagnostics.push_back(a008At(9));
    analysis::ShadowReport dyn;
    dyn.sites[9] = loadSite(9, 50, 48);  // pc 9 confirmed; pc 7 dead

    std::vector<analysis::Diagnostic> out;
    analysis::AgreementReport a = analysis::CrossChecker().run(
        statics, dyn, {}, "prog", out);
    EXPECT_EQ(a.staticSites, 2u);
    EXPECT_EQ(a.agree, 1u);
    EXPECT_EQ(a.staticOnly, 1u);
    EXPECT_EQ(a.staticNeverExecuted, 1u);
    EXPECT_TRUE(hasDiag(out,
                        analysis::DiagId::StaleStaticFinding, 7));
    EXPECT_DOUBLE_EQ(a.precision(), 0.5);
    EXPECT_DOUBLE_EQ(a.recall(), 1.0);
}

TEST(CrossChecker, EmitsA012OnlyForSafeSilentStores)
{
    analysis::AnalysisResult statics;
    statics.unsafeStores[11] = "writes handler output";
    analysis::ShadowReport dyn;
    dyn.sites[10] = storeSite(10, 100, 80);  // safe, mostly silent
    dyn.sites[11] = storeSite(11, 100, 80);  // statically unsafe
    dyn.sites[12] = storeSite(12, 100, 10);  // rarely silent

    std::vector<analysis::Diagnostic> out;
    analysis::AgreementReport a = analysis::CrossChecker().run(
        statics, dyn, {}, "prog", out);
    EXPECT_EQ(a.triggerCandidates, 1u);
    EXPECT_TRUE(hasDiag(
        out, analysis::DiagId::SilentStoreTriggerCandidate, 10));
    EXPECT_FALSE(hasDiag(
        out, analysis::DiagId::SilentStoreTriggerCandidate, 11));
    EXPECT_FALSE(hasDiag(
        out, analysis::DiagId::SilentStoreTriggerCandidate, 12));
}

TEST(CrossChecker, SuppressionsMuteAndAreCounted)
{
    analysis::AnalysisResult statics;
    analysis::ShadowReport dyn;
    dyn.sites[5] = loadSite(5, 100, 90);
    dyn.sites[10] = storeSite(10, 100, 80);

    analysis::Suppressions sup;
    sup.add("A010", "prog", 5);
    sup.add("A012", "*", 10);  // wildcard program

    std::vector<analysis::Diagnostic> out;
    analysis::AgreementReport a = analysis::CrossChecker().run(
        statics, dyn, sup, "prog", out);
    EXPECT_EQ(a.suppressed, 2u);
    EXPECT_TRUE(out.empty());
    // The counters still see the sites — suppression mutes output,
    // not measurement.
    EXPECT_EQ(a.dynamicOnly, 1u);
    EXPECT_EQ(a.triggerCandidates, 1u);
}

TEST(Suppressions, FormatParseRoundTrip)
{
    analysis::Suppressions sup;
    sup.add("A010", "mcf (baseline)", 41);
    sup.add("A012", "*", 7);
    sup.add("A011", "gzip (dtt)", 123);

    analysis::Suppressions back =
        analysis::Suppressions::parse(sup.format());
    EXPECT_TRUE(back == sup);
    EXPECT_TRUE(back.matches("A010", "mcf (baseline)", 41));
    EXPECT_TRUE(back.matches("A012", "anything", 7));
    EXPECT_FALSE(back.matches("A010", "mcf (dtt)", 41));
}

TEST(Suppressions, ParserSkipsCommentsRejectsMalformed)
{
    analysis::Suppressions sup = analysis::Suppressions::parse(
        "# header comment\n"
        "\n"
        "A010:mcf (baseline):41  # trailing comment\n");
    EXPECT_EQ(sup.size(), 1u);
    EXPECT_TRUE(sup.matches("A010", "mcf (baseline)", 41));

    EXPECT_THROW(analysis::Suppressions::parse("A010:no-pc-field\n"),
                 FatalError);
    EXPECT_THROW(analysis::Suppressions::parse("A010:p:12x\n"),
                 FatalError);
}

// ------------------------------------------------------------------
// Commit-hook integration

TEST(ShadowSim, CommitOrderProfileMatchesFunctionalReference)
{
    workloads::WorkloadParams params;
    params.iterations = 2;
    isa::Program prog = workloads::gzipWorkload().build(
        workloads::Variant::Baseline, params);

    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    cfg.shadowProfile = true;
    sim::Simulator simulator(cfg, prog);
    simulator.run();

    // Context 0 commits in program order, so the commit-stream
    // profile must equal the functional reference exactly.
    EXPECT_TRUE(simulator.shadowReport()
                == profile::profileShadow(prog));
}

TEST(ShadowSim, ProfilingIsPureObservation)
{
    workloads::WorkloadParams params;
    params.iterations = 2;
    isa::Program prog = workloads::mcfWorkload().build(
        workloads::Variant::Dtt, params);

    sim::SimConfig cfg;
    sim::SimResult plain = sim::runProgram(cfg, prog);

    cfg.shadowProfile = true;
    sim::Simulator shadowed(cfg, prog);
    sim::SimResult observed = shadowed.run();
    EXPECT_TRUE(observed == plain);
    EXPECT_GT(shadowed.shadowReport().instructions, 0u);
}

} // namespace
} // namespace dttsim
