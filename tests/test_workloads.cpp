/**
 * @file
 * Workload equivalence tests — the central correctness oracle of the
 * reproduction. For every workload (parameterized):
 *
 *  1. the Baseline and DTT program variants produce the *same*
 *     checksum under the functional reference (inline-DTT semantics);
 *  2. the cycle-level simulator reaches the same checksum as the
 *     functional reference for both variants (so the SMT timing core,
 *     spawn logic and TWAIT fencing preserve the architecture's
 *     semantics end to end);
 *  3. the DTT variant commits fewer main-thread instructions — the
 *     computation really was eliminated, not moved.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "cpu/executor.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::workloads {
namespace {

class WorkloadSuite
    : public ::testing::TestWithParam<std::tuple<const Workload *,
                                                 std::uint64_t>>
{
  protected:
    const Workload &workload() const { return *std::get<0>(GetParam()); }

    WorkloadParams
    params() const
    {
        WorkloadParams p;
        p.seed = std::get<1>(GetParam());
        // Keep test runtime modest: fewer outer iterations.
        p.iterations = 4;
        return p;
    }
};

std::uint64_t
functionalChecksum(const isa::Program &p, std::uint64_t *main_insts,
                   std::uint64_t *dtt_insts)
{
    cpu::FunctionalRunner runner(p);
    cpu::FuncRunResult r = runner.run(1ull << 28);
    EXPECT_TRUE(r.halted);
    if (main_insts)
        *main_insts = r.mainInstructions;
    if (dtt_insts)
        *dtt_insts = r.dttInstructions;
    return resultChecksum(p, runner.memory());
}

TEST_P(WorkloadSuite, BaselineAndDttChecksumsMatchFunctionally)
{
    isa::Program base = workload().build(Variant::Baseline, params());
    isa::Program dtt = workload().build(Variant::Dtt, params());

    std::uint64_t base_main = 0, dtt_main = 0, dtt_handler = 0;
    std::uint64_t cs_base = functionalChecksum(base, &base_main,
                                               nullptr);
    std::uint64_t cs_dtt = functionalChecksum(dtt, &dtt_main,
                                              &dtt_handler);
    EXPECT_EQ(cs_base, cs_dtt);
    EXPECT_NE(cs_base, 0u);
    // The DTT main thread skips the redundant computation.
    EXPECT_LT(dtt_main, base_main);
}

TEST_P(WorkloadSuite, SimulatorMatchesFunctional_Baseline)
{
    isa::Program base = workload().build(Variant::Baseline, params());
    std::uint64_t want = functionalChecksum(base, nullptr, nullptr);

    sim::SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    sim::Simulator s(cfg, base);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(resultChecksum(base, s.core().memory()), want);
}

TEST_P(WorkloadSuite, SimulatorMatchesFunctional_Dtt)
{
    isa::Program dtt = workload().build(Variant::Dtt, params());
    std::uint64_t want = functionalChecksum(dtt, nullptr, nullptr);

    sim::SimConfig cfg;
    sim::Simulator s(cfg, dtt);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(resultChecksum(dtt, s.core().memory()), want);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Values(12345ull, 999ull)),
    [](const ::testing::TestParamInfo<WorkloadSuite::ParamType> &info) {
        return std::get<0>(info.param)->info().name + "_seed"
            + std::to_string(std::get<1>(info.param));
    });

TEST(Workloads, RegistryIsComplete)
{
    EXPECT_EQ(allWorkloads().size(), 15u);
    EXPECT_EQ(findWorkload("mcf").info().specAnalogue, "181.mcf");
    EXPECT_THROW(findWorkload("nope"), dttsim::FatalError);
    for (const Workload *w : allWorkloads()) {
        WorkloadInfo i = w->info();
        EXPECT_FALSE(i.name.empty());
        EXPECT_FALSE(i.kernelDesc.empty());
        EXPECT_GT(i.staticTriggers, 0);
        EXPECT_GT(i.defaultIterations, 0);
        EXPECT_GT(i.defaultUpdateRate, 0.0);
    }
}

TEST(Workloads, UpdateRateIsRespected)
{
    // updateRate = 0 -> every scheduled write is silent -> the DTT
    // variant spawns nothing.
    WorkloadParams p;
    p.iterations = 3;
    p.updateRate = 0.0;
    isa::Program prog = mcfWorkload().build(Variant::Dtt, p);
    cpu::FunctionalRunner runner(prog);
    cpu::FuncRunResult r = runner.run(1ull << 26);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.dttRuns, 0u);
    EXPECT_EQ(r.silentTstores, r.tstores);
}

TEST(Workloads, HighUpdateRateTriggersOften)
{
    WorkloadParams p;
    p.iterations = 3;
    p.updateRate = 1.0;
    isa::Program prog = mcfWorkload().build(Variant::Dtt, p);
    cpu::FunctionalRunner runner(prog);
    cpu::FuncRunResult r = runner.run(1ull << 26);
    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.dttRuns, r.tstores / 2);
}

TEST(Workloads, DeterministicAcrossBuilds)
{
    WorkloadParams p;
    p.iterations = 3;
    isa::Program a = artWorkload().build(Variant::Baseline, p);
    isa::Program b2 = artWorkload().build(Variant::Baseline, p);
    cpu::FunctionalRunner ra(a), rb(b2);
    ra.run(1ull << 26);
    rb.run(1ull << 26);
    EXPECT_EQ(resultChecksum(a, ra.memory()),
              resultChecksum(b2, rb.memory()));
}

TEST(Workloads, SeedsChangeResults)
{
    WorkloadParams p1, p2;
    p1.iterations = p2.iterations = 3;
    p1.seed = 1;
    p2.seed = 2;
    isa::Program a = mcfWorkload().build(Variant::Baseline, p1);
    isa::Program b2 = mcfWorkload().build(Variant::Baseline, p2);
    cpu::FunctionalRunner ra(a), rb(b2);
    ra.run(1ull << 26);
    rb.run(1ull << 26);
    EXPECT_NE(resultChecksum(a, ra.memory()),
              resultChecksum(b2, rb.memory()));
}

} // namespace
} // namespace dttsim::workloads
