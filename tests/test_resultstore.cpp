/**
 * @file
 * Persistent result-cache tests: round-trip across reopen, the
 * corrupt-record skip path (garbage lines, torn tails), the
 * crash-simulation cases for the atomic MANIFEST rewrite (stray
 * *.tmp files, unregistered segments), mode enforcement, the record
 * JSON codec, the end-to-end crc integrity layer (stamp on put,
 * verify on load, re-verify on warm hits, fsck scrub + quarantine),
 * and the fabric chaos hooks (torn appends, forged claims).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "sim/fabricfault.h"
#include "sim/resultstore.h"
#include "workloads/workload.h"

namespace dttsim::sim {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/dttsim-store-test-XXXXXX";
        const char *d = mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path = d;
    }

    ~TempDir() { fs::remove_all(path); }

    std::string path;
};

SimResult
sampleResult(std::uint64_t salt)
{
    workloads::WorkloadParams params;
    params.iterations = 2;
    params.seed = salt;
    SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, params);
    return runProgram(cfg, p);
}

ResultStore::Record
sampleRecord(const std::string &digest, std::uint64_t salt = 1)
{
    ResultStore::Record rec;
    rec.digest = digest;
    rec.status = JobStatus::Ok;
    rec.attempts = 2;
    rec.wallSeconds = 0.125;
    rec.result = sampleResult(salt);
    return rec;
}

void
appendLine(const std::string &file, const std::string &line)
{
    std::ofstream out(file, std::ios::app);
    out << line << "\n";
}

/** Whole file as a string. */
std::string
slurp(const std::string &file)
{
    std::ifstream in(file, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** Path of the first *.jsonl segment in @p dir ("" when none). */
std::string
firstSegment(const std::string &dir)
{
    for (const fs::directory_entry &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".jsonl")
            return e.path().string();
    return "";
}

/** clearFaultPlan() on scope exit: the plan is process-global. */
struct PlanGuard
{
    ~PlanGuard() { fabric::clearFaultPlan(); }
};

TEST(ResultStore, ModeNamesRoundTrip)
{
    for (ResultStore::Mode m :
         {ResultStore::Mode::Off, ResultStore::Mode::ReadOnly,
          ResultStore::Mode::ReadWrite})
        EXPECT_EQ(ResultStore::parseMode(ResultStore::modeName(m)), m);
    EXPECT_FALSE(ResultStore::parseMode("read-write"));
    EXPECT_FALSE(ResultStore::parseMode(""));
}

TEST(ResultStore, MissingDirectoryIsAnEmptyStore)
{
    TempDir tmp;
    ResultStore store(tmp.path + "/does-not-exist",
                      ResultStore::Mode::ReadOnly);
    EXPECT_EQ(store.records(), 0u);
    EXPECT_EQ(store.corruptRecords(), 0u);
    EXPECT_FALSE(store.lookup("0123456789abcdef"));
}

TEST(ResultStore, RecordsRoundTripAcrossReopen)
{
    TempDir tmp;
    ResultStore::Record a = sampleRecord("00000000000000aa", 1);
    ResultStore::Record b = sampleRecord("00000000000000bb", 2);
    b.status = JobStatus::Failed;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(a);
        store.put(b);
        store.put(a);  // duplicate digest: not re-appended
        EXPECT_EQ(store.records(), 2u);
    }
    ResultStore store(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(store.records(), 2u);
    EXPECT_EQ(store.segmentsLoaded(), 1u);
    EXPECT_EQ(store.corruptRecords(), 0u);

    std::optional<ResultStore::Record> got = store.lookup(a.digest);
    ASSERT_TRUE(got);
    EXPECT_EQ(got->result, a.result);
    EXPECT_EQ(got->status, JobStatus::Ok);
    EXPECT_EQ(got->attempts, 2);
    EXPECT_DOUBLE_EQ(got->wallSeconds, 0.125);

    got = store.lookup(b.digest);
    ASSERT_TRUE(got);
    EXPECT_EQ(got->status, JobStatus::Failed);
    EXPECT_EQ(got->result, b.result);
}

TEST(ResultStore, CorruptLinesAreSkippedNotFatal)
{
    TempDir tmp;
    std::string segment;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
        for (const fs::directory_entry &e :
             fs::directory_iterator(tmp.path))
            if (e.path().extension() == ".jsonl")
                segment = e.path().string();
    }
    ASSERT_FALSE(segment.empty());

    // Inject every corruption class a kill -9 or bitrot can leave:
    // non-JSON garbage, a well-formed record with a mistyped field,
    // and a torn (truncated) tail line without a newline.
    appendLine(segment, "this is not json");
    appendLine(segment,
               "{\"digest\": \"00000000000000bb\", \"status\": "
               "\"ok\", \"attempts\": 0}");
    {
        std::ofstream out(segment, std::ios::app);
        out << "{\"digest\": \"00000000000000cc\", \"sta";
    }

    ResultStore store(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(store.records(), 1u);
    EXPECT_EQ(store.corruptRecords(), 3u);
    EXPECT_TRUE(store.lookup("00000000000000aa"));
    EXPECT_FALSE(store.lookup("00000000000000bb"));
    EXPECT_FALSE(store.lookup("00000000000000cc"));
}

TEST(ResultStore, CrashArtifactsAreIgnoredOnLoad)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
    }
    // A crash between segment creation and MANIFEST rewrite leaves a
    // stray MANIFEST.tmp and possibly an unregistered segment; both
    // must be invisible to the next load.
    appendLine(tmp.path + "/MANIFEST.tmp", "{\"torn\": tru");
    {
        std::ofstream out(tmp.path + "/seg-99999-0.jsonl");
        out << storeRecordToJson(
                   sampleRecord("00000000000000dd", 3)).dump()
            << "\n";
    }
    appendLine(tmp.path + "/seg-99999-1.jsonl.tmp", "{}");

    ResultStore store(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(store.records(), 1u);
    EXPECT_TRUE(store.lookup("00000000000000aa"));
    // Not in the MANIFEST, so not loaded: durability comes from the
    // manifest registration happening before the first record write.
    EXPECT_FALSE(store.lookup("00000000000000dd"));
}

TEST(ResultStore, CorruptManifestDegradesToEmptyStore)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
    }
    std::ofstream(tmp.path + "/MANIFEST") << "{\"segments\": tru";
    ResultStore store(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(store.records(), 0u);
}

TEST(ResultStore, ReadOnlyStoreNeverWrites)
{
    TempDir tmp;
    ResultStore store(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_FALSE(store.writable());
    store.put(sampleRecord("00000000000000aa", 1));
    EXPECT_EQ(store.records(), 0u);
    EXPECT_FALSE(fs::exists(store.manifestPath()));
}

TEST(ResultStore, OffStoreIsInert)
{
    TempDir tmp;
    ResultStore store(tmp.path, ResultStore::Mode::Off);
    EXPECT_FALSE(store.readable());
    store.put(sampleRecord("00000000000000aa", 1));
    EXPECT_FALSE(store.lookup("00000000000000aa"));
    EXPECT_FALSE(fs::exists(store.manifestPath()));
}

/** Segment files currently on disk (the *.jsonl census). */
std::size_t
segmentFilesOnDisk(const std::string &dir)
{
    std::size_t n = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".jsonl")
            ++n;
    return n;
}

TEST(ResultStore, CompactMergesSegmentsIntoOne)
{
    TempDir tmp;
    // Three writer lifetimes → three segments, the way a sweep of
    // figure binaries accretes them.
    const char *digests[] = {"00000000000000a1", "00000000000000a2",
                             "00000000000000a3"};
    for (int i = 0; i < 3; ++i) {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord(digests[i],
                               static_cast<std::uint64_t>(i + 1)));
    }

    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    EXPECT_EQ(store.records(), 3u);
    EXPECT_EQ(store.segmentCount(), 3u);
    EXPECT_EQ(store.segmentsLoaded(), 3u);

    std::optional<std::size_t> n = store.compact();
    ASSERT_TRUE(n);
    EXPECT_EQ(*n, 3u);
    EXPECT_EQ(store.segmentCount(), 1u);
    EXPECT_EQ(store.records(), 3u);
    // The retired segment files are gone; only the compacted one
    // remains on disk.
    EXPECT_EQ(segmentFilesOnDisk(tmp.path), 1u);
    for (const char *d : digests)
        EXPECT_TRUE(store.lookup(d)) << d;

    // The store stays writable after compacting: new records append
    // to the compacted segment.
    store.put(sampleRecord("00000000000000ff", 9));
    EXPECT_EQ(store.records(), 4u);
    EXPECT_EQ(store.segmentCount(), 1u);
}

TEST(ResultStore, CompactedStoreReloadsIntact)
{
    TempDir tmp;
    ResultStore::Record a = sampleRecord("00000000000000a1", 1);
    ResultStore::Record b = sampleRecord("00000000000000a2", 2);
    b.status = JobStatus::Failed;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(a);
    }
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(b);
        ASSERT_TRUE(store.compact());
    }
    ResultStore reload(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(reload.records(), 2u);
    EXPECT_EQ(reload.segmentsLoaded(), 1u);
    EXPECT_EQ(reload.corruptRecords(), 0u);
    std::optional<ResultStore::Record> got = reload.lookup(a.digest);
    ASSERT_TRUE(got);
    EXPECT_EQ(got->result, a.result);
    got = reload.lookup(b.digest);
    ASSERT_TRUE(got);
    EXPECT_EQ(got->status, JobStatus::Failed);
    EXPECT_EQ(got->result, b.result);
}

TEST(ResultStore, CompactRequiresWritableStore)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000a1", 1));
    }
    ResultStore ro(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_FALSE(ro.compact());
    EXPECT_FALSE(ro.clear());
    EXPECT_EQ(ro.records(), 1u);
    EXPECT_EQ(segmentFilesOnDisk(tmp.path), 1u);
}

TEST(ResultStore, ClearDropsEverythingButStaysUsable)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000a1", 1));
        store.put(sampleRecord("00000000000000a2", 2));
    }
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    EXPECT_EQ(store.records(), 2u);
    EXPECT_TRUE(store.clear());
    EXPECT_EQ(store.records(), 0u);
    EXPECT_EQ(store.segmentCount(), 0u);
    EXPECT_FALSE(store.lookup("00000000000000a1"));
    EXPECT_EQ(segmentFilesOnDisk(tmp.path), 0u);

    // Still usable: the next put opens a fresh segment.
    store.put(sampleRecord("00000000000000ee", 5));
    EXPECT_EQ(store.records(), 1u);

    ResultStore reload(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(reload.records(), 1u);
    EXPECT_TRUE(reload.lookup("00000000000000ee"));
    EXPECT_FALSE(reload.lookup("00000000000000a1"));
}

TEST(ResultStoreJson, RecordCodecRoundTripsAndRejectsCorruption)
{
    ResultStore::Record rec = sampleRecord("00000000000000aa", 1);
    rec.status = JobStatus::Failed;
    json::Value v = storeRecordToJson(rec);

    std::string error;
    std::optional<ResultStore::Record> back =
        tryStoreRecordFromJson(v, &error);
    ASSERT_TRUE(back) << error;
    EXPECT_EQ(back->digest, rec.digest);
    EXPECT_EQ(back->status, rec.status);
    EXPECT_EQ(back->attempts, rec.attempts);
    EXPECT_DOUBLE_EQ(back->wallSeconds, rec.wallSeconds);
    EXPECT_EQ(back->result, rec.result);

    json::Value badStatus = storeRecordToJson(rec);
    badStatus.set("status", json::Value(std::string("crashed")));
    EXPECT_FALSE(tryStoreRecordFromJson(badStatus, &error));
    EXPECT_NE(error.find("status"), std::string::npos);

    json::Value badAttempts = storeRecordToJson(rec);
    badAttempts.set("attempts", json::Value(std::uint64_t(0)));
    EXPECT_FALSE(tryStoreRecordFromJson(badAttempts, &error));
    EXPECT_NE(error.find("attempts"), std::string::npos);
}

TEST(ResultStoreClaims, AcquireIsReentrantAndReleasable)
{
    TempDir tmp;
    ResultStore a(tmp.path, ResultStore::Mode::ReadWrite);
    ResultStore b(tmp.path, ResultStore::Mode::ReadWrite);
    const std::string digest = "00000000000000aa";

    EXPECT_EQ(a.tryClaim(digest), ResultStore::ClaimOutcome::Acquired);
    // Re-entrant: the same store re-claiming its own digest wins.
    EXPECT_EQ(a.tryClaim(digest), ResultStore::ClaimOutcome::Acquired);

    // A second store sees a live holder, with its identity.
    ResultStore::ClaimInfo holder;
    EXPECT_EQ(b.tryClaim(digest, &holder),
              ResultStore::ClaimOutcome::Busy);
    EXPECT_EQ(holder.pid, static_cast<long>(getpid()));
    EXPECT_GT(holder.deadlineUnix, 0u);

    // Release only unlinks our own claim; then the other store wins.
    b.releaseClaim(digest);  // not b's claim: must be a no-op
    EXPECT_EQ(b.tryClaim(digest), ResultStore::ClaimOutcome::Busy);
    a.releaseClaim(digest);
    EXPECT_EQ(b.tryClaim(digest), ResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(a.staleClaimsTaken(), 0u);
    EXPECT_EQ(b.staleClaimsTaken(), 0u);
}

TEST(ResultStoreClaims, ReadOnlyStoreCannotClaim)
{
    TempDir tmp;
    {
        ResultStore rw(tmp.path, ResultStore::Mode::ReadWrite);
        rw.put(sampleRecord("00000000000000aa", 1));
    }
    ResultStore ro(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(ro.tryClaim("00000000000000bb"),
              ResultStore::ClaimOutcome::Unsupported);
}

TEST(ResultStoreClaims, StaleDeadPidClaimIsTakenOver)
{
    TempDir tmp;
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    const std::string digest = "00000000000000cc";

    // Forge a claim from a kill -9'd process on this host: a pid
    // far above any live one, with a deadline well in the future so
    // only the pid probe can unwedge it.
    fs::create_directories(tmp.path + "/claims");
    std::ofstream out(tmp.path + "/claims/" + digest + ".claim");
    out << "{\"pid\": 999999999, \"host\": \"" << []() {
        char h[256] = "";
        gethostname(h, sizeof h - 1);
        return std::string(h);
    }() << "\", \"token\": 1234, \"deadline_unix\": "
        << "18446744073709551615}\n";
    out.close();

    EXPECT_EQ(store.tryClaim(digest),
              ResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(store.staleClaimsTaken(), 1u);
}

TEST(ResultStoreClaims, ExpiredDeadlineClaimIsTakenOver)
{
    TempDir tmp;
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    const std::string digest = "00000000000000dd";

    // A foreign host's claim (pid probe can't apply) whose deadline
    // has long passed.
    fs::create_directories(tmp.path + "/claims");
    std::ofstream out(tmp.path + "/claims/" + digest + ".claim");
    out << "{\"pid\": 1, \"host\": \"some-other-host\", "
           "\"token\": 99, \"deadline_unix\": 10}\n";
    out.close();

    EXPECT_EQ(store.tryClaim(digest),
              ResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(store.staleClaimsTaken(), 1u);
}

TEST(ResultStoreClaims, UnparsableClaimIsACorpseNotAHolder)
{
    TempDir tmp;
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    const std::string digest = "00000000000000ee";

    // Claims are published with link(2) from fully written tmp
    // files, so a garbage claim can only be a corpse from a foreign
    // writer — taken over, never waited on.
    fs::create_directories(tmp.path + "/claims");
    std::ofstream out(tmp.path + "/claims/" + digest + ".claim");
    out << "{\"pi";
    out.close();

    EXPECT_EQ(store.tryClaim(digest),
              ResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(store.staleClaimsTaken(), 1u);
}

TEST(ResultStoreClaims, DestructorReleasesHeldClaims)
{
    TempDir tmp;
    const std::string digest = "00000000000000ff";
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        EXPECT_EQ(store.tryClaim(digest),
                  ResultStore::ClaimOutcome::Acquired);
    }
    EXPECT_FALSE(
        fs::exists(tmp.path + "/claims/" + digest + ".claim"));
}

TEST(ResultStoreFabric, RefreshSeesOtherProcessesRecords)
{
    TempDir tmp;
    ResultStore writer(tmp.path, ResultStore::Mode::ReadWrite);
    ResultStore reader(tmp.path, ResultStore::Mode::ReadWrite);

    ResultStore::Record rec = sampleRecord("00000000000000aa", 1);
    writer.put(rec);
    EXPECT_FALSE(reader.lookup(rec.digest));

    reader.refresh();
    std::optional<ResultStore::Record> got = reader.lookup(rec.digest);
    ASSERT_TRUE(got);
    EXPECT_EQ(got->result, rec.result);

    // Appends to an already-known segment are also picked up.
    ResultStore::Record rec2 = sampleRecord("00000000000000bb", 2);
    writer.put(rec2);
    reader.refresh();
    EXPECT_TRUE(reader.lookup(rec2.digest));
}

TEST(ResultStoreFabric, ConcurrentWritersGetDistinctSegments)
{
    TempDir tmp;
    {
        // Same pid, same directory, two live writers: the per-store
        // nonce keeps their segment names from colliding, so neither
        // clobbers the other's records.
        ResultStore a(tmp.path, ResultStore::Mode::ReadWrite);
        ResultStore b(tmp.path, ResultStore::Mode::ReadWrite);
        a.put(sampleRecord("00000000000000aa", 1));
        b.put(sampleRecord("00000000000000bb", 2));
    }
    ResultStore reload(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(reload.records(), 2u);
    EXPECT_EQ(reload.segmentsLoaded(), 2u);
    EXPECT_TRUE(reload.lookup("00000000000000aa"));
    EXPECT_TRUE(reload.lookup("00000000000000bb"));
}

TEST(ResultStorePrune, EvictsByAgeThenBySizeBudget)
{
    TempDir tmp;
    ResultStore::Record old1 = sampleRecord("00000000000000aa", 1);
    ResultStore::Record old2 = sampleRecord("00000000000000bb", 2);
    ResultStore::Record young = sampleRecord("00000000000000cc", 3);
    old1.createdUnix = 1000;
    old2.createdUnix = 2000;
    young.createdUnix = 9000;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(old1);
        store.put(old2);
        store.put(young);
    }

    // Age pass: with now pinned at 10000 and max age 5000, both old
    // records (last used at 1000/2000) go; the young one stays.
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        std::optional<ResultStore::PruneStats> stats =
            store.prune(0, 5000, 10000);
        ASSERT_TRUE(stats);
        EXPECT_EQ(stats->evicted, 2u);
        EXPECT_EQ(stats->kept, 1u);
        EXPECT_GT(stats->evictedBytes, 0u);
        EXPECT_TRUE(store.lookup(young.digest));
        EXPECT_FALSE(store.lookup(old1.digest));
    }
    ResultStore reload(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(reload.records(), 1u);
    EXPECT_TRUE(reload.lookup(young.digest));
}

TEST(ResultStorePrune, SizeBudgetKeepsMostRecentlyUsed)
{
    TempDir tmp;
    ResultStore::Record a = sampleRecord("00000000000000aa", 1);
    ResultStore::Record b = sampleRecord("00000000000000bb", 2);
    ResultStore::Record c = sampleRecord("00000000000000cc", 3);
    a.createdUnix = 1000;
    b.createdUnix = 2000;
    c.createdUnix = 3000;

    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    store.put(a);
    store.put(b);
    store.put(c);
    const std::uint64_t oneRecord = store.recordBytes() / 3;

    // Budget for ~one record: the least-recently-used two go.
    std::optional<ResultStore::PruneStats> stats =
        store.prune(oneRecord + 8, 0, 10000);
    ASSERT_TRUE(stats);
    EXPECT_EQ(stats->evicted, 2u);
    EXPECT_EQ(stats->kept, 1u);
    EXPECT_FALSE(store.lookup(a.digest));
    EXPECT_FALSE(store.lookup(b.digest));
    EXPECT_TRUE(store.lookup(c.digest));
}

/** Bump one digit of the record's "cycles" value in @p line: valid
 *  JSON, decodable record, wrong checksum — silent bit-rot. */
void
bumpCyclesDigit(std::string *line)
{
    std::size_t pos = line->find("\"cycles\":");
    ASSERT_NE(pos, std::string::npos) << *line;
    char &d = (*line)[pos + 9];
    ASSERT_TRUE(d >= '0' && d <= '9') << *line;
    d = d == '9' ? '0' : static_cast<char>(d + 1);
}

TEST(ResultStoreCrc, CodecStampsAndVerifiesTheChecksum)
{
    ResultStore::Record rec = sampleRecord("00000000000000aa", 1);
    json::Value v = storeRecordToJson(rec);
    const json::Value *crc = v.find("crc");
    ASSERT_NE(crc, nullptr);
    EXPECT_TRUE(crc->isUint());
    EXPECT_EQ(crc->asUint(),
              recordCrc(rec.digest, rec.status, rec.attempts,
                        rec.result));

    std::string error;
    std::optional<ResultStore::Record> back =
        tryStoreRecordFromJson(v, &error);
    ASSERT_TRUE(back) << error;
    EXPECT_EQ(back->crc, crc->asUint());

    // Bit-rot in the payload: still valid JSON, still a decodable
    // record, but the checksum no longer matches.
    std::string line = v.dump();
    bumpCyclesDigit(&line);
    std::optional<json::Value> rotted = json::Value::tryParse(line);
    ASSERT_TRUE(rotted);
    EXPECT_FALSE(tryStoreRecordFromJson(*rotted, &error));
    EXPECT_NE(error.find("crc mismatch"), std::string::npos);

    // Legacy (pre-v4) records carry no checksum and are trusted.
    const json::Value stamped = storeRecordToJson(rec);
    json::Value v3 = json::Value::object();
    for (const auto &[k, val] : stamped.members())
        if (k != "crc")
            v3.set(k, val);
    back = tryStoreRecordFromJson(v3, &error);
    ASSERT_TRUE(back) << error;
    EXPECT_EQ(back->crc, 0u);
}

TEST(ResultStoreCrc, BitRotOnDiskIsSkippedOnLoad)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
    }
    const std::string segment = firstSegment(tmp.path);
    ASSERT_FALSE(segment.empty());
    std::string text = slurp(segment);
    bumpCyclesDigit(&text);
    std::ofstream(segment, std::ios::binary | std::ios::trunc)
        << text;

    // The rotted record is indistinguishable from a healthy one to
    // the JSON layer; only the checksum catches it.
    ResultStore store(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(store.records(), 0u);
    EXPECT_EQ(store.corruptRecords(), 1u);
    EXPECT_FALSE(store.lookup("00000000000000aa"));
}

TEST(ResultStoreCrc, FsckQuarantinesBitRotAndSecondPassIsClean)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
        store.put(sampleRecord("00000000000000bb", 2));
    }
    const std::string segment = firstSegment(tmp.path);
    ASSERT_FALSE(segment.empty());
    // Rot the first record's payload, leave the second intact.
    std::string text = slurp(segment);
    bumpCyclesDigit(&text);
    std::ofstream(segment, std::ios::binary | std::ios::trunc)
        << text;

    std::string error;
    std::optional<ResultStore::FsckReport> rep =
        ResultStore::fsck(tmp.path, /*dry_run=*/false, &error);
    ASSERT_TRUE(rep) << error;
    EXPECT_FALSE(rep->clean());
    EXPECT_EQ(rep->badRecords, 1u);
    EXPECT_EQ(rep->crcMismatches, 1u);
    EXPECT_EQ(rep->recordsKept, 1u);
    EXPECT_EQ(rep->segmentsRewritten, 1u);

    // The bad line went to quarantine, verbatim.
    const std::string qfile = tmp.path + "/quarantine/"
        + fs::path(segment).filename().string();
    ASSERT_TRUE(fs::exists(qfile));
    EXPECT_NE(slurp(qfile).find("00000000000000aa"),
              std::string::npos);

    // Second pass: nothing left to find.
    rep = ResultStore::fsck(tmp.path, false, &error);
    ASSERT_TRUE(rep) << error;
    EXPECT_TRUE(rep->clean());
    EXPECT_EQ(rep->recordsKept, 1u);

    // And the scrubbed store loads with no warnings at all.
    ResultStore reload(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(reload.records(), 1u);
    EXPECT_EQ(reload.corruptRecords(), 0u);
    EXPECT_TRUE(reload.lookup("00000000000000bb"));
}

TEST(ResultStoreCrc, FsckDryRunReportsButTouchesNothing)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
    }
    const std::string segment = firstSegment(tmp.path);
    std::string text = slurp(segment);
    bumpCyclesDigit(&text);
    std::ofstream(segment, std::ios::binary | std::ios::trunc)
        << text;

    std::string error;
    std::optional<ResultStore::FsckReport> rep =
        ResultStore::fsck(tmp.path, /*dry_run=*/true, &error);
    ASSERT_TRUE(rep) << error;
    EXPECT_EQ(rep->badRecords, 1u);
    EXPECT_EQ(rep->segmentsRewritten, 0u);
    EXPECT_FALSE(fs::exists(tmp.path + "/quarantine"));
    EXPECT_EQ(slurp(segment), text);
}

TEST(ResultStoreFault, TornAppendSealsTheSegmentAndFsckRepairs)
{
    TempDir tmp;
    PlanGuard guard;
    fabric::FaultConfig c;
    c.seed = 3;
    c.rates[static_cast<std::size_t>(
        fabric::FaultSite::TornAppend)] = 1.0;
    fabric::installFaultPlan(c);
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
        // The append tore mid-line: the record was neither indexed
        // nor made durable — exactly what a SIGKILL there costs.
        EXPECT_EQ(store.records(), 0u);

        // With the plan disarmed the retry lands in a fresh segment
        // (the torn one was sealed).
        fabric::clearFaultPlan();
        store.put(sampleRecord("00000000000000aa", 1));
        EXPECT_EQ(store.records(), 1u);
    }
    {
        // The torn tail costs one corrupt-record warning per load...
        ResultStore reload(tmp.path, ResultStore::Mode::ReadOnly);
        EXPECT_EQ(reload.records(), 1u);
        EXPECT_EQ(reload.corruptRecords(), 1u);
        EXPECT_TRUE(reload.lookup("00000000000000aa"));
    }
    // ...until fsck quarantines it.
    std::string error;
    std::optional<ResultStore::FsckReport> rep =
        ResultStore::fsck(tmp.path, false, &error);
    ASSERT_TRUE(rep) << error;
    EXPECT_EQ(rep->badRecords, 1u);
    EXPECT_EQ(rep->crcMismatches, 0u);  // torn, not rotted
    EXPECT_EQ(rep->segmentsRewritten, 1u);

    rep = ResultStore::fsck(tmp.path, false, &error);
    ASSERT_TRUE(rep) << error;
    EXPECT_TRUE(rep->clean());
    ResultStore scrubbed(tmp.path, ResultStore::Mode::ReadOnly);
    EXPECT_EQ(scrubbed.records(), 1u);
    EXPECT_EQ(scrubbed.corruptRecords(), 0u);
}

TEST(ResultStoreFault, ForgedFarFutureClaimIsTakenOver)
{
    TempDir tmp;
    PlanGuard guard;
    fabric::FaultConfig c;
    c.seed = 9;
    c.rates[static_cast<std::size_t>(
        fabric::FaultSite::ForgeClaim)] = 1.0;
    fabric::installFaultPlan(c);

    // The injected corpse carries a dead pid behind a ~100-year
    // lease; the same-host pid probe must take it over anyway.
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    EXPECT_EQ(store.tryClaim("00000000000000aa"),
              ResultStore::ClaimOutcome::Acquired);
    EXPECT_EQ(store.staleClaimsTaken(), 1u);
}

TEST(ResultStoreHits, TornHitsSidecarDegradesAndRecovers)
{
    TempDir tmp;
    {
        ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
        store.put(sampleRecord("00000000000000aa", 1));
        store.lookup("00000000000000aa");  // marks a last-hit time
    }
    ASSERT_TRUE(fs::exists(tmp.path + "/HITS"));

    // Tear the sidecar mid-write. Advisory data: the store must load
    // every record regardless, and the next flush must leave a
    // well-formed file again.
    std::ofstream(tmp.path + "/HITS", std::ios::trunc)
        << "{\"00000000000000aa\": 12";
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    EXPECT_EQ(store.records(), 1u);
    ASSERT_TRUE(store.lookup("00000000000000aa"));
    store.flushHits();

    std::optional<json::Value> doc =
        json::Value::tryParse(slurp(tmp.path + "/HITS"));
    ASSERT_TRUE(doc);
    ASSERT_TRUE(doc->isObject());
    const json::Value *ts = doc->find("00000000000000aa");
    ASSERT_NE(ts, nullptr);
    EXPECT_TRUE(ts->isUint());
}

TEST(ResultStorePrune, NoOpWhenEverythingFits)
{
    TempDir tmp;
    ResultStore store(tmp.path, ResultStore::Mode::ReadWrite);
    store.put(sampleRecord("00000000000000aa", 1));
    std::size_t segsBefore = store.segmentCount();
    std::optional<ResultStore::PruneStats> stats =
        store.prune(0, 0, 0);
    ASSERT_TRUE(stats);
    EXPECT_EQ(stats->evicted, 0u);
    EXPECT_EQ(stats->kept, 1u);
    // No eviction → no rewrite: the segment set is untouched.
    EXPECT_EQ(store.segmentCount(), segsBefore);
}

} // namespace
} // namespace dttsim::sim
