/**
 * @file
 * Assembler tests: sections, labels, data directives, every operand
 * format, symbolic resolution, error reporting, and a disassembler
 * round trip.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

namespace dttsim::isa {
namespace {

TEST(Assembler, MinimalProgram)
{
    Program p = assemble(R"(
        .text
    main:
        li   x5, 42
        halt
    )");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.entry(), 0u);
    EXPECT_EQ(p.at(0).op, Opcode::LI);
    EXPECT_EQ(p.at(0).rd, 5);
    EXPECT_EQ(p.at(0).imm, 42);
    EXPECT_EQ(p.at(1).op, Opcode::HALT);
}

TEST(Assembler, AllOperandFormats)
{
    Program p = assemble(R"(
        add  x1, x2, x3
        addi x1, x2, -7
        li   x1, 0x10
        ld   x4, 8(x5)
        sd   x4, -8(x5)
        tsd  x4, 0(x5), 2
        beq  x1, x2, main
        jal  ra, main
        jalr x0, ra, 0
        fadd f1, f2, f3
        fneg f1, f2
        fcvtdw f1, x2
        fcvtwd x2, f1
        feq  x1, f2, f3
        fli  f1, 2.5
        fld  f4, 0(x5)
        fsd  f4, 0(x5)
        treg 1, main
        tunreg 1
        twait 1
        tchk x3, 1
        tclr 1
        tret
        nop
    main:
        halt
    )");
    EXPECT_EQ(p.at(0).op, Opcode::ADD);
    EXPECT_EQ(p.at(1).imm, -7);
    EXPECT_EQ(p.at(2).imm, 0x10);
    EXPECT_EQ(p.at(3).imm, 8);
    EXPECT_EQ(p.at(4).imm, -8);
    EXPECT_EQ(p.at(5).trig, 2);
    EXPECT_EQ(p.at(6).imm, static_cast<std::int64_t>(p.label("main")));
    EXPECT_EQ(p.at(7).imm, static_cast<std::int64_t>(p.label("main")));
    EXPECT_EQ(p.at(14).fimm, 2.5);
    EXPECT_EQ(p.at(17).op, Opcode::TREG);
    EXPECT_EQ(p.at(17).imm, static_cast<std::int64_t>(p.label("main")));
    EXPECT_EQ(p.numTriggers(), 3);  // highest trigger id is 2
}

TEST(Assembler, RegisterAliases)
{
    Program p = assemble(R"(
        add  zero, ra, sp
        add  a0, a7, x31
    )");
    EXPECT_EQ(p.at(0).rd, 0);
    EXPECT_EQ(p.at(0).rs1, 1);
    EXPECT_EQ(p.at(0).rs2, 2);
    EXPECT_EQ(p.at(1).rd, 10);
    EXPECT_EQ(p.at(1).rs1, 17);
    EXPECT_EQ(p.at(1).rs2, 31);
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
        .text
        li a0, arr
        halt
        .data
    arr:  .quad 1, -2, 3
    w:    .word 7, 8
    bs:   .byte 1, 2, 3, 4
    dbl:  .double 1.5
    sp1:  .space 32
    end:  .quad 99
    )");
    Addr arr = p.dataSymbol("arr");
    EXPECT_EQ(p.at(0).imm, static_cast<std::int64_t>(arr));
    EXPECT_EQ(p.dataSymbol("w"), arr + 24);
    EXPECT_EQ(p.dataSymbol("bs"), arr + 32);
    EXPECT_EQ(p.dataSymbol("dbl"), arr + 40);
    EXPECT_EQ(p.dataSymbol("sp1"), arr + 48);
    EXPECT_EQ(p.dataSymbol("end"), arr + 80);
    // Chunks carry the encoded bytes.
    EXPECT_EQ(p.dataChunks()[0].bytes.size(), 24u);
    EXPECT_EQ(p.dataChunks()[0].bytes[0], 1u);
    EXPECT_EQ(p.dataChunks()[0].bytes[8], 0xfeu);  // -2 little endian
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        # full line comment

        nop   # trailing comment
        halt
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, ForwardAndBackwardBranches)
{
    Program p = assemble(R"(
    top:
        addi x1, x1, 1
        beq  x1, x2, done
        jal  x0, top
    done:
        halt
    )");
    EXPECT_EQ(p.at(1).imm, 3);
    EXPECT_EQ(p.at(2).imm, 0);
}

TEST(Assembler, UnnamedContinuationChunksAreContiguous)
{
    // A second data line without a label extends the previous array
    // with no alignment gap; the next *named* object realigns.
    Program p = assemble(R"(
        halt
        .data
    arr: .byte 1, 2, 3
         .byte 4, 5
    nxt: .quad 7
    )");
    Addr arr = p.dataSymbol("arr");
    ASSERT_EQ(p.dataChunks().size(), 3u);
    EXPECT_EQ(p.dataChunks()[1].base, arr + 3);   // contiguous
    EXPECT_EQ(p.dataSymbol("nxt"), arr + 8);      // realigned
}

TEST(Assembler, PseudoInstructions)
{
    Program p = assemble(R"(
    main:
        beqz x5, main
        bnez x6, main
        j    main
        call main
        ret
        mv   x7, x8
        halt
    )");
    EXPECT_EQ(p.at(0).op, Opcode::BEQ);
    EXPECT_EQ(p.at(0).rs2, 0);
    EXPECT_EQ(p.at(1).op, Opcode::BNE);
    EXPECT_EQ(p.at(2).op, Opcode::JAL);
    EXPECT_EQ(p.at(2).rd, 0);
    EXPECT_EQ(p.at(3).op, Opcode::JAL);
    EXPECT_EQ(p.at(3).rd, 1);
    EXPECT_EQ(p.at(4).op, Opcode::JALR);
    EXPECT_EQ(p.at(4).rs1, 1);
    EXPECT_EQ(p.at(5).op, Opcode::ADDI);
    EXPECT_EQ(p.at(5).rd, 7);
    EXPECT_EQ(p.at(5).rs1, 8);
    EXPECT_EQ(p.at(5).imm, 0);
    EXPECT_THROW(assemble("beqz x5"), FatalError);
    EXPECT_THROW(assemble("ret x1"), FatalError);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus x1, x2"), FatalError);
    EXPECT_THROW(assemble("add x1, x2"), FatalError);
    EXPECT_THROW(assemble("add x1, x2, notareg"), FatalError);
    EXPECT_THROW(assemble("beq x1, x2, nowhere"), FatalError);
    EXPECT_THROW(assemble(".quad 1"), FatalError);   // outside .data
    EXPECT_THROW(assemble(".data\n nop"), FatalError);
    EXPECT_THROW(assemble(".data\nx: .unknown 3"), FatalError);
    EXPECT_THROW(assemble("ld x1, 8 x2"), FatalError);
}

TEST(Assembler, OutOfRangeTargetRejected)
{
    // Numeric branch/jump targets must land inside the text.
    EXPECT_THROW(assemble("beq x1, x2, 99\n halt"), FatalError);
    EXPECT_THROW(assemble("jal ra, 7\n halt"), FatalError);
    EXPECT_THROW(assemble("treg 0, 42\n halt"), FatalError);
}

TEST(Assembler, NegativeTriggerIdRejected)
{
    EXPECT_THROW(assemble("twait -1\n halt"), FatalError);
    EXPECT_THROW(assemble("tsd x4, 0(x5), -3\n halt"), FatalError);
}

TEST(Assembler, DisasmRoundTrip)
{
    const char *src = R"(
    main:
        li   x5, 3
        addi x6, x5, 1
        beq  x5, x6, main
        halt
    )";
    Program p = assemble(src);
    // Reassembling the disassembly yields the same instruction stream.
    std::string dis = disassemble(p);
    Program p2 = assemble(dis);
    ASSERT_EQ(p2.size(), p.size());
    for (std::uint64_t pc = 0; pc < p.size(); ++pc) {
        EXPECT_EQ(p2.at(pc).op, p.at(pc).op) << "pc " << pc;
        EXPECT_EQ(p2.at(pc).imm, p.at(pc).imm) << "pc " << pc;
        EXPECT_EQ(p2.at(pc).rd, p.at(pc).rd) << "pc " << pc;
    }
}

} // namespace
} // namespace dttsim::isa
