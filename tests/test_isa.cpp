/**
 * @file
 * Unit tests for the ISA definition: opcode metadata coherence,
 * mnemonic parsing, operand classification helpers, program image
 * bookkeeping and the disassembler.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/disasm.h"
#include "isa/opcodes.h"
#include "isa/operands.h"
#include "isa/program.h"

namespace dttsim::isa {
namespace {

TEST(Opcodes, MnemonicRoundTrip)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(parseMnemonic(mnemonic(op)), op)
            << "mnemonic " << mnemonic(op);
    }
    EXPECT_EQ(parseMnemonic("not_an_op"), Opcode::NumOpcodes);
}

TEST(Opcodes, LoadStoreClassification)
{
    EXPECT_TRUE(isLoad(Opcode::LD));
    EXPECT_TRUE(isLoad(Opcode::FLD));
    EXPECT_FALSE(isLoad(Opcode::SD));
    EXPECT_TRUE(isStore(Opcode::SD));
    EXPECT_TRUE(isStore(Opcode::FSD));
    EXPECT_TRUE(isStore(Opcode::TSD));
    EXPECT_TRUE(isTStore(Opcode::TSB));
    EXPECT_FALSE(isTStore(Opcode::SB));
    EXPECT_FALSE(isStore(Opcode::ADD));
}

TEST(Opcodes, AccessSizes)
{
    EXPECT_EQ(accessSize(Opcode::LD), 8);
    EXPECT_EQ(accessSize(Opcode::LW), 4);
    EXPECT_EQ(accessSize(Opcode::LB), 1);
    EXPECT_EQ(accessSize(Opcode::TSW), 4);
    EXPECT_EQ(accessSize(Opcode::FSD), 8);
    EXPECT_EQ(accessSize(Opcode::ADD), 0);
}

TEST(Opcodes, RegisterWriteClassification)
{
    EXPECT_TRUE(writesIntReg(Opcode::ADD));
    EXPECT_TRUE(writesIntReg(Opcode::LD));
    EXPECT_TRUE(writesIntReg(Opcode::JAL));
    EXPECT_TRUE(writesIntReg(Opcode::FCVTWD));
    EXPECT_TRUE(writesIntReg(Opcode::TCHK));
    EXPECT_FALSE(writesIntReg(Opcode::SD));
    EXPECT_FALSE(writesIntReg(Opcode::FADD));
    EXPECT_TRUE(writesFpReg(Opcode::FADD));
    EXPECT_TRUE(writesFpReg(Opcode::FLD));
    EXPECT_TRUE(writesFpReg(Opcode::FCVTDW));
    EXPECT_FALSE(writesFpReg(Opcode::ADD));
    // No opcode writes both files.
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_FALSE(writesIntReg(op) && writesFpReg(op));
    }
}

TEST(Opcodes, ControlClassification)
{
    EXPECT_TRUE(isControl(Opcode::BEQ));
    EXPECT_TRUE(isControl(Opcode::JAL));
    EXPECT_TRUE(isControl(Opcode::JALR));
    EXPECT_FALSE(isControl(Opcode::ADD));
    EXPECT_FALSE(isControl(Opcode::TWAIT));
}

TEST(Operands, SourceEnumeration)
{
    Inst add;
    add.op = Opcode::ADD;
    add.rd = 1;
    add.rs1 = 2;
    add.rs2 = 3;
    int count = 0;
    forEachSource(add, [&](bool fp, int idx) {
        EXPECT_FALSE(fp);
        EXPECT_TRUE(idx == 2 || idx == 3);
        ++count;
    });
    EXPECT_EQ(count, 2);

    Inst fsd;
    fsd.op = Opcode::FSD;
    fsd.rs1 = 4;  // base (int)
    fsd.rs2 = 5;  // data (fp)
    bool saw_fp = false, saw_int = false;
    forEachSource(fsd, [&](bool fp, int idx) {
        if (fp) {
            saw_fp = true;
            EXPECT_EQ(idx, 5);
        } else {
            saw_int = true;
            EXPECT_EQ(idx, 4);
        }
    });
    EXPECT_TRUE(saw_fp && saw_int);

    Inst li;
    li.op = Opcode::LI;
    forEachSource(li, [&](bool, int) { FAIL() << "LI has no sources"; });
}

TEST(Operands, DestRegClassification)
{
    Inst add;
    add.op = Opcode::ADD;
    add.rd = 7;
    bool fp;
    int idx;
    ASSERT_TRUE(destReg(add, fp, idx));
    EXPECT_FALSE(fp);
    EXPECT_EQ(idx, 7);

    add.rd = 0;  // x0 sink
    EXPECT_FALSE(destReg(add, fp, idx));

    Inst fadd;
    fadd.op = Opcode::FADD;
    fadd.rd = 0;  // f0 is a real register
    ASSERT_TRUE(destReg(fadd, fp, idx));
    EXPECT_TRUE(fp);
    EXPECT_EQ(idx, 0);

    Inst sd;
    sd.op = Opcode::SD;
    EXPECT_FALSE(destReg(sd, fp, idx));
}

TEST(Program, LabelsAndData)
{
    Program p;
    Inst nop;
    p.append(nop);
    p.defineLabel("foo", 0);
    EXPECT_TRUE(p.hasLabel("foo"));
    EXPECT_EQ(p.label("foo"), 0u);
    EXPECT_THROW(p.defineLabel("foo", 1), FatalError);
    EXPECT_THROW(p.label("bar"), FatalError);

    Addr a = p.allocData("arr", 24);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(p.dataSymbol("arr"), a);
    Addr b = p.addData("init", {1, 2, 3});
    EXPECT_GE(b, a + 24);
    ASSERT_EQ(p.dataChunks().size(), 1u);
    EXPECT_EQ(p.dataChunks()[0].bytes.size(), 3u);
    EXPECT_THROW(p.allocData("arr", 8), FatalError);
}

TEST(Program, TriggerTracking)
{
    Program p;
    EXPECT_EQ(p.numTriggers(), 0);
    p.noteTrigger(0);
    EXPECT_EQ(p.numTriggers(), 1);
    p.noteTrigger(5);
    EXPECT_EQ(p.numTriggers(), 6);
    p.noteTrigger(2);
    EXPECT_EQ(p.numTriggers(), 6);
}

TEST(Program, OutOfRangePcPanics)
{
    Program p;
    EXPECT_THROW(p.at(0), PanicError);
}

TEST(Disasm, RendersRepresentativeFormats)
{
    Inst i;
    i.op = Opcode::ADD;
    i.rd = 1;
    i.rs1 = 2;
    i.rs2 = 3;
    EXPECT_EQ(disassemble(i), "add x1, x2, x3");

    i = Inst{};
    i.op = Opcode::LD;
    i.rd = 5;
    i.rs1 = 6;
    i.imm = 16;
    EXPECT_EQ(disassemble(i), "ld x5, 16(x6)");

    i = Inst{};
    i.op = Opcode::TSD;
    i.rs2 = 7;
    i.rs1 = 8;
    i.imm = -8;
    i.trig = 3;
    EXPECT_EQ(disassemble(i), "tsd x7, -8(x8), 3");

    i = Inst{};
    i.op = Opcode::FADD;
    i.rd = 1;
    i.rs1 = 2;
    i.rs2 = 3;
    EXPECT_EQ(disassemble(i), "fadd f1, f2, f3");

    i = Inst{};
    i.op = Opcode::TRET;
    EXPECT_EQ(disassemble(i), "tret");

    i = Inst{};
    i.op = Opcode::TWAIT;
    i.trig = 2;
    EXPECT_EQ(disassemble(i), "twait 2");
}

} // namespace
} // namespace dttsim::isa
