/**
 * @file
 * Randomized DTT property test: generate random *well-formed* DTT
 * programs (idempotent handlers over disjoint outputs, TWAIT-fenced
 * consumption) and check that the timing simulator reaches exactly
 * the functional reference's final state, across machine variants.
 * This hammers the trigger-evaluation / coalescing / spawn /
 * serialization paths with shapes the hand-written workloads don't.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/executor.h"
#include "isa/builder.h"
#include "sim/simulator.h"

namespace dttsim {
namespace {

using namespace isa::regs;

/**
 * Random DTT program:
 *  - `buf[N]` is the trigger data; `out[N]` the handler-maintained
 *    mirror (out[i] = f(buf[i]) for a randomly chosen f);
 *  - the main thread performs K triggering stores to random slots
 *    with random (frequently repeated -> silent) values, mixed with
 *    ALU noise, using 2 trigger stripes (slot parity);
 *  - after a TWAIT fence it folds out[] into the checksum.
 */
isa::Program
randomDttProgram(std::uint64_t seed)
{
    Rng rng(seed);
    const int n = 4 << rng.below(3);            // 4, 8, or 16 slots
    const int k = 8 + static_cast<int>(rng.below(24));
    const int f_kind = static_cast<int>(rng.below(3));

    isa::ProgramBuilder b;
    std::vector<std::int64_t> init(static_cast<std::size_t>(n));
    for (auto &v : init)
        v = rng.range(0, 7);
    Addr buf = b.quads("buf", init);
    Addr out = b.space("out", static_cast<std::uint64_t>(n) * 8);
    Addr result = b.space("result", 8);

    isa::Label h0 = b.newLabel();

    // Initialize out to match f(initial buf) so untouched slots are
    // consistent (the host mirrors f below).
    auto f_host = [&](std::int64_t v) -> std::int64_t {
        switch (f_kind) {
          case 0: return v * 3 + 7;
          case 1: return (v << 4) ^ 0x5a;
          default: return v * v + 1;
        }
    };
    // Rebuild out as initialized data instead of zeros: emit values.
    // (space was reserved above; write via startup code instead.)
    b.bindNamed("main");
    b.treg(0, h0);
    b.treg(1, h0);
    for (int i = 0; i < n; ++i) {
        b.li(t0, f_host(init[static_cast<std::size_t>(i)]));
        b.la(t1, out + static_cast<Addr>(i) * 8);
        b.sd(t0, t1, 0);
    }

    // Update storm with interleaved noise.
    b.li(s0, 0);  // noise accumulator
    for (int u = 0; u < k; ++u) {
        int slot = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(n)));
        std::int64_t value = rng.range(0, 7);
        b.li(t2, value);
        b.la(t3, buf + static_cast<Addr>(slot) * 8);
        TriggerId trig = slot % 2;
        if (trig == 0)
            b.tsd(t2, t3, 0, 0);
        else
            b.tsd(t2, t3, 0, 1);
        // Noise: 0-3 ALU ops.
        for (std::uint64_t x = rng.below(4); x > 0; --x) {
            b.addi(s0, s0, rng.range(-5, 5));
            b.xor_(s0, s0, t2);
        }
    }

    b.twait(0);
    b.twait(1);

    // Fold out[] into the checksum.
    b.li(s1, 0);
    b.la(t4, out);
    b.li(t1, n);
    b.loop(t0, t1, [&] {
        b.ld(t5, t4, 0);
        b.li(t6, 31);
        b.mul(s1, s1, t6);
        b.add(s1, s1, t5);
        b.addi(t4, t4, 8);
    });
    b.add(s1, s1, s0);
    b.la(t7, result);
    b.sd(s1, t7, 0);
    b.halt();

    // Handler: out[i] = f(buf[i]) from *current* memory (idempotent;
    // slot parity keeps the two triggers' outputs disjoint).
    b.bind(h0);
    b.ld(t0, a0, 0);                // current buf[i]
    switch (f_kind) {
      case 0:
        b.li(t1, 3);
        b.mul(t0, t0, t1);
        b.addi(t0, t0, 7);
        break;
      case 1:
        b.slli(t0, t0, 4);
        b.xori(t0, t0, 0x5a);
        break;
      default:
        b.mul(t0, t0, t0);
        b.addi(t0, t0, 1);
        break;
    }
    b.li(t2, std::int64_t(buf));
    b.sub(t2, a0, t2);              // byte offset
    b.addi(t2, t2, std::int64_t(out));
    b.sd(t0, t2, 0);
    b.tret();

    return b.take();
}

class DttProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(DttProperty, TimingMatchesFunctionalReference)
{
    auto [seed, variant] = GetParam();
    isa::Program prog =
        randomDttProgram(static_cast<std::uint64_t>(seed) * 7919 + 13);

    cpu::FunctionalRunner ref(prog);
    ASSERT_TRUE(ref.run(1u << 24).halted);
    std::uint64_t want =
        ref.memory().read64(prog.dataSymbol("result"));

    sim::SimConfig cfg;
    switch (variant) {
      case 0:
        break;
      case 1:
        cfg.dtt.threadQueueSize = 1;
        break;
      case 2:
        cfg.core.numContexts = 2;
        cfg.dtt.spawnLatency = 32;
        break;
      default:
        cfg.dtt.coalesce = false;
        cfg.core.fetchWidth = 2;
        cfg.core.issueWidth = 2;
        break;
    }
    sim::Simulator s(cfg, prog);
    sim::SimResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(s.core().memory().read64(prog.dataSymbol("result")),
              want);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDttPrograms, DttProperty,
    ::testing::Combine(::testing::Range(1, 16),
                       ::testing::Range(0, 4)));

} // namespace
} // namespace dttsim
