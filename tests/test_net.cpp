/**
 * @file
 * Sweep-fabric tests: endpoint parsing, the bit-exact SimJob wire
 * codec (round-tripped digests, double bit patterns, trigger
 * bookkeeping), the hello handshake's version gate, and a live
 * localhost daemon end-to-end — remote execution equals local
 * execution, the daemon's digest gate refuses drifted jobs, and an
 * engine pointed at a real worker merges remote results into the
 * same document a local run produces. Plus the robustness layer:
 * the wire checksum on result replies, the daemon's bounded drain
 * (completes decoded jobs, abandons the queue past the deadline),
 * and hedged dispatch against an injected straggler.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "sim/engine.h"
#include "sim/fabricfault.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::net {
namespace {

sim::SimJob
sampleJob(const std::string &name = "mcf", std::uint64_t seed = 1,
          int iterations = 2)
{
    workloads::WorkloadParams p;
    p.iterations = iterations;
    p.seed = seed;
    sim::SimJob job;
    job.workload = name;
    job.variant = "dtt";
    job.config.accel = cpu::AccelKind::Dtt;
    job.program = workloads::findWorkload(name).build(
        workloads::Variant::Dtt, p);
    return job;
}

/** clearFaultPlan() on scope exit: the plan is process-global. */
struct PlanGuard
{
    ~PlanGuard() { fabric::clearFaultPlan(); }
};

TEST(Endpoint, ParsesHostPort)
{
    std::string err;
    std::optional<Endpoint> ep = parseEndpoint("worker-3:9000", &err);
    ASSERT_TRUE(ep) << err;
    EXPECT_EQ(ep->host, "worker-3");
    EXPECT_EQ(ep->port, 9000);
    EXPECT_EQ(ep->spec(), "worker-3:9000");

    EXPECT_FALSE(parseEndpoint("nocolon", &err));
    EXPECT_FALSE(parseEndpoint(":9000", &err));
    EXPECT_FALSE(parseEndpoint("host:", &err));
    EXPECT_FALSE(parseEndpoint("host:abc", &err));
    EXPECT_FALSE(parseEndpoint("host:0", &err));
    EXPECT_FALSE(parseEndpoint("host:70000", &err));
}

TEST(Endpoint, ParsesCommaSeparatedList)
{
    std::string err;
    std::optional<std::vector<Endpoint>> eps =
        parseEndpointList("a:1,b:2,,c:3", &err);
    ASSERT_TRUE(eps) << err;
    ASSERT_EQ(eps->size(), 3u);
    EXPECT_EQ((*eps)[1].spec(), "b:2");

    EXPECT_FALSE(parseEndpointList("", &err));
    EXPECT_FALSE(parseEndpointList("a:1,bad", &err));
}

TEST(Protocol, SimJobCodecPreservesTheDigest)
{
    // The codec contract: every field jobDigest hashes round-trips,
    // so the daemon recomputes the identical digest. Exercise the
    // paths that are easy to get wrong — double bit patterns, the
    // trigger bookkeeping, a co-runner entry, non-default config.
    sim::SimJob job = sampleJob();
    job.config.fault.seed = 42;
    job.config.fault.rate = 1e-7;  // bit-exact double travel
    job.config.fault.siteMask = 5;
    job.config.core.robSize += 16;
    job.config.dtt.threadQueueSize = 7;
    job.coRunnerEntries.push_back(0);

    json::Value v = simJobToJson(job);
    std::string err;
    std::optional<sim::SimJob> back = trySimJobFromJson(v, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(sim::jobDigest(*back), sim::jobDigest(job));
    EXPECT_EQ(back->workload, job.workload);
    EXPECT_EQ(back->variant, job.variant);
    EXPECT_EQ(back->config.fault.rate, job.config.fault.rate);
    EXPECT_EQ(back->program.numTriggers(), job.program.numTriggers());
}

TEST(Protocol, HelloRejectsVersionDrift)
{
    std::string err;
    json::Value hello = helloMessage("dttsim");
    EXPECT_TRUE(checkHello(hello, "hello", &err)) << err;
    EXPECT_FALSE(checkHello(hello, "hello-ok", &err));

    hello.set("proto", json::Value(std::uint64_t(999)));
    EXPECT_FALSE(checkHello(hello, "hello", &err));
    EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(Protocol, JobMessageRoundTrips)
{
    sim::SimJob job = sampleJob();
    RetryPolicy policy{3, 0.25, true, 12.5};
    json::Value msg = jobMessage(7, job, sim::jobDigest(job), policy);

    std::string err;
    std::optional<JobRequest> req = tryJobRequestFromJson(msg, &err);
    ASSERT_TRUE(req) << err;
    EXPECT_EQ(req->id, 7u);
    EXPECT_EQ(req->digest, sim::jobDigest(job));
    EXPECT_EQ(sim::jobDigest(req->job), sim::jobDigest(job));
    EXPECT_EQ(req->policy.maxAttempts, 3);
    EXPECT_TRUE(req->policy.retryTimeouts);
    EXPECT_DOUBLE_EQ(req->policy.jobDeadlineSeconds, 12.5);
}

/** A localhost daemon serving for the lifetime of the fixture. */
struct LiveServer
{
    LiveServer()
    {
        ServerConfig cfg;
        cfg.port = 0;
        cfg.jobs = 2;
        server = std::make_unique<WorkerServer>(cfg);
        std::string err;
        ok = server->start(&err);
        EXPECT_TRUE(ok) << err;
        if (ok)
            thread = std::thread([this] { server->serveForever(); });
    }

    ~LiveServer()
    {
        server->stop();
        if (thread.joinable())
            thread.join();
    }

    std::string spec() const
    {
        return "127.0.0.1:" + std::to_string(server->port());
    }

    std::unique_ptr<WorkerServer> server;
    std::thread thread;
    bool ok = false;
};

TEST(WorkerDaemon, ExecutesJobsRemotelyWithLocalEquality)
{
    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::string err;
    std::optional<Endpoint> ep = parseEndpoint(live.spec(), &err);
    ASSERT_TRUE(ep) << err;
    std::unique_ptr<WorkerClient> client =
        WorkerClient::connect(*ep, 5.0, &err);
    ASSERT_TRUE(client) << err;
    EXPECT_EQ(client->peerName(), "dttworkerd");

    sim::SimJob job = sampleJob();
    const std::string digest = sim::jobDigest(job);
    ASSERT_TRUE(client->sendJob(1, job, digest, RetryPolicy{}));
    WireResult wr;
    ASSERT_TRUE(client->recvResult(&wr, 60.0, &err)) << err;
    EXPECT_TRUE(wr.ok) << wr.message;
    EXPECT_EQ(wr.id, 1u);
    EXPECT_EQ(wr.digest, digest);
    EXPECT_EQ(wr.status, sim::JobStatus::Ok);
    EXPECT_EQ(wr.attempts, 1);

    // The fabric's reason to exist: the remote execution is
    // indistinguishable from a local one.
    sim::SimResult local = sim::runProgram(job.config, job.program);
    EXPECT_EQ(wr.result, local);
    EXPECT_EQ(live.server->jobsExecuted(), 1u);
}

TEST(WorkerDaemon, RefusesJobsWithDriftedDigests)
{
    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::string err;
    std::optional<Endpoint> ep = parseEndpoint(live.spec(), &err);
    std::unique_ptr<WorkerClient> client =
        WorkerClient::connect(*ep, 5.0, &err);
    ASSERT_TRUE(client) << err;

    sim::SimJob job = sampleJob();
    ASSERT_TRUE(client->sendJob(2, job, "0000000000000bad",
                                RetryPolicy{}));
    WireResult wr;
    ASSERT_TRUE(client->recvResult(&wr, 60.0, &err)) << err;
    EXPECT_FALSE(wr.ok);
    EXPECT_EQ(wr.id, 2u);
    EXPECT_NE(wr.message.find("digest mismatch"), std::string::npos);
    EXPECT_EQ(live.server->jobsExecuted(), 0u);
}

TEST(WorkerDaemon, EngineMergesRemoteResultsIdentically)
{
    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::vector<sim::SimJob> jobs;
    for (const char *name : {"mcf", "art"}) {
        sim::SimJob baseline = sampleJob(name);
        baseline.variant = "baseline";
        baseline.config.accel = cpu::AccelKind::None;
        jobs.push_back(baseline);
        jobs.push_back(sampleJob(name));
    }

    sim::EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.workers = {live.spec()};
    cfg.workerBackoffSeconds = 0.01;
    sim::Engine engine(cfg);
    std::vector<sim::JobResult> fabric = engine.run(jobs);
    std::vector<sim::JobResult> local = sim::Engine(2).run(jobs);

    EXPECT_EQ(engine.workersLost(), 0u);
    ASSERT_EQ(fabric.size(), local.size());
    for (std::size_t i = 0; i < fabric.size(); ++i) {
        EXPECT_EQ(fabric[i].status, local[i].status) << i;
        EXPECT_EQ(fabric[i].result, local[i].result) << i;
        EXPECT_EQ(fabric[i].digest, local[i].digest) << i;
    }
    // The provenance label only survives on remotely executed jobs,
    // and only until the harness strips it (no --provenance).
    std::uint64_t labelled = 0;
    for (const sim::JobResult &jr : fabric)
        if (!jr.worker.empty()) {
            EXPECT_EQ(jr.worker, live.spec());
            ++labelled;
        }
    EXPECT_EQ(labelled > 0,  engine.remoteExecuted() > 0);
}

TEST(Protocol, ResultReplyCrcRejectsTampering)
{
    sim::SimJob job = sampleJob();
    sim::JobResult jr;
    jr.digest = sim::jobDigest(job);
    jr.status = sim::JobStatus::Ok;
    jr.attempts = 1;
    jr.result = sim::runProgram(job.config, job.program);
    json::Value msg = resultMessage(5, jr.digest, jr);

    // Untampered replies round-trip.
    std::string err;
    std::optional<WireResult> wr = tryWireResultFromJson(msg, &err);
    ASSERT_TRUE(wr) << err;
    EXPECT_TRUE(wr->ok);
    EXPECT_EQ(wr->result, jr.result);

    // One flipped payload digit: still valid JSON, still a decodable
    // reply, but the checksum no longer covers it.
    std::string line = msg.dump();
    std::size_t pos = line.find("\"cycles\":");
    ASSERT_NE(pos, std::string::npos);
    char &d = line[pos + 9];
    ASSERT_TRUE(d >= '0' && d <= '9');
    d = d == '9' ? '0' : static_cast<char>(d + 1);
    std::optional<json::Value> rotted = json::Value::tryParse(line);
    ASSERT_TRUE(rotted);
    EXPECT_FALSE(tryWireResultFromJson(*rotted, &err));
    EXPECT_NE(err.find("crc mismatch"), std::string::npos);
}

// Poll until the daemon has decoded and queued @p n jobs off the
// wire. A fixed sleep here would race the connection reader — under
// sanitizer slowdowns the burst can still be in the TCP buffer when
// the sleep expires.
static bool
waitForReceived(const WorkerServer &server, std::uint64_t n)
{
    for (int i = 0; i < 6000; ++i) {
        if (server.jobsReceived() >= n)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return server.jobsReceived() >= n;
}

TEST(WorkerDaemon, DrainCompletesDecodedJobsBeforeExit)
{
    ServerConfig cfg;
    cfg.port = 0;
    cfg.jobs = 1;  // serial executor: a real queue forms
    WorkerServer server(cfg);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    std::thread serving([&] { server.serveForever(); });

    std::optional<Endpoint> ep =
        parseEndpoint("127.0.0.1:" + std::to_string(server.port()),
                      &err);
    ASSERT_TRUE(ep) << err;
    std::unique_ptr<WorkerClient> client =
        WorkerClient::connect(*ep, 5.0, &err);
    ASSERT_TRUE(client) << err;

    std::vector<std::string> digests;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        sim::SimJob job = sampleJob("mcf", id);
        digests.push_back(sim::jobDigest(job));
        ASSERT_TRUE(client->sendJob(id, job, digests.back(),
                                    RetryPolicy{}));
    }
    // Wait until the whole burst is queued daemon-side, then shut
    // down mid-queue: the default drain deadline must let every
    // decoded job finish and stream its result before the
    // connection closes. (Assertions wait until both threads are
    // joined — a fatal failure past a joinable thread terminates.)
    const bool landed = waitForReceived(server, 3);
    std::thread stopper([&] { server.stop(); });

    std::vector<WireResult> got;
    if (landed) {
        for (std::uint64_t id = 1; id <= 3; ++id) {
            WireResult wr;
            if (!client->recvResult(&wr, 60.0, &err))
                break;
            got.push_back(wr);
        }
    }
    stopper.join();
    serving.join();
    ASSERT_TRUE(landed) << "daemon never queued the 3-job burst";
    ASSERT_EQ(got.size(), 3u) << err;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        const WireResult &wr = got[id - 1];
        EXPECT_TRUE(wr.ok) << wr.message;
        EXPECT_EQ(wr.id, id);
        EXPECT_EQ(wr.digest, digests[id - 1]);
    }
    EXPECT_EQ(server.jobsExecuted(), 3u);
    EXPECT_EQ(server.jobsAbandoned(), 0u);
}

TEST(WorkerDaemon, DrainDeadlineZeroAbandonsQueuedJobs)
{
    ServerConfig cfg;
    cfg.port = 0;
    cfg.jobs = 1;
    cfg.drainDeadlineSeconds = 0.0;
    WorkerServer server(cfg);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    std::thread serving([&] { server.serveForever(); });

    std::optional<Endpoint> ep =
        parseEndpoint("127.0.0.1:" + std::to_string(server.port()),
                      &err);
    std::unique_ptr<WorkerClient> client =
        WorkerClient::connect(*ep, 5.0, &err);
    ASSERT_TRUE(client) << err;

    // One long job to pin the serial executor, four short ones to
    // pile up behind it.
    sim::SimJob slow = sampleJob("mcf", 1, /*iterations=*/120);
    ASSERT_TRUE(client->sendJob(1, slow, sim::jobDigest(slow),
                                RetryPolicy{}));
    for (std::uint64_t id = 2; id <= 5; ++id) {
        sim::SimJob job = sampleJob("mcf", id);
        ASSERT_TRUE(client->sendJob(id, job, sim::jobDigest(job),
                                    RetryPolicy{}));
    }
    // Stop once all five jobs are queued and the long one is mid-
    // execution: the in-progress job always completes, but a zero
    // deadline abandons the queue.
    const bool landed = waitForReceived(server, 5);
    server.stop();
    serving.join();

    ASSERT_TRUE(landed) << "daemon never queued the 5-job burst";
    EXPECT_EQ(server.jobsExecuted(), 1u);
    EXPECT_EQ(server.jobsAbandoned(), 4u);
}

TEST(WorkerDaemon, StragglersAreHedgedFirstResultWins)
{
    // Every reply from the in-process "worker" sleeps 1s; with a
    // 0.1s straggler threshold the engine must hedge a local twin,
    // commit whichever copy lands first, and still produce results
    // identical to a plain local run.
    PlanGuard guard;
    fabric::FaultConfig fc;
    fc.seed = 21;
    fc.rates[static_cast<std::size_t>(
        fabric::FaultSite::ReplyDelay)] = 1.0;
    fc.delaySeconds = 1.0;
    fabric::installFaultPlan(fc);

    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::vector<sim::SimJob> jobs;
    for (std::uint64_t seed : {1u, 2u})
        jobs.push_back(sampleJob("mcf", seed));

    sim::EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.workers = {live.spec()};
    cfg.workerBackoffSeconds = 0.01;
    cfg.stragglerSeconds = 0.1;
    sim::Engine engine(cfg);
    std::vector<sim::JobResult> fabric = engine.run(jobs);

    fabric::clearFaultPlan();
    std::vector<sim::JobResult> local = sim::Engine(2).run(jobs);
    ASSERT_EQ(fabric.size(), local.size());
    for (std::size_t i = 0; i < fabric.size(); ++i) {
        EXPECT_EQ(fabric[i].status, local[i].status) << i;
        EXPECT_EQ(fabric[i].result, local[i].result) << i;
    }
    EXPECT_GE(engine.hedgedJobs(), 1u);
    // duplicatesSuppressed() is timing-dependent (the late remote
    // copy may land after the run ends), so no assertion on it.
}

} // namespace
} // namespace dttsim::net
