/**
 * @file
 * Sweep-fabric tests: endpoint parsing, the bit-exact SimJob wire
 * codec (round-tripped digests, double bit patterns, trigger
 * bookkeeping), the hello handshake's version gate, and a live
 * localhost daemon end-to-end — remote execution equals local
 * execution, the daemon's digest gate refuses drifted jobs, and an
 * engine pointed at a real worker merges remote results into the
 * same document a local run produces.
 */

#include <gtest/gtest.h>

#include <thread>

#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "sim/engine.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::net {
namespace {

sim::SimJob
sampleJob(const std::string &name = "mcf", std::uint64_t seed = 1)
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    p.seed = seed;
    sim::SimJob job;
    job.workload = name;
    job.variant = "dtt";
    job.config.accel = cpu::AccelKind::Dtt;
    job.program = workloads::findWorkload(name).build(
        workloads::Variant::Dtt, p);
    return job;
}

TEST(Endpoint, ParsesHostPort)
{
    std::string err;
    std::optional<Endpoint> ep = parseEndpoint("worker-3:9000", &err);
    ASSERT_TRUE(ep) << err;
    EXPECT_EQ(ep->host, "worker-3");
    EXPECT_EQ(ep->port, 9000);
    EXPECT_EQ(ep->spec(), "worker-3:9000");

    EXPECT_FALSE(parseEndpoint("nocolon", &err));
    EXPECT_FALSE(parseEndpoint(":9000", &err));
    EXPECT_FALSE(parseEndpoint("host:", &err));
    EXPECT_FALSE(parseEndpoint("host:abc", &err));
    EXPECT_FALSE(parseEndpoint("host:0", &err));
    EXPECT_FALSE(parseEndpoint("host:70000", &err));
}

TEST(Endpoint, ParsesCommaSeparatedList)
{
    std::string err;
    std::optional<std::vector<Endpoint>> eps =
        parseEndpointList("a:1,b:2,,c:3", &err);
    ASSERT_TRUE(eps) << err;
    ASSERT_EQ(eps->size(), 3u);
    EXPECT_EQ((*eps)[1].spec(), "b:2");

    EXPECT_FALSE(parseEndpointList("", &err));
    EXPECT_FALSE(parseEndpointList("a:1,bad", &err));
}

TEST(Protocol, SimJobCodecPreservesTheDigest)
{
    // The codec contract: every field jobDigest hashes round-trips,
    // so the daemon recomputes the identical digest. Exercise the
    // paths that are easy to get wrong — double bit patterns, the
    // trigger bookkeeping, a co-runner entry, non-default config.
    sim::SimJob job = sampleJob();
    job.config.fault.seed = 42;
    job.config.fault.rate = 1e-7;  // bit-exact double travel
    job.config.fault.siteMask = 5;
    job.config.core.robSize += 16;
    job.config.dtt.threadQueueSize = 7;
    job.coRunnerEntries.push_back(0);

    json::Value v = simJobToJson(job);
    std::string err;
    std::optional<sim::SimJob> back = trySimJobFromJson(v, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(sim::jobDigest(*back), sim::jobDigest(job));
    EXPECT_EQ(back->workload, job.workload);
    EXPECT_EQ(back->variant, job.variant);
    EXPECT_EQ(back->config.fault.rate, job.config.fault.rate);
    EXPECT_EQ(back->program.numTriggers(), job.program.numTriggers());
}

TEST(Protocol, HelloRejectsVersionDrift)
{
    std::string err;
    json::Value hello = helloMessage("dttsim");
    EXPECT_TRUE(checkHello(hello, "hello", &err)) << err;
    EXPECT_FALSE(checkHello(hello, "hello-ok", &err));

    hello.set("proto", json::Value(std::uint64_t(999)));
    EXPECT_FALSE(checkHello(hello, "hello", &err));
    EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(Protocol, JobMessageRoundTrips)
{
    sim::SimJob job = sampleJob();
    RetryPolicy policy{3, 0.25, true, 12.5};
    json::Value msg = jobMessage(7, job, sim::jobDigest(job), policy);

    std::string err;
    std::optional<JobRequest> req = tryJobRequestFromJson(msg, &err);
    ASSERT_TRUE(req) << err;
    EXPECT_EQ(req->id, 7u);
    EXPECT_EQ(req->digest, sim::jobDigest(job));
    EXPECT_EQ(sim::jobDigest(req->job), sim::jobDigest(job));
    EXPECT_EQ(req->policy.maxAttempts, 3);
    EXPECT_TRUE(req->policy.retryTimeouts);
    EXPECT_DOUBLE_EQ(req->policy.jobDeadlineSeconds, 12.5);
}

/** A localhost daemon serving for the lifetime of the fixture. */
struct LiveServer
{
    LiveServer()
    {
        ServerConfig cfg;
        cfg.port = 0;
        cfg.jobs = 2;
        server = std::make_unique<WorkerServer>(cfg);
        std::string err;
        ok = server->start(&err);
        EXPECT_TRUE(ok) << err;
        if (ok)
            thread = std::thread([this] { server->serveForever(); });
    }

    ~LiveServer()
    {
        server->stop();
        if (thread.joinable())
            thread.join();
    }

    std::string spec() const
    {
        return "127.0.0.1:" + std::to_string(server->port());
    }

    std::unique_ptr<WorkerServer> server;
    std::thread thread;
    bool ok = false;
};

TEST(WorkerDaemon, ExecutesJobsRemotelyWithLocalEquality)
{
    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::string err;
    std::optional<Endpoint> ep = parseEndpoint(live.spec(), &err);
    ASSERT_TRUE(ep) << err;
    std::unique_ptr<WorkerClient> client =
        WorkerClient::connect(*ep, 5.0, &err);
    ASSERT_TRUE(client) << err;
    EXPECT_EQ(client->peerName(), "dttworkerd");

    sim::SimJob job = sampleJob();
    const std::string digest = sim::jobDigest(job);
    ASSERT_TRUE(client->sendJob(1, job, digest, RetryPolicy{}));
    WireResult wr;
    ASSERT_TRUE(client->recvResult(&wr, 60.0, &err)) << err;
    EXPECT_TRUE(wr.ok) << wr.message;
    EXPECT_EQ(wr.id, 1u);
    EXPECT_EQ(wr.digest, digest);
    EXPECT_EQ(wr.status, sim::JobStatus::Ok);
    EXPECT_EQ(wr.attempts, 1);

    // The fabric's reason to exist: the remote execution is
    // indistinguishable from a local one.
    sim::SimResult local = sim::runProgram(job.config, job.program);
    EXPECT_EQ(wr.result, local);
    EXPECT_EQ(live.server->jobsExecuted(), 1u);
}

TEST(WorkerDaemon, RefusesJobsWithDriftedDigests)
{
    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::string err;
    std::optional<Endpoint> ep = parseEndpoint(live.spec(), &err);
    std::unique_ptr<WorkerClient> client =
        WorkerClient::connect(*ep, 5.0, &err);
    ASSERT_TRUE(client) << err;

    sim::SimJob job = sampleJob();
    ASSERT_TRUE(client->sendJob(2, job, "0000000000000bad",
                                RetryPolicy{}));
    WireResult wr;
    ASSERT_TRUE(client->recvResult(&wr, 60.0, &err)) << err;
    EXPECT_FALSE(wr.ok);
    EXPECT_EQ(wr.id, 2u);
    EXPECT_NE(wr.message.find("digest mismatch"), std::string::npos);
    EXPECT_EQ(live.server->jobsExecuted(), 0u);
}

TEST(WorkerDaemon, EngineMergesRemoteResultsIdentically)
{
    LiveServer live;
    ASSERT_TRUE(live.ok);

    std::vector<sim::SimJob> jobs;
    for (const char *name : {"mcf", "art"}) {
        sim::SimJob baseline = sampleJob(name);
        baseline.variant = "baseline";
        baseline.config.accel = cpu::AccelKind::None;
        jobs.push_back(baseline);
        jobs.push_back(sampleJob(name));
    }

    sim::EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.workers = {live.spec()};
    cfg.workerBackoffSeconds = 0.01;
    sim::Engine engine(cfg);
    std::vector<sim::JobResult> fabric = engine.run(jobs);
    std::vector<sim::JobResult> local = sim::Engine(2).run(jobs);

    EXPECT_EQ(engine.workersLost(), 0u);
    ASSERT_EQ(fabric.size(), local.size());
    for (std::size_t i = 0; i < fabric.size(); ++i) {
        EXPECT_EQ(fabric[i].status, local[i].status) << i;
        EXPECT_EQ(fabric[i].result, local[i].result) << i;
        EXPECT_EQ(fabric[i].digest, local[i].digest) << i;
    }
    // The provenance label only survives on remotely executed jobs,
    // and only until the harness strips it (no --provenance).
    std::uint64_t labelled = 0;
    for (const sim::JobResult &jr : fabric)
        if (!jr.worker.empty()) {
            EXPECT_EQ(jr.worker, live.spec());
            ++labelled;
        }
    EXPECT_EQ(labelled > 0,  engine.remoteExecuted() > 0);
}

} // namespace
} // namespace dttsim::net
