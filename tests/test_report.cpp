/**
 * @file
 * Report-rendering tests: the formatted result/comparison/detailed
 * views must contain the right metrics and never throw on any
 * machine configuration.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/report.h"

namespace dttsim::sim {
namespace {

const char *kProgram = R"(
main:
    treg 0, handler
    li  a0, buf
    li  x5, 7
    tsd x5, 0(a0), 0
    twait 0
    halt
handler:
    tret
    .data
buf: .space 8
)";

TEST(Report, FormatResultContainsHeadlineMetrics)
{
    SimResult r = runProgram(SimConfig{}, isa::assemble(kProgram));
    std::string s = formatResult(r);
    EXPECT_NE(s.find("cycles"), std::string::npos);
    EXPECT_NE(s.find("tstores"), std::string::npos);
    EXPECT_NE(s.find("spawns"), std::string::npos);
    EXPECT_NE(s.find("ipc"), std::string::npos);
    EXPECT_NE(s.find("halt reason"), std::string::npos);
    EXPECT_NE(s.find("halted"), std::string::npos);
}

TEST(Report, ComparisonIncludesSpeedup)
{
    isa::Program prog = isa::assemble(kProgram);
    SimConfig base_cfg;
    base_cfg.accel = cpu::AccelKind::None;
    SimResult base = runProgram(base_cfg, prog);
    SimResult dtt = runProgram(SimConfig{}, prog);
    std::string s = formatComparison(base, dtt);
    EXPECT_NE(s.find("speedup:"), std::string::npos);
    EXPECT_NE(s.find("baseline"), std::string::npos);
    EXPECT_NE(s.find("dtt"), std::string::npos);
}

TEST(Report, DetailedStatsCoverAllComponents)
{
    Simulator s(SimConfig{}, isa::assemble(kProgram));
    s.run();
    std::string text = formatDetailedStats(s);
    EXPECT_NE(text.find("core.cycles"), std::string::npos);
    EXPECT_NE(text.find("bpred.condBranches"), std::string::npos);
    EXPECT_NE(text.find("l1d.accesses"), std::string::npos);
    EXPECT_NE(text.find("l2.misses"), std::string::npos);
    EXPECT_NE(text.find("dtt.tstores"), std::string::npos);
    EXPECT_NE(text.find("threadQueue.enqueues"), std::string::npos);
}

TEST(Report, DetailedStatsWithoutController)
{
    SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    Simulator s(cfg, isa::assemble(kProgram));
    s.run();
    std::string text = formatDetailedStats(s);
    EXPECT_EQ(text.find("dtt.tstores"), std::string::npos);
    EXPECT_NE(text.find("core.committed"), std::string::npos);
}

} // namespace
} // namespace dttsim::sim
