/**
 * @file
 * Parallel experiment engine tests: determinism across thread counts,
 * within-batch dedup accounting, fingerprint sensitivity, JSON
 * round-tripping of SimResults, exception propagation from workers,
 * and the Simulator hardening that the engine relies on (one-shot
 * run(), SimConfig::validate()).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/engine.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::sim {
namespace {

workloads::WorkloadParams
smallParams(std::uint64_t seed = 1)
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    p.seed = seed;
    return p;
}

SimJob
makeJob(const std::string &name, workloads::Variant variant,
        std::uint64_t seed = 1)
{
    SimJob job;
    job.workload = name;
    job.variant =
        variant == workloads::Variant::Dtt ? "dtt" : "baseline";
    job.config.enableDtt = variant == workloads::Variant::Dtt;
    job.program = workloads::findWorkload(name).build(
        variant, smallParams(seed));
    return job;
}

std::vector<SimJob>
mixedBatch()
{
    std::vector<SimJob> jobs;
    for (const char *name : {"mcf", "art", "gcc"}) {
        jobs.push_back(makeJob(name, workloads::Variant::Baseline));
        jobs.push_back(makeJob(name, workloads::Variant::Dtt));
    }
    return jobs;
}

TEST(Engine, ResultsComeBackInSubmissionOrder)
{
    Engine engine(4);
    std::vector<SimJob> jobs = mixedBatch();
    std::vector<JobResult> results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].workload, jobs[i].workload);
        EXPECT_EQ(results[i].variant, jobs[i].variant);
        EXPECT_EQ(results[i].digest, jobDigest(jobs[i]));
        EXPECT_TRUE(results[i].result.halted);
    }
}

TEST(Engine, DeterministicAcrossThreadCounts)
{
    std::vector<SimJob> jobs = mixedBatch();
    std::vector<JobResult> serial = Engine(1).run(jobs);
    std::vector<JobResult> parallel = Engine(8).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // SimResult::operator== compares every counter; any
        // scheduling-dependent behaviour would show up here.
        EXPECT_EQ(serial[i].result, parallel[i].result)
            << serial[i].workload << "/" << serial[i].variant;
    }
}

TEST(Engine, DeduplicatesIdenticalJobsWithinBatch)
{
    Engine engine(4);
    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    SimJob relabeled = job;
    relabeled.variant = "baseline again";  // labels are not hashed
    std::vector<JobResult> results =
        engine.run({job, relabeled, job});

    EXPECT_EQ(engine.submitted(), 3u);
    EXPECT_EQ(engine.executed(), 1u);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].deduplicated);
    EXPECT_TRUE(results[1].deduplicated);
    EXPECT_TRUE(results[2].deduplicated);
    EXPECT_EQ(results[1].variant, "baseline again");
    EXPECT_EQ(results[0].result, results[1].result);
    EXPECT_EQ(results[0].result, results[2].result);
}

TEST(Engine, CountersAccumulateAcrossBatches)
{
    Engine engine(2);
    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    engine.run({job, job});
    engine.run({job});  // dedup is per batch, so this runs again
    EXPECT_EQ(engine.submitted(), 3u);
    EXPECT_EQ(engine.executed(), 2u);
}

TEST(Engine, DigestDistinguishesConfigProgramAndCoRunners)
{
    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    std::string base = jobDigest(job);
    EXPECT_EQ(base.size(), 16u);

    SimJob other_config = job;
    other_config.config.core.robSize += 32;
    EXPECT_NE(jobDigest(other_config), base);

    SimJob other_program = makeJob("mcf", workloads::Variant::Baseline,
                                   /*seed=*/2);
    EXPECT_NE(jobDigest(other_program), base);

    SimJob with_corunner = job;
    with_corunner.coRunnerEntries.push_back(0);
    EXPECT_NE(jobDigest(with_corunner), base);

    SimJob relabeled = job;
    relabeled.workload = "renamed";
    relabeled.variant = "renamed";
    EXPECT_EQ(jobDigest(relabeled), base);
}

TEST(Engine, DigestCoversFaultAndDegradationKnobs)
{
    // Every knob that changes simulated behaviour must perturb the
    // job digest, or the engine's dedup would reuse a result from a
    // differently-faulted machine.
    SimJob job = makeJob("mcf", workloads::Variant::Dtt);
    std::string base = jobDigest(job);

    SimJob j = job;
    j.config.fault.seed = 1;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.fault.rate = 0.25;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.fault.siteMask = kTransparentSites;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.dtt.stallBound += 1;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.core.watchdogWindow += 1;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.dtt.fullPolicy = dtt::FullQueuePolicy::DropOldest;
    EXPECT_NE(jobDigest(j), base);
}

TEST(Engine, WorkerExceptionsPropagate)
{
    Engine engine(2);
    SimJob bad = makeJob("mcf", workloads::Variant::Baseline);
    bad.config.maxCycles = 0;  // rejected by SimConfig::validate()
    EXPECT_THROW(engine.run({bad}), FatalError);
}

TEST(EngineJson, SimResultRoundTripsExactly)
{
    SimJob job = makeJob("mcf", workloads::Variant::Dtt);
    SimResult r = runProgram(job.config, job.program);
    ASSERT_TRUE(r.halted);
    json::Value doc =
        json::Value::parse(resultToJson(r).dump(2));
    EXPECT_EQ(resultFromJson(doc), r);
}

TEST(EngineJson, JobRecordCarriesSchemaFields)
{
    Engine engine(1);
    std::vector<JobResult> results =
        engine.run({makeJob("mcf", workloads::Variant::Baseline)});
    json::Value rec = jobResultToJson(results[0]);
    EXPECT_EQ(rec.get("workload").asString(), "mcf");
    EXPECT_EQ(rec.get("variant").asString(), "baseline");
    EXPECT_EQ(rec.get("config_digest").asString().size(), 16u);
    EXPECT_FALSE(rec.get("deduplicated").asBool());
    EXPECT_GE(rec.get("wall_seconds").asDouble(), 0.0);
    EXPECT_EQ(resultFromJson(rec.get("result")), results[0].result);
}

TEST(SimulatorHardening, RunIsOneShot)
{
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, smallParams());
    SimConfig cfg;
    cfg.enableDtt = false;
    Simulator s(cfg, p);
    EXPECT_TRUE(s.run().halted);
    EXPECT_THROW(s.run(), PanicError);
}

TEST(SimulatorHardening, ValidateAcceptsTheTable1Machine)
{
    EXPECT_TRUE(SimConfig{}.validate().empty());
}

TEST(SimulatorHardening, ValidateRejectsBadConfigs)
{
    SimConfig cfg;
    cfg.maxCycles = 0;
    cfg.dtt.threadQueueSize = 0;
    cfg.mem.l1d.lineBytes = 48;  // not a power of two
    std::vector<std::string> errors = cfg.validate();
    EXPECT_GE(errors.size(), 3u);
    std::string all;
    for (const std::string &e : errors)
        all += e + "\n";
    // Each message names the offending field so it is actionable.
    EXPECT_NE(all.find("maxCycles"), std::string::npos);
    EXPECT_NE(all.find("lineBytes"), std::string::npos);
    EXPECT_NE(all.find("threadQueueSize"), std::string::npos);
}

TEST(SimulatorHardening, ConstructorRejectsInvalidConfig)
{
    SimConfig cfg;
    cfg.core.robSize = 0;
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, smallParams());
    EXPECT_THROW(Simulator(cfg, p), FatalError);
    EXPECT_THROW(runProgram(cfg, p), FatalError);
}

} // namespace
} // namespace dttsim::sim
