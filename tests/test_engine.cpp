/**
 * @file
 * Parallel experiment engine tests: determinism across thread counts,
 * within-batch dedup accounting, fingerprint sensitivity, JSON
 * round-tripping of SimResults, the resilience layer (crash-isolated
 * failures, bounded retry, wall-clock deadlines, ResultStore warm
 * starts / resume), and the Simulator hardening that the engine
 * relies on (one-shot run(), SimConfig::validate()).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "isa/builder.h"
#include "sim/engine.h"
#include "sim/resultstore.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace dttsim::sim {
namespace {

workloads::WorkloadParams
smallParams(std::uint64_t seed = 1)
{
    workloads::WorkloadParams p;
    p.iterations = 2;
    p.seed = seed;
    return p;
}

SimJob
makeJob(const std::string &name, workloads::Variant variant,
        std::uint64_t seed = 1)
{
    SimJob job;
    job.workload = name;
    job.variant =
        variant == workloads::Variant::Dtt ? "dtt" : "baseline";
    job.config.accel = variant == workloads::Variant::Dtt
        ? cpu::AccelKind::Dtt : cpu::AccelKind::None;
    job.program = workloads::findWorkload(name).build(
        variant, smallParams(seed));
    return job;
}

std::vector<SimJob>
mixedBatch()
{
    std::vector<SimJob> jobs;
    for (const char *name : {"mcf", "art", "gcc"}) {
        jobs.push_back(makeJob(name, workloads::Variant::Baseline));
        jobs.push_back(makeJob(name, workloads::Variant::Dtt));
    }
    return jobs;
}

TEST(Engine, ResultsComeBackInSubmissionOrder)
{
    Engine engine(4);
    std::vector<SimJob> jobs = mixedBatch();
    std::vector<JobResult> results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].workload, jobs[i].workload);
        EXPECT_EQ(results[i].variant, jobs[i].variant);
        EXPECT_EQ(results[i].digest, jobDigest(jobs[i]));
        EXPECT_TRUE(results[i].result.halted);
    }
}

TEST(Engine, DeterministicAcrossThreadCounts)
{
    std::vector<SimJob> jobs = mixedBatch();
    std::vector<JobResult> serial = Engine(1).run(jobs);
    std::vector<JobResult> parallel = Engine(8).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // SimResult::operator== compares every counter; any
        // scheduling-dependent behaviour would show up here.
        EXPECT_EQ(serial[i].result, parallel[i].result)
            << serial[i].workload << "/" << serial[i].variant;
    }
}

TEST(Engine, DeduplicatesIdenticalJobsWithinBatch)
{
    Engine engine(4);
    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    SimJob relabeled = job;
    relabeled.variant = "baseline again";  // labels are not hashed
    std::vector<JobResult> results =
        engine.run({job, relabeled, job});

    EXPECT_EQ(engine.submitted(), 3u);
    EXPECT_EQ(engine.executed(), 1u);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].deduplicated);
    EXPECT_TRUE(results[1].deduplicated);
    EXPECT_TRUE(results[2].deduplicated);
    EXPECT_EQ(results[1].variant, "baseline again");
    EXPECT_EQ(results[0].result, results[1].result);
    EXPECT_EQ(results[0].result, results[2].result);
}

TEST(Engine, CountersAccumulateAcrossBatches)
{
    Engine engine(2);
    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    engine.run({job, job});
    engine.run({job});  // dedup is per batch, so this runs again
    EXPECT_EQ(engine.submitted(), 3u);
    EXPECT_EQ(engine.executed(), 2u);
}

TEST(Engine, DigestDistinguishesConfigProgramAndCoRunners)
{
    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    std::string base = jobDigest(job);
    EXPECT_EQ(base.size(), 16u);

    SimJob other_config = job;
    other_config.config.core.robSize += 32;
    EXPECT_NE(jobDigest(other_config), base);

    SimJob other_program = makeJob("mcf", workloads::Variant::Baseline,
                                   /*seed=*/2);
    EXPECT_NE(jobDigest(other_program), base);

    SimJob with_corunner = job;
    with_corunner.coRunnerEntries.push_back(0);
    EXPECT_NE(jobDigest(with_corunner), base);

    SimJob relabeled = job;
    relabeled.workload = "renamed";
    relabeled.variant = "renamed";
    EXPECT_EQ(jobDigest(relabeled), base);
}

TEST(Engine, DigestCoversFaultAndDegradationKnobs)
{
    // Every knob that changes simulated behaviour must perturb the
    // job digest, or the engine's dedup would reuse a result from a
    // differently-faulted machine.
    SimJob job = makeJob("mcf", workloads::Variant::Dtt);
    std::string base = jobDigest(job);

    SimJob j = job;
    j.config.fault.seed = 1;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.fault.rate = 0.25;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.fault.siteMask = kTransparentSites;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.dtt.stallBound += 1;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.core.watchdogWindow += 1;
    EXPECT_NE(jobDigest(j), base);

    j = job;
    j.config.dtt.fullPolicy = dtt::FullQueuePolicy::DropOldest;
    EXPECT_NE(jobDigest(j), base);
}

SimJob
throwingJob()
{
    SimJob bad = makeJob("mcf", workloads::Variant::Baseline);
    bad.variant = "broken";
    bad.config.maxCycles = 0;  // rejected by SimConfig::validate()
    return bad;
}

/** A program that never halts: the deadline-cancellation subject. */
SimJob
runawayJob()
{
    using namespace isa::regs;
    isa::ProgramBuilder b;
    isa::Label top = b.newLabel();
    b.bind(top);
    b.addi(t0, t0, 1);
    b.j(top);
    SimJob job;
    job.workload = "runaway";
    job.variant = "baseline";
    job.config.accel = cpu::AccelKind::None;
    job.program = b.take();
    return job;
}

std::string
tempCacheDir()
{
    char tmpl[] = "/tmp/dttsim-engine-test-XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

TEST(EngineResilience, WorkerExceptionIsIsolated)
{
    // A throwing job must not abort the batch: it becomes a
    // structured Error record and the other jobs still complete.
    Engine engine(2);
    SimJob good = makeJob("art", workloads::Variant::Dtt);
    std::vector<JobResult> results =
        engine.run({throwingJob(), good});

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Error);
    EXPECT_EQ(results[0].error.kind, "FatalError");
    EXPECT_NE(results[0].error.message.find("maxCycles"),
              std::string::npos);
    EXPECT_EQ(results[0].attempts, 1);
    // The sanitized payload keeps the schema invariants (a non-halt
    // with CycleLimit reason) so downstream consumers stay valid.
    EXPECT_FALSE(results[0].result.halted);
    EXPECT_TRUE(results[0].result.hitMaxCycles);

    EXPECT_EQ(results[1].status, JobStatus::Ok);
    EXPECT_TRUE(results[1].result.halted);
    EXPECT_TRUE(results[1].error.empty());
}

TEST(EngineResilience, RetryIsBoundedAndDeterministic)
{
    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.maxAttempts = 3;
    cfg.retryBackoffSeconds = 0.0;
    Engine serial(cfg);
    cfg.numThreads = 8;
    Engine parallel(cfg);

    std::vector<SimJob> jobs = mixedBatch();
    jobs.insert(jobs.begin() + 1, throwingJob());
    std::vector<JobResult> a = serial.run(jobs);
    std::vector<JobResult> b = parallel.run(jobs);

    // A deterministic fatal() fails every attempt, then gives up.
    EXPECT_EQ(a[1].status, JobStatus::Error);
    EXPECT_EQ(a[1].attempts, 3);
    EXPECT_EQ(serial.retries(), 2u);

    // Supervision must not perturb determinism across thread counts.
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].status, b[i].status) << i;
        EXPECT_EQ(a[i].error, b[i].error) << i;
        EXPECT_EQ(a[i].attempts, b[i].attempts) << i;
        EXPECT_EQ(a[i].result, b[i].result) << i;
    }
}

TEST(EngineResilience, TransientFailureRecoversViaRetry)
{
    EngineConfig cfg;
    cfg.numThreads = 2;
    cfg.maxAttempts = 3;
    cfg.retryBackoffSeconds = 0.0;
    Engine engine(cfg);
    engine.setExecuteOverrideForTest(
        [](const SimJob &job, int attempt) {
            if (attempt < 3)
                throw std::runtime_error("transient host failure");
            return runProgram(job.config, job.program);
        });

    std::vector<JobResult> results =
        engine.run({makeJob("mcf", workloads::Variant::Baseline)});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[0].attempts, 3);
    EXPECT_TRUE(results[0].result.halted);
    EXPECT_TRUE(results[0].error.empty());
    EXPECT_EQ(engine.retries(), 2u);
}

TEST(EngineResilience, DeadlineCancelsRunawayJob)
{
    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.jobDeadlineSeconds = 0.25;
    Engine engine(cfg);

    std::vector<JobResult> results = engine.run({runawayJob()});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Timeout);
    EXPECT_EQ(results[0].error.kind, "deadline");
    EXPECT_EQ(results[0].attempts, 1);  // timeouts are not retried
    EXPECT_FALSE(results[0].result.halted);
    EXPECT_TRUE(results[0].result.hitMaxCycles);
}

TEST(EngineResilience, RetryDelayIsJitteredAndDeterministic)
{
    // Pure function of (base, attempt, seed): a rerun of the same
    // batch sleeps identically.
    const double base = 0.5;
    for (int attempt = 1; attempt <= 4; ++attempt) {
        double lo = base * static_cast<double>(1ull << (attempt - 1));
        double d1 = retryDelaySeconds(base, attempt, 0x1234);
        double d2 = retryDelaySeconds(base, attempt, 0x1234);
        EXPECT_EQ(d1, d2);
        // Exponential base stretched by jitter in [1.0, 1.5).
        EXPECT_GE(d1, lo) << "attempt " << attempt;
        EXPECT_LT(d1, 1.5 * lo) << "attempt " << attempt;
    }
    // Two jobs failing for the same cause at the same attempt fan
    // out instead of hammering the host in lockstep.
    EXPECT_NE(retryDelaySeconds(base, 1, 1),
              retryDelaySeconds(base, 1, 2));
    // Jitter scales the backoff, never adds to it: a zero base stays
    // an immediate retry.
    EXPECT_EQ(retryDelaySeconds(0.0, 3, 99), 0.0);
}

TEST(EngineResilience, RetryOnTimeoutRecoversTransientCancellation)
{
    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.maxAttempts = 3;
    cfg.retryTimeouts = true;  // --retry-on=timeout
    cfg.jobDeadlineSeconds = 0.25;
    Engine engine(cfg);
    engine.setExecuteOverrideForTest(
        [](const SimJob &job, int attempt, bool *cancelled) {
            // Host noise: the first two attempts blow the deadline,
            // the third completes.
            if (attempt < 3) {
                *cancelled = true;
                return SimResult{};
            }
            return runProgram(job.config, job.program);
        });

    std::vector<JobResult> results =
        engine.run({makeJob("mcf", workloads::Variant::Baseline)});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[0].attempts, 3);
    EXPECT_TRUE(results[0].result.halted);
    EXPECT_TRUE(results[0].error.empty());
    EXPECT_EQ(engine.retries(), 2u);
}

TEST(EngineResilience, RetryOnTimeoutExhaustionStaysTimeout)
{
    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.maxAttempts = 2;
    cfg.retryTimeouts = true;
    cfg.jobDeadlineSeconds = 0.25;
    Engine engine(cfg);
    engine.setExecuteOverrideForTest(
        [](const SimJob &, int, bool *cancelled) {
            *cancelled = true;  // every attempt blows the deadline
            return SimResult{};
        });

    std::vector<JobResult> results =
        engine.run({makeJob("mcf", workloads::Variant::Baseline)});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Timeout);
    EXPECT_EQ(results[0].error.kind, "deadline");
    EXPECT_EQ(results[0].attempts, 2);  // the one retry was consumed
    EXPECT_FALSE(results[0].result.halted);
    EXPECT_TRUE(results[0].result.hitMaxCycles);
    EXPECT_EQ(engine.retries(), 1u);
}

TEST(EngineResilience, WarmCacheExecutesZeroJobs)
{
    std::string dir = tempCacheDir();
    std::vector<SimJob> jobs = mixedBatch();
    // One deterministic non-clean end: Failed outcomes are cacheable
    // too (re-running them would reproduce the same cycle-limit).
    jobs.push_back(makeJob("mcf", workloads::Variant::Baseline));
    jobs.back().variant = "truncated";
    jobs.back().config.maxCycles = 100;

    std::vector<JobResult> cold, warm;
    {
        ResultStore store(dir, ResultStore::Mode::ReadWrite);
        EngineConfig cfg;
        cfg.numThreads = 4;
        cfg.store = &store;
        Engine engine(cfg);
        cold = engine.run(jobs);
        EXPECT_EQ(engine.executed(), 7u);
        EXPECT_EQ(engine.cacheHits(), 0u);
        EXPECT_EQ(cold.back().status, JobStatus::Failed);
    }
    {
        // A second engine (a different process, in real sweeps)
        // warm-starts every job from the persistent store.
        ResultStore store(dir, ResultStore::Mode::ReadWrite);
        EXPECT_EQ(store.records(), 7u);
        EngineConfig cfg;
        cfg.numThreads = 4;
        cfg.store = &store;
        Engine engine(cfg);
        warm = engine.run(jobs);
        EXPECT_EQ(engine.executed(), 0u);
        EXPECT_EQ(engine.cacheHits(), 7u);
    }

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].result, warm[i].result) << i;
        EXPECT_EQ(cold[i].status, warm[i].status) << i;
        EXPECT_EQ(cold[i].deduplicated, warm[i].deduplicated) << i;
        if (!warm[i].deduplicated) {
            EXPECT_TRUE(warm[i].cached) << i;
        }
        // Byte-identical serialization: the resume acceptance
        // criterion at record granularity.
        EXPECT_EQ(jobResultToJson(cold[i]).dump(2),
                  jobResultToJson(warm[i]).dump(2)) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(EngineResilience, HostErrorsAreNeverCached)
{
    std::string dir = tempCacheDir();
    for (int pass = 0; pass < 2; ++pass) {
        ResultStore store(dir, ResultStore::Mode::ReadWrite);
        EngineConfig cfg;
        cfg.numThreads = 1;
        cfg.store = &store;
        Engine engine(cfg);
        std::vector<JobResult> results = engine.run({throwingJob()});
        EXPECT_EQ(results[0].status, JobStatus::Error);
        // Re-executed on every pass: an Error outcome may be
        // transient, so it must never be served from the cache.
        EXPECT_EQ(engine.executed(), 1u) << "pass " << pass;
        EXPECT_EQ(engine.cacheHits(), 0u) << "pass " << pass;
        EXPECT_EQ(store.records(), 0u) << "pass " << pass;
    }
    std::filesystem::remove_all(dir);
}

TEST(EngineResilience, UnreachableWorkerIsQuarantinedRunCompletes)
{
    // Nothing listens on port 1: every connect is refused. With a
    // one-strike breaker the endpoint must be quarantined (probed
    // once, not hammered) and the sweep must complete locally with
    // results identical to a plain local run.
    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.workers = {"127.0.0.1:1"};
    cfg.workerAttempts = 1;
    cfg.quarantineAfter = 1;
    cfg.workerBackoffSeconds = 0.01;
    Engine engine(cfg);
    std::vector<SimJob> jobs = mixedBatch();
    std::vector<JobResult> results = engine.run(jobs);
    std::vector<JobResult> local = Engine(2).run(jobs);

    ASSERT_EQ(results.size(), local.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].status, local[i].status) << i;
        EXPECT_EQ(results[i].result, local[i].result) << i;
    }
    EXPECT_EQ(engine.workersQuarantined(), 1u);
    EXPECT_EQ(engine.remoteExecuted(), 0u);
}

TEST(EngineJson, SimResultRoundTripsExactly)
{
    SimJob job = makeJob("mcf", workloads::Variant::Dtt);
    SimResult r = runProgram(job.config, job.program);
    ASSERT_TRUE(r.halted);
    json::Value doc =
        json::Value::parse(resultToJson(r).dump(2));
    EXPECT_EQ(resultFromJson(doc), r);
}

TEST(EngineJson, JobRecordCarriesSchemaFields)
{
    Engine engine(1);
    std::vector<JobResult> results =
        engine.run({makeJob("mcf", workloads::Variant::Baseline)});
    json::Value rec = jobResultToJson(results[0]);
    EXPECT_EQ(rec.get("workload").asString(), "mcf");
    EXPECT_EQ(rec.get("variant").asString(), "baseline");
    EXPECT_EQ(rec.get("config_digest").asString().size(), 16u);
    EXPECT_FALSE(rec.get("deduplicated").asBool());
    EXPECT_EQ(rec.get("status").asString(), "ok");
    EXPECT_EQ(rec.get("attempts").asUint(), 1u);
    // Schema v2 drops wall-clock fields: the document must be a pure
    // function of the jobs so kill/resume merges byte-identically.
    EXPECT_EQ(rec.find("wall_seconds"), nullptr);
    EXPECT_EQ(rec.find("error"), nullptr);  // only on error/timeout
    EXPECT_EQ(resultFromJson(rec.get("result")), results[0].result);
}

TEST(EngineJson, ErrorRecordCarriesStructuredError)
{
    Engine engine(1);
    std::vector<JobResult> results = engine.run({throwingJob()});
    json::Value rec = jobResultToJson(results[0]);
    EXPECT_EQ(rec.get("status").asString(), "error");
    EXPECT_EQ(rec.get("error").get("kind").asString(), "FatalError");
    EXPECT_NE(rec.get("error").get("message").asString().find(
                  "maxCycles"),
              std::string::npos);
}

TEST(EngineJson, TryResultFromJsonRecoversFromCorruptRecords)
{
    json::Value good = resultToJson(SimResult{});
    std::string error;
    EXPECT_TRUE(tryResultFromJson(good, &error));

    json::Value notObject(std::uint64_t(7));
    EXPECT_FALSE(tryResultFromJson(notObject, &error));

    json::Value mistyped = resultToJson(SimResult{});
    mistyped.set("cycles", json::Value(std::string("many")));
    EXPECT_FALSE(tryResultFromJson(mistyped, &error));
    EXPECT_NE(error.find("cycles"), std::string::npos);
    EXPECT_THROW(resultFromJson(mistyped), FatalError);

    json::Value badReason = resultToJson(SimResult{});
    badReason.set("haltReason", json::Value(std::string("Shrugged")));
    EXPECT_FALSE(tryResultFromJson(badReason, &error));
    EXPECT_NE(error.find("haltReason"), std::string::npos);
}

TEST(EngineJson, StatusNamesRoundTrip)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Error, JobStatus::Timeout})
        EXPECT_EQ(jobStatusFromName(jobStatusName(s)), s);
    EXPECT_FALSE(jobStatusFromName("crashed"));
    EXPECT_FALSE(jobStatusFromName(""));
}

TEST(SimulatorHardening, RunIsOneShot)
{
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, smallParams());
    SimConfig cfg;
    cfg.accel = cpu::AccelKind::None;
    Simulator s(cfg, p);
    EXPECT_TRUE(s.run().halted);
    EXPECT_THROW(s.run(), PanicError);
}

TEST(SimulatorHardening, ValidateAcceptsTheTable1Machine)
{
    EXPECT_TRUE(SimConfig{}.validate().empty());
}

TEST(SimulatorHardening, ValidateRejectsBadConfigs)
{
    SimConfig cfg;
    cfg.maxCycles = 0;
    cfg.dtt.threadQueueSize = 0;
    cfg.mem.l1d.lineBytes = 48;  // not a power of two
    std::vector<std::string> errors = cfg.validate();
    EXPECT_GE(errors.size(), 3u);
    std::string all;
    for (const std::string &e : errors)
        all += e + "\n";
    // Each message names the offending field so it is actionable.
    EXPECT_NE(all.find("maxCycles"), std::string::npos);
    EXPECT_NE(all.find("lineBytes"), std::string::npos);
    EXPECT_NE(all.find("threadQueueSize"), std::string::npos);
}

TEST(SimulatorHardening, ConstructorRejectsInvalidConfig)
{
    SimConfig cfg;
    cfg.core.robSize = 0;
    isa::Program p = workloads::findWorkload("mcf").build(
        workloads::Variant::Baseline, smallParams());
    EXPECT_THROW(Simulator(cfg, p), FatalError);
    EXPECT_THROW(runProgram(cfg, p), FatalError);
}

TEST(EngineFabric, TwoEnginesRacingOneDigestExecuteExactlyOnce)
{
    // Two processes' worth of engines (separate ResultStore
    // instances — tryClaim is re-entrant only within one store)
    // race on the same digest. The claim protocol must let exactly
    // one simulate; the other adopts the winner's record.
    std::string dir = tempCacheDir();
    ResultStore storeA(dir, ResultStore::Mode::ReadWrite);
    ResultStore storeB(dir, ResultStore::Mode::ReadWrite);

    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.claimDeadlineSeconds = 60.0;
    cfg.store = &storeA;
    Engine engineA(cfg);
    cfg.store = &storeB;
    Engine engineB(cfg);

    std::atomic<int> executions{0};
    auto slowExecute = [&](const SimJob &job, int) {
        executions.fetch_add(1);
        // Long enough that the loser is certainly still waiting on
        // the claim when the winner finishes.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        return runProgram(job.config, job.program);
    };
    engineA.setExecuteOverrideForTest(slowExecute);
    engineB.setExecuteOverrideForTest(slowExecute);

    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    std::vector<JobResult> ra, rb;
    std::thread ta([&] { ra = engineA.run({job}); });
    // Give A a head start so it owns the claim before B looks.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread tb([&] { rb = engineB.run({job}); });
    ta.join();
    tb.join();

    EXPECT_EQ(executions.load(), 1);
    ASSERT_EQ(ra.size(), 1u);
    ASSERT_EQ(rb.size(), 1u);
    EXPECT_EQ(ra[0].status, JobStatus::Ok);
    EXPECT_EQ(ra[0].result, rb[0].result);
    // One engine executed, the other adopted via the claim wait.
    EXPECT_EQ(engineA.executed() + engineB.executed(), 1u);
    EXPECT_EQ(engineA.cacheHits() + engineB.cacheHits(), 1u);
    EXPECT_EQ(engineA.claimWaits() + engineB.claimWaits(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(EngineFabric, ClaimsOffDuplicatesTheRace)
{
    // Control experiment for the test above: with claims disabled
    // both engines simulate. A barrier inside the override *proves*
    // overlap — with claims on, this test would deadlock instead of
    // pass, so it also pins that --claims=off really bypasses them.
    std::string dir = tempCacheDir();
    ResultStore storeA(dir, ResultStore::Mode::ReadWrite);
    ResultStore storeB(dir, ResultStore::Mode::ReadWrite);

    EngineConfig cfg;
    cfg.numThreads = 1;
    cfg.claimInFlight = false;
    cfg.store = &storeA;
    Engine engineA(cfg);
    cfg.store = &storeB;
    Engine engineB(cfg);

    std::atomic<int> arrived{0};
    auto barrierExecute = [&](const SimJob &job, int) {
        arrived.fetch_add(1);
        while (arrived.load() < 2)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return runProgram(job.config, job.program);
    };
    engineA.setExecuteOverrideForTest(barrierExecute);
    engineB.setExecuteOverrideForTest(barrierExecute);

    SimJob job = makeJob("mcf", workloads::Variant::Baseline);
    std::vector<JobResult> ra, rb;
    std::thread ta([&] { ra = engineA.run({job}); });
    std::thread tb([&] { rb = engineB.run({job}); });
    ta.join();
    tb.join();

    EXPECT_EQ(arrived.load(), 2);
    EXPECT_EQ(engineA.executed() + engineB.executed(), 2u);
    EXPECT_EQ(ra[0].result, rb[0].result);
    std::filesystem::remove_all(dir);
}

TEST(EngineFabric, UnreachableWorkerDegradesToLocalExecution)
{
    // Point the engine at a worker nobody runs: after bounded
    // connection retries the dispatcher gives up and the local pool
    // completes the whole batch with identical results.
    EngineConfig cfg;
    cfg.numThreads = 2;
    cfg.workers = {"127.0.0.1:1"};  // reserved port: refused fast
    cfg.workerAttempts = 2;
    cfg.workerBackoffSeconds = 0.01;
    Engine engine(cfg);

    std::vector<SimJob> jobs = mixedBatch();
    std::vector<JobResult> results = engine.run(jobs);
    std::vector<JobResult> local = Engine(2).run(jobs);

    EXPECT_EQ(engine.workersLost(), 1u);
    EXPECT_EQ(engine.remoteExecuted(), 0u);
    ASSERT_EQ(results.size(), local.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].status, JobStatus::Ok) << i;
        EXPECT_EQ(results[i].result, local[i].result) << i;
        EXPECT_TRUE(results[i].worker.empty()) << i;
    }
}

} // namespace
} // namespace dttsim::sim
