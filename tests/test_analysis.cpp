/**
 * @file
 * Static-analyzer tests: CFG construction, the dataflow engine, and
 * one positive (firing) plus one negative (clean) program for every
 * diagnostic in the catalogue — then the full workload sweep, which
 * must come back spotless for all 15 workloads in both variants.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "profile/redundancy.h"
#include "workloads/workload.h"

namespace dttsim::analysis {
namespace {

/** Count findings of one kind. */
std::size_t
countDiags(const AnalysisResult &res, DiagId id)
{
    return static_cast<std::size_t>(
        std::count_if(res.diagnostics.begin(), res.diagnostics.end(),
                      [id](const Diagnostic &d) { return d.id == id; }));
}

/** gtest-friendly dump of all findings. */
std::string
dump(const AnalysisResult &res, const isa::Program &prog)
{
    std::string out;
    for (const Diagnostic &d : res.diagnostics)
        out += formatDiagnostic(d, &prog) + "\n";
    return out;
}

// ---- CFG ------------------------------------------------------------

TEST(Cfg, BlocksEdgesAndRoots)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li t0, 4
            li t1, 0
        top:
            addi t1, t1, 1
            blt t1, t0, top
            call fn
            halt
        fn:
            ret
        handler:
            tret
    )");
    Cfg cfg(prog);
    ASSERT_GE(cfg.blocks().size(), 5u);
    EXPECT_EQ(cfg.entryBlock(), cfg.blockOf(prog.entry()));
    ASSERT_EQ(cfg.handlerEntries().size(), 1u);
    EXPECT_EQ(cfg.handlerEntries().begin()->first, 0);
    ASSERT_EQ(cfg.calleeEntries().size(), 1u);
    EXPECT_TRUE(cfg.badTargetPcs().empty());

    // The branch block has two successors; the call block edges into
    // the callee only under the Full view.
    int branchBlock = cfg.blockOf(prog.label("top"));
    EXPECT_EQ(cfg.successors(branchBlock, EdgeView::Full).size(), 2u);
    int callBlock = -1;
    for (std::size_t i = 0; i < cfg.blocks().size(); ++i)
        if (cfg.blocks()[i].exit == BlockExit::Call)
            callBlock = static_cast<int>(i);
    ASSERT_GE(callBlock, 0);
    EXPECT_EQ(cfg.successors(callBlock, EdgeView::Full).size(), 2u);
    EXPECT_EQ(cfg.successors(callBlock, EdgeView::CallSkip).size(), 1u);
}

TEST(Cfg, MalformedProgramStillBuilds)
{
    isa::Program prog;  // Program::append is deliberately unvalidated
    isa::Inst j;
    j.op = isa::Opcode::JAL;
    j.rd = 0;
    j.imm = 99;
    prog.append(j);
    Cfg cfg(prog);  // must not throw
    ASSERT_EQ(cfg.badTargetPcs().size(), 1u);
    EXPECT_EQ(cfg.badTargetPcs()[0], 0u);
}

// ---- dataflow -------------------------------------------------------

TEST(Dataflow, CalleeMustDefineCreditsCaller)
{
    // a1 is produced by the callee on every path: no use-before-def.
    isa::Program prog = isa::assemble(R"(
        main:
            call fn
            add t0, a1, a1
            halt
        fn:
            li a1, 5
            ret
    )");
    Cfg cfg(prog);
    Dataflow df(cfg);
    EXPECT_TRUE(df.diagnostics().empty());
    ASSERT_EQ(df.functions().size(), 1u);
    const FuncSummary &fs = df.functions().begin()->second;
    EXPECT_TRUE(fs.mustDef & (RegMask(1) << 11));  // a1 = x11
}

TEST(Dataflow, BranchyCalleeOnlySometimesDefines)
{
    // fn defines a1 on one path only: the caller's read must warn.
    isa::Program prog = isa::assemble(R"(
        main:
            li a0, 1
            call fn
            add t0, a1, a1
            halt
        fn:
            beqz a0, skip
            li a1, 5
        skip:
            ret
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::UseBeforeDef), 1u)
        << dump(res, prog);
}

// ---- A001 unreachable-code ------------------------------------------

TEST(Analyzer, UnreachableCodeFires)
{
    isa::Program prog = isa::assemble(R"(
        main:
            halt
            li t0, 1
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::UnreachableCode), 1u)
        << dump(res, prog);
}

TEST(Analyzer, HandlerCodeIsNotUnreachable)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            halt
        handler:
            tret
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_TRUE(res.diagnostics.empty()) << dump(res, prog);
}

// ---- A002 use-before-def --------------------------------------------

TEST(Analyzer, UseBeforeDefFires)
{
    isa::Program prog = isa::assemble(R"(
        main:
            add t1, t0, t0
            halt
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::UseBeforeDef), 1u)
        << dump(res, prog);
    EXPECT_EQ(res.diagnostics[0].severity, Severity::Warning);
}

TEST(Analyzer, DefinedUseIsClean)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li t0, 2
            add t1, t0, t0
            halt
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::UseBeforeDef), 0u)
        << dump(res, prog);
}

TEST(Analyzer, ThreadEntryArgumentsAreDefined)
{
    // a0/a1 are spawn-defined in a thread body; s0 is not.
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            halt
        handler:
            add t0, a0, a1
            add t1, s0, s0
            tret
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::UseBeforeDef), 1u)
        << dump(res, prog);
    EXPECT_NE(res.diagnostics[0].message.find("s0"), std::string::npos);
}

// ---- A003 bad-target ------------------------------------------------

TEST(Analyzer, BadTargetFires)
{
    isa::Program prog;
    isa::Inst j;
    j.op = isa::Opcode::JAL;
    j.rd = 0;
    j.imm = 99;
    prog.append(j);
    isa::Inst h;
    h.op = isa::Opcode::HALT;
    prog.append(h);
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::BadTarget), 1u)
        << dump(res, prog);
    EXPECT_EQ(res.diagnostics[0].severity, Severity::Error);
    EXPECT_TRUE(res.errors());
}

TEST(Analyzer, BadTregTargetFires)
{
    isa::Program prog;
    isa::Inst t;
    t.op = isa::Opcode::TREG;
    t.trig = 0;
    t.imm = 42;
    prog.append(t);
    isa::Inst h;
    h.op = isa::Opcode::HALT;
    prog.append(h);
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::BadTarget), 1u)
        << dump(res, prog);
}

// ---- A004 dangling-trigger ------------------------------------------

TEST(Analyzer, DanglingTriggerStoreIsError)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 3
            halt
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::DanglingTrigger), 1u)
        << dump(res, prog);
    EXPECT_EQ(res.diagnostics[0].severity, Severity::Error);
}

TEST(Analyzer, DanglingTwaitIsWarning)
{
    isa::Program prog = isa::assemble(R"(
        main:
            twait 4
            halt
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::DanglingTrigger), 1u)
        << dump(res, prog);
    EXPECT_EQ(res.diagnostics[0].severity, Severity::Warning);
}

TEST(Analyzer, RegisteredTriggerIsClean)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 3, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 3
            twait 3
            halt
        handler:
            tret
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::DanglingTrigger), 0u)
        << dump(res, prog);
}

// ---- A005 non-terminating-thread ------------------------------------

TEST(Analyzer, ThreadBodyHaltIsError)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            halt
        handler:
            halt
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::NonTerminatingThread), 1u)
        << dump(res, prog);
    EXPECT_NE(res.diagnostics[0].message.find("halt"),
              std::string::npos);
}

TEST(Analyzer, ThreadBodyInfiniteLoopIsError)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            halt
        handler:
        spin:
            j spin
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::NonTerminatingThread), 1u)
        << dump(res, prog);
}

TEST(Analyzer, ThreadBodyTopLevelReturnIsError)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            halt
        handler:
            ret
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::NonTerminatingThread), 1u)
        << dump(res, prog);
    EXPECT_NE(res.diagnostics[0].message.find("jalr"),
              std::string::npos);
}

TEST(Analyzer, ThreadBodyWithSubroutineIsClean)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, data
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            halt
        handler:
            call helper
            tret
        helper:
            li t0, 1
            ret
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::NonTerminatingThread), 0u)
        << dump(res, prog);
}

// ---- A006 racy-trigger-write ----------------------------------------

TEST(Analyzer, UnfencedReadOfThreadOutputIsError)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, trig_a
            li a1, out
            li t0, 1
            tsd t0, 0(a0), 0
            ld t1, 0(a1)       # races: no twait yet
            twait 0
            ld t2, 0(a1)       # fenced: fine
            halt
        handler:
            li t0, 99
            li t1, out
            sd t0, 0(t1)
            tret
        .data
        trig_a: .space 8
        out: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::RacyTriggerWrite), 1u)
        << dump(res, prog);
    EXPECT_EQ(res.diagnostics[0].severity, Severity::Error);
    EXPECT_NE(res.diagnostics[0].message.find("out"),
              std::string::npos);
}

TEST(Analyzer, FencedReadIsClean)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, trig_a
            li a1, out
            li t0, 1
            tsd t0, 0(a0), 0
            twait 0
            ld t2, 0(a1)
            halt
        handler:
            li t0, 99
            li t1, out
            sd t0, 0(t1)
            tret
        .data
        trig_a: .space 8
        out: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::RacyTriggerWrite), 0u)
        << dump(res, prog);
}

TEST(Analyzer, PendingStateFollowsCalls)
{
    // The unfenced read happens inside a subroutine called while the
    // trigger is pending: still a race.
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, trig_a
            li t0, 1
            tsd t0, 0(a0), 0
            call reader
            twait 0
            halt
        reader:
            li a1, out
            ld t1, 0(a1)
            ret
        handler:
            li t0, 99
            li t1, out
            sd t0, 0(t1)
            tret
        .data
        trig_a: .space 8
        out: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::RacyTriggerWrite), 1u)
        << dump(res, prog);
}

// ---- A007 fall-off-end ----------------------------------------------

TEST(Analyzer, FallOffEndFires)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li t0, 1
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::FallOffEnd), 1u)
        << dump(res, prog);
    EXPECT_TRUE(res.errors());
}

// ---- A008 redundant-load (lint) -------------------------------------

TEST(Analyzer, RedundantLoadLintFires)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li a0, data
            ld t0, 0(a0)
            ld t1, 0(a0)
            halt
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::RedundantLoad), 1u)
        << dump(res, prog);
    EXPECT_EQ(res.diagnostics[0].severity, Severity::Lint);

    AnalyzeOptions noLint;
    noLint.lint = false;
    EXPECT_EQ(countDiags(analyze(prog, noLint), DiagId::RedundantLoad),
              0u);
}

TEST(Analyzer, InterveningStoreSquashesRedundantLoad)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li a0, data
            li t2, 5
            ld t0, 0(a0)
            sd t2, 0(a0)
            ld t1, 0(a0)
            halt
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::RedundantLoad), 0u)
        << dump(res, prog);
}

TEST(Analyzer, StoreToProvablyDistinctChunkKeepsRedundancy)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li a0, dataA
            li a1, dataB
            li t2, 5
            ld t0, 0(a0)
            sd t2, 0(a1)       # distinct chunk: cannot alias
            ld t1, 0(a0)
            halt
        .data
        dataA: .space 8
        dataB: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_EQ(countDiags(res, DiagId::RedundantLoad), 1u)
        << dump(res, prog);
}

TEST(Analyzer, StaticRedundantLoadConfirmedDynamically)
{
    isa::Program prog = isa::assemble(R"(
        main:
            li a0, data
            ld t0, 0(a0)
            ld t1, 0(a0)
            halt
        .data
        data: .space 8
    )");
    AnalysisResult res = analyze(prog);
    ASSERT_EQ(countDiags(res, DiagId::RedundantLoad), 1u);
    std::uint64_t pc = res.diagnostics[0].pc;

    // Every execution of a statically-redundant load must also be
    // dynamically redundant (static implies dynamic, not vice versa).
    profile::RedundancyReport dyn = profile::profileRedundancy(prog);
    auto it = dyn.perPcLoads.find(pc);
    ASSERT_NE(it, dyn.perPcLoads.end());
    EXPECT_EQ(it->second.executions, 1u);
    EXPECT_EQ(it->second.redundant, it->second.executions);
}

// ---- store-safety verdicts ------------------------------------------

TEST(Analyzer, StoreSafetyVerdicts)
{
    isa::Program prog = isa::assemble(R"(
        main:
            treg 0, handler
            li a0, trig_a
            li a1, shared
            li a2, priv
            li t0, 7
            sd t0, 0(a1)       # conflicts with the handler's writes
            sd t0, 0(a2)       # safe
            tsd t0, 0(a0), 0   # already triggering
            twait 0
            halt
        handler:
            li t5, 1
            li t6, shared
            sd t5, 0(t6)       # inside a thread body
            tret
        .data
        trig_a: .space 8
        shared: .space 8
        priv: .space 8
    )");
    AnalysisResult res = analyze(prog);
    EXPECT_TRUE(res.diagnostics.empty()) << dump(res, prog);

    std::vector<std::uint64_t> sdPcs, tsdPcs;
    for (std::uint64_t pc = 0; pc < prog.size(); ++pc) {
        if (prog.text()[pc].op == isa::Opcode::SD)
            sdPcs.push_back(pc);
        if (prog.text()[pc].op == isa::Opcode::TSD)
            tsdPcs.push_back(pc);
    }
    ASSERT_EQ(sdPcs.size(), 3u);
    ASSERT_EQ(tsdPcs.size(), 1u);

    EXPECT_FALSE(res.storeSafe(sdPcs[0]));  // writes 'shared'
    EXPECT_TRUE(res.storeSafe(sdPcs[1]));   // writes 'priv'
    EXPECT_FALSE(res.storeSafe(sdPcs[2]));  // in the thread body
    EXPECT_FALSE(res.storeSafe(tsdPcs[0])); // already a tstore
    EXPECT_NE(res.unsafeStores.at(sdPcs[0]).find("shared"),
              std::string::npos);
}

// ---- the sweep: every workload, both variants, zero findings --------

TEST(AnalyzerSweep, AllWorkloadsLintClean)
{
    workloads::WorkloadParams params;
    for (const workloads::Workload *w : workloads::allWorkloads()) {
        for (auto variant : {workloads::Variant::Baseline,
                             workloads::Variant::Dtt}) {
            isa::Program prog = w->build(variant, params);
            AnalysisResult res = analyze(prog);
            EXPECT_TRUE(res.diagnostics.empty())
                << w->info().name << " ("
                << (variant == workloads::Variant::Baseline
                        ? "baseline" : "dtt")
                << "):\n" << dump(res, prog);
        }
    }
}

} // namespace
} // namespace dttsim::analysis
