/**
 * @file
 * ProgramBuilder tests: emission of each format, forward/backward
 * label fixups, data helpers, the structured loop helper, and misuse
 * diagnostics.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "cpu/executor.h"
#include "isa/builder.h"

namespace dttsim::isa {
namespace {

using namespace regs;

TEST(Builder, EmitsAndResolvesLabels)
{
    ProgramBuilder b;
    Label target = b.newLabel();
    b.li(t0, 1);
    b.beq(t0, zero, target);   // forward reference
    b.addi(t0, t0, 5);
    b.bind(target);
    b.halt();
    Program p = b.take();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(1).op, Opcode::BEQ);
    EXPECT_EQ(p.at(1).imm, 3);
}

TEST(Builder, BackwardLabel)
{
    ProgramBuilder b;
    b.li(t0, 0);
    Label top = b.here();
    b.addi(t0, t0, 1);
    b.li(t1, 10);
    b.blt(t0, t1, top);
    b.halt();
    Program p = b.take();
    EXPECT_EQ(p.at(3).imm, 1);
}

TEST(Builder, UnboundLabelPanics)
{
    ProgramBuilder b;
    Label l = b.newLabel();
    b.j(l);
    EXPECT_THROW(b.take(), PanicError);
}

TEST(Builder, DefaultLabelRejected)
{
    ProgramBuilder b;
    Label l;  // never allocated via newLabel
    EXPECT_THROW(b.j(l), PanicError);
}

TEST(Builder, DoubleBindPanics)
{
    ProgramBuilder b;
    Label l = b.here();
    EXPECT_THROW(b.bind(l), PanicError);
}

TEST(Builder, DataHelpers)
{
    ProgramBuilder b;
    Addr q = b.quads("q", {1, -1});
    Addr d = b.doubles("d", {2.5});
    Addr by = b.bytes("by", {9, 8});
    Addr sp_a = b.space("sp", 16);
    b.halt();
    Program p = b.take();
    EXPECT_EQ(p.dataSymbol("q"), q);
    EXPECT_EQ(p.dataSymbol("d"), d);
    EXPECT_EQ(p.dataSymbol("by"), by);
    EXPECT_EQ(p.dataSymbol("sp"), sp_a);
    // Verify encoded contents through memory loading.
    mem::Memory m;
    cpu::loadData(p, m);
    EXPECT_EQ(m.read64(q), 1u);
    EXPECT_EQ(m.read64(q + 8), ~0ull);
    EXPECT_EQ(m.readDouble(d), 2.5);
    EXPECT_EQ(m.read8(by), 9u);
    EXPECT_EQ(m.read8(by + 1), 8u);
}

TEST(Builder, MainLabelSetsEntry)
{
    ProgramBuilder b;
    b.nop();
    b.bindNamed("main");
    b.halt();
    Program p = b.take();
    EXPECT_EQ(p.entry(), 1u);
}

TEST(Builder, TriggerIdsTracked)
{
    ProgramBuilder b;
    Label h = b.newLabel();
    b.treg(3, h);
    b.bind(h);
    b.tret();
    Program p = b.take();
    EXPECT_EQ(p.numTriggers(), 4);
}

TEST(Builder, ReuseAfterTakePanics)
{
    ProgramBuilder b;
    b.halt();
    (void)b.take();
    EXPECT_THROW(b.nop(), PanicError);
}

TEST(Builder, OutOfRangeRegisterRejected)
{
    ProgramBuilder b;
    EXPECT_THROW(b.li(x(40), 1), FatalError);
}

TEST(Builder, NegativeTriggerIdRejected)
{
    ProgramBuilder b;
    EXPECT_THROW(b.twait(-2), FatalError);
}

TEST(Builder, LabelBoundPastEndRejected)
{
    // A label bound after the final instruction resolves to a pc one
    // past the text: jumping there would fall off the program.
    ProgramBuilder b;
    Label end = b.newLabel();
    b.j(end);
    b.halt();
    b.bind(end);
    EXPECT_THROW(b.take(), FatalError);
}

TEST(Builder, LoopExecutesCorrectIterationCount)
{
    // Functional check: sum 0..9 via the loop helper.
    ProgramBuilder b;
    Addr out = b.space("result", 8);
    b.li(s0, 0);
    b.li(t1, 10);
    b.loop(t0, t1, [&] { b.add(s0, s0, t0); });
    b.la(t2, out);
    b.sd(s0, t2, 0);
    b.halt();
    Program p = b.take();

    cpu::FunctionalRunner runner(p);
    auto r = runner.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(runner.memory().read64(out), 45u);
}

TEST(Builder, LoopZeroBoundSkipsBody)
{
    ProgramBuilder b;
    Addr out = b.space("result", 8);
    b.li(s0, 7);
    b.li(t1, 0);
    b.loop(t0, t1, [&] { b.li(s0, 999); });
    b.la(t2, out);
    b.sd(s0, t2, 0);
    b.halt();
    Program p = b.take();

    cpu::FunctionalRunner runner(p);
    runner.run();
    EXPECT_EQ(runner.memory().read64(out), 7u);
}

TEST(Builder, ConstantBoundLoopUsesScratch)
{
    ProgramBuilder b;
    Addr out = b.space("result", 8);
    b.li(s0, 0);
    b.loop(t0, 5, t1, [&] { b.addi(s0, s0, 2); });
    b.la(t2, out);
    b.sd(s0, t2, 0);
    b.halt();
    Program p = b.take();

    cpu::FunctionalRunner runner(p);
    runner.run();
    EXPECT_EQ(runner.memory().read64(out), 10u);
}

} // namespace
} // namespace dttsim::isa
