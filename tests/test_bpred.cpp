/**
 * @file
 * Branch predictor tests: gshare learning, BTB indirect targets,
 * return-address stack behaviour, per-context isolation.
 */

#include <gtest/gtest.h>

#include "cpu/bpred.h"

namespace dttsim::cpu {
namespace {

isa::Inst
condBranch(std::int64_t target)
{
    isa::Inst i;
    i.op = isa::Opcode::BEQ;
    i.imm = target;
    return i;
}

isa::Inst
jalr(int rd, int rs1)
{
    isa::Inst i;
    i.op = isa::Opcode::JALR;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs1);
    return i;
}

isa::Inst
jal(int rd, std::int64_t target)
{
    isa::Inst i;
    i.op = isa::Opcode::JAL;
    i.rd = static_cast<std::uint8_t>(rd);
    i.imm = target;
    return i;
}

TEST(Bpred, LearnsAlwaysTakenBranch)
{
    Bpred bp(BpredConfig{});
    isa::Inst br = condBranch(100);
    // Train until the all-taken history's table entry saturates
    // (gshare: each outcome also shifts the history, so early updates
    // land on different indices).
    for (int i = 0; i < 50; ++i)
        bp.update(0, 10, br, true, 100);
    Prediction p = bp.predict(0, 10, br);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 100u);
}

TEST(Bpred, LearnsNotTaken)
{
    Bpred bp(BpredConfig{});
    isa::Inst br = condBranch(100);
    for (int i = 0; i < 50; ++i)
        bp.update(0, 10, br, false, 11);
    Prediction p = bp.predict(0, 10, br);
    EXPECT_FALSE(p.taken);
    EXPECT_EQ(p.target, 11u);
}

TEST(Bpred, CountsMispredicts)
{
    Bpred bp(BpredConfig{});
    isa::Inst br = condBranch(100);
    // Initial counters are weakly not-taken: first taken outcome is a
    // mispredict.
    bp.update(0, 10, br, true, 100);
    EXPECT_EQ(bp.stats().get("condBranches"), 1u);
    EXPECT_EQ(bp.stats().get("condMispredicts"), 1u);
}

TEST(Bpred, AlternatingPatternLearnedViaHistory)
{
    // gshare with global history learns a strict T/NT alternation.
    Bpred bp(BpredConfig{});
    isa::Inst br = condBranch(50);
    bool outcome = false;
    for (int i = 0; i < 200; ++i) {
        bp.update(0, 10, br, outcome, outcome ? 50u : 11u);
        outcome = !outcome;
    }
    // Measure accuracy over the next 100.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        Prediction p = bp.predict(0, 10, br);
        if (p.taken == outcome)
            ++correct;
        bp.update(0, 10, br, outcome, outcome ? 50u : 11u);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 95);
}

TEST(Bpred, JalAlwaysExact)
{
    Bpred bp(BpredConfig{});
    Prediction p = bp.predict(0, 5, jal(0, 77));
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 77u);
}

TEST(Bpred, RasPredictsReturn)
{
    Bpred bp(BpredConfig{});
    // call at pc 5 (jal ra, f) pushes 6.
    bp.update(0, 5, jal(1, 100), true, 100);
    // Return (jalr x0, ra) predicted to 6.
    Prediction p = bp.predict(0, 120, jalr(0, 1));
    EXPECT_EQ(p.target, 6u);
    bp.update(0, 120, jalr(0, 1), true, 6);
    EXPECT_EQ(bp.stats().get("rasHits"), 1u);
}

TEST(Bpred, NestedCallsUnwindInOrder)
{
    Bpred bp(BpredConfig{});
    bp.update(0, 10, jal(1, 100), true, 100);  // pushes 11
    bp.update(0, 105, jal(1, 200), true, 200); // pushes 106
    EXPECT_EQ(bp.predict(0, 210, jalr(0, 1)).target, 106u);
    bp.update(0, 210, jalr(0, 1), true, 106);
    EXPECT_EQ(bp.predict(0, 120, jalr(0, 1)).target, 11u);
}

TEST(Bpred, BtbLearnsIndirectTarget)
{
    Bpred bp(BpredConfig{});
    isa::Inst ind = jalr(0, 9);  // not a return (rs1 != ra)
    // Cold: predicts fallthrough, counted as mispredict on update.
    Prediction p = bp.predict(0, 30, ind);
    EXPECT_EQ(p.target, 31u);
    bp.update(0, 30, ind, true, 400);
    EXPECT_EQ(bp.predict(0, 30, ind).target, 400u);
    EXPECT_EQ(bp.stats().get("indirectMispredicts"), 1u);
}

TEST(Bpred, ContextsHaveIndependentHistoryAndRas)
{
    BpredConfig cfg;
    cfg.numContexts = 2;
    Bpred bp(cfg);
    bp.update(0, 5, jal(1, 100), true, 100);  // ctx 0 RAS push
    // ctx 1 RAS is empty -> falls back to BTB/fallthrough.
    Prediction p = bp.predict(1, 120, jalr(0, 1));
    EXPECT_EQ(p.target, 121u);
    // resetContext clears ctx 0's RAS too.
    bp.resetContext(0);
    EXPECT_EQ(bp.predict(0, 120, jalr(0, 1)).target, 121u);
}

} // namespace
} // namespace dttsim::cpu
