/**
 * @file
 * Tests of the DTT architecture (the paper's contribution): thread
 * registry, thread queue (coalescing, capacity), thread status table,
 * controller trigger evaluation (silent suppression, full-queue
 * policies, per-trigger serialization), and end-to-end DTT execution
 * on the timing core (spawn, TWAIT fencing, context reuse).
 */

#include <gtest/gtest.h>

#include "accel/dtt_accel.h"
#include "common/log.h"
#include "core/controller.h"
#include "cpu/executor.h"
#include "cpu/ooo_core.h"
#include "isa/assembler.h"
#include "mem/hierarchy.h"

namespace dttsim::dtt {
namespace {

DttConfig
smallConfig()
{
    DttConfig c;
    c.maxTriggers = 8;
    c.threadQueueSize = 4;
    return c;
}

TEST(ThreadRegistry, InstallLookupRemove)
{
    ThreadRegistry reg(4);
    EXPECT_FALSE(reg.lookup(0).valid);
    reg.install(0, 100);
    EXPECT_TRUE(reg.lookup(0).valid);
    EXPECT_EQ(reg.lookup(0).entryPc, 100u);
    reg.remove(0);
    EXPECT_FALSE(reg.lookup(0).valid);
    EXPECT_THROW(reg.install(4, 0), FatalError);
    EXPECT_THROW(reg.lookup(-1), FatalError);
}

TEST(ThreadQueue, FifoOrder)
{
    ThreadQueue q(4, true);
    q.push({0, 100, 1});
    q.push({1, 200, 2});
    EXPECT_EQ(q.size(), 2);
    PendingThread a = q.pop();
    EXPECT_EQ(a.trig, 0);
    EXPECT_EQ(a.addr, 100u);
    PendingThread b = q.pop();
    EXPECT_EQ(b.trig, 1);
}

TEST(ThreadQueue, CoalescesSameTriggerAddress)
{
    ThreadQueue q(4, true);
    EXPECT_EQ(q.push({0, 100, 1}), EnqueueResult::Enqueued);
    EXPECT_EQ(q.push({0, 100, 9}), EnqueueResult::Coalesced);
    EXPECT_EQ(q.size(), 1);
    PendingThread t = q.pop();
    EXPECT_EQ(t.value, 9u);  // newest value wins
}

TEST(ThreadQueue, NoCoalesceAcrossAddressOrTrigger)
{
    ThreadQueue q(8, true);
    q.push({0, 100, 1});
    EXPECT_EQ(q.push({0, 108, 1}), EnqueueResult::Enqueued);
    EXPECT_EQ(q.push({1, 100, 1}), EnqueueResult::Enqueued);
    EXPECT_EQ(q.size(), 3);
}

TEST(ThreadQueue, CoalescingDisabled)
{
    ThreadQueue q(4, false);
    q.push({0, 100, 1});
    EXPECT_EQ(q.push({0, 100, 2}), EnqueueResult::Enqueued);
    EXPECT_EQ(q.size(), 2);
}

TEST(ThreadQueue, CapacityRejects)
{
    ThreadQueue q(2, true);
    q.push({0, 0, 0});
    q.push({0, 8, 0});
    EXPECT_EQ(q.push({0, 16, 0}), EnqueueResult::Full);
    EXPECT_EQ(q.stats().get("rejects"), 1u);
}

TEST(ThreadQueue, PendingForTracksPerTrigger)
{
    ThreadQueue q(8, true);
    q.push({2, 0, 0});
    q.push({2, 8, 0});
    q.push({1, 0, 0});
    EXPECT_EQ(q.pendingFor(2), 2);
    EXPECT_EQ(q.pendingFor(1), 1);
    EXPECT_EQ(q.pendingFor(0), 0);
    q.pop();
    EXPECT_EQ(q.pendingFor(2), 1);
}

TEST(ThreadQueue, PopFirstSkipsFiltered)
{
    ThreadQueue q(8, true);
    q.push({0, 0, 0});
    q.push({1, 8, 0});
    auto got = q.popFirst([](const PendingThread &t) {
        return t.trig == 1;
    });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->trig, 1);
    EXPECT_EQ(q.size(), 1);
    auto none = q.popFirst([](const PendingThread &) { return false; });
    EXPECT_FALSE(none.has_value());
}

TEST(ThreadStatus, RunningBookkeeping)
{
    ThreadStatusTable st(4, 3);
    st.markRunning(2, 1);
    EXPECT_EQ(st.of(2).running, 1);
    EXPECT_EQ(st.runningOn(1), 2);
    EXPECT_EQ(st.markDone(1), 2);
    EXPECT_EQ(st.of(2).running, 0);
    EXPECT_EQ(st.runningOn(1), invalidTrigger);
    EXPECT_THROW(st.markDone(1), PanicError);
}

// ----- controller -----------------------------------------------------

TEST(Controller, SilentStoresSuppressed)
{
    DttController c(smallConfig(), 4);
    c.onTregCommit(0, 50);
    EXPECT_EQ(c.onTstoreCommit(0, 100, 7, true), TstoreOutcome::Silent);
    EXPECT_EQ(c.queue().size(), 0);
    EXPECT_EQ(c.stats().get("silentSuppressed"), 1u);
    EXPECT_EQ(c.onTstoreCommit(0, 100, 7, false),
              TstoreOutcome::Fired);
    EXPECT_EQ(c.queue().size(), 1);
}

TEST(Controller, AblationDisablesSuppression)
{
    DttConfig cfg = smallConfig();
    cfg.silentSuppression = false;
    DttController c(cfg, 4);
    c.onTregCommit(0, 50);
    EXPECT_EQ(c.onTstoreCommit(0, 100, 7, true), TstoreOutcome::Fired);
}

TEST(Controller, UnregisteredTriggerDoesNothing)
{
    DttController c(smallConfig(), 4);
    EXPECT_EQ(c.onTstoreCommit(3, 100, 7, false),
              TstoreOutcome::Silent);
    EXPECT_EQ(c.stats().get("unregisteredFirings"), 1u);
}

TEST(Controller, StallPolicyOnFullQueue)
{
    DttConfig cfg = smallConfig();
    cfg.threadQueueSize = 2;
    cfg.fullPolicy = FullQueuePolicy::Stall;
    DttController c(cfg, 4);
    c.onTregCommit(0, 50);
    c.onTstoreCommit(0, 0, 1, false);
    c.onTstoreCommit(0, 8, 1, false);
    EXPECT_EQ(c.onTstoreCommit(0, 16, 1, false),
              TstoreOutcome::Stall);
    EXPECT_EQ(c.stats().get("stallEvents"), 1u);
}

TEST(Controller, DropPolicySetsOverflow)
{
    DttConfig cfg = smallConfig();
    cfg.threadQueueSize = 2;
    cfg.fullPolicy = FullQueuePolicy::Drop;
    DttController c(cfg, 4);
    c.onTregCommit(0, 50);
    c.onTstoreCommit(0, 0, 1, false);
    c.onTstoreCommit(0, 8, 1, false);
    EXPECT_EQ(c.onTstoreCommit(0, 16, 1, false),
              TstoreOutcome::Dropped);
    EXPECT_TRUE(c.chk(0) & (std::int64_t(1) << 62));
    c.onTclrCommit(0);
    // Pending entries remain but the overflow bit is clear.
    EXPECT_FALSE(c.chk(0) & (std::int64_t(1) << 62));
}

TEST(Controller, OverflowFlagIsStickyAcrossRepeatedDrops)
{
    DttConfig cfg = smallConfig();
    cfg.threadQueueSize = 1;
    cfg.coalesce = false;
    cfg.fullPolicy = FullQueuePolicy::Drop;
    DttController c(cfg, 4);
    c.onTregCommit(0, 50);
    EXPECT_EQ(c.onTstoreCommit(0, 0, 1, false),
              TstoreOutcome::Fired);
    // Queue exhausted: every further firing drops; the sticky
    // overflow flag is a single bit that latches on the first drop
    // and stays set — not a counter, not toggled per drop.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(c.onTstoreCommit(0, 8 * (i + 1), 2 + i, false),
                  TstoreOutcome::Dropped);
        EXPECT_TRUE(c.chk(0) & (std::int64_t(1) << 62));
    }
    EXPECT_EQ(c.stats().get("dropped"), 4u);
    // TCLR rearms the latch: clear, then one more drop re-sets it.
    c.onTclrCommit(0);
    EXPECT_FALSE(c.chk(0) & (std::int64_t(1) << 62));
    EXPECT_EQ(c.onTstoreCommit(0, 48, 9, false),
              TstoreOutcome::Dropped);
    EXPECT_TRUE(c.chk(0) & (std::int64_t(1) << 62));
}

TEST(Controller, WaitSatisfiedTracksAllThreeSources)
{
    DttController c(smallConfig(), 4);
    c.onTregCommit(0, 50);
    EXPECT_TRUE(c.waitSatisfied(0));

    // In-flight tstore blocks the wait.
    c.onTstoreFetched(0);
    EXPECT_FALSE(c.waitSatisfied(0));
    c.onTstoreCommit(0, 0, 1, false);
    c.onTstoreDone(0);
    // Now pending in the queue.
    EXPECT_FALSE(c.waitSatisfied(0));

    SpawnRequest req = c.takeSpawn();
    ASSERT_TRUE(req.valid);
    EXPECT_EQ(req.entryPc, 50u);
    c.onSpawned(req.trig, 1);
    // Running.
    EXPECT_FALSE(c.waitSatisfied(0));
    c.onTretCommit(1);
    EXPECT_TRUE(c.waitSatisfied(0));
}

TEST(Controller, ChkCountsOutstandingWork)
{
    DttController c(smallConfig(), 4);
    c.onTregCommit(0, 50);
    EXPECT_EQ(c.chk(0), 0);
    c.onTstoreFetched(0);
    EXPECT_EQ(c.chk(0), 1);
    c.onTstoreCommit(0, 0, 1, false);
    c.onTstoreDone(0);
    EXPECT_EQ(c.chk(0), 1);  // now pending instead of in flight
}

TEST(Controller, PerTriggerSerialization)
{
    DttConfig cfg = smallConfig();
    cfg.serializePerTrigger = true;
    DttController c(cfg, 4);
    c.onTregCommit(0, 50);
    c.onTregCommit(1, 60);
    c.onTstoreCommit(0, 0, 1, false);
    c.onTstoreCommit(0, 8, 1, false);
    c.onTstoreCommit(1, 0, 1, false);

    SpawnRequest first = c.takeSpawn();
    ASSERT_TRUE(first.valid);
    EXPECT_EQ(first.trig, 0);
    c.onSpawned(0, 1);

    // Trigger 0 is running: the next spawn must skip to trigger 1.
    SpawnRequest second = c.takeSpawn();
    ASSERT_TRUE(second.valid);
    EXPECT_EQ(second.trig, 1);
    c.onSpawned(1, 2);

    // Only trigger-0 work remains and it is busy.
    EXPECT_FALSE(c.takeSpawn().valid);
    c.onTretCommit(1);
    EXPECT_TRUE(c.takeSpawn().valid);
}

TEST(Controller, SerializationDisabledSpawnsFifo)
{
    DttConfig cfg = smallConfig();
    cfg.serializePerTrigger = false;
    DttController c(cfg, 4);
    c.onTregCommit(0, 50);
    c.onTstoreCommit(0, 0, 1, false);
    c.onTstoreCommit(0, 8, 1, false);
    c.onSpawned(c.takeSpawn().trig, 1);
    EXPECT_TRUE(c.takeSpawn().valid);  // same trigger, concurrent
}

TEST(Controller, StaleEntriesDiscardedAfterUnreg)
{
    DttController c(smallConfig(), 4);
    c.onTregCommit(0, 50);
    c.onTstoreCommit(0, 0, 1, false);
    c.onTunregCommit(0);
    EXPECT_FALSE(c.takeSpawn().valid);
    EXPECT_EQ(c.stats().get("staleDiscards"), 1u);
}

// ----- end-to-end on the timing core ---------------------------------

struct E2E
{
    cpu::CoreRunResult result;
    std::uint64_t out;
    DttController *controller;
};

E2E
runDtt(const std::string &src, DttConfig dcfg = DttConfig{},
       cpu::CoreConfig ccfg = cpu::CoreConfig{})
{
    static isa::Program prog;  // keep alive across the core's lifetime
    prog = isa::assemble(src);
    static mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    hierarchy = mem::Hierarchy{mem::HierarchyConfig{}};
    static std::unique_ptr<accel::DttAccel> accel;
    accel = std::make_unique<accel::DttAccel>(dcfg, ccfg.numContexts);
    cpu::OooCore core(ccfg, prog, hierarchy, accel.get());
    cpu::CoreRunResult r = core.run(5'000'000);
    EXPECT_TRUE(r.halted);
    E2E e;
    e.result = r;
    e.out = core.memory().read64(prog.dataSymbol("out"));
    e.controller = accel->controller();
    return e;
}

TEST(DttEndToEnd, HandlerRunsOnSpareContextAndTwaitFences)
{
    E2E e = runDtt(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 7
        tsd x5, 0(a0), 0
        twait 0
        li  x6, out
        ld  x7, 0(x6)
        addi x7, x7, 1
        sd  x7, 0(x6)
        halt
    handler:
        li  x6, out
        li  x7, 100
        sd  x7, 0(x6)
        tret
        .data
    buf: .space 8
    out: .space 8
    )");
    // Handler wrote 100 before the fenced main-thread increment.
    EXPECT_EQ(e.out, 101u);
    EXPECT_EQ(e.result.dttSpawns, 1u);
    EXPECT_GT(e.result.dttCommitted, 0u);
}

TEST(DttEndToEnd, SilentStoreSkipsComputation)
{
    E2E e = runDtt(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 0
        tsd x5, 0(a0), 0     # silent: buf already 0
        twait 0
        halt
    handler:
        li  x6, out
        li  x7, 1
        sd  x7, 0(x6)
        tret
        .data
    buf: .space 8
    out: .space 8
    )");
    EXPECT_EQ(e.out, 0u);
    EXPECT_EQ(e.result.dttSpawns, 0u);
    EXPECT_EQ(e.controller->stats().get("silentSuppressed"), 1u);
}

TEST(DttEndToEnd, ManyTriggersReuseContexts)
{
    // 20 real triggers on a 4-context machine: contexts recycle.
    E2E e = runDtt(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 0
        li  x6, 20
    loop:
        addi x5, x5, 1
        tsd  x5, 0(a0), 0    # value changes every time
        addi x6, x6, -1
        bne  x6, x0, loop
        twait 0
        halt
    handler:
        li  x6, out
        ld  x7, 0(x6)
        addi x7, x7, 1
        sd  x7, 0(x6)
        tret
        .data
    buf: .space 8
    out: .space 8
    )");
    EXPECT_EQ(e.result.dttSpawns, e.out);
    EXPECT_GT(e.out, 0u);
    // Coalescing may merge some, but every spawn incremented out once.
}

TEST(DttEndToEnd, StallPolicySurvivesQueuePressure)
{
    DttConfig cfg;
    cfg.threadQueueSize = 2;
    cfg.fullPolicy = FullQueuePolicy::Stall;
    E2E e = runDtt(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 0
        li  x6, 16
    loop:
        addi x5, x5, 1
        tsd  x5, 0(a0), 0
        tsd  x5, 8(a0), 0
        tsd  x5, 16(a0), 0
        addi x6, x6, -1
        bne  x6, x0, loop
        twait 0
        halt
    handler:
        li  x6, out
        ld  x7, 0(x6)
        addi x7, x7, 1
        sd  x7, 0(x6)
        tret
        .data
    buf: .space 24
    out: .space 8
    )", cfg);
    EXPECT_TRUE(e.result.halted);
    EXPECT_GT(e.out, 0u);
}

TEST(DttEndToEnd, TchkSeesOutstandingWorkWithoutBlocking)
{
    E2E e = runDtt(R"(
    main:
        treg 0, handler
        li  a0, buf
        li  x5, 3
        tsd x5, 0(a0), 0
        tchk x8, 0           # outstanding work visible (nonzero)
        li  x9, out
        sd  x8, 8(x9)
        twait 0
        tchk x8, 0           # drained: zero
        sd  x8, 16(x9)
        li  x7, 1
        sd  x7, 0(x9)
        halt
    handler:
        tret
        .data
    out: .space 24
    buf: .space 8
    )");
    EXPECT_EQ(e.out, 1u);
}

TEST(DttEndToEnd, BaselineVariantUnaffectedByController)
{
    // A program with plain stores runs identically with DTT hardware
    // present (no triggers registered -> no spawns).
    E2E e = runDtt(R"(
    main:
        li  a0, out
        li  x5, 5
        sd  x5, 0(a0)
        halt
        .data
    out: .space 8
    )");
    EXPECT_EQ(e.out, 5u);
    EXPECT_EQ(e.result.dttSpawns, 0u);
}

} // namespace
} // namespace dttsim::dtt
