/**
 * @file
 * JSON document-model tests: construction, typed accessors, exact
 * 64-bit integer round-trips (simulator counters must survive
 * dump/parse bit-exactly), member-order stability, pretty-printing,
 * string escaping, and parser error handling.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/json.h"
#include "common/log.h"

namespace dttsim::json {
namespace {

TEST(Json, BuildsAndDumpsCompactDocuments)
{
    Value doc = Value::object();
    doc.set("name", Value("mcf"));
    doc.set("cycles", Value(std::uint64_t(145907)));
    doc.set("valid", Value(true));
    Value arr = Value::array();
    arr.push(Value(1));
    arr.push(Value(2));
    doc.set("list", std::move(arr));
    EXPECT_EQ(doc.dump(),
              "{\"name\":\"mcf\",\"cycles\":145907,\"valid\":true,"
              "\"list\":[1,2]}");
}

TEST(Json, MemberOrderIsInsertionOrder)
{
    Value doc = Value::object();
    doc.set("z", Value(1));
    doc.set("a", Value(2));
    doc.set("z", Value(3));  // overwrite keeps the original slot
    EXPECT_EQ(doc.dump(), "{\"z\":3,\"a\":2}");
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.members()[0].first, "z");
}

TEST(Json, Uint64RoundTripsExactly)
{
    const std::uint64_t big =
        std::numeric_limits<std::uint64_t>::max();
    Value doc = Value::object();
    doc.set("v", Value(big));
    Value parsed = Value::parse(doc.dump());
    ASSERT_TRUE(parsed.get("v").isUint());
    EXPECT_EQ(parsed.get("v").asUint(), big);
}

TEST(Json, SignedAndFloatingNumbers)
{
    Value parsed = Value::parse("{\"i\":-42,\"d\":0.5,\"e\":1e3}");
    EXPECT_EQ(parsed.get("i").asInt(), -42);
    EXPECT_FALSE(parsed.get("i").isUint());
    EXPECT_DOUBLE_EQ(parsed.get("d").asDouble(), 0.5);
    EXPECT_DOUBLE_EQ(parsed.get("e").asDouble(), 1000.0);
    // Numeric accessors coerce across numeric types only.
    EXPECT_DOUBLE_EQ(parsed.get("i").asDouble(), -42.0);
}

TEST(Json, DoubleRoundTripsExactly)
{
    const double v = 0.136993807421;
    Value doc = Value::object();
    doc.set("v", Value(v));
    EXPECT_DOUBLE_EQ(Value::parse(doc.dump()).get("v").asDouble(), v);
}

TEST(Json, StringEscaping)
{
    Value doc = Value::object();
    doc.set("s", Value("a\"b\\c\n\t"));
    std::string text = doc.dump();
    EXPECT_EQ(text, "{\"s\":\"a\\\"b\\\\c\\n\\t\"}");
    EXPECT_EQ(Value::parse(text).get("s").asString(), "a\"b\\c\n\t");
}

TEST(Json, PrettyPrintIndents)
{
    Value doc = Value::object();
    doc.set("a", Value(1));
    EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, FindAndGetSemantics)
{
    Value doc = Value::object();
    doc.set("present", Value(1));
    EXPECT_NE(doc.find("present"), nullptr);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW(doc.get("missing"), FatalError);
    Value arr = Value::array();
    arr.push(Value(1));
    EXPECT_THROW(arr.at(1), FatalError);
}

TEST(Json, AccessorsRejectWrongTypes)
{
    Value v(std::string("text"));
    EXPECT_THROW(v.asUint(), FatalError);
    EXPECT_THROW(v.asBool(), FatalError);
    EXPECT_THROW(Value(true).asString(), FatalError);
    EXPECT_THROW(Value(-1).asUint(), FatalError);
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    EXPECT_THROW(Value::parse(""), FatalError);
    EXPECT_THROW(Value::parse("{"), FatalError);
    EXPECT_THROW(Value::parse("{\"a\":}"), FatalError);
    EXPECT_THROW(Value::parse("[1,]"), FatalError);
    EXPECT_THROW(Value::parse("nul"), FatalError);
    EXPECT_THROW(Value::parse("{} trailing"), FatalError);
    EXPECT_THROW(Value::parse("\"unterminated"), FatalError);
}

TEST(Json, TryParseRecoversInsteadOfThrowing)
{
    // The result-cache load path: a torn JSONL tail line must come
    // back as nullopt + a diagnostic, never a FatalError.
    std::string error;
    std::optional<Value> ok =
        Value::tryParse("{\"a\": [1, 2]}", &error);
    ASSERT_TRUE(ok);
    EXPECT_EQ(ok->get("a").size(), 2u);

    EXPECT_FALSE(Value::tryParse("", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Value::tryParse("{\"digest\": \"ab\", \"sta", &error));
    EXPECT_FALSE(Value::tryParse("{} trailing", &error));
    EXPECT_FALSE(Value::tryParse("not json", nullptr));  // error optional
}

TEST(Json, ParsesNullsAndNested)
{
    Value doc = Value::parse(
        "{\"a\":null,\"b\":{\"c\":[true,false,null]}}");
    EXPECT_TRUE(doc.get("a").isNull());
    const Value &c = doc.get("b").get("c");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_TRUE(c.at(0).asBool());
    EXPECT_FALSE(c.at(1).asBool());
    EXPECT_TRUE(c.at(2).isNull());
}

} // namespace
} // namespace dttsim::json
