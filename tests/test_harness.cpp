/**
 * @file
 * Bench-harness API tests: flag parsing against the declared set,
 * workload-parameter plumbing, the Table-1 machine config, pair
 * validity/speedup semantics (NaN for broken runs, skipped by the
 * means), and the runPairs engine front-end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "harness.h"

namespace dttsim::bench {
namespace {

Harness
makeHarness(std::vector<const char *> argv,
            HarnessSpec spec = {"test_bin", "harness under test"})
{
    argv.insert(argv.begin(), "test_bin");
    return Harness(static_cast<int>(argv.size()), argv.data(),
                   std::move(spec));
}

TEST(Harness, ParsesCommonAndWorkloadFlags)
{
    Harness h = makeHarness({"--jobs=3", "--seed=7", "--iters=4",
                             "--scale=2", "--update-rate=0.25",
                             "--workload=mcf"});
    EXPECT_EQ(h.jobs(), 3);
    workloads::WorkloadParams p = h.params();
    EXPECT_EQ(p.seed, 7u);
    EXPECT_EQ(p.iterations, 4);
    EXPECT_EQ(p.scale, 2);
    EXPECT_DOUBLE_EQ(p.updateRate, 0.25);
    ASSERT_EQ(h.workloads().size(), 1u);
    EXPECT_EQ(h.workloads()[0]->info().name, "mcf");
}

TEST(Harness, DefaultsToTheFullSuite)
{
    Harness h = makeHarness({});
    EXPECT_EQ(h.workloads().size(),
              workloads::allWorkloads().size());
    EXPECT_GT(h.jobs(), 0);  // 0 resolves to hardware concurrency
}

TEST(Harness, ExtraFlagsAreAccepted)
{
    Harness h = makeHarness(
        {"--top=5"},
        {"test_bin", "with extras", true,
         {{"top", "N", "extra flag"}}});
    EXPECT_EQ(h.options().getInt("top", 3), 5);
}

TEST(Harness, MachineConfigMatchesTable1)
{
    sim::SimConfig dtt = Harness::machineConfig(cpu::AccelKind::Dtt);
    sim::SimConfig base =
        Harness::machineConfig(cpu::AccelKind::None);
    EXPECT_EQ(dtt.accel, cpu::AccelKind::Dtt);
    EXPECT_EQ(base.accel, cpu::AccelKind::None);
    EXPECT_TRUE(dtt.validate().empty());
    EXPECT_TRUE(base.validate().empty());
    // The deprecated bool spelling forwards to the AccelKind one.
    EXPECT_EQ(Harness::machineConfig(true).accel,
              cpu::AccelKind::Dtt);
    EXPECT_EQ(Harness::machineConfig(false).accel,
              cpu::AccelKind::None);
}

TEST(Harness, AccelFlagSelectsTheAcceleratedMachine)
{
    EXPECT_EQ(makeHarness({}).accel(), cpu::AccelKind::Dtt);
    EXPECT_EQ(makeHarness({"--accel=sp"}).accel(),
              cpu::AccelKind::Sp);
    EXPECT_EQ(makeHarness({"--accel=reuse"}).accel(),
              cpu::AccelKind::Reuse);
    EXPECT_EQ(makeHarness({"--accel=none"}).accel(),
              cpu::AccelKind::None);
    // Deprecated shims map onto the new flag (and warn on stderr).
    EXPECT_EQ(makeHarness({"--no-dtt"}).accel(),
              cpu::AccelKind::None);
    EXPECT_EQ(makeHarness({"--dtt"}).accel(), cpu::AccelKind::Dtt);
    // An explicit --accel wins over a shim.
    EXPECT_EQ(makeHarness({"--no-dtt", "--accel=sp"}).accel(),
              cpu::AccelKind::Sp);
}

TEST(Harness, UnknownAccelValueExits2)
{
    EXPECT_EXIT(makeHarness({"--accel=gpu"}),
                testing::ExitedWithCode(2), "--accel=gpu");
}

TEST(Harness, MakeJobLabels)
{
    Harness h = makeHarness({"--iters=2"});
    const workloads::Workload &mcf = workloads::findWorkload("mcf");
    sim::SimJob dtt = h.makeJob(mcf, workloads::Variant::Dtt,
                                h.params(),
                                Harness::machineConfig(true));
    EXPECT_EQ(dtt.workload, "mcf");
    EXPECT_EQ(dtt.variant, "dtt");
    sim::SimJob swept = h.makeJob(mcf, workloads::Variant::Dtt,
                                  h.params(),
                                  Harness::machineConfig(true),
                                  "dtt tq=4");
    EXPECT_EQ(swept.variant, "dtt tq=4");
}

TEST(Harness, RunPairsProducesValidSpeedups)
{
    Harness h = makeHarness({"--workload=mcf", "--iters=2",
                             "--jobs=2"});
    std::vector<Pair> pairs = h.runPairs(h.workloads(), h.params());
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_TRUE(pairs[0].valid());
    EXPECT_TRUE(std::isfinite(pairs[0].speedup()));
    EXPECT_GT(pairs[0].speedup(), 0.0);
    EXPECT_EQ(h.finish(), 0);
}

TEST(Pair, InvalidRunsYieldNaNNotZeroDivision)
{
    Pair p;  // nothing ran: cycles are 0, halted is false
    EXPECT_FALSE(p.valid());
    EXPECT_TRUE(std::isnan(p.speedup()));

    Pair timed_out;
    timed_out.base.halted = true;
    timed_out.base.cycles = 100;
    timed_out.dtt.halted = true;
    timed_out.dtt.cycles = 50;
    timed_out.dtt.hitMaxCycles = true;
    EXPECT_FALSE(timed_out.valid());
    EXPECT_TRUE(std::isnan(timed_out.speedup()));

    timed_out.dtt.hitMaxCycles = false;
    EXPECT_TRUE(timed_out.valid());
    EXPECT_DOUBLE_EQ(timed_out.speedup(), 2.0);
}

TEST(Pair, MeansSkipInvalidEntries)
{
    std::vector<double> vals{2.0, std::nan(""), 8.0};
    EXPECT_DOUBLE_EQ(mean(vals), 5.0);
    EXPECT_DOUBLE_EQ(geomean(vals), 4.0);
    EXPECT_DOUBLE_EQ(mean({std::nan("")}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Pair, SpeedupCellRendersNaNAsNa)
{
    EXPECT_EQ(speedupCell(1.455), "1.46x");
    EXPECT_EQ(speedupCell(std::nan("")), "n/a");
}

TEST(HarnessResilience, FailedJobFlowsToNaAndNonzeroExit)
{
    // Regression for the crash-isolation contract end to end: one
    // broken job must not abort the batch, must render as n/a in
    // pair arithmetic, and must turn the exit code nonzero.
    Harness h = makeHarness({"--iters=2", "--jobs=2"});
    const workloads::Workload &mcf = workloads::findWorkload("mcf");
    sim::SimJob good = h.makeJob(mcf, workloads::Variant::Dtt,
                                 h.params(),
                                 Harness::machineConfig(true));
    sim::SimJob bad = h.makeJob(mcf, workloads::Variant::Baseline,
                                h.params(),
                                Harness::machineConfig(false));
    bad.config.maxCycles = 0;  // worker throws in SimConfig::validate

    std::vector<sim::JobResult> results = h.run({bad, good});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, sim::JobStatus::Error);
    EXPECT_EQ(results[1].status, sim::JobStatus::Ok);

    Pair p{results[0].result, results[1].result};
    EXPECT_FALSE(p.valid());
    EXPECT_TRUE(std::isnan(p.speedup()));
    EXPECT_EQ(speedupCell(p.speedup()), "n/a");
    EXPECT_EQ(h.finish(), 1);
}

TEST(HarnessResilience, CacheFlagsBuildTheStore)
{
    char tmpl[] = "/tmp/dttsim-harness-test-XXXXXX";
    const char *dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    std::string cacheFlag = std::string("--cache-dir=") + dir;

    {
        Harness off = makeHarness({"--iters=2"});
        EXPECT_EQ(off.store(), nullptr);  // caching is opt-in
    }
    {
        Harness ro = makeHarness({"--cache=ro", cacheFlag.c_str()});
        ASSERT_NE(ro.store(), nullptr);
        EXPECT_FALSE(ro.store()->writable());
        EXPECT_EQ(ro.store()->dir(), dir);
    }
    {
        Harness rw = makeHarness({"--cache=rw", cacheFlag.c_str(),
                                  "--workload=mcf", "--iters=2",
                                  "--jobs=2"});
        ASSERT_NE(rw.store(), nullptr);
        EXPECT_TRUE(rw.store()->writable());
        rw.runPairs(rw.workloads(), rw.params());
        EXPECT_EQ(rw.store()->records(), 2u);
        EXPECT_EQ(rw.finish(), 0);
    }
    {
        // --resume=DIR/MANIFEST is sugar for --cache=rw at DIR; with
        // every job already cached the engine executes nothing.
        std::string resumeFlag =
            std::string("--resume=") + dir + "/MANIFEST";
        Harness resumed = makeHarness({resumeFlag.c_str(),
                                       "--workload=mcf", "--iters=2",
                                       "--jobs=2"});
        ASSERT_NE(resumed.store(), nullptr);
        EXPECT_TRUE(resumed.store()->writable());
        EXPECT_EQ(resumed.store()->dir(), dir);
        EXPECT_EQ(resumed.store()->records(), 2u);
        resumed.runPairs(resumed.workloads(), resumed.params());
        EXPECT_EQ(resumed.engine().executed(), 0u);
        EXPECT_EQ(resumed.engine().cacheHits(), 2u);
        EXPECT_EQ(resumed.finish(), 0);
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace dttsim::bench
