/**
 * @file
 * Result-cache maintenance: compact a ResultStore directory's many
 * per-process `seg-*.jsonl` segments into one, age out cold records,
 * or drop the cache entirely. A long-lived cache accretes one
 * segment per writing process (each figure binary, each resume, each
 * fabric worker), and loading hundreds of small files is measurably
 * slower than one compacted segment.
 *
 *     cache_prune [--dir=PATH] [--clear] [--dry-run]
 *                 [--max-bytes=N] [--max-age=SECONDS] [--now=UNIX]
 *
 * Default mode compacts: every record reachable from the MANIFEST is
 * rewritten into a single fresh segment, the MANIFEST is republished
 * with one atomic rename, and the retired segment files are unlinked.
 * A crash at any point leaves a loadable store (the old MANIFEST and
 * segments stay intact until the publish succeeds).
 *
 * --max-age evicts records whose last use (creation or last cache
 * hit, whichever is newer) is older than SECONDS; --max-bytes then
 * evicts least-recently-used records until the survivors' serialized
 * size fits the budget. Either implies a compaction of the survivor
 * set. --now pins the reference clock for reproducible tests.
 *
 * --clear empties the store instead (atomic empty-MANIFEST publish,
 * then unlink). --dry-run reports what would happen and touches
 * nothing.
 *
 * Exit codes: 0 success, 1 maintenance failed, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/resultstore.h"

using namespace dttsim;

namespace {

constexpr const char *kDefaultCacheDir = "bench/out/cache";

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--dir=PATH] [--clear] [--dry-run]\n"
        "          [--max-bytes=N] [--max-age=SECONDS] [--now=UNIX]\n"
        "  --dir=PATH     cache directory (default %s)\n"
        "  --clear        drop every record instead of compacting\n"
        "  --dry-run      report, but modify nothing\n"
        "  --max-bytes=N  evict least-recently-used records until the\n"
        "                 survivors fit N serialized bytes\n"
        "  --max-age=S    evict records not used in the last S "
        "seconds\n"
        "  --now=UNIX     reference clock for --max-age (default: "
        "wall clock)\n",
        argv0, kDefaultCacheDir);
    return 2;
}

bool
parseU64Flag(const char *arg, const char *name, std::uint64_t *out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    *out = std::strtoull(arg + n, nullptr, 10);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = kDefaultCacheDir;
    bool clear = false;
    bool dryRun = false;
    std::uint64_t maxBytes = 0;
    std::uint64_t maxAge = 0;
    std::uint64_t now = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--dir=", 6) == 0) {
            dir = arg + 6;
        } else if (std::strcmp(arg, "--clear") == 0) {
            clear = true;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            dryRun = true;
        } else if (parseU64Flag(arg, "--max-bytes=", &maxBytes)
                   || parseU64Flag(arg, "--max-age=", &maxAge)
                   || parseU64Flag(arg, "--now=", &now)) {
            continue;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }
    const bool aging = maxBytes != 0 || maxAge != 0;
    if (clear && aging) {
        std::fprintf(stderr,
                     "%s: --clear conflicts with --max-bytes/"
                     "--max-age\n", argv[0]);
        return usage(argv[0]);
    }

    sim::ResultStore store(dir, sim::ResultStore::Mode::ReadWrite);
    std::printf("%s: %zu records (%llu bytes) in %zu segment(s)",
                dir.c_str(), store.records(),
                static_cast<unsigned long long>(store.recordBytes()),
                store.segmentCount());
    if (store.corruptRecords() > 0)
        std::printf(" (%zu corrupt records skipped)",
                    store.corruptRecords());
    std::printf("\n");

    if (dryRun) {
        if (clear)
            std::printf("dry run: would clear the store\n");
        else if (aging)
            std::printf("dry run: would evict by%s%s, then compact "
                        "the survivors\n",
                        maxAge ? " age" : "",
                        maxBytes ? " size budget" : "");
        else
            std::printf("dry run: would compact into one segment\n");
        return 0;
    }

    if (clear) {
        if (!store.clear()) {
            std::fprintf(stderr, "%s: clear failed\n", dir.c_str());
            return 1;
        }
        std::printf("cleared: 0 records, 0 segments\n");
        return 0;
    }

    if (aging) {
        std::optional<sim::ResultStore::PruneStats> stats =
            store.prune(maxBytes, maxAge, now);
        if (!stats) {
            std::fprintf(stderr, "%s: prune failed\n", dir.c_str());
            return 1;
        }
        std::printf("pruned: evicted %zu record(s) (%llu bytes), "
                    "kept %zu (%llu bytes)\n",
                    stats->evicted,
                    static_cast<unsigned long long>(
                        stats->evictedBytes),
                    stats->kept,
                    static_cast<unsigned long long>(
                        stats->keptBytes));
        return 0;
    }

    std::optional<std::size_t> n = store.compact();
    if (!n) {
        std::fprintf(stderr, "%s: compact failed\n", dir.c_str());
        return 1;
    }
    std::printf("compacted: %zu records in 1 segment\n", *n);
    return 0;
}
