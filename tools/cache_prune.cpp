/**
 * @file
 * Result-cache maintenance: compact a ResultStore directory's many
 * per-process `seg-*.jsonl` segments into one, or drop the cache
 * entirely. A long-lived cache accretes one segment per writing
 * process (each figure binary, each resume), and loading hundreds of
 * small files is measurably slower than one compacted segment; the
 * record set itself is unchanged.
 *
 *     cache_prune [--dir=PATH] [--clear] [--dry-run]
 *
 * Default mode compacts: every record reachable from the MANIFEST is
 * rewritten into a single fresh segment, the MANIFEST is republished
 * with one atomic rename, and the retired segment files are unlinked.
 * A crash at any point leaves a loadable store (the old MANIFEST and
 * segments stay intact until the publish succeeds).
 *
 * --clear empties the store instead (atomic empty-MANIFEST publish,
 * then unlink). --dry-run reports what would happen and touches
 * nothing.
 *
 * Exit codes: 0 success, 1 maintenance failed, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/resultstore.h"

using namespace dttsim;

namespace {

constexpr const char *kDefaultCacheDir = "bench/out/cache";

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--dir=PATH] [--clear] [--dry-run]\n"
                 "  --dir=PATH  cache directory (default %s)\n"
                 "  --clear     drop every record instead of "
                 "compacting\n"
                 "  --dry-run   report, but modify nothing\n",
                 argv0, kDefaultCacheDir);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = kDefaultCacheDir;
    bool clear = false;
    bool dryRun = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--dir=", 6) == 0) {
            dir = arg + 6;
        } else if (std::strcmp(arg, "--clear") == 0) {
            clear = true;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            dryRun = true;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }

    sim::ResultStore store(dir, sim::ResultStore::Mode::ReadWrite);
    std::printf("%s: %zu records in %zu segment(s)",
                dir.c_str(), store.records(), store.segmentCount());
    if (store.corruptRecords() > 0)
        std::printf(" (%zu corrupt records skipped)",
                    store.corruptRecords());
    std::printf("\n");

    if (dryRun) {
        std::printf("dry run: would %s\n",
                    clear ? "clear the store"
                          : "compact into one segment");
        return 0;
    }

    if (clear) {
        if (!store.clear()) {
            std::fprintf(stderr, "%s: clear failed\n", dir.c_str());
            return 1;
        }
        std::printf("cleared: 0 records, 0 segments\n");
        return 0;
    }

    std::optional<std::size_t> n = store.compact();
    if (!n) {
        std::fprintf(stderr, "%s: compact failed\n", dir.c_str());
        return 1;
    }
    std::printf("compacted: %zu records in 1 segment\n", *n);
    return 0;
}
