/**
 * @file
 * dttworkerd — the sweep-fabric worker daemon. Listens on a TCP
 * port, handshakes the line-delimited JSON protocol, and executes
 * incoming simulation jobs through the supervised sim::Engine,
 * streaming result records back as they finish. A harness pointed at
 * one or more daemons with --workers host:port[,host:port...] farms
 * unique jobs out to them and degrades to local execution when a
 * daemon dies mid-sweep.
 *
 *     dttworkerd [--port=N] [--bind=ADDR] [--jobs=N] [--queue=N]
 *                [--cache=DIR] [--name=STR]
 *                [--drain-deadline=SECONDS] [--fabric-faults=SPEC]
 *
 * --port=0 (the default) binds an ephemeral port; the daemon always
 * prints "dttworkerd: listening on PORT" to stdout (flushed) so a
 * launcher script can read the port back. --cache attaches a local
 * ResultStore so repeated digests warm-start on the daemon side too.
 *
 * SIGINT/SIGTERM stop the accept loop, drain in-flight connections,
 * and exit 0. The drain is bounded: decoded-but-unstarted jobs get
 * --drain-deadline seconds (default 10) to finish streaming before
 * they are abandoned (the client re-executes them); jobs already
 * executing always run to completion.
 *
 * --fabric-faults arms the deterministic chaos plan
 * (sim/fabricfault.h) inside this daemon — reply-delay stragglers,
 * torn cache appends, and the rest of the injection matrix — for
 * the chaos-smoke suite. Never use it on a production cache.
 *
 * Exit codes: 0 clean shutdown, 1 bind failure, 2 usage.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/server.h"
#include "sim/fabricfault.h"
#include "sim/resultstore.h"

using namespace dttsim;

namespace {

net::WorkerServer *gServer = nullptr;

void
onSignal(int)
{
    // stop() only flips an atomic and closes the listen socket —
    // both async-signal-tolerable here; the accept loop returns and
    // main() joins the connection threads.
    if (gServer != nullptr)
        gServer->stop();
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port=N] [--bind=ADDR] [--jobs=N] [--queue=N]\n"
        "          [--cache=DIR] [--name=STR]\n"
        "          [--drain-deadline=SECONDS] [--fabric-faults=SPEC]\n"
        "  --port=N    listen port; 0 picks an ephemeral port "
        "(default 0)\n"
        "  --bind=A    bind address (default 127.0.0.1)\n"
        "  --jobs=N    concurrent executions per connection "
        "(default 1)\n"
        "  --queue=N   decoded-job backpressure bound (default 32)\n"
        "  --cache=DIR attach a daemon-side result cache\n"
        "  --name=STR  self-reported name in the handshake\n"
        "  --drain-deadline=S  seconds to finish decoded jobs on\n"
        "              shutdown before abandoning them (default 10;\n"
        "              0 abandons the queue immediately)\n"
        "  --fabric-faults=SEED:site=rate,...  arm deterministic\n"
        "              fault injection (chaos testing only)\n",
        argv0);
    return 2;
}

bool
parseIntFlag(const char *arg, const char *name, int *out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    *out = std::atoi(arg + n);
    return true;
}

bool
parseDoubleFlag(const char *arg, const char *name, double *out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    *out = std::atof(arg + n);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    net::ServerConfig config;
    std::string cacheDir;
    std::string faultSpec;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (parseIntFlag(arg, "--port=", &config.port)
            || parseIntFlag(arg, "--jobs=", &config.jobs)
            || parseIntFlag(arg, "--queue=", &config.maxQueue)
            || parseDoubleFlag(arg, "--drain-deadline=",
                               &config.drainDeadlineSeconds)) {
            continue;
        } else if (std::strncmp(arg, "--bind=", 7) == 0) {
            config.bindHost = arg + 7;
        } else if (std::strncmp(arg, "--cache=", 8) == 0) {
            cacheDir = arg + 8;
        } else if (std::strncmp(arg, "--name=", 7) == 0) {
            config.name = arg + 7;
        } else if (std::strncmp(arg, "--fabric-faults=", 16) == 0) {
            faultSpec = arg + 16;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }
    if (config.port < 0 || config.port > 65535) {
        std::fprintf(stderr, "%s: --port out of range (0..65535)\n",
                     argv[0]);
        return usage(argv[0]);
    }
    if (config.drainDeadlineSeconds < 0) {
        std::fprintf(stderr, "%s: --drain-deadline must be >= 0\n",
                     argv[0]);
        return usage(argv[0]);
    }
    if (!faultSpec.empty()) {
        std::string ferr;
        std::optional<fabric::FaultConfig> fc =
            fabric::parseFaultSpec(faultSpec, &ferr);
        if (!fc) {
            std::fprintf(stderr, "%s: --fabric-faults: %s\n", argv[0],
                         ferr.c_str());
            return usage(argv[0]);
        }
        fabric::installFaultPlan(*fc);
        std::fprintf(stderr,
                     "dttworkerd: fabric fault injection armed: %s\n",
                     fabric::formatFaultSpec(*fc).c_str());
    }

    std::unique_ptr<sim::ResultStore> store;
    if (!cacheDir.empty()) {
        store = std::make_unique<sim::ResultStore>(
            cacheDir, sim::ResultStore::Mode::ReadWrite);
        if (!store->writable())
            std::fprintf(stderr,
                         "dttworkerd: cache '%s' not writable; "
                         "running without daemon-side cache\n",
                         cacheDir.c_str());
        else
            config.store = store.get();
    }

    net::WorkerServer server(config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "dttworkerd: %s\n", error.c_str());
        return 1;
    }
    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Launchers (scripts/fabric_smoke.sh, tests) parse this line to
    // learn the ephemeral port — keep the format stable.
    std::printf("dttworkerd: listening on %d\n", server.port());
    std::fflush(stdout);

    server.serveForever();
    server.stop();
    std::fprintf(stderr, "dttworkerd: %llu job(s) executed; bye\n",
                 static_cast<unsigned long long>(
                     server.jobsExecuted()));
    return 0;
}
