/**
 * @file
 * dttworkerd — the sweep-fabric worker daemon. Listens on a TCP
 * port, handshakes the line-delimited JSON protocol, and executes
 * incoming simulation jobs through the supervised sim::Engine,
 * streaming result records back as they finish. A harness pointed at
 * one or more daemons with --workers host:port[,host:port...] farms
 * unique jobs out to them and degrades to local execution when a
 * daemon dies mid-sweep.
 *
 *     dttworkerd [--port=N] [--bind=ADDR] [--jobs=N] [--queue=N]
 *                [--cache=DIR] [--name=STR]
 *
 * --port=0 (the default) binds an ephemeral port; the daemon always
 * prints "dttworkerd: listening on PORT" to stdout (flushed) so a
 * launcher script can read the port back. --cache attaches a local
 * ResultStore so repeated digests warm-start on the daemon side too.
 *
 * SIGINT/SIGTERM stop the accept loop, drain in-flight connections,
 * and exit 0. Exit codes: 0 clean shutdown, 1 bind failure, 2 usage.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/server.h"
#include "sim/resultstore.h"

using namespace dttsim;

namespace {

net::WorkerServer *gServer = nullptr;

void
onSignal(int)
{
    // stop() only flips an atomic and closes the listen socket —
    // both async-signal-tolerable here; the accept loop returns and
    // main() joins the connection threads.
    if (gServer != nullptr)
        gServer->stop();
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port=N] [--bind=ADDR] [--jobs=N] [--queue=N]\n"
        "          [--cache=DIR] [--name=STR]\n"
        "  --port=N    listen port; 0 picks an ephemeral port "
        "(default 0)\n"
        "  --bind=A    bind address (default 127.0.0.1)\n"
        "  --jobs=N    concurrent executions per connection "
        "(default 1)\n"
        "  --queue=N   decoded-job backpressure bound (default 32)\n"
        "  --cache=DIR attach a daemon-side result cache\n"
        "  --name=STR  self-reported name in the handshake\n",
        argv0);
    return 2;
}

bool
parseIntFlag(const char *arg, const char *name, int *out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    *out = std::atoi(arg + n);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    net::ServerConfig config;
    std::string cacheDir;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (parseIntFlag(arg, "--port=", &config.port)
            || parseIntFlag(arg, "--jobs=", &config.jobs)
            || parseIntFlag(arg, "--queue=", &config.maxQueue)) {
            continue;
        } else if (std::strncmp(arg, "--bind=", 7) == 0) {
            config.bindHost = arg + 7;
        } else if (std::strncmp(arg, "--cache=", 8) == 0) {
            cacheDir = arg + 8;
        } else if (std::strncmp(arg, "--name=", 7) == 0) {
            config.name = arg + 7;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }
    if (config.port < 0 || config.port > 65535) {
        std::fprintf(stderr, "%s: --port out of range (0..65535)\n",
                     argv[0]);
        return usage(argv[0]);
    }

    std::unique_ptr<sim::ResultStore> store;
    if (!cacheDir.empty()) {
        store = std::make_unique<sim::ResultStore>(
            cacheDir, sim::ResultStore::Mode::ReadWrite);
        if (!store->writable())
            std::fprintf(stderr,
                         "dttworkerd: cache '%s' not writable; "
                         "running without daemon-side cache\n",
                         cacheDir.c_str());
        else
            config.store = store.get();
    }

    net::WorkerServer server(config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "dttworkerd: %s\n", error.c_str());
        return 1;
    }
    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Launchers (scripts/fabric_smoke.sh, tests) parse this line to
    // learn the ephemeral port — keep the format stable.
    std::printf("dttworkerd: listening on %d\n", server.port());
    std::fflush(stdout);

    server.serveForever();
    server.stop();
    std::fprintf(stderr, "dttworkerd: %llu job(s) executed; bye\n",
                 static_cast<unsigned long long>(
                     server.jobsExecuted()));
    return 0;
}
