/**
 * @file
 * Result-cache integrity scrub: walk every MANIFEST-registered
 * segment of a ResultStore directory, parse + decode + crc-check
 * every line, quarantine the damaged ones, and republish a clean
 * MANIFEST. The repair counterpart to the load-time skip path: a
 * sweep degrades around a corrupt record, cache_fsck removes it so
 * the directory stops warning forever.
 *
 *     cache_fsck [--dir=PATH] [--dry-run]
 *
 * Findings (any of):
 *
 *  - torn append: an unterminated tail line (a writer died between
 *    fwrite and fsync);
 *  - undecodable record: unparsable JSON or a missing/mistyped field;
 *  - crc mismatch: a well-formed record whose stored checksum does
 *    not match its payload (silent bit-rot — schema v4 records only;
 *    legacy records without a "crc" are accepted as-is);
 *  - missing segment: a MANIFEST entry whose file is gone.
 *
 * Repairs (skipped under --dry-run): each bad line is appended
 * verbatim to quarantine/<segment> for forensics, the segment is
 * rewritten atomically with only its good lines, and the MANIFEST is
 * republished without missing segments. Runs under the directory
 * publish lock — run it while no process is writing the directory
 * (like cache_prune).
 *
 * Exit codes: 0 clean, 1 findings (repaired unless --dry-run) or
 * repair failure, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/resultstore.h"

using namespace dttsim;

namespace {

constexpr const char *kDefaultCacheDir = "bench/out/cache";

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--dir=PATH] [--dry-run]\n"
        "  --dir=PATH  cache directory (default %s)\n"
        "  --dry-run   report findings, but quarantine and rewrite\n"
        "              nothing\n",
        argv0, kDefaultCacheDir);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = kDefaultCacheDir;
    bool dryRun = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--dir=", 6) == 0) {
            dir = arg + 6;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            dryRun = true;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }

    std::string error;
    std::optional<sim::ResultStore::FsckReport> report =
        sim::ResultStore::fsck(dir, dryRun, &error);
    if (!report) {
        std::fprintf(stderr, "%s: fsck failed: %s\n", dir.c_str(),
                     error.c_str());
        return 1;
    }

    std::printf("%s: scanned %zu segment(s), %zu good record(s)\n",
                dir.c_str(), report->segmentsScanned,
                report->recordsKept);
    if (report->clean()) {
        std::printf("clean: no findings\n");
        return 0;
    }
    std::printf("%s %zu bad record(s) (%zu crc mismatch(es)), "
                "%zu missing segment(s)",
                dryRun ? "found" : "quarantined", report->badRecords,
                report->crcMismatches, report->missingSegments);
    if (!dryRun)
        std::printf("; rewrote %zu segment(s)",
                    report->segmentsRewritten);
    std::printf("\n");
    return 1;
}
