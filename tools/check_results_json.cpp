/**
 * @file
 * Validator for the bench harness's --json structured-results files
 * (schema v4, documented in docs/HARNESS.md; archived v2/v3
 * documents — which predate the per-record "accel" and "crc" fields
 * respectively — are still accepted). Checks the document shape,
 * field types, digest format, per-record accelerator name (v3+),
 * per-record integrity checksum (v4: "crc" must be present and match
 * sim::recordCrc recomputed over the decoded payload), per-job
 * status/attempts consistency
 * (unknown status names are rejected; attempts >= 1; a status=ok
 * record must be a clean halt) and cross-record consistency
 * (identical digests must carry identical results and status — the
 * dedup invariant), then re-parses every result record
 * through sim::resultFromJson — the strict path, which fatal()s on
 * malformed records where the cache loader would skip-and-warn — to
 * prove the file round-trips.
 *
 *     check_results_json FILE...
 *
 * Exit codes: 0 every file valid, 1 validation failure, 2 usage or
 * I/O error.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/log.h"
#include "cpu/accelerator.h"
#include "sim/engine.h"

using namespace dttsim;

namespace {

int errorCount = 0;

void
complain(const std::string &file, const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
    ++errorCount;
}

/** First sighting of a config digest, for conflict reporting. */
struct DigestSeen
{
    std::size_t index;
    std::string status;
    std::string result;
};

bool
isHexDigest(const std::string &s)
{
    if (s.size() != 16)
        return false;
    for (char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

void
checkRecord(const std::string &file, std::size_t idx,
            std::uint64_t version, const json::Value &rec,
            std::map<std::string, DigestSeen> &byDigest)
{
    const std::string where = "record " + std::to_string(idx);
    if (!rec.isObject()) {
        complain(file, where + ": not an object");
        return;
    }
    if (rec.get("workload").asString().empty())
        complain(file, where + ": empty workload name");
    if (rec.get("variant").asString().empty())
        complain(file, where + ": empty variant label");

    // Schema v3: every record names its machine's accelerator. v2
    // predates the field — absent is fine there, present is not.
    const json::Value *accel = rec.find("accel");
    if (version >= 3) {
        if (accel == nullptr
            || !cpu::accelKindFromName(accel->asString()))
            complain(file, where + ": 'accel' must be one of "
                     "none/dtt/sp/reuse in schema v3");
    } else if (accel != nullptr) {
        complain(file, where + ": 'accel' is a schema v3 field; this "
                 "document declares v" + std::to_string(version));
    }

    // Optional v3 provenance (harness --provenance): which fabric
    // worker executed the job. Must be a non-empty string when
    // present, and v2 documents predate the field entirely.
    const json::Value *worker = rec.find("worker");
    if (worker != nullptr) {
        if (version < 3)
            complain(file, where + ": 'worker' is a schema v3 field; "
                     "this document declares v"
                     + std::to_string(version));
        else if (!worker->isString() || worker->asString().empty())
            complain(file, where + ": 'worker' must be a non-empty "
                     "string naming the executing worker");
    }

    const std::string digest = rec.get("config_digest").asString();
    if (!isHexDigest(digest))
        complain(file, where + ": config_digest '" + digest
                 + "' is not 16 lowercase hex digits");

    rec.get("deduplicated").asBool();

    // Schema v2: per-job supervision outcome.
    const std::string statusName = rec.get("status").asString();
    std::optional<sim::JobStatus> status =
        sim::jobStatusFromName(statusName);
    if (!status)
        complain(file, where + ": unknown status '" + statusName
                 + "' (expected ok/failed/error/timeout)");
    const json::Value &attempts = rec.get("attempts");
    if (!attempts.isUint() || attempts.asUint() < 1)
        complain(file, where + ": attempts must be an integer >= 1");

    const json::Value *error = rec.find("error");
    bool failedHost = status
        && (*status == sim::JobStatus::Error
            || *status == sim::JobStatus::Timeout);
    if (failedHost) {
        if (error == nullptr || !error->isObject())
            complain(file, where + ": status '" + statusName
                     + "' requires an 'error' object");
        else if (error->get("kind").asString().empty()
                 || error->get("message").asString().empty())
            complain(file, where + ": 'error' needs non-empty kind "
                     "and message");
    } else if (error != nullptr) {
        complain(file, where + ": 'error' is only valid for status "
                 "error/timeout");
    }

    // Round-trip the result payload; fatal() here means a missing or
    // mistyped field.
    sim::SimResult r = sim::resultFromJson(rec.get("result"));
    if (status && *status == sim::JobStatus::Ok
        && (!r.halted || r.hitMaxCycles))
        complain(file, where + ": status 'ok' but the result is not "
                 "a clean halt");
    if (status && *status != sim::JobStatus::Ok && r.halted)
        complain(file, where + ": status '" + statusName
                 + "' contradicts a cleanly halted result");
    if (r.totalCommitted != r.mainCommitted + r.dttCommitted)
        complain(file, where + ": totalCommitted != mainCommitted + "
                 "dttCommitted");
    if (r.halted && r.cycles == 0)
        complain(file, where + ": halted run reports zero cycles");
    if (r.halted && r.hitMaxCycles)
        complain(file, where + ": both halted and hitMaxCycles set");
    // haltReason must agree with the legacy booleans: Halted <=>
    // halted, CycleLimit <=> hitMaxCycles, Deadlock/Diverged neither.
    // (resultFromJson already rejected unknown reason names.)
    if ((r.haltReason == HaltReason::Halted) != r.halted)
        complain(file, where + ": haltReason disagrees with the "
                 "halted flag");
    if ((r.haltReason == HaltReason::CycleLimit) != r.hitMaxCycles)
        complain(file, where + ": haltReason disagrees with the "
                 "hitMaxCycles flag");
    if (!std::isfinite(r.ipc) || r.ipc < 0)
        complain(file, where + ": ipc is not a finite non-negative "
                 "number");

    // Schema v4: every record carries an end-to-end checksum that
    // must match a recompute over the decoded payload — the same
    // recordCrc the engine stamped, so any corruption between emit
    // and validation surfaces here.
    const json::Value *crc = rec.find("crc");
    if (version >= 4) {
        if (crc == nullptr || !crc->isUint()) {
            complain(file, where + ": 'crc' missing or not an "
                     "unsigned integer (required in schema v4)");
        } else if (status && attempts.isUint()) {
            const std::uint64_t computed = sim::recordCrc(
                digest, *status,
                static_cast<int>(attempts.asUint()), r);
            if (crc->asUint() != computed)
                complain(file, where + ": crc mismatch (stored "
                         + strfmt("%016llx",
                                  static_cast<unsigned long long>(
                                      crc->asUint()))
                         + ", computed "
                         + strfmt("%016llx",
                                  static_cast<unsigned long long>(
                                      computed))
                         + ") — the record was corrupted after it "
                         "was stamped");
        }
    } else if (crc != nullptr) {
        complain(file, where + ": 'crc' is a schema v4 field; this "
                 "document declares v" + std::to_string(version));
    }

    // The dedup invariant: one digest, one result (and one status).
    // A violation means two executions of the "same" job diverged —
    // a merged distributed sweep would silently pick one of them, so
    // name both records and which half disagrees.
    std::string canonStatus = statusName;
    std::string canonResult = sim::resultToJson(r).dump();
    auto [it, inserted] = byDigest.emplace(
        digest, DigestSeen{idx, canonStatus, canonResult});
    if (!inserted) {
        const DigestSeen &first = it->second;
        if (first.status != canonStatus)
            complain(file, where + ": digest " + digest
                     + " already appeared at record "
                     + std::to_string(first.index)
                     + " with status '" + first.status
                     + "', but this record says '" + canonStatus
                     + "' — conflicting payloads for one digest");
        else if (first.result != canonResult)
            complain(file, where + ": digest " + digest
                     + " already appeared at record "
                     + std::to_string(first.index)
                     + " with a different simulation result — "
                     "conflicting payloads for one digest");
    }
}

void
checkFile(const std::string &file)
{
    std::ifstream in(file);
    if (!in) {
        complain(file, "cannot open");
        return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    json::Value doc = json::Value::parse(ss.str());
    if (!doc.isObject()) {
        complain(file, "top-level value is not an object");
        return;
    }
    std::uint64_t version = doc.get("schema_version").asUint();
    if (version != 2 && version != 3
        && version != static_cast<std::uint64_t>(
               sim::kResultsSchemaVersion)) {
        complain(file, "schema_version " + std::to_string(version)
                 + " is neither the current version "
                 + std::to_string(sim::kResultsSchemaVersion)
                 + " nor an archived version (2, 3)");
        return;
    }
    if (doc.get("binary").asString().empty())
        complain(file, "empty binary name");
    if (doc.get("jobs").asUint() < 1)
        complain(file, "jobs must be >= 1");

    const json::Value &records = doc.get("records");
    if (!records.isArray()) {
        complain(file, "'records' is not an array");
        return;
    }
    std::map<std::string, DigestSeen> byDigest;
    for (std::size_t i = 0; i < records.size(); ++i)
        checkRecord(file, i, version, records.at(i), byDigest);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: check_results_json FILE...\n"
                     "validates --json results files against results "
                     "schema v%d (docs/HARNESS.md)\n",
                     sim::kResultsSchemaVersion);
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        try {
            checkFile(argv[i]);
        } catch (const FatalError &e) {
            complain(argv[i], e.what());
        }
    }
    if (errorCount > 0) {
        std::fprintf(stderr, "check_results_json: %d error%s\n",
                     errorCount, errorCount == 1 ? "" : "s");
        return 1;
    }
    std::printf("check_results_json: %d file%s valid\n", argc - 1,
                argc == 2 ? "" : "s");
    return 0;
}
