/**
 * @file
 * Validator for the BENCH_sim.json performance summaries emitted by
 * `micro_sim_throughput --bench-json=PATH` (schema v1, documented in
 * docs/PERFORMANCE.md). Checks the document shape, that every record
 * carries a known benchmark name with the right metric family, that
 * rates/times are finite and positive, that (name, threads) pairs are
 * unique, and that the summary is complete: the three simulator
 * throughput rows (functional, ooo_baseline, ooo_dtt) plus at least
 * one cold-cache and one warm-cache engine row.
 *
 *     check_bench_json FILE...
 *
 * Exit codes: 0 every file valid, 1 validation failure, 2 usage or
 * I/O error.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/log.h"

using namespace dttsim;

namespace {

/** Keep in sync with the emitter in bench/micro_sim_throughput.cpp
 *  and the schema description in docs/PERFORMANCE.md. */
constexpr std::uint64_t kBenchSchemaVersion = 1;

int errorCount = 0;

void
complain(const std::string &file, const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
    ++errorCount;
}

/** Expected metric for each benchmark name; empty = unknown name. */
std::string
metricFor(const std::string &name)
{
    if (name == "functional" || name == "ooo_baseline"
        || name == "ooo_dtt" || name == "ooo_shadow")
        return "inst_per_sec";
    if (name == "engine_cold" || name == "engine_warm")
        return "jobs_per_sec";
    return "";
}

void
checkRecord(const std::string &file, std::size_t idx,
            const json::Value &rec,
            std::set<std::string> &seenKeys,
            std::set<std::string> &seenNames)
{
    const std::string where = "benchmark " + std::to_string(idx);
    if (!rec.isObject()) {
        complain(file, where + ": not an object");
        return;
    }

    const std::string name = rec.get("name").asString();
    const std::string expectMetric = metricFor(name);
    if (expectMetric.empty()) {
        complain(file, where + ": unknown benchmark name '" + name
                 + "' (expected functional/ooo_baseline/ooo_dtt/"
                 "ooo_shadow/engine_cold/engine_warm)");
        return;
    }
    seenNames.insert(name);

    const std::string metric = rec.get("metric").asString();
    if (metric != expectMetric)
        complain(file, where + ": metric '" + metric + "' but '"
                 + name + "' reports " + expectMetric);

    const double value = rec.get("value").asDouble();
    if (!std::isfinite(value) || value <= 0.0)
        complain(file, where + ": value must be a finite positive "
                 "rate");
    const double seconds = rec.get("seconds").asDouble();
    if (!std::isfinite(seconds) || seconds <= 0.0)
        complain(file, where + ": seconds must be finite and "
                 "positive");
    const json::Value &iters = rec.get("iterations");
    if (!iters.isUint() || iters.asUint() < 1)
        complain(file, where + ": iterations must be an integer "
                 ">= 1");

    // Engine rows are parameterized by worker count; simulator
    // throughput rows are single-threaded by construction.
    const json::Value *threads = rec.find("threads");
    std::string key = name;
    if (expectMetric == "jobs_per_sec") {
        if (threads == nullptr || !threads->isUint()
            || threads->asUint() < 1)
            complain(file, where + ": '" + name + "' requires an "
                     "integer 'threads' >= 1");
        else
            key += "/" + std::to_string(threads->asUint());
    } else if (threads != nullptr) {
        complain(file, where + ": 'threads' is only valid on engine "
                 "benchmarks");
    }

    if (!seenKeys.insert(key).second)
        complain(file, where + ": duplicate benchmark '" + key + "'");
}

void
checkFile(const std::string &file)
{
    std::ifstream in(file);
    if (!in) {
        complain(file, "cannot open");
        return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    json::Value doc = json::Value::parse(ss.str());
    if (!doc.isObject()) {
        complain(file, "top-level value is not an object");
        return;
    }
    std::uint64_t version = doc.get("schema_version").asUint();
    if (version != kBenchSchemaVersion) {
        complain(file, "schema_version " + std::to_string(version)
                 + " != supported version "
                 + std::to_string(kBenchSchemaVersion));
        return;
    }
    if (doc.get("binary").asString().empty())
        complain(file, "empty binary name");

    const json::Value &benchmarks = doc.get("benchmarks");
    if (!benchmarks.isArray() || benchmarks.size() == 0) {
        complain(file, "'benchmarks' is not a non-empty array");
        return;
    }
    std::set<std::string> seenKeys;
    std::set<std::string> seenNames;
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        checkRecord(file, i, benchmarks.at(i), seenKeys, seenNames);

    // Completeness: a summary missing a row (a filtered benchmark
    // run, a renamed benchmark) must not pass as a perf record.
    for (const char *required :
         {"functional", "ooo_baseline", "ooo_dtt", "ooo_shadow",
          "engine_cold", "engine_warm"})
        if (seenNames.count(required) == 0)
            complain(file, std::string("missing required benchmark '")
                     + required + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: check_bench_json FILE...\n"
                     "validates --bench-json summaries against bench "
                     "schema v%llu (docs/PERFORMANCE.md)\n",
                     static_cast<unsigned long long>(
                         kBenchSchemaVersion));
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        try {
            checkFile(argv[i]);
        } catch (const FatalError &e) {
            complain(argv[i], e.what());
        }
    }
    if (errorCount > 0) {
        std::fprintf(stderr, "check_bench_json: %d error%s\n",
                     errorCount, errorCount == 1 ? "" : "s");
        return 1;
    }
    std::printf("check_bench_json: %d file%s valid\n", argc - 1,
                argc == 2 ? "" : "s");
    return 0;
}
