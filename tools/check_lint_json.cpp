/**
 * @file
 * Validator for dttlint's --json findings documents (lint schema v1,
 * documented in docs/ANALYSIS.md). Checks the document shape, that
 * every diagnostic carries a catalogue code/name/severity triple that
 * matches the built-in catalogue, that per-program shadow profiles
 * are internally consistent (redundant <= executions, site kinds
 * well-formed, totals >= per-site sums of elided maps), that
 * agreement reports balance (agree + static_only == static_sites,
 * precision/recall in [0,1] and consistent with the counters), and
 * that the document totals equal the per-program severity counts.
 *
 *     check_lint_json FILE...
 *
 * Exit codes: 0 every file valid, 1 validation failure, 2 usage or
 * I/O error.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "analysis/diagnostic.h"
#include "analysis/shadow.h"
#include "common/json.h"
#include "common/log.h"

using namespace dttsim;

namespace {

/** Keep in sync with the emitter in tools/dttlint.cpp. */
constexpr std::uint64_t kLintSchemaVersion = 1;

int errorCount = 0;

void
complain(const std::string &file, const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
    ++errorCount;
}

/** code -> (name, severity) from the built-in catalogue. */
const std::map<std::string, std::pair<std::string, std::string>> &
catalogue()
{
    static const auto table = [] {
        std::map<std::string, std::pair<std::string, std::string>> t;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(analysis::DiagId::NumDiagIds);
             ++i) {
            const analysis::DiagInfo &info =
                analysis::diagInfo(static_cast<analysis::DiagId>(i));
            t[info.code] = {info.name,
                            analysis::severityName(info.severity)};
        }
        return t;
    }();
    return table;
}

void
checkDiagnostic(const std::string &file, const std::string &where,
                const json::Value &d,
                std::map<std::string, std::uint64_t> &severities)
{
    if (!d.isObject()) {
        complain(file, where + ": not an object");
        return;
    }
    const std::string code = d.get("code").asString();
    auto it = catalogue().find(code);
    if (it == catalogue().end()) {
        complain(file, where + ": unknown catalogue code '" + code
                 + "'");
        return;
    }
    if (d.get("name").asString() != it->second.first)
        complain(file, where + ": name '" + d.get("name").asString()
                 + "' does not match catalogue entry " + code + " ("
                 + it->second.first + ")");
    const std::string sev = d.get("severity").asString();
    if (sev != it->second.second)
        complain(file, where + ": severity '" + sev + "' does not "
                 "match catalogue default for " + code + " ("
                 + it->second.second + ")");
    else
        ++severities[sev];
    if (d.get("message").asString().empty())
        complain(file, where + ": empty message");
    const json::Value *pc = d.find("pc");
    if (pc != nullptr && !pc->isUint())
        complain(file, where + ": 'pc', when present, must be an "
                 "unsigned integer");
}

void
checkShadow(const std::string &file, const std::string &where,
            const json::Value &s)
{
    if (!s.isObject()) {
        complain(file, where + ": not an object");
        return;
    }
    const std::uint64_t loads = s.get("loads").asUint();
    const std::uint64_t redundant = s.get("redundant_loads").asUint();
    const std::uint64_t stores = s.get("stores").asUint();
    const std::uint64_t silent = s.get("silent_stores").asUint();
    const std::uint64_t insts = s.get("instructions").asUint();
    s.get("dead_store_bytes").asUint();
    s.get("dead_at_exit_bytes").asUint();
    if (redundant > loads)
        complain(file, where + ": redundant_loads > loads");
    if (silent > stores)
        complain(file, where + ": silent_stores > stores");
    if (loads + stores > insts)
        complain(file, where + ": loads + stores > instructions");

    const json::Value &sites = s.get("sites");
    if (!sites.isArray()) {
        complain(file, where + ": 'sites' is not an array");
        return;
    }
    std::uint64_t lastPc = 0;
    bool first = true;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const std::string sw =
            where + " site " + std::to_string(i);
        const json::Value &site = sites.at(i);
        if (!site.isObject()) {
            complain(file, sw + ": not an object");
            continue;
        }
        const std::uint64_t pc = site.get("pc").asUint();
        if (!first && pc <= lastPc)
            complain(file, sw + ": sites must be strictly "
                     "PC-ordered");
        first = false;
        lastPc = pc;
        const std::uint64_t execs = site.get("executions").asUint();
        if (execs < 1)
            complain(file, sw + ": a reported site must have "
                     "executed");
        const std::uint64_t width = site.get("width").asUint();
        if (width < 1 || width > 8)
            complain(file, sw + ": width must be 1..8 bytes");
        const std::string kind = site.get("kind").asString();
        if (kind == "load") {
            if (site.get("redundant").asUint() > execs)
                complain(file, sw + ": redundant > executions");
        } else if (kind == "store") {
            if (site.get("silent").asUint() > execs)
                complain(file, sw + ": silent > executions");
            site.get("dead_bytes").asUint();
            site.get("dead_at_exit_bytes").asUint();
            site.get("downstream_read_bytes").asUint();
        } else {
            complain(file, sw + ": kind '" + kind
                     + "' is neither load nor store");
        }
        const json::Value &runs = site.get("value_runs");
        if (!runs.isArray()
            || runs.size()
                   != static_cast<std::size_t>(
                       analysis::kValueRunBuckets))
            complain(file, sw + ": value_runs must hold "
                     + std::to_string(analysis::kValueRunBuckets)
                     + " buckets");
    }
}

void
checkAgreement(const std::string &file, const std::string &where,
               const json::Value &a)
{
    if (!a.isObject()) {
        complain(file, where + ": not an object");
        return;
    }
    const std::uint64_t staticSites = a.get("static_sites").asUint();
    const std::uint64_t dynamicSites =
        a.get("dynamic_sites").asUint();
    const std::uint64_t agree = a.get("agree").asUint();
    const std::uint64_t staticOnly = a.get("static_only").asUint();
    const std::uint64_t neverExec =
        a.get("static_never_executed").asUint();
    const std::uint64_t dynamicOnly = a.get("dynamic_only").asUint();
    a.get("trigger_candidates").asUint();
    a.get("suppressed").asUint();

    if (agree + staticOnly != staticSites)
        complain(file, where + ": agree + static_only != "
                 "static_sites");
    if (agree + dynamicOnly != dynamicSites)
        complain(file, where + ": agree + dynamic_only != "
                 "dynamic_sites");
    if (neverExec > staticOnly)
        complain(file, where + ": static_never_executed > "
                 "static_only");

    auto checkRate = [&](const char *name, std::uint64_t num,
                         std::uint64_t den) {
        const double v = a.get(name).asDouble();
        if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
            complain(file, where + ": " + name + " outside [0, 1]");
            return;
        }
        const double expect = den != 0
            ? static_cast<double>(num) / static_cast<double>(den)
            : 1.0;
        if (std::fabs(v - expect) > 1e-9)
            complain(file, where + ": " + name + " inconsistent "
                     "with its counters");
    };
    checkRate("precision", agree, staticSites);
    checkRate("recall", agree, dynamicSites);
}

void
checkFile(const std::string &file)
{
    std::ifstream in(file);
    if (!in) {
        complain(file, "cannot open");
        return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    json::Value doc = json::Value::parse(ss.str());
    if (!doc.isObject()) {
        complain(file, "top-level value is not an object");
        return;
    }
    std::uint64_t version = doc.get("schema_version").asUint();
    if (version != kLintSchemaVersion) {
        complain(file, "schema_version " + std::to_string(version)
                 + " != supported version "
                 + std::to_string(kLintSchemaVersion));
        return;
    }
    if (doc.get("binary").asString().empty())
        complain(file, "empty binary name");
    const bool shadow = doc.get("shadow").asBool();

    const json::Value &programs = doc.get("programs");
    if (!programs.isArray()) {
        complain(file, "'programs' is not an array");
        return;
    }
    std::map<std::string, std::uint64_t> severities;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const std::string where = "program " + std::to_string(i);
        const json::Value &prog = programs.at(i);
        if (!prog.isObject()) {
            complain(file, where + ": not an object");
            continue;
        }
        if (prog.get("name").asString().empty())
            complain(file, where + ": empty program name");
        const json::Value &diags = prog.get("diagnostics");
        if (!diags.isArray()) {
            complain(file, where + ": 'diagnostics' is not an array");
            continue;
        }
        for (std::size_t j = 0; j < diags.size(); ++j)
            checkDiagnostic(file,
                            where + " diagnostic "
                                + std::to_string(j),
                            diags.at(j), severities);
        // A shadow document carries the profile + agreement on every
        // program; a plain document on none.
        const json::Value *sh = prog.find("shadow");
        const json::Value *ag = prog.find("agreement");
        if (shadow) {
            if (sh == nullptr || ag == nullptr) {
                complain(file, where + ": shadow document lacks "
                         "'shadow'/'agreement'");
                continue;
            }
            checkShadow(file, where + " shadow", *sh);
            checkAgreement(file, where + " agreement", *ag);
        } else if (sh != nullptr || ag != nullptr) {
            complain(file, where + ": shadow payload in a document "
                     "with shadow=false");
        }
    }

    // The totals must balance the per-diagnostic counts.
    const json::Value &totals = doc.get("totals");
    if (!totals.isObject()) {
        complain(file, "'totals' is not an object");
        return;
    }
    if (totals.get("programs").asUint() != programs.size())
        complain(file, "totals.programs != |programs|");
    totals.get("suppressed").asUint();
    for (const char *sev : {"error", "warning", "lint"}) {
        const std::string key = std::string(sev) + "s";
        if (totals.get(key).asUint() != severities[sev])
            complain(file, "totals." + key + " does not match the "
                     "per-program diagnostics");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: check_lint_json FILE...\n"
                     "validates dttlint --json documents against lint "
                     "schema v%llu (docs/ANALYSIS.md)\n",
                     static_cast<unsigned long long>(
                         kLintSchemaVersion));
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        try {
            checkFile(argv[i]);
        } catch (const FatalError &e) {
            complain(argv[i], e.what());
        }
    }
    if (errorCount > 0) {
        std::fprintf(stderr, "check_lint_json: %d error%s\n",
                     errorCount, errorCount == 1 ? "" : "s");
        return 1;
    }
    std::printf("check_lint_json: %d file%s valid\n", argc - 1,
                argc == 2 ? "" : "s");
    return 0;
}
