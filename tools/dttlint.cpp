/**
 * @file
 * dttlint — static dataflow verifier for DTT programs.
 *
 * Runs the analysis subsystem (src/analysis) over builder workloads
 * or an assembly file and prints the findings, one line each:
 *
 *     pc 42 (handler+3): A005 error [non-terminating-thread] ...
 *
 * Usage:
 *   dttlint [--all | --workload=NAME | --asm=FILE]
 *           [--variant=baseline|dtt|both] [--werror] [--quiet]
 *           [--no-lint] [--wdrop-fallback] [--dynamic] [--shadow]
 *           [--json=PATH] [--suppressions=FILE] [--iterations=N]
 *           [--scale=N] [--list]
 *
 * With no selection, --all is implied. Exit status is 1 when any
 * error-severity finding was reported — or any finding at all under
 * --werror, which is how the test suite pins "all workloads lint
 * clean".
 *
 * --wdrop-fallback opts into the A009 robustness check: triggers the
 * program fires and fences (TWAIT) without ever reading TCHK, i.e.
 * programs whose correctness depends on the thread always firing.
 * Opt-in because programs targeting a Stall-policy machine
 * legitimately skip the fallback idiom.
 *
 * --dynamic additionally runs the functional redundancy profiler and
 * annotates every static redundant-load finding (A008) with the
 * measured per-PC redundancy, cross-checking the static claim.
 *
 * --shadow runs the full shadow-memory pipeline (docs/SHADOW.md):
 * static analysis + byte-granular dynamic profile, joined by
 * analysis::CrossChecker into the A010/A011/A012 findings and a
 * per-program agreement report (precision/recall of the static A008
 * lint against dynamic ground truth). --suppressions=FILE mutes
 * known-benign cross-check findings (CODE:PROGRAM:PC records).
 *
 * --json=PATH writes the machine-readable findings document (lint
 * schema v1, validated by tools/check_lint_json) so CI can diff
 * findings instead of scraping text. --iterations/--scale forward
 * workload generation knobs, letting smoke runs keep the dynamic
 * profile small.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/shadow.h"
#include "common/json.h"
#include "common/log.h"
#include "common/options.h"
#include "isa/assembler.h"
#include "profile/redundancy.h"
#include "profile/shadowprof.h"
#include "sim/report.h"
#include "workloads/workload.h"

namespace {

using namespace dttsim;

/** Keep in sync with tools/check_lint_json.cpp and docs/ANALYSIS.md. */
constexpr std::uint64_t kLintSchemaVersion = 1;

struct LintTotals
{
    int programs = 0;
    int errors = 0;
    int warnings = 0;
    int lints = 0;
    int suppressed = 0;
};

struct LintOptions
{
    analysis::AnalyzeOptions analyze;
    bool quiet = false;
    bool dynamic = false;
    bool shadow = false;
    analysis::Suppressions suppressions;
};

json::Value
diagnosticToJson(const analysis::Diagnostic &d)
{
    const analysis::DiagInfo &info = analysis::diagInfo(d.id);
    json::Value rec = json::Value::object();
    rec.set("code", info.code);
    rec.set("name", info.name);
    rec.set("severity", analysis::severityName(d.severity));
    if (d.pc != analysis::kNoPc)
        rec.set("pc", d.pc);
    rec.set("message", d.message);
    return rec;
}

/** Lint one program; returns the number of findings printed. */
int
lintProgram(const std::string &title, const isa::Program &prog,
            const LintOptions &lopts, LintTotals &totals,
            json::Value *json_programs)
{
    analysis::AnalysisResult res = analysis::analyze(prog,
                                                     lopts.analyze);
    ++totals.programs;

    profile::RedundancyReport dyn;
    if (lopts.dynamic)
        dyn = profile::profileRedundancy(prog);

    // The shadow pipeline: dynamic profile + cross-validation,
    // appending A010/A011/A012 to the static findings.
    analysis::ShadowReport shadow;
    analysis::AgreementReport agreement;
    if (lopts.shadow) {
        shadow = profile::profileShadow(prog);
        analysis::CrossChecker checker;
        agreement = checker.run(res, shadow, lopts.suppressions,
                                title, res.diagnostics);
        totals.suppressed += static_cast<int>(agreement.suppressed);
    }

    int shown = 0;
    for (const analysis::Diagnostic &d : res.diagnostics) {
        switch (d.severity) {
          case analysis::Severity::Error:
            ++totals.errors;
            break;
          case analysis::Severity::Warning:
            ++totals.warnings;
            break;
          case analysis::Severity::Lint:
            ++totals.lints;
            break;
        }
        std::string line = analysis::formatDiagnostic(d, &prog);
        if (lopts.dynamic
            && d.id == analysis::DiagId::RedundantLoad) {
            auto it = dyn.perPcLoads.find(d.pc);
            std::ostringstream os;
            if (it != dyn.perPcLoads.end() && it->second.executions)
                os << " [dynamic: " << it->second.redundant << "/"
                   << it->second.executions << " redundant]";
            else
                os << " [dynamic: never executed]";
            line += os.str();
        }
        if (!lopts.quiet) {
            if (shown == 0)
                std::printf("-- %s\n", title.c_str());
            std::printf("%s\n", line.c_str());
        }
        ++shown;
    }
    if (!lopts.quiet && shown == 0)
        std::printf("-- %s: clean\n", title.c_str());
    if (lopts.shadow && !lopts.quiet)
        std::printf("%s",
                    sim::formatAgreement(shadow, agreement).c_str());

    if (json_programs != nullptr) {
        json::Value rec = json::Value::object();
        rec.set("name", title);
        json::Value diags = json::Value::array();
        for (const analysis::Diagnostic &d : res.diagnostics)
            diags.push(diagnosticToJson(d));
        rec.set("diagnostics", std::move(diags));
        if (lopts.shadow) {
            // Elide single-shot sites: the document should scale
            // with the interesting sites, not the program text.
            rec.set("shadow", sim::shadowReportToJson(shadow, 2));
            rec.set("agreement", sim::agreementToJson(agreement));
        }
        json_programs->push(std::move(rec));
    }
    return shown;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    if (opts.has("list")) {
        for (const workloads::Workload *w : workloads::allWorkloads())
            std::printf("%s\n", w->info().name.c_str());
        return 0;
    }

    LintOptions lopts;
    lopts.analyze.lint = !opts.has("no-lint");
    lopts.analyze.dropFallback = opts.has("wdrop-fallback");
    lopts.quiet = opts.has("quiet");
    lopts.dynamic = opts.has("dynamic");
    lopts.shadow = opts.has("shadow");
    const bool werror = opts.has("werror");

    LintTotals totals;
    json::Value jsonPrograms = json::Value::array();
    const bool wantJson = opts.has("json");
    try {
        static const char *const known[] = {
            "all", "workload", "asm", "variant", "werror", "quiet",
            "no-lint", "wdrop-fallback", "dynamic", "shadow", "json",
            "suppressions", "iterations", "scale", "list",
        };
        for (const auto &[name, value] : opts.all()) {
            (void)value;
            bool ok = false;
            for (const char *k : known)
                ok = ok || name == k;
            if (!ok)
                fatal("unknown option '--%s'", name.c_str());
        }

        if (opts.has("suppressions"))
            lopts.suppressions = analysis::Suppressions::parse(
                readFile(opts.get("suppressions")));

        std::string variant = opts.get("variant", "both");
        if (variant != "baseline" && variant != "dtt"
            && variant != "both")
            fatal("bad --variant '%s' (want baseline|dtt|both)",
                  variant.c_str());
        std::vector<workloads::Variant> variants;
        if (variant != "dtt")
            variants.push_back(workloads::Variant::Baseline);
        if (variant != "baseline")
            variants.push_back(workloads::Variant::Dtt);

        if (opts.has("asm")) {
            isa::Program prog =
                isa::assemble(readFile(opts.get("asm")));
            lintProgram(opts.get("asm"), prog, lopts, totals,
                        wantJson ? &jsonPrograms : nullptr);
        } else {
            std::vector<const workloads::Workload *> selected;
            if (opts.has("workload")) {
                selected.push_back(
                    &workloads::findWorkload(opts.get("workload")));
            } else {
                selected = workloads::allWorkloads();
            }
            workloads::WorkloadParams params;
            params.iterations =
                static_cast<int>(opts.getInt("iterations", -1));
            params.scale = static_cast<int>(opts.getInt("scale", -1));
            for (const workloads::Workload *w : selected) {
                for (workloads::Variant v : variants) {
                    std::string title = w->info().name
                        + (v == workloads::Variant::Baseline
                               ? " (baseline)" : " (dtt)");
                    lintProgram(title, w->build(v, params), lopts,
                                totals,
                                wantJson ? &jsonPrograms : nullptr);
                }
            }
        }

        if (wantJson) {
            json::Value doc = json::Value::object();
            doc.set("schema_version", kLintSchemaVersion);
            doc.set("binary", "dttlint");
            doc.set("shadow", lopts.shadow);
            json::Value t = json::Value::object();
            t.set("programs",
                  static_cast<std::uint64_t>(totals.programs));
            t.set("errors", static_cast<std::uint64_t>(totals.errors));
            t.set("warnings",
                  static_cast<std::uint64_t>(totals.warnings));
            t.set("lints", static_cast<std::uint64_t>(totals.lints));
            t.set("suppressed",
                  static_cast<std::uint64_t>(totals.suppressed));
            doc.set("totals", std::move(t));
            doc.set("programs", std::move(jsonPrograms));
            const std::string path = opts.get("json");
            std::ofstream out(path);
            if (!out)
                fatal("cannot write '%s'", path.c_str());
            out << doc.dump(2) << "\n";
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "dttlint: %s\n", e.what());
        return 2;
    }

    int total = totals.errors + totals.warnings + totals.lints;
    if (!lopts.quiet || total != 0)
        std::printf(
            "dttlint: %d program%s, %d error%s, %d warning%s, "
            "%d lint%s%s\n",
            totals.programs, totals.programs == 1 ? "" : "s",
            totals.errors, totals.errors == 1 ? "" : "s",
            totals.warnings, totals.warnings == 1 ? "" : "s",
            totals.lints, totals.lints == 1 ? "" : "s",
            totals.suppressed > 0
                ? strfmt(" (%d suppressed)", totals.suppressed).c_str()
                : "");
    if (totals.errors > 0)
        return 1;
    if (werror && total > 0)
        return 1;
    return 0;
}
