/**
 * @file
 * dttlint — static dataflow verifier for DTT programs.
 *
 * Runs the analysis subsystem (src/analysis) over builder workloads
 * or an assembly file and prints the findings, one line each:
 *
 *     pc 42 (handler+3): A005 error [non-terminating-thread] ...
 *
 * Usage:
 *   dttlint [--all | --workload=NAME | --asm=FILE]
 *           [--variant=baseline|dtt|both] [--werror] [--quiet]
 *           [--no-lint] [--wdrop-fallback] [--dynamic] [--list]
 *
 * With no selection, --all is implied. Exit status is 1 when any
 * error-severity finding was reported — or any finding at all under
 * --werror, which is how the test suite pins "all workloads lint
 * clean".
 *
 * --wdrop-fallback opts into the A009 robustness check: triggers the
 * program fires and fences (TWAIT) without ever reading TCHK, i.e.
 * programs whose correctness depends on the thread always firing.
 * Opt-in because programs targeting a Stall-policy machine
 * legitimately skip the fallback idiom.
 *
 * --dynamic additionally runs the functional redundancy profiler and
 * annotates every static redundant-load finding (A008) with the
 * measured per-PC redundancy, cross-checking the static claim.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/log.h"
#include "common/options.h"
#include "isa/assembler.h"
#include "profile/redundancy.h"
#include "workloads/workload.h"

namespace {

using namespace dttsim;

struct LintTotals
{
    int programs = 0;
    int errors = 0;
    int warnings = 0;
    int lints = 0;
};

/** Lint one program; returns the number of findings printed. */
int
lintProgram(const std::string &title, const isa::Program &prog,
            const analysis::AnalyzeOptions &opts, bool quiet,
            bool dynamic, LintTotals &totals)
{
    analysis::AnalysisResult res = analysis::analyze(prog, opts);
    ++totals.programs;

    profile::RedundancyReport dyn;
    if (dynamic)
        dyn = profile::profileRedundancy(prog);

    int shown = 0;
    for (const analysis::Diagnostic &d : res.diagnostics) {
        switch (d.severity) {
          case analysis::Severity::Error:
            ++totals.errors;
            break;
          case analysis::Severity::Warning:
            ++totals.warnings;
            break;
          case analysis::Severity::Lint:
            ++totals.lints;
            break;
        }
        std::string line = analysis::formatDiagnostic(d, &prog);
        if (dynamic && d.id == analysis::DiagId::RedundantLoad) {
            auto it = dyn.perPcLoads.find(d.pc);
            std::ostringstream os;
            if (it != dyn.perPcLoads.end() && it->second.executions)
                os << " [dynamic: " << it->second.redundant << "/"
                   << it->second.executions << " redundant]";
            else
                os << " [dynamic: never executed]";
            line += os.str();
        }
        if (!quiet) {
            if (shown == 0)
                std::printf("-- %s\n", title.c_str());
            std::printf("%s\n", line.c_str());
        }
        ++shown;
    }
    if (!quiet && shown == 0)
        std::printf("-- %s: clean\n", title.c_str());
    return shown;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    if (opts.has("list")) {
        for (const workloads::Workload *w : workloads::allWorkloads())
            std::printf("%s\n", w->info().name.c_str());
        return 0;
    }

    analysis::AnalyzeOptions aopts;
    aopts.lint = !opts.has("no-lint");
    aopts.dropFallback = opts.has("wdrop-fallback");
    const bool quiet = opts.has("quiet");
    const bool werror = opts.has("werror");
    const bool dynamic = opts.has("dynamic");

    LintTotals totals;
    try {
        static const char *const known[] = {
            "all", "workload", "asm", "variant", "werror", "quiet",
            "no-lint", "wdrop-fallback", "dynamic", "list",
        };
        for (const auto &[name, value] : opts.all()) {
            (void)value;
            bool ok = false;
            for (const char *k : known)
                ok = ok || name == k;
            if (!ok)
                fatal("unknown option '--%s'", name.c_str());
        }

        std::string variant = opts.get("variant", "both");
        if (variant != "baseline" && variant != "dtt"
            && variant != "both")
            fatal("bad --variant '%s' (want baseline|dtt|both)",
                  variant.c_str());
        std::vector<workloads::Variant> variants;
        if (variant != "dtt")
            variants.push_back(workloads::Variant::Baseline);
        if (variant != "baseline")
            variants.push_back(workloads::Variant::Dtt);

        if (opts.has("asm")) {
            isa::Program prog =
                isa::assemble(readFile(opts.get("asm")));
            lintProgram(opts.get("asm"), prog, aopts, quiet, dynamic,
                        totals);
        } else {
            std::vector<const workloads::Workload *> selected;
            if (opts.has("workload")) {
                selected.push_back(
                    &workloads::findWorkload(opts.get("workload")));
            } else {
                selected = workloads::allWorkloads();
            }
            workloads::WorkloadParams params;
            for (const workloads::Workload *w : selected) {
                for (workloads::Variant v : variants) {
                    std::string title = w->info().name
                        + (v == workloads::Variant::Baseline
                               ? " (baseline)" : " (dtt)");
                    lintProgram(title, w->build(v, params), aopts,
                                quiet, dynamic, totals);
                }
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "dttlint: %s\n", e.what());
        return 2;
    }

    int total = totals.errors + totals.warnings + totals.lints;
    if (!quiet || total != 0)
        std::printf(
            "dttlint: %d program%s, %d error%s, %d warning%s, "
            "%d lint%s\n",
            totals.programs, totals.programs == 1 ? "" : "s",
            totals.errors, totals.errors == 1 ? "" : "s",
            totals.warnings, totals.warnings == 1 ? "" : "s",
            totals.lints, totals.lints == 1 ? "" : "s");
    if (totals.errors > 0)
        return 1;
    if (werror && total > 0)
        return 1;
    return 0;
}
