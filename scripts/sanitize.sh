#!/bin/sh
# Build and run the dttsim test suite under sanitizers.
#
#   scripts/sanitize.sh [build-dir]          ASan+UBSan, full suite
#   scripts/sanitize.sh --tsan [build-dir]   ThreadSanitizer over the
#                                            concurrency-heavy suites
#                                            (engine, fabric, store)
#
# Defaults: build-sanitize / build-tsan next to the source tree.
set -eu

src="$(cd "$(dirname "$0")/.." && pwd)"

mode=asan
if [ "${1:-}" = "--tsan" ]; then
    mode=tsan
    shift
fi

if [ "$mode" = "tsan" ]; then
    build="${1:-$src/build-tsan}"
    cmake -S "$src" -B "$build" -DCMAKE_BUILD_TYPE=Tsan
    cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
        --target test_engine test_net test_resultstore \
                 test_fabricfault
    # The suites that actually spin up threads: engine dispatch and
    # hedging, the live worker daemon, the result store's group
    # commit, the fault plan's shared decision streams. history_size
    # raised so long gtest bodies keep their full happens-before log.
    # Labels select the threaded suites; the end-to-end shell
    # scenarios (fabric_chaos_*, resume_smoke) are excluded — a
    # whole sweep under TSan's 10-20x slowdown blows their ctest
    # timeouts and buys nothing the unit suites don't cover.
    TSAN_OPTIONS="halt_on_error=1 history_size=7" \
        ctest --test-dir "$build" --output-on-failure -j 2 \
            -L 'resilience-smoke|fabric-smoke|chaos-smoke' \
            -E 'fabric_chaos|resume_smoke'
    exit 0
fi

build="${1:-$src/build-sanitize}"
cmake -S "$src" -B "$build" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"

# Leak checking is off: gtest + static workload singletons hold
# allocations until exit by design. UBSan aborts on any report.
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$build" --output-on-failure -j \
        "$(nproc 2>/dev/null || echo 4)"
