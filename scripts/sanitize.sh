#!/bin/sh
# Build and run the full dttsim test suite under ASan+UBSan.
# Usage: scripts/sanitize.sh [build-dir]   (default: build-sanitize)
set -eu

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build-sanitize}"

cmake -S "$src" -B "$build" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"

# Leak checking is off: gtest + static workload singletons hold
# allocations until exit by design. UBSan aborts on any report.
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$build" --output-on-failure -j \
        "$(nproc 2>/dev/null || echo 4)"
