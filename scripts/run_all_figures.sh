#!/usr/bin/env bash
# Run every figure/table binary of the evaluation, writing the
# rendered tables and the schema-versioned JSON records into
# bench/out/, then validate every JSON file.
#
# The workload binaries share a persistent result cache (rw at
# bench/out/cache), so identical jobs run once across the whole sweep
# and a killed invocation of this script resumes from the completed
# simulations when re-run. Pass --resume=PATH/MANIFEST (or any other
# harness flag) after the build dir to resume from a specific cache.
#
# Usage: scripts/run_all_figures.sh [build-dir] [extra flags...]
#   e.g. scripts/run_all_figures.sh build --scale=2 --jobs=8
# Extra flags are passed to every workload-running binary.
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
if [ $# -gt 0 ]; then
    shift
fi

if [ ! -x "$build/bench/fig5_speedup" ]; then
    echo "run_all_figures: bench binaries not found in $build" \
         "(build first: cmake --build $build -j)" >&2
    exit 2
fi

outdir="$src/bench/out"
mkdir -p "$outdir"

# Default cache placement; an explicit --resume/--cache/--cache-dir
# in the extra flags overrides it (the harness takes the last value).
cache=(--cache=rw --cache-dir="$outdir/cache")

# All hardware threads by default — the engine parallelizes each
# figure's batch, so the sweep should too. An explicit --jobs in the
# extra flags overrides this (last value wins).
jobs=(--jobs="$(nproc)")

# Opt-in distributed sweep: DTTSIM_WORKERS=host:port[,host:port...]
# farms unique jobs out to running dttworkerd daemons (the harness
# degrades to local execution if a worker dies; output stays
# byte-identical either way — docs/HARNESS.md, Distributed sweeps).
workers=()
if [ -n "${DTTSIM_WORKERS:-}" ]; then
    workers=(--workers="$DTTSIM_WORKERS")
    echo "== distributed sweep over workers: $DTTSIM_WORKERS"
fi

# tab1_config takes no workload flags; everything else accepts the
# common set plus the extra flags from the command line.
echo "== tab1_config"
"$build/bench/tab1_config" --json="$outdir/tab1_config.json" \
    | tee "$outdir/tab1_config.txt"

for b in tab2_benchmarks tab3_trigger_advisor \
         fig2_redundant_loads fig3_redundant_computation \
         fig4_silent_stores fig5_speedup fig6_insn_reduction \
         fig7_contexts fig8_tq_size fig9_ablation_silent \
         fig10_energy_proxy fig11_update_rate fig12_vs_reuse \
         fig13_spawn_latency fig14_corunner fig15_prefetch \
         fig16_fault_degradation; do
    echo "== $b"
    "$build/bench/$b" "${cache[@]}" "${jobs[@]}" \
        ${workers[@]+"${workers[@]}"} "$@" \
        --json="$outdir/$b.json" \
        | tee "$outdir/$b.txt"
done

"$build/tools/check_results_json" "$outdir"/*.json
echo "run_all_figures: outputs in $outdir (cache: $outdir/cache)"
