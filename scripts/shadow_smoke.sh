#!/usr/bin/env bash
# The analysis half of the static/dynamic cross-validation gate
# (`ctest -L analysis-smoke` runs this plus tests/test_shadow): run
# the combined dttlint --shadow pipeline — static analysis, shadow-
# memory dynamic profile, CrossChecker agreement report — over every
# workload in both variants at smoke scale, emit the machine-readable
# findings document (lint schema v1, docs/ANALYSIS.md), and validate
# it with check_lint_json. A plain (no --shadow) document is produced
# and validated too, so both document shapes stay covered.
#
# Usage: scripts/shadow_smoke.sh [build-dir] [out-dir]
#   e.g. scripts/shadow_smoke.sh build bench/out
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
outdir="${2:-$src/bench/out}"

for bin in tools/dttlint tools/check_lint_json; do
    if [ ! -x "$build/$bin" ]; then
        echo "shadow_smoke: $build/$bin not found" \
             "(build first: cmake --build $build -j)" >&2
        exit 2
    fi
done

mkdir -p "$outdir"

# Small --iterations/--scale keep the dynamic profile a smoke gate;
# the full-size profile is what bench/ and the advisor use.
echo "== dttlint --shadow (all workloads, both variants)"
"$build/tools/dttlint" --all --variant=both --shadow --quiet \
    --iterations=2 --scale=2 --json="$outdir/LINT_shadow.json"

echo "== dttlint (static only)"
"$build/tools/dttlint" --all --variant=both --quiet \
    --json="$outdir/LINT_static.json"

# One pass over both documents: the shadow document must carry a
# per-program shadow profile + agreement report, the static one none.
"$build/tools/check_lint_json" "$outdir/LINT_shadow.json" \
    "$outdir/LINT_static.json"
echo "shadow_smoke: documents valid; outputs in $outdir"
