#!/usr/bin/env bash
# Robustness sweep: run the fault-smoke test matrix (ctest label) and
# then fig16_fault_degradation across several fault-plan seeds, with
# every --json output validated against results schema v2. Exits
# non-zero on any test failure, any archDigest divergence (fig16
# returns 1 when a faulted run's memory image differs from the
# fault-free one) or any schema violation.
#
# The seeds share a persistent result cache (rw at bench/out/cache),
# so re-running a killed sweep re-executes only the incomplete jobs;
# pass --resume=PATH/MANIFEST to resume from a specific cache.
#
# Usage: scripts/fault_sweep.sh [build-dir] [extra flags...]
#   e.g. scripts/fault_sweep.sh build --scale=2 --jobs=8
# Extra flags are passed to the fig16 binary (seeds are swept here).
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
if [ $# -gt 0 ]; then
    shift
fi

if [ ! -x "$build/bench/fig16_fault_degradation" ]; then
    echo "fault_sweep: $build/bench/fig16_fault_degradation not found" \
         "(build first: cmake --build $build -j)" >&2
    exit 2
fi

echo "== fault-smoke test matrix"
ctest --test-dir "$build" -L fault-smoke --output-on-failure \
    -j "$(nproc 2>/dev/null || echo 4)"

outdir="$src/bench/out"
mkdir -p "$outdir"
cache=(--cache=rw --cache-dir="$outdir/cache")
outs=()
for seed in 1 2 3; do
    echo "== fig16_fault_degradation --fault-seed=$seed"
    out="$outdir/fig16_fault_degradation.seed$seed.json"
    "$build/bench/fig16_fault_degradation" --fault-seed="$seed" \
        "${cache[@]}" "$@" --json="$out" \
        | tee "$outdir/fig16_fault_degradation.seed$seed.txt"
    outs+=("$out")
done
# Final pass over every document at once, so cross-seed output also
# proves schema-valid together, not just file by file.
"$build/tools/check_results_json" "${outs[@]}"

# Host-level failure gate: a record still status=error or
# status=timeout after the retry budget means the sweep did not
# actually measure that point — fail loudly instead of letting a
# partially simulated figure pass.
bad=0
for out in "${outs[@]}"; do
    hits="$(grep -cE '"status": *"(error|timeout)"' "$out" || true)"
    if [ "$hits" -gt 0 ]; then
        echo "fault_sweep: $out has $hits job(s) that ended in" \
             "error/timeout after retries" >&2
        bad=1
    fi
done
[ "$bad" -eq 0 ] || exit 1
echo "fault_sweep: all seeds clean; outputs in $outdir"
