#!/bin/sh
# Robustness sweep: run the fault-smoke test matrix (ctest label) and
# then fig16_fault_degradation across several fault-plan seeds, with
# every --json output validated against results schema v1. Exits
# non-zero on any test failure, any archDigest divergence (fig16
# returns 1 when a faulted run's memory image differs from the
# fault-free one) or any schema violation.
#
# Usage: scripts/fault_sweep.sh [build-dir] [extra flags...]
#   e.g. scripts/fault_sweep.sh build --scale=2 --jobs=8
# Extra flags are passed to the fig16 binary (seeds are swept here).
set -eu

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
if [ $# -gt 0 ]; then
    shift
fi

if [ ! -x "$build/bench/fig16_fault_degradation" ]; then
    echo "fault_sweep: $build/bench/fig16_fault_degradation not found" \
         "(build first: cmake --build $build -j)" >&2
    exit 2
fi

echo "== fault-smoke test matrix"
ctest --test-dir "$build" -L fault-smoke --output-on-failure \
    -j "$(nproc 2>/dev/null || echo 4)"

outdir="$src/bench/out"
mkdir -p "$outdir"
for seed in 1 2 3; do
    echo "== fig16_fault_degradation --fault-seed=$seed"
    out="$outdir/fig16_fault_degradation.seed$seed.json"
    "$build/bench/fig16_fault_degradation" --fault-seed="$seed" "$@" \
        --json="$out" | tee "$outdir/fig16_fault_degradation.seed$seed.txt"
    "$build/tools/check_results_json" "$out"
done
echo "fault_sweep: all seeds clean; outputs in $outdir"
