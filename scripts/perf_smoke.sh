#!/usr/bin/env bash
# The benchmark half of the performance gate (`ctest -L perf-smoke`
# runs this plus the golden-digest determinism tests): run the
# simulator-throughput microbenchmarks at small scale, emit the
# machine-readable BENCH_sim.json summary, and validate it against
# bench schema v1 (docs/PERFORMANCE.md).
#
# Usage: scripts/perf_smoke.sh [build-dir] [out.json]
#   e.g. scripts/perf_smoke.sh build bench/out/BENCH_sim.json
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
out="${2:-$src/bench/out/BENCH_sim.json}"

if [ ! -x "$build/bench/micro_sim_throughput" ]; then
    echo "perf_smoke: micro_sim_throughput not found in $build" \
         "(build first: cmake --build $build -j)" >&2
    exit 2
fi

mkdir -p "$(dirname "$out")"

# Only the benchmarks the summary schema covers; BM_OooCore also
# matches BM_OooCoreDtt. The small min_time keeps this a smoke gate —
# use the defaults (no filter, no min_time) for quotable numbers.
"$build/bench/micro_sim_throughput" \
    --benchmark_filter='BM_FunctionalRunner|BM_OooCore|BM_ShadowProfile|BM_EngineColdCache|BM_EngineWarmCache' \
    --benchmark_min_time=0.02s \
    --bench-json="$out"

"$build/tools/check_bench_json" "$out"
echo "perf_smoke: summary at $out"
