#!/usr/bin/env bash
# The end-to-end half of the accelerator-interface gate
# (`ctest -L accel-smoke` runs this plus tests/test_accel_conformance):
# sweep the harness-wide --accel flag over every accelerator kind,
# running the full 15-workload suite per kind at smoke scale, emit the
# structured-results document for each (results schema v3,
# docs/HARNESS.md), and validate every document with
# check_results_json. The deprecated --no-dtt shim is exercised once
# to keep the mapping covered, and an unknown --accel value must
# exit 2.
#
# Usage: scripts/accel_smoke.sh [build-dir] [out-dir]
#   e.g. scripts/accel_smoke.sh build bench/out
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
outdir="${2:-$src/bench/out}"

for bin in bench/fig5_speedup tools/check_results_json; do
    if [ ! -x "$build/$bin" ]; then
        echo "accel_smoke: $build/$bin not found" \
             "(build first: cmake --build $build -j)" >&2
        exit 2
    fi
done

mkdir -p "$outdir"

# Small --iters keeps this a smoke gate; every kind still covers the
# whole suite so a workload that only breaks under one accelerator
# cannot hide.
docs=()
for kind in none dtt sp reuse; do
    echo "== fig5_speedup --accel=$kind (all workloads)"
    "$build/bench/fig5_speedup" --accel="$kind" --iters=2 \
        --json="$outdir/ACCEL_$kind.json" > /dev/null
    docs+=("$outdir/ACCEL_$kind.json")
done

echo "== deprecated shim --no-dtt still maps (and warns)"
shim_err="$outdir/ACCEL_shim.stderr"
"$build/bench/fig5_speedup" --no-dtt --workload=mcf --iters=2 \
    --json="$outdir/ACCEL_shim.json" > /dev/null 2> "$shim_err"
grep -q "deprecated" "$shim_err" || {
    echo "accel_smoke: --no-dtt did not warn about deprecation" >&2
    exit 1
}
docs+=("$outdir/ACCEL_shim.json")

echo "== unknown --accel value must exit 2"
if "$build/bench/fig5_speedup" --accel=gpu > /dev/null 2>&1; then
    echo "accel_smoke: --accel=gpu unexpectedly succeeded" >&2
    exit 1
fi

"$build/tools/check_results_json" "${docs[@]}"
echo "accel_smoke: documents valid; outputs in $outdir"
