#!/usr/bin/env bash
# Deterministic chaos matrix for the sweep fabric
# (docs/ROBUSTNESS.md, third layer). One fault-free local reference
# run, then one scenario per fabric injection site — each against a
# fresh cache and two fresh worker daemons — asserting the merged
# --json document stays byte-identical to the reference:
#
#   connect-refused  client connect()s refused at random; the retry
#                    budget and the quarantine breaker absorb it
#   straggler        workers sit on replies; hedged dispatch races a
#                    duplicate copy and the first Ok wins
#   mid-frame-eof    reply streams cut mid-frame; the job is retried
#   corrupt-frame    frames arrive with a flipped byte; the wire
#                    checksum rejects them instead of trusting them
#   forge-claim      forged far-future claims (dead holder) appear at
#                    claim time and must be taken over
#   torn-append      cache appends tear mid-line; cache_fsck finds
#                    and quarantines the tails (exit 1), a second
#                    pass comes back clean (exit 0), and a warm rerun
#                    still reproduces the reference bytes
#   bit-rot          payload digits flipped on disk after the fact;
#                    cache_fsck quarantines 100% of the rotted
#                    records (the load path skips them regardless)
#
# Usage: scripts/chaos_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
bin="$build/bench/fig5_speedup"
workerd="$build/tools/dttworkerd"
validator="$build/tools/check_results_json"
fsck="$build/tools/cache_fsck"

for t in "$bin" "$workerd" "$validator" "$fsck"; do
    if [ ! -x "$t" ]; then
        echo "chaos_smoke: $t not found (build first:" \
             "cmake --build $build -j)" >&2
        exit 2
    fi
done

tmp="${2:-$(mktemp -d)}"
mkdir -p "$tmp"
rm -rf "$tmp"/ref.* "$tmp"/scen-*
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
}
trap cleanup EXIT

# Small on purpose: the matrix runs ~10 sweeps; the faults, not the
# workload, are what is under test here.
args=(--iters=3 --scale=1)

echo "== reference (local, fault-free) run"
"$bin" "${args[@]}" --jobs=2 --json="$tmp/ref.json" > "$tmp/ref.txt"
"$validator" "$tmp/ref.json"

wait_port() { # $1 = daemon log; echoes the bound port
    local port=""
    for _ in $(seq 1 100); do
        port="$(sed -n 's/^dttworkerd: listening on //p' "$1")"
        [ -n "$port" ] && break
        sleep 0.05
    done
    if [ -z "$port" ]; then
        echo "chaos_smoke: daemon failed to start ($1)" >&2
        cat "$1" >&2
        exit 1
    fi
    echo "$port"
}

# scenario NAME WORKER-FAULT-SPEC [extra client flags...]
# Two fresh workers (armed with WORKER-FAULT-SPEC when non-empty), a
# fresh cache, then cmp against the reference bytes. The scenario's
# scratch lands in $tmp/scen-NAME (out.json / out.err / cache/).
scenario() {
    local name="$1" wspec="$2"
    shift 2
    echo "== scenario $name"
    local dir="$tmp/scen-$name"
    mkdir -p "$dir"
    local wflags=()
    [ -n "$wspec" ] && wflags=(--fabric-faults="$wspec")
    "$workerd" --port=0 --jobs=2 "${wflags[@]}" \
        > "$dir/workerA.out" 2>&1 &
    local wa=$!
    pids+=("$wa")
    "$workerd" --port=0 --jobs=2 "${wflags[@]}" \
        > "$dir/workerB.out" 2>&1 &
    local wb=$!
    pids+=("$wb")
    local porta portb
    porta="$(wait_port "$dir/workerA.out")"
    portb="$(wait_port "$dir/workerB.out")"

    "$bin" "${args[@]}" --jobs=2 --json="$dir/out.json" \
        --cache=rw --cache-dir="$dir/cache" \
        --workers="127.0.0.1:$porta,127.0.0.1:$portb" \
        --worker-deadline=120 "$@" \
        > "$dir/out.txt" 2> "$dir/out.err" || {
        echo "chaos_smoke: scenario $name: sweep failed" >&2
        cat "$dir/out.err" >&2
        exit 1
    }
    kill "$wa" "$wb" 2>/dev/null || true
    wait "$wa" "$wb" 2>/dev/null || true

    cmp "$tmp/ref.json" "$dir/out.json" || {
        echo "chaos_smoke: scenario $name: --json differs from the" \
             "fault-free reference (byte-identity violated)" >&2
        exit 1
    }
    "$validator" "$dir/out.json"
}

scenario connect-refused "" --fabric-faults=7:connect-refused=0.5

scenario straggler "5:reply-delay=0.5,delay=2.0" --worker-straggler=0.5
grep -q "hedged" "$tmp/scen-straggler/out.err" || {
    echo "chaos_smoke: straggler scenario never hedged a job" >&2
    cat "$tmp/scen-straggler/out.err" >&2
    exit 1
}

scenario mid-frame-eof "" --fabric-faults=11:mid-frame-eof=0.2

scenario corrupt-frame "" --fabric-faults=13:corrupt-frame=0.2

scenario forge-claim "" --fabric-faults=17:forge-claim=0.5
grep -q "stale claim" "$tmp/scen-forge-claim/out.err" || {
    echo "chaos_smoke: no forged claim was ever taken over" >&2
    cat "$tmp/scen-forge-claim/out.err" >&2
    exit 1
}

scenario torn-append "" --fabric-faults=19:torn-append=0.5
cdir="$tmp/scen-torn-append/cache"
echo "== cache_fsck over the torn cache"
if fsck_out="$("$fsck" --dir="$cdir" 2>&1)"; then
    echo "chaos_smoke: cache_fsck missed the injected torn appends" >&2
    echo "$fsck_out" >&2
    exit 1
fi
echo "$fsck_out" | grep -q "quarantined" || {
    echo "chaos_smoke: cache_fsck failed for the wrong reason:" >&2
    echo "$fsck_out" >&2
    exit 1
}
[ -n "$(ls "$cdir/quarantine" 2>/dev/null)" ] || {
    echo "chaos_smoke: cache_fsck reported findings but quarantined" \
         "nothing" >&2
    exit 1
}
"$fsck" --dir="$cdir" || {
    echo "chaos_smoke: second fsck pass still found corruption" >&2
    exit 1
}
echo "== warm rerun over the scrubbed cache"
"$bin" "${args[@]}" --jobs=2 --json="$tmp/scen-torn-append/warm.json" \
    --cache=rw --cache-dir="$cdir" > /dev/null
cmp "$tmp/ref.json" "$tmp/scen-torn-append/warm.json" || {
    echo "chaos_smoke: warm rerun over the scrubbed cache differs" \
         "from the reference" >&2
    exit 1
}

echo "== scenario bit-rot (post-hoc digit flips on disk)"
dir="$tmp/scen-bit-rot"
mkdir -p "$dir"
"$bin" "${args[@]}" --jobs=2 --json="$dir/out.json" \
    --cache=rw --cache-dir="$dir/cache" > /dev/null
seg="$(ls "$dir/cache"/seg-*.jsonl | head -1)"
rotted="$(wc -l < "$seg")"
sed -i -E 's/"cycles":[0-9]+/"cycles":4242424242/' "$seg"
if fsck_out="$("$fsck" --dir="$dir/cache" 2>&1)"; then
    echo "chaos_smoke: cache_fsck missed the bit-rot" >&2
    exit 1
fi
echo "$fsck_out" | grep -q "crc mismatch" || {
    echo "chaos_smoke: bit-rot was not flagged as crc mismatches:" >&2
    echo "$fsck_out" >&2
    exit 1
}
qn="$(cat "$dir/cache/quarantine"/* | wc -l)"
if [ "$qn" -ne "$rotted" ]; then
    echo "chaos_smoke: $rotted record(s) rotted but $qn quarantined" >&2
    exit 1
fi
"$fsck" --dir="$dir/cache" || {
    echo "chaos_smoke: second fsck pass still found bit-rot" >&2
    exit 1
}
"$bin" "${args[@]}" --jobs=2 --json="$dir/warm.json" \
    --cache=rw --cache-dir="$dir/cache" > /dev/null
cmp "$tmp/ref.json" "$dir/warm.json" || {
    echo "chaos_smoke: warm rerun after bit-rot repair differs from" \
         "the reference" >&2
    exit 1
}

echo "chaos_smoke: PASS (every injection site driven end-to-end;" \
     "merged output byte-identical to the fault-free reference;" \
     "cache_fsck quarantined 100% of the injected corruption)"
