#!/usr/bin/env bash
# Run a figure binary with --json at tiny scale and validate the
# emitted file against results schema v2 (docs/HARNESS.md).
# Usage: scripts/check_fig_json.sh <figure-binary> <check_results_json>
set -euo pipefail

bin="$1"
validator="$2"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

"$bin" --workload=mcf --iters=2 --scale=1 --jobs=2 --json="$out" \
    > /dev/null
"$validator" "$out"
