#!/usr/bin/env bash
# Chaos acceptance check for the distributed sweep fabric:
#
#  1. run fig5_speedup uninterrupted and locally -> reference --json
#     document (and a cache full of the sweep's digests);
#  2. start two dttworkerd daemons on ephemeral localhost ports,
#     forge a stale claim (dead holder, expired deadline) for one of
#     the sweep's real digests in a fresh cache dir;
#  3. run the same sweep with --workers over both daemons, SIGKILL
#     one daemon as soon as the first result is durable;
#  4. assert the sweep still exits 0, took over the stale claim,
#     and produced --json output byte-identical to the local run,
#     validated by check_results_json;
#  5. re-run warm with --provenance and validate the worker-labelled
#     document too.
#
# Usage: scripts/fabric_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
bin="$build/bench/fig5_speedup"
workerd="$build/tools/dttworkerd"
validator="$build/tools/check_results_json"

if [ ! -x "$bin" ] || [ ! -x "$workerd" ] || [ ! -x "$validator" ]; then
    echo "fabric_smoke: $bin, $workerd or $validator not found" \
         "(build first: cmake --build $build -j)" >&2
    exit 2
fi

tmp="${2:-$(mktemp -d)}"
mkdir -p "$tmp"
rm -rf "$tmp/cache" "$tmp"/*.json "$tmp"/*.txt "$tmp"/*.err \
    "$tmp"/worker*.out
wa="" wb="" sweep=""
cleanup() {
    for p in "$wa" "$wb" "$sweep"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
}
trap cleanup EXIT

# Sized like resume_smoke: enough jobs (~24, a few hundred ms each)
# that the SIGKILL lands mid-sweep, small enough for a smoke test.
args=(--iters=6 --scale=2)

echo "== reference (local, uninterrupted) run"
"$bin" "${args[@]}" --jobs=2 --json="$tmp/ref.json" \
    --cache=rw --cache-dir="$tmp/refcache" > "$tmp/ref.txt"

start_worker() { # $1 = output file; echoes pid, port in globals
    "$workerd" --port=0 --jobs=2 > "$1" 2>&1 &
    local pid=$!
    local port=""
    for _ in $(seq 1 100); do
        port="$(sed -n 's/^dttworkerd: listening on //p' "$1")"
        [ -n "$port" ] && break
        sleep 0.05
    done
    if [ -z "$port" ]; then
        echo "fabric_smoke: daemon failed to start ($1)" >&2
        exit 1
    fi
    echo "$pid $port"
}

echo "== starting two worker daemons"
read -r wa porta <<< "$(start_worker "$tmp/workerA.out")"
read -r wb portb <<< "$(start_worker "$tmp/workerB.out")"
echo "   workers on ports $porta (A) and $portb (B)"

echo "== injecting a stale claim for a real digest"
digest="$(sed -n 's/.*"digest": *"\([0-9a-f]\{16\}\)".*/\1/p' \
    "$tmp/refcache"/seg-*.jsonl | head -1)"
if [ -z "$digest" ]; then
    echo "fabric_smoke: could not extract a digest from the" \
         "reference cache" >&2
    exit 1
fi
mkdir -p "$tmp/cache/claims"
printf '{"pid": 999999999, "host": "long-gone-host", "token": 7, "deadline_unix": 10}' \
    > "$tmp/cache/claims/$digest.claim"
echo "   stale claim forged for digest $digest"

echo "== distributed sweep (worker A will be SIGKILLed mid-run)"
"$bin" "${args[@]}" --jobs=2 --json="$tmp/fab.json" \
    --cache=rw --cache-dir="$tmp/cache" \
    --workers="127.0.0.1:$porta,127.0.0.1:$portb" \
    --worker-deadline=60 \
    > "$tmp/fab.txt" 2> "$tmp/fab.err" &
sweep=$!
# One '\n'-terminated line in a cache segment = one durable result:
# the sweep is genuinely mid-flight, so the kill is mid-run.
for _ in $(seq 1 600); do
    if [ -n "$(cat "$tmp/cache"/seg-*.jsonl 2>/dev/null)" ]; then
        break
    fi
    if ! kill -0 "$sweep" 2>/dev/null; then
        break
    fi
    sleep 0.05
done
if kill -0 "$sweep" 2>/dev/null; then
    kill -9 "$wa" 2>/dev/null || true
    echo "   worker A ($wa) SIGKILLed"
fi
wa=""
wait "$sweep" || {
    echo "fabric_smoke: distributed sweep failed" >&2
    cat "$tmp/fab.err" >&2
    exit 1
}
sweep=""

echo "== checking chaos handling"
grep -q "stale claim" "$tmp/fab.err" || {
    echo "fabric_smoke: the forged stale claim was never taken over" >&2
    cat "$tmp/fab.err" >&2
    exit 1
}

echo "== comparing outputs"
cmp "$tmp/ref.json" "$tmp/fab.json" || {
    echo "fabric_smoke: distributed --json differs from the local" \
         "run's (byte-identity violated)" >&2
    exit 1
}
diff -u "$tmp/ref.txt" "$tmp/fab.txt" || {
    echo "fabric_smoke: distributed table differs from the local" \
         "run's" >&2
    exit 1
}
"$validator" "$tmp/ref.json" "$tmp/fab.json"

echo "== provenance run (worker B, warm cache)"
"$bin" "${args[@]}" --jobs=2 --json="$tmp/prov.json" \
    --cache=rw --cache-dir="$tmp/cache" \
    --workers="127.0.0.1:$portb" --provenance \
    > /dev/null 2> "$tmp/prov.err"
"$validator" "$tmp/prov.json"
grep -q '"worker"' "$tmp/prov.json" || {
    echo "fabric_smoke: --provenance emitted no worker fields" >&2
    exit 1
}

kill "$wb" 2>/dev/null || true
wait "$wb" 2>/dev/null || true
wb=""

echo "fabric_smoke: PASS (worker killed mid-sweep, stale claim taken" \
     "over, merged output byte-identical to the local run)"
