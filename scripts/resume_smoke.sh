#!/usr/bin/env bash
# Kill/resume acceptance check for the resilient experiment engine:
#
#  1. run fig5_speedup uninterrupted -> reference --json document;
#  2. start the same sweep with a fresh rw result cache, SIGKILL it
#     as soon as the first completed job has been persisted;
#  3. re-invoke with --resume=<cache>/MANIFEST and assert that
#       - only the incomplete jobs re-execute (>= 1 cache hit),
#       - the merged --json output is byte-identical to the
#         uninterrupted run's,
#       - the rendered table is identical,
#       - the document validates against results schema v2;
#  4. multi-process chaos: run two instances of the sweep
#     concurrently against one shared fresh cache and assert that
#     digest claim files kept them from duplicating simulations
#     (combined executions < 2x the unique jobs) while both emitted
#     byte-identical documents.
#
# Usage: scripts/resume_smoke.sh [build-dir]
set -euo pipefail

src="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$src/build}"
bin="$build/bench/fig5_speedup"
validator="$build/tools/check_results_json"

if [ ! -x "$bin" ] || [ ! -x "$validator" ]; then
    echo "resume_smoke: $bin or $validator not found" \
         "(build first: cmake --build $build -j)" >&2
    exit 2
fi

tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

# Big enough that the kill lands mid-sweep with --jobs=1 (~24 jobs,
# a few hundred ms each), small enough to stay a smoke test.
args=(--iters=6 --scale=2 --jobs=1)

echo "== reference (uninterrupted) run"
"$bin" "${args[@]}" --json="$tmp/ref.json" > "$tmp/ref.txt"

echo "== interrupted run (SIGKILL after the first cached job)"
"$bin" "${args[@]}" --json="$tmp/int.json" \
    --cache=rw --cache-dir="$tmp/cache" \
    > "$tmp/int-first.txt" 2> "$tmp/int-first.err" &
pid=$!
# The store fsyncs each record as the job finishes, so one line in a
# segment means one durable result. Poll for it, then kill -9.
for _ in $(seq 1 600); do
    if [ -n "$(cat "$tmp/cache"/seg-*.jsonl 2>/dev/null)" ]; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "resume_smoke: sweep finished before it could be" \
             "killed; retune --iters/--scale" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

if [ -e "$tmp/int.json" ]; then
    echo "resume_smoke: killed run left a --json file; the kill" \
         "landed too late to exercise resume" >&2
    exit 1
fi
cached_before="$(cat "$tmp/cache"/seg-*.jsonl | wc -l)"
echo "   killed with $cached_before job(s) durable in the cache"

echo "== resumed run"
"$bin" "${args[@]}" --json="$tmp/int.json" \
    --resume="$tmp/cache/MANIFEST" \
    > "$tmp/int.txt" 2> "$tmp/int.err"

grep -q "cache hit" "$tmp/int.err" || {
    echo "resume_smoke: resumed run reported no cache summary" >&2
    cat "$tmp/int.err" >&2
    exit 1
}

echo "== comparing outputs"
cmp "$tmp/ref.json" "$tmp/int.json" || {
    echo "resume_smoke: resumed --json differs from the" \
         "uninterrupted run's (byte-identity violated)" >&2
    exit 1
}
diff -u "$tmp/ref.txt" "$tmp/int.txt" || {
    echo "resume_smoke: resumed table differs from the" \
         "uninterrupted run's" >&2
    exit 1
}
"$validator" "$tmp/ref.json" "$tmp/int.json"

echo "== two processes racing on one shared cache"
unique="$(cat "$tmp/cache"/seg-*.jsonl | wc -l)"
"$bin" "${args[@]}" --json="$tmp/race1.json" \
    --cache=rw --cache-dir="$tmp/racecache" \
    > "$tmp/race1.txt" 2> "$tmp/race1.err" &
p1=$!
"$bin" "${args[@]}" --json="$tmp/race2.json" \
    --cache=rw --cache-dir="$tmp/racecache" \
    > "$tmp/race2.txt" 2> "$tmp/race2.err" &
p2=$!
wait "$p1"
wait "$p2"

for f in race1 race2; do
    cmp "$tmp/ref.json" "$tmp/$f.json" || {
        echo "resume_smoke: concurrent run $f's --json differs from" \
             "the uninterrupted run's (byte-identity violated)" >&2
        exit 1
    }
done
"$validator" "$tmp/race1.json" "$tmp/race2.json"

# The claim files are what keep the two processes from simulating
# every digest twice: combined executions must come in under 2x.
ex1="$(sed -n 's/.*submitted, \([0-9]*\) executed.*/\1/p' "$tmp/race1.err")"
ex2="$(sed -n 's/.*submitted, \([0-9]*\) executed.*/\1/p' "$tmp/race2.err")"
total=$((ex1 + ex2))
if [ "$total" -ge $((2 * unique)) ]; then
    echo "resume_smoke: claim files saved no work ($ex1 + $ex2" \
         "executions for $unique unique jobs)" >&2
    exit 1
fi

echo "resume_smoke: PASS (killed at $cached_before durable jobs," \
     "resumed to byte-identical output; race ran $total/$((2 * unique))" \
     "executions for $unique unique jobs)"
