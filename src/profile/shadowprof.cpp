#include "profile/shadowprof.h"

#include <algorithm>

namespace dttsim::profile {

analysis::RedundancySite &
ShadowProfiler::site(std::uint64_t pc, bool is_load, int width)
{
    analysis::RedundancySite &s = report_.sites[pc];
    if (s.executions == 0) {
        s.pc = pc;
        s.isLoad = is_load;
    }
    s.width = std::max(s.width, static_cast<std::uint8_t>(width));
    return s;
}

void
ShadowProfiler::onCommit(const cpu::StepInfo &info, CtxId ctx)
{
    if (mainOnly_ && ctx != 0)
        return;
    ++report_.instructions;
    if (!info.mem.valid)
        return;

    const cpu::MemEffect &m = info.mem;
    if (m.isLoad) {
        ++report_.loads;
        analysis::RedundancySite &s = site(info.pc, true, m.size);
        ++s.executions;
        runs_[info.pc].note(s, m.value);

        analysis::ByteAttribution sourced;
        if (shadow_.load(info.pc, m.addr, m.size, m.value, &sourced)
            == analysis::LoadClass::Redundant) {
            ++report_.redundantLoads;
            ++s.redundant;
        }
        // Credit the store sites whose output this load consumed.
        for (int i = 0; i < sourced.count; ++i) {
            const auto &e =
                sourced.edges[static_cast<std::size_t>(i)];
            if (e.pc != analysis::kNoShadowPc)
                report_.sites[e.pc].downstreamReadBytes += e.bytes;
        }
        return;
    }

    ++report_.stores;
    analysis::RedundancySite &s = site(info.pc, false, m.size);
    ++s.executions;
    runs_[info.pc].note(s, m.value);

    analysis::ByteAttribution killed;
    if (shadow_.store(info.pc, m.addr, m.size, m.value, m.oldValue,
                      &killed)
        == analysis::StoreClass::Silent) {
        ++report_.silentStores;
        ++s.silent;
    }
    // Bytes this store overwrote before any load read them: dead at
    // the victim site, with a killer edge back to us.
    for (int i = 0; i < killed.count; ++i) {
        const auto &e = killed.edges[static_cast<std::size_t>(i)];
        if (e.pc == analysis::kNoShadowPc)
            continue;
        analysis::RedundancySite &victim = report_.sites[e.pc];
        victim.deadBytes += e.bytes;
        victim.killers[info.pc] += e.bytes;
        report_.deadStoreBytes += e.bytes;
    }
}

const analysis::ShadowReport &
ShadowProfiler::report()
{
    for (auto &[pc, tracker] : runs_)
        tracker.flush(report_.sites[pc]);
    shadow_.finalizeDead([this](std::uint32_t pc,
                                std::uint64_t bytes) {
        report_.sites[pc].deadAtExitBytes += bytes;
        report_.deadAtExitBytes += bytes;
    });
    return report_;
}

analysis::ShadowReport
profileShadow(const isa::Program &prog, std::uint64_t max_insts)
{
    ShadowProfiler prof;
    cpu::FunctionalRunner runner(prog);
    runner.setObserver([&prof](const cpu::StepInfo &info, int depth) {
        prof.observeStep(info, depth);
    });
    runner.run(max_insts);
    return prof.report();
}

} // namespace dttsim::profile
