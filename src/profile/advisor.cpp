#include "profile/advisor.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/analyzer.h"
#include "common/stats.h"
#include "cpu/executor.h"
#include "profile/shadowprof.h"

namespace dttsim::profile {

namespace {

/**
 * Deterministic ranking: presort by PC, then a stable sort on the
 * score alone — equal-score candidates keep ascending-PC order on
 * every platform regardless of how the accumulation map iterated.
 */
template <typename Key>
void
rankCandidates(std::vector<TriggerCandidate> &out, Key key,
               std::size_t top_k)
{
    std::sort(out.begin(), out.end(),
              [](const TriggerCandidate &a, const TriggerCandidate &b) {
                  return a.storePc < b.storePc;
              });
    std::stable_sort(
        out.begin(), out.end(),
        [&](const TriggerCandidate &a, const TriggerCandidate &b) {
            return key(a) > key(b);
        });
    if (out.size() > top_k)
        out.resize(top_k);
}

/** Per-static-store accumulators. */
struct StoreStats
{
    std::uint64_t executions = 0;
    std::uint64_t silent = 0;
    std::uint64_t downstreamReads = 0;
};

/** Live ownership of one address by its last static writer. */
struct AddrState
{
    std::uint64_t writerPc = 0;
    std::uint64_t reads = 0;
    bool valid = false;
};

} // namespace

std::vector<TriggerCandidate>
adviseTriggers(const isa::Program &prog, std::size_t top_k,
               AdvisorRanking ranking, std::uint64_t max_insts)
{
    if (ranking == AdvisorRanking::ShadowProfile)
        return adviseFromShadow(profileShadow(prog, max_insts), prog,
                                top_k);

    std::unordered_map<std::uint64_t, StoreStats> stores;
    std::unordered_map<Addr, AddrState> owners;

    cpu::FunctionalRunner runner(prog);
    runner.setObserver([&](const cpu::StepInfo &info, int depth) {
        if (depth != 0 || !info.mem.valid)
            return;
        if (info.mem.isLoad) {
            auto it = owners.find(info.mem.addr);
            if (it != owners.end() && it->second.valid)
                ++it->second.reads;
            return;
        }
        // A store: credit the previous owner, then take ownership.
        StoreStats &st = stores[info.pc];
        ++st.executions;
        if (info.mem.oldValue == info.mem.value)
            ++st.silent;
        AddrState &owner = owners[info.mem.addr];
        if (owner.valid)
            stores[owner.writerPc].downstreamReads += owner.reads;
        owner.writerPc = info.pc;
        owner.reads = 0;
        owner.valid = true;
    });
    runner.run(max_insts);

    // Flush reads credited to final owners.
    for (const auto &[addr, owner] : owners) {
        (void)addr;
        if (owner.valid)
            stores[owner.writerPc].downstreamReads += owner.reads;
    }

    // Static safety verdicts: never recommend converting a store the
    // analyzer cannot prove safe (racy with an existing thread body,
    // inside one, or already triggering).
    analysis::AnalyzeOptions aopts;
    aopts.lint = false;
    analysis::AnalysisResult safety = analysis::analyze(prog, aopts);

    std::vector<TriggerCandidate> out;
    out.reserve(stores.size());
    for (const auto &[pc, st] : stores) {
        if (st.executions < 8)
            continue;  // noise filter
        if (!safety.storeSafe(pc))
            continue;  // statically unsafe to convert
        TriggerCandidate c;
        c.storePc = pc;
        c.executions = st.executions;
        c.silent = st.silent;
        c.downstreamReads = st.downstreamReads;
        c.silentPct = pct(st.silent, st.executions);
        c.meanReadsPerStore = st.executions
            ? static_cast<double>(st.downstreamReads)
                / static_cast<double>(st.executions)
            : 0.0;
        double silent_frac = st.executions
            ? static_cast<double>(st.silent)
                / static_cast<double>(st.executions)
            : 0.0;
        c.triggerScore = silent_frac * c.meanReadsPerStore;
        c.eliminationScore =
            static_cast<double>(st.silent) * c.meanReadsPerStore;
        out.push_back(c);
    }
    rankCandidates(out,
                   [ranking](const TriggerCandidate &c) {
                       return ranking == AdvisorRanking::TriggerData
                           ? c.triggerScore : c.eliminationScore;
                   },
                   top_k);
    return out;
}

std::vector<TriggerCandidate>
adviseFromShadow(const analysis::ShadowReport &shadow,
                 const isa::Program &prog, std::size_t top_k)
{
    analysis::AnalyzeOptions aopts;
    aopts.lint = false;
    analysis::AnalysisResult safety = analysis::analyze(prog, aopts);

    std::vector<TriggerCandidate> out;
    for (const auto &[pc, site] : shadow.sites) {
        if (site.isLoad)
            continue;
        if (site.executions < 8)
            continue;  // noise filter (as adviseTriggers)
        if (!safety.storeSafe(pc))
            continue;  // statically unsafe to convert
        TriggerCandidate c;
        c.storePc = pc;
        c.executions = site.executions;
        c.silent = site.silent;
        // Byte mass -> access events, normalized by the site's width.
        c.downstreamReads = site.width != 0
            ? site.downstreamReadBytes / site.width
            : 0;
        c.silentPct = pct(site.silent, site.executions);
        c.meanReadsPerStore =
            static_cast<double>(c.downstreamReads)
            / static_cast<double>(site.executions);
        c.triggerScore = site.silentFrac() * c.meanReadsPerStore;
        c.eliminationScore =
            static_cast<double>(site.silent) * c.meanReadsPerStore;
        out.push_back(c);
    }
    rankCandidates(out,
                   [](const TriggerCandidate &c) {
                       return c.triggerScore;
                   },
                   top_k);
    return out;
}

} // namespace dttsim::profile
