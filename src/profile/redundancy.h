#pragma once

/**
 * @file
 * Redundant-load and silent-store profiler — the characterization
 * behind the paper's motivating claim that 78% of all loads fetch
 * redundant data (Fig. 2) and its companion silent-store rate
 * (Fig. 4).
 *
 * Definitions (matching the paper's):
 *  - a *redundant load* returns the same value from the same address
 *    as the previous load of that address;
 *  - a *silent store* writes the value the location already holds.
 */

#include <cstdint>
#include <map>

#include "common/stats.h"
#include "isa/program.h"

namespace dttsim::profile {

/** Dynamic behaviour of one static load (keyed by PC). */
struct PcLoadStats
{
    std::uint64_t executions = 0;
    std::uint64_t redundant = 0;
};

/** Characterization counters from one functional run. */
struct RedundancyReport
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t redundantLoads = 0;
    std::uint64_t stores = 0;
    std::uint64_t silentStores = 0;

    /** Per static load: how often it ran and how often it fetched a
     *  value identical to the previous load of that address. Lets
     *  dttlint cross-check its static redundant-load findings. */
    std::map<std::uint64_t, PcLoadStats> perPcLoads;

    double
    redundantLoadPct() const
    {
        return pct(redundantLoads, loads);
    }

    double
    silentStorePct() const
    {
        return pct(silentStores, stores);
    }
};

/**
 * Functionally execute @p prog (inline-DTT semantics) and classify
 * every load and store of the *main thread*.
 */
RedundancyReport profileRedundancy(const isa::Program &prog,
                                   std::uint64_t max_insts = 1ull << 32);

} // namespace dttsim::profile
