#pragma once

/**
 * @file
 * Dynamic instruction-reuse profiler — the "redundant computation"
 * ceiling (Fig. 3): the fraction of dynamic instructions that repeat
 * an earlier execution of the same static instruction with identical
 * source operands (and, for loads, an identical memory value), hence
 * necessarily produce the same result.
 */

#include <cstdint>

#include "common/stats.h"
#include "isa/program.h"

namespace dttsim::profile {

/** Reuse-ceiling counters from one functional run. */
struct ReuseReport
{
    std::uint64_t instructions = 0;  ///< classified (main thread)
    std::uint64_t loads = 0;
    /** Matches within an 8-entry LRU reuse buffer per static
     *  instruction (a realistic hardware structure). */
    std::uint64_t reusable = 0;
    std::uint64_t reusableLoads = 0;
    /** Matches against *every* prior execution of the static
     *  instruction (unbounded memoization — the redundancy ceiling
     *  data-triggered threads draw from). */
    std::uint64_t reusableInf = 0;
    std::uint64_t reusableLoadsInf = 0;

    double reusePct() const { return pct(reusable, instructions); }
    double loadReusePct() const { return pct(reusableLoads, loads); }
    double
    reuseInfPct() const
    {
        return pct(reusableInf, instructions);
    }
    double
    loadReuseInfPct() const
    {
        return pct(reusableLoadsInf, loads);
    }
};

/**
 * Functionally execute @p prog and measure per-static-instruction
 * operand reuse on the main thread.
 */
ReuseReport profileReuse(const isa::Program &prog,
                         std::uint64_t max_insts = 1ull << 32);

} // namespace dttsim::profile
