#pragma once

/**
 * @file
 * Shadow-memory profiler: feeds committed loads and stores into
 * analysis::ShadowMemory and accumulates the per-PC RedundancySite
 * map. One class, two mouths — it is a cpu::CommitObserver (attach
 * to an OooCore for timing-accurate commit-order profiling) and a
 * functional-runner observer (profileShadow() for the fast path the
 * advisor and dttlint use). Both orders classify identically for the
 * main thread because OooCore commits in per-context program order.
 *
 * The profiler is self-contained — no globals, no thread-locals — so
 * any number of instances can run concurrently (one per engine job)
 * with deterministic, thread-count-independent reports.
 */

#include <cstdint>
#include <map>

#include "analysis/shadow.h"
#include "cpu/executor.h"
#include "isa/program.h"

namespace dttsim::profile {

/** Accumulates a ShadowReport from committed instructions. */
class ShadowProfiler : public cpu::CommitObserver
{
  public:
    /** @p main_only restricts classification to context 0 (the main
     *  thread), matching the functional profiler's convention; pass
     *  false to profile DTT handler contexts too. */
    explicit ShadowProfiler(bool main_only = true)
        : mainOnly_(main_only)
    {
    }

    /** Commit hook (timing core path). */
    void onCommit(const cpu::StepInfo &info, CtxId ctx) override;

    /** Functional-runner observer adapter: @p depth 0 is the main
     *  thread, >0 a handler nesting level. */
    void
    observeStep(const cpu::StepInfo &info, int depth)
    {
        onCommit(info, static_cast<CtxId>(depth));
    }

    /**
     * Finalize and return the report: flushes open value runs and
     * sweeps the shadow for dead-at-exit bytes. Idempotent; the
     * profiler keeps accepting commits afterwards (later reports
     * re-finalize over the extended run).
     */
    const analysis::ShadowReport &report();

  private:
    analysis::RedundancySite &site(std::uint64_t pc, bool is_load,
                                   int width);

    bool mainOnly_;
    analysis::ShadowMemory shadow_;
    analysis::ShadowReport report_;
    std::map<std::uint64_t, analysis::ValueRunTracker> runs_;
};

/**
 * Functionally execute @p prog (inline-DTT semantics) and return its
 * shadow profile, classifying the main thread only.
 */
analysis::ShadowReport profileShadow(const isa::Program &prog,
                                     std::uint64_t max_insts
                                     = 1ull << 32);

} // namespace dttsim::profile
