#pragma once

/**
 * @file
 * Trigger advisor: the compiler-support side of the DTT proposal.
 * Given a *baseline* program, rank its static stores by how much
 * redundant downstream computation a data-triggered thread attached
 * to them could eliminate.
 *
 * For each static store the advisor measures, over a functional run:
 *  - how often it executes and how often it is silent (writes the
 *    value already present) — silent stores are pure elimination;
 *  - how many loads read the stored value before it is overwritten —
 *    a proxy for the amount of computation consuming that datum.
 *
 * The score is silent-fraction x mean-downstream-reads x executions:
 * stores that frequently rewrite unchanged, heavily re-read data are
 * exactly where the paper's transformation pays off (e.g. the arc
 * cost stores feeding mcf's refresh_potential).
 */

#include <cstdint>
#include <vector>

#include "analysis/shadow.h"
#include "isa/program.h"

namespace dttsim::profile {

/** One ranked static-store candidate. */
struct TriggerCandidate
{
    std::uint64_t storePc = 0;
    std::uint64_t executions = 0;
    std::uint64_t silent = 0;
    std::uint64_t downstreamReads = 0;   ///< loads before overwrite
    double silentPct = 0.0;
    double meanReadsPerStore = 0.0;
    /**
     * Trigger-data quality: silent-fraction x mean downstream reads.
     * High for sparse updates of heavily-consumed data — the stores
     * to convert into triggering stores.
     */
    double triggerScore = 0.0;
    /**
     * Redundant-computation volume: silent executions x mean reads.
     * High for the *output* stores of redundant computation (e.g.
     * refresh_potential's potential[] writes) — the code a DTT
     * handler should absorb.
     */
    double eliminationScore = 0.0;
};

/**
 * Which score orders the returned ranking. ShadowProfile ranks by
 * triggerScore like TriggerData but measures through the shadow
 * profiler's byte-granular site map instead of the legacy
 * address-ownership walk — exact under overlapping and partial-width
 * accesses, and the end-to-end automatic path (shadow profile ->
 * candidate ranking) the ROADMAP asks for.
 */
enum class AdvisorRanking {
    TriggerData,
    RedundantComputation,
    ShadowProfile,
};

/**
 * Rank the static stores of @p prog (run functionally to HALT).
 * Stores executing fewer than 8 times are filtered as noise, and so
 * is every store the static analyzer (analysis::analyze) judges
 * unsafe to convert — stores inside DTT thread bodies, stores to data
 * an existing thread body also writes, and stores that already
 * trigger. On a baseline program (no handlers) the filter is a no-op.
 * @param top_k maximum candidates returned (score-descending).
 */
std::vector<TriggerCandidate>
adviseTriggers(const isa::Program &prog, std::size_t top_k = 10,
               AdvisorRanking ranking = AdvisorRanking::TriggerData,
               std::uint64_t max_insts = 1ull << 32);

/**
 * Rank trigger candidates from an existing shadow profile of @p prog
 * (see profile::profileShadow). Applies the same noise (executions
 * < 8) and static-safety filters as adviseTriggers; downstream reads
 * are derived from the site's byte-granular downstreamReadBytes
 * normalized by its access width. Candidates are returned
 * triggerScore-descending with a deterministic PC tie-break.
 */
std::vector<TriggerCandidate>
adviseFromShadow(const analysis::ShadowReport &shadow,
                 const isa::Program &prog, std::size_t top_k = 10);

} // namespace dttsim::profile
