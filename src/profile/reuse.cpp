#include "profile/reuse.h"

#include <cstring>
#include <unordered_set>
#include <vector>

#include "common/reuse_buffer.h"
#include "cpu/executor.h"
#include "isa/operands.h"

namespace dttsim::profile {

namespace {

/** 64-bit mix for the unbounded-memo tuple hash. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    return h ^ (h >> 33);
}

std::uint64_t
probeHash(std::uint64_t pc, const ReuseProbe &p)
{
    std::uint64_t h = mix(0x12345678, pc);
    h = mix(h, p.src[0]);
    h = mix(h, p.src[1]);
    h = mix(h, static_cast<std::uint64_t>(p.numSrc));
    if (p.hasMem) {
        h = mix(h, p.addr);
        h = mix(h, p.memValue);
        h = mix(h, 1);
    }
    return h;
}

std::uint64_t
bits(double d)
{
    std::uint64_t v;
    std::memcpy(&v, &d, 8);
    return v;
}

} // namespace

ReuseReport
profileReuse(const isa::Program &prog, std::uint64_t max_insts)
{
    ReuseReport report;
    ReuseBufferSet buffers(prog.size(), 8);
    std::unordered_set<std::uint64_t> seen;  // unbounded ceiling

    mem::Memory memory;
    cpu::loadData(prog, memory);
    cpu::ArchState st;
    st.reset(prog.entry(), cpu::stackFor(0));

    // Reuse profiling runs the program *without* DTT servicing: it
    // characterizes the baseline program, where triggering stores are
    // plain stores. A null hooks pointer gives exactly that.
    for (std::uint64_t n = 0; n < max_insts; ++n) {
        std::uint64_t pc = st.pc;
        const isa::Inst &inst = prog.at(pc);

        // Capture source operand values before execution.
        ReuseProbe probe;
        isa::forEachSource(inst, [&](bool is_fp, int idx) {
            if (probe.numSrc < 2)
                probe.src[probe.numSrc++] = is_fp
                    ? bits(st.getF(idx))
                    : st.getX(idx);
        });

        cpu::StepInfo info = cpu::step(st, memory, prog, nullptr);
        if (info.halted)
            break;
        if (inst.op == isa::Opcode::NOP
            || inst.op == isa::Opcode::HALT)
            continue;

        ++report.instructions;
        bool is_load = info.mem.valid && info.mem.isLoad;
        if (is_load)
            ++report.loads;

        probe.hasMem = info.mem.valid;
        probe.addr = info.mem.addr;
        probe.memValue = info.mem.value;

        if (buffers.lookupInsert(pc, probe)) {
            ++report.reusable;
            if (is_load)
                ++report.reusableLoads;
        }
        if (!seen.insert(probeHash(pc, probe)).second) {
            ++report.reusableInf;
            if (is_load)
                ++report.reusableLoadsInf;
        }
    }
    return report;
}

} // namespace dttsim::profile
