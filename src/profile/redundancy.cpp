#include "profile/redundancy.h"

#include <unordered_map>

#include "cpu/executor.h"

namespace dttsim::profile {

RedundancyReport
profileRedundancy(const isa::Program &prog, std::uint64_t max_insts)
{
    RedundancyReport report;
    std::unordered_map<Addr, std::uint64_t> last_loaded;

    cpu::FunctionalRunner runner(prog);
    runner.setObserver([&](const cpu::StepInfo &info, int depth) {
        if (depth != 0)
            return;  // classify the main thread only
        ++report.instructions;
        if (!info.mem.valid)
            return;
        if (info.mem.isLoad) {
            ++report.loads;
            PcLoadStats &pcStats = report.perPcLoads[info.pc];
            ++pcStats.executions;
            auto [it, inserted] =
                last_loaded.try_emplace(info.mem.addr, info.mem.value);
            if (!inserted) {
                if (it->second == info.mem.value) {
                    ++report.redundantLoads;
                    ++pcStats.redundant;
                }
                it->second = info.mem.value;
            }
        } else {
            ++report.stores;
            if (info.mem.oldValue == info.mem.value)
                ++report.silentStores;
        }
    });
    runner.run(max_insts);
    return report;
}

} // namespace dttsim::profile
