#include "profile/redundancy.h"

#include "profile/shadowprof.h"

namespace dttsim::profile {

RedundancyReport
profileRedundancy(const isa::Program &prog, std::uint64_t max_insts)
{
    // Classification runs on byte-granular shadow cells (see
    // docs/SHADOW.md), so overlapping and partial-width accesses — a
    // byte store inside a previously-loaded word, mixed-width loads
    // of one address — classify exactly. The legacy per-address
    // value map this replaces treated such accesses as unrelated.
    ShadowProfiler prof;
    cpu::FunctionalRunner runner(prog);
    runner.setObserver([&prof](const cpu::StepInfo &info, int depth) {
        prof.observeStep(info, depth);
    });
    runner.run(max_insts);
    const analysis::ShadowReport &shadow = prof.report();

    RedundancyReport report;
    report.instructions = shadow.instructions;
    report.loads = shadow.loads;
    report.redundantLoads = shadow.redundantLoads;
    report.stores = shadow.stores;
    report.silentStores = shadow.silentStores;
    for (const auto &[pc, site] : shadow.sites)
        if (site.isLoad)
            report.perPcLoads[pc] = {site.executions, site.redundant};
    return report;
}

} // namespace dttsim::profile
