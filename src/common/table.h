#pragma once

/**
 * @file
 * ASCII table renderer used by the benchmark harness to print the
 * rows/series of each reproduced figure and table.
 */

#include <string>
#include <vector>

namespace dttsim {

/** Column-aligned ASCII table with a title and header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cols);

    /** Append a data row; must match the header column count. */
    void row(std::vector<std::string> cols);

    /** Convenience cell formatters. */
    static std::string num(double v, int precision = 2);
    static std::string num(std::uint64_t v);
    static std::string pctCell(double v, int precision = 1);

    /** Render the table (title, rule, header, rows). */
    std::string render() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dttsim
