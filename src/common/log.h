#pragma once

/**
 * @file
 * Error and status reporting helpers, following the gem5 idiom:
 * panic() for internal invariant violations (simulator bugs) and
 * fatal() for unrecoverable user/configuration errors. Both throw
 * typed exceptions rather than aborting so the library stays usable
 * (and testable) when embedded.
 */

#include <cstdio>
#include <stdexcept>
#include <string>

namespace dttsim {

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to user input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug. Never returns.
 * @param fmt printf-style message.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad config, bad program).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace dttsim
