#pragma once

/**
 * @file
 * Per-static-instruction reuse buffers (Sodani & Sohi-style): a small
 * fully-associative LRU set of remembered executions keyed by source
 * operand values (and, for memory operations, address + memory
 * value). Shared by the reuse profiler and the hardware
 * instruction-reuse comparison machine in the timing core.
 */

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dttsim {

/** One execution signature of a static instruction. */
struct ReuseProbe
{
    std::uint64_t src[2] = {0, 0};
    int numSrc = 0;
    bool hasMem = false;
    Addr addr = 0;
    std::uint64_t memValue = 0;

    bool
    matches(const ReuseProbe &o) const
    {
        return numSrc == o.numSrc && src[0] == o.src[0]
            && src[1] == o.src[1] && hasMem == o.hasMem
            && (!hasMem || (addr == o.addr && memValue == o.memValue));
    }
};

/** A set of per-PC reuse buffers. */
class ReuseBufferSet
{
  public:
    /**
     * @param num_pcs static instruction count (buffers allocated
     *        lazily per PC).
     * @param entries_per_pc LRU capacity of each buffer.
     */
    ReuseBufferSet(std::size_t num_pcs, int entries_per_pc)
        : buffers_(num_pcs), entriesPerPc_(entries_per_pc)
    {
    }

    /**
     * Probe PC's buffer; on hit, refresh LRU and return true. On
     * miss, insert the probe (evicting LRU) and return false.
     */
    bool
    lookupInsert(std::uint64_t pc, const ReuseProbe &probe)
    {
        auto &buf = buffers_[pc];
        for (std::size_t i = 0; i < buf.size(); ++i) {
            if (buf[i].matches(probe)) {
                ReuseProbe hit = buf[i];
                buf.erase(buf.begin() + static_cast<long>(i));
                buf.push_back(hit);
                return true;
            }
        }
        if (buf.size() >= static_cast<std::size_t>(entriesPerPc_))
            buf.erase(buf.begin());
        buf.push_back(probe);
        return false;
    }

  private:
    std::vector<std::vector<ReuseProbe>> buffers_;
    int entriesPerPc_;
};

} // namespace dttsim
