#include "common/options.h"

#include <cstdlib>

#include "common/log.h"

namespace dttsim {

Options::Options(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq == std::string::npos)
            values_[arg] = "1";
        else
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Options::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    return it == values_.end()
        ? fallback : std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end()
        ? fallback : std::strtod(it->second.c_str(), nullptr);
}

} // namespace dttsim
