#pragma once

/**
 * @file
 * Lightweight statistics primitives: named scalar counters, ratios and
 * histograms grouped per simulator component. Components expose a
 * StatGroup; the simulator facade aggregates them into reports.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dttsim {

/** A monotonically increasing scalar event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Fixed-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param num_buckets number of equal-width buckets.
     * @param bucket_width width of each bucket in sample units.
     */
    explicit Histogram(std::size_t num_buckets = 16,
                       std::uint64_t bucket_width = 1)
        : buckets_(num_buckets, 0), width_(bucket_width)
    {}

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        ++count_;
        sum_ += v;
        if (v > max_) max_ = v;
        std::size_t idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size())
            ++overflow_;
        else
            ++buckets_[idx];
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t overflow() const { return overflow_; }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = sum_ = max_ = overflow_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t width_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * A named collection of counters belonging to one component. Counters
 * register themselves by name so reports can be rendered generically.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Create (or fetch) a named counter owned by this group. */
    Counter &counter(const std::string &stat_name);

    /** Read a named counter; returns 0 for unknown names. */
    std::uint64_t get(const std::string &stat_name) const;

    /** All (name, value) pairs in registration order. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

    const std::string &name() const { return name_; }

    /** Reset every counter in the group. */
    void reset();

  private:
    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, Counter> counters_;
};

/** Percentage helper: 100 * num / den, 0 when den == 0. */
inline double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num)
        / static_cast<double>(den);
}

/** Ratio helper: num / den, 0 when den == 0. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num)
        / static_cast<double>(den);
}

} // namespace dttsim
