#pragma once

/**
 * @file
 * Fundamental integer typedefs shared by every dttsim module.
 */

#include <cstdint>

namespace dttsim {

/** Byte address in the simulated 64-bit physical address space. */
using Addr = std::uint64_t;

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Global dynamic-instruction sequence number (allocation order). */
using SeqNum = std::uint64_t;

/** Hardware thread (SMT) context identifier. */
using CtxId = int;

/** Static trigger identifier indexing the DTT thread registry. */
using TriggerId = int;

/** Value of an architectural register (integer view). */
using RegVal = std::uint64_t;

/** Sentinel for "no context". */
inline constexpr CtxId invalidCtx = -1;

/** Sentinel for "no trigger attached". */
inline constexpr TriggerId invalidTrigger = -1;

/**
 * Why a simulation stopped. Structured so harness tables, the JSON
 * schema and scripts can tell a clean finish from a hang without
 * parsing free text:
 *  - Halted: the main thread committed HALT (the only success);
 *  - CycleLimit: the run burned its maxCycles budget while still
 *    committing (e.g. an infinite loop);
 *  - Deadlock: the forward-progress watchdog saw no commit on any
 *    context for a full window (livelock/starvation);
 *  - Diverged: a differential check found the architectural state
 *    differs from the golden run (set by sim::DiffChecker, never by
 *    the core itself).
 */
enum class HaltReason : std::uint8_t {
    Halted,
    CycleLimit,
    Deadlock,
    Diverged,
};

/** Stable short name ("halted"/"cycle-limit"/"deadlock"/"diverged"),
 *  used by reports and the JSON results schema. */
constexpr const char *
haltReasonName(HaltReason r)
{
    switch (r) {
      case HaltReason::Halted: return "halted";
      case HaltReason::CycleLimit: return "cycle-limit";
      case HaltReason::Deadlock: return "deadlock";
      case HaltReason::Diverged: return "diverged";
    }
    return "?";
}

} // namespace dttsim
