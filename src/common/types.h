#pragma once

/**
 * @file
 * Fundamental integer typedefs shared by every dttsim module.
 */

#include <cstdint>

namespace dttsim {

/** Byte address in the simulated 64-bit physical address space. */
using Addr = std::uint64_t;

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Global dynamic-instruction sequence number (allocation order). */
using SeqNum = std::uint64_t;

/** Hardware thread (SMT) context identifier. */
using CtxId = int;

/** Static trigger identifier indexing the DTT thread registry. */
using TriggerId = int;

/** Value of an architectural register (integer view). */
using RegVal = std::uint64_t;

/** Sentinel for "no context". */
inline constexpr CtxId invalidCtx = -1;

/** Sentinel for "no trigger attached". */
inline constexpr TriggerId invalidTrigger = -1;

} // namespace dttsim
