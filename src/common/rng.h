#pragma once

/**
 * @file
 * Deterministic pseudo-random number generator used by workload input
 * generators and randomized tests. A small xoshiro256** implementation
 * is used instead of std::mt19937 so the stream is stable across
 * standard-library versions (results in EXPERIMENTS.md stay
 * reproducible bit-for-bit).
 */

#include <cstdint>

namespace dttsim {

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dttsim
