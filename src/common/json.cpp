#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace dttsim::json {

Value
Value::array()
{
    Value v;
    v.type_ = Type::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.type_ = Type::Object;
    return v;
}

bool
Value::isUint() const
{
    switch (type_) {
      case Type::Uint:
        return true;
      case Type::Int:
        return int_ >= 0;
      case Type::Double:
        return double_ >= 0 && std::floor(double_) == double_
            && double_ <= 18446744073709549568.0;
      default:
        return false;
    }
}

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: asBool() on a non-bool value");
    return bool_;
}

std::uint64_t
Value::asUint() const
{
    if (!isUint())
        fatal("json: asUint() on a non-unsigned-integer value");
    switch (type_) {
      case Type::Uint:
        return uint_;
      case Type::Int:
        return static_cast<std::uint64_t>(int_);
      default:
        return static_cast<std::uint64_t>(double_);
    }
}

std::int64_t
Value::asInt() const
{
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        if (uint_ > static_cast<std::uint64_t>(INT64_MAX))
            fatal("json: asInt() overflow");
        return static_cast<std::int64_t>(uint_);
      case Type::Double:
        if (std::floor(double_) != double_)
            fatal("json: asInt() on a fractional number");
        return static_cast<std::int64_t>(double_);
      default:
        fatal("json: asInt() on a non-number value");
    }
}

double
Value::asDouble() const
{
    switch (type_) {
      case Type::Uint:
        return static_cast<double>(uint_);
      case Type::Int:
        return static_cast<double>(int_);
      case Type::Double:
        return double_;
      default:
        fatal("json: asDouble() on a non-number value");
    }
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        fatal("json: asString() on a non-string value");
    return string_;
}

void
Value::push(Value v)
{
    if (type_ != Type::Array)
        fatal("json: push() on a non-array value");
    array_.push_back(std::move(v));
}

void
Value::set(const std::string &key, Value v)
{
    if (type_ != Type::Object)
        fatal("json: set() on a non-object value");
    for (auto &m : object_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

std::size_t
Value::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    fatal("json: size() on a non-aggregate value");
}

const Value &
Value::at(std::size_t i) const
{
    if (type_ != Type::Array)
        fatal("json: at() on a non-array value");
    if (i >= array_.size())
        fatal("json: index %zu out of range (size %zu)", i,
              array_.size());
    return array_[i];
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("json: find() on a non-object value");
    for (const auto &m : object_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const Value &
Value::get(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing required member '%s'", key.c_str());
    return *v;
}

namespace {

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[40];
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Uint:
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        break;
      case Type::Int:
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      case Type::Double:
        if (!std::isfinite(double_)) {
            // JSON has no Inf/NaN; emit null (validators flag it).
            out += "null";
            break;
        }
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
        break;
      case Type::String:
        escapeTo(out, string_);
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, object_[i].first);
            out += indent < 0 ? ":" : ": ";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a complete document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("json: parse error at offset %zu: %s", pos_, what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::string(w).size();
        if (s_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned code = static_cast<unsigned>(std::strtoul(
                    s_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // ASCII only; anything else becomes '?'. The emitter
                // never produces non-ASCII escapes.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Value
    number()
    {
        std::size_t start = pos_;
        bool negative = peek() == '-';
        if (negative)
            ++pos_;
        bool floating = false;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+'
                       || c == '-') {
                floating = true;
                ++pos_;
            } else {
                break;
            }
        }
        std::string tok = s_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("malformed number");
        if (!floating) {
            errno = 0;
            if (negative) {
                std::int64_t v =
                    std::strtoll(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Value(v);
            } else {
                std::uint64_t v =
                    std::strtoull(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Value(v);
            }
        }
        return Value(std::strtod(tok.c_str(), nullptr));
    }

    Value
    value()
    {
        skipWs();
        char c = peek();
        if (c == '{') {
            ++pos_;
            Value obj = Value::object();
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            while (true) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                obj.set(key, value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return obj;
            }
        }
        if (c == '[') {
            ++pos_;
            Value arr = Value::array();
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            while (true) {
                arr.push(value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return arr;
            }
        }
        if (c == '"')
            return Value(string());
        if (c == 't' && consumeWord("true"))
            return Value(true);
        if (c == 'f' && consumeWord("false"))
            return Value(false);
        if (c == 'n' && consumeWord("null"))
            return Value();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        fail("unexpected character at start of value");
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string &text)
{
    return Parser(text).document();
}

std::optional<Value>
Value::tryParse(const std::string &text, std::string *error)
{
    // The recoverable entry point for data we do not control (e.g.
    // result-cache records on disk, which a crash can truncate): a
    // malformed document becomes a skippable error, not a fatal().
    try {
        return Parser(text).document();
    } catch (const FatalError &e) {
        if (error != nullptr)
            *error = e.what();
        return std::nullopt;
    }
}

} // namespace dttsim::json
