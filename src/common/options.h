#pragma once

/**
 * @file
 * Minimal command-line option parser for the bench/example binaries.
 * Supports "--key=value" and "--flag" styles only, which is all the
 * harness needs; anything fancier should use a real library.
 */

#include <cstdint>
#include <map>
#include <string>

namespace dttsim {

/** Parsed "--key=value" command-line options. */
class Options
{
  public:
    /** Parse argv; unknown positional arguments raise fatal(). */
    Options(int argc, const char *const *argv);

    /** True if --name or --name=... was given. */
    bool has(const std::string &name) const;

    /** String value of --name=value, or fallback. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name=value, or fallback. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Double value of --name=value, or fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Every parsed option, for tools that reject unknown flags. */
    const std::map<std::string, std::string> &all() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace dttsim
