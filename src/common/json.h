#pragma once

/**
 * @file
 * Minimal JSON document model for the structured-results pipeline:
 * enough to emit schema-versioned benchmark records and to parse them
 * back for validation and round-trip tests. Integers are kept as
 * 64-bit values (not doubles) so simulator counters survive a
 * dump/parse cycle bit-exactly; object member order is preserved so
 * emitted files are stable across runs.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dttsim::json {

/** One JSON value (null, bool, number, string, array or object). */
class Value
{
  public:
    enum class Type { Null, Bool, Uint, Int, Double, String, Array, Object };

    Value() = default;
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Value(std::int64_t v) : type_(Type::Int), int_(v) {}
    Value(int v) : type_(Type::Int), int_(v) {}
    Value(double v) : type_(Type::Double), double_(v) {}
    Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Value(const char *s) : type_(Type::String), string_(s) {}

    /** Empty-aggregate factories (an empty Value is null, not {}). */
    static Value array();
    static Value object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Any numeric type (unsigned, signed or floating). */
    bool isNumber() const
    {
        return type_ == Type::Uint || type_ == Type::Int
            || type_ == Type::Double;
    }
    /** A number with no fractional part that fits std::uint64_t. */
    bool isUint() const;

    // Accessors; fatal() on type mismatch.
    bool asBool() const;
    std::uint64_t asUint() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Append to an array value. */
    void push(Value v);
    /** Set (append or overwrite) an object member. */
    void set(const std::string &key, Value v);

    /** Array/object element count. */
    std::size_t size() const;
    /** Array element; fatal() when out of range. */
    const Value &at(std::size_t i) const;
    /** Object member or nullptr. */
    const Value *find(const std::string &key) const;
    /** Object member; fatal() when missing. */
    const Value &get(const std::string &key) const;

    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return object_;
    }

    /**
     * Serialize. @p indent < 0 renders compact single-line JSON;
     * otherwise pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse a complete JSON document; throws FatalError on syntax
     *  errors or trailing garbage. */
    static Value parse(const std::string &text);

    /**
     * Recoverable variant of parse() for documents the process does
     * not control (result-cache records, resumed manifests): returns
     * nullopt and fills @p error instead of raising, so a corrupt
     * record can be skipped with a warning rather than killing the
     * run.
     */
    static std::optional<Value> tryParse(const std::string &text,
                                         std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

} // namespace dttsim::json
