#include "common/stats.h"

namespace dttsim {

Counter &
StatGroup::counter(const std::string &stat_name)
{
    auto it = counters_.find(stat_name);
    if (it == counters_.end()) {
        order_.push_back(stat_name);
        it = counters_.emplace(stat_name, Counter()).first;
    }
    return it->second;
}

std::uint64_t
StatGroup::get(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(order_.size());
    for (const auto &n : order_)
        out.emplace_back(n, counters_.at(n).value());
    return out;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

} // namespace dttsim
