#include "common/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace dttsim {

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cols)
{
    if (!header_.empty() && cols.size() != header_.size())
        panic("TextTable row has %zu cells, header has %zu",
              cols.size(), header_.size());
    rows_.push_back(std::move(cols));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
TextTable::pctCell(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto line = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << (i ? "  " : "");
            os << c << std::string(widths[i] - c.size(), ' ');
        }
        std::string s = os.str();
        while (!s.empty() && s.back() == ' ')
            s.pop_back();
        return s + "\n";
    };

    std::size_t total = 0;
    for (auto w : widths)
        total += w;
    total += widths.empty() ? 0 : 2 * (widths.size() - 1);
    total = std::max(total, title_.size());

    std::ostringstream os;
    os << title_ << "\n" << std::string(total, '=') << "\n";
    if (!header_.empty()) {
        os << line(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        os << line(r);
    return os.str();
}

} // namespace dttsim
