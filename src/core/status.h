#pragma once

/**
 * @file
 * Thread status table: per-trigger bookkeeping the TWAIT/TCHK
 * instructions read — how many threads for the trigger are pending in
 * the queue, running on a context, or still in flight as uncommitted
 * triggering stores, plus the sticky overflow flag set when the Drop
 * full-queue policy rejects a firing.
 */

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dttsim::dtt {

/** Status of one trigger. */
struct TriggerStatus
{
    int running = 0;          ///< DTTs executing on a context
    int inflightTstores = 0;  ///< fetched-but-uncommitted tstores
    bool overflowed = false;  ///< Drop policy rejected a firing
};

/** Per-trigger status, plus which trigger each context is running. */
class ThreadStatusTable
{
  public:
    ThreadStatusTable(int max_triggers, int num_contexts);

    TriggerStatus &of(TriggerId t);
    const TriggerStatus &of(TriggerId t) const;

    /** Record that @p ctx started running a thread of trigger @p t. */
    void markRunning(TriggerId t, CtxId ctx);

    /** Record that @p ctx finished (TRET commit); returns trigger. */
    TriggerId markDone(CtxId ctx);

    /** Trigger running on @p ctx, or invalidTrigger. */
    TriggerId runningOn(CtxId ctx) const;

  private:
    void checkId(TriggerId t) const;

    std::vector<TriggerStatus> status_;
    std::vector<TriggerId> byCtx_;
};

} // namespace dttsim::dtt
