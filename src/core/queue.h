#pragma once

/**
 * @file
 * Thread queue: the hardware FIFO of pending triggered threads. A
 * fired trigger enqueues (trigger, address, value); the spawn logic
 * dequeues into free SMT contexts. Supports the paper's duplicate
 * squash: a firing that matches a pending (trigger, address) entry
 * coalesces into it instead of occupying a new slot.
 */

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace dttsim::dtt {

/** One pending triggered thread. */
struct PendingThread
{
    TriggerId trig = invalidTrigger;
    Addr addr = 0;
    std::uint64_t value = 0;
};

/** Result of an enqueue attempt. */
enum class EnqueueResult { Enqueued, Coalesced, Full };

/** Bounded FIFO of pending triggered threads. */
class ThreadQueue
{
  public:
    /**
     * @param capacity maximum pending entries.
     * @param coalesce enable same-(trigger,address) squash.
     */
    ThreadQueue(int capacity, bool coalesce);

    /** Try to add a fired trigger. */
    EnqueueResult push(const PendingThread &t);

    /** True when no entries are pending. */
    bool empty() const { return entries_.empty(); }

    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }

    /** Pending entries for one trigger (O(1)). */
    int pendingFor(TriggerId t) const;

    /** A pending entry with the same (trigger, address) exists. */
    bool hasDuplicate(TriggerId t, Addr addr) const;

    /**
     * Coalesce @p t into its pending duplicate regardless of the
     * configured coalesce mode (the SpuriousCoalesce fault site).
     * @pre hasDuplicate(t.trig, t.addr).
     */
    void forceCoalesce(const PendingThread &t);

    /**
     * Remove and return the oldest entry. @pre !empty(). Used by the
     * DropOldest degradation policy and the EvictPending fault site;
     * the caller owns the consequences (sticky overflow flag).
     */
    PendingThread evictOldest();

    /**
     * Re-insert a previously dequeued entry at the front ("un-pop"),
     * used when a fault squashes an in-flight thread and its work
     * item must go back. Coalesces into a matching pending duplicate
     * when the coalesce mode allows; otherwise inserts even past
     * capacity — the entry held a slot when it was dequeued, so
     * re-insertion reclaims it rather than losing the work.
     */
    void unpop(const PendingThread &t);

    /** Remove and return the oldest entry. @pre !empty(). */
    PendingThread pop();

    /**
     * Remove and return the oldest entry accepted by @p pred, or
     * nothing. Used by per-trigger serialization to skip triggers
     * that already have a running thread.
     */
    template <typename Pred>
    std::optional<PendingThread>
    popFirst(Pred &&pred)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (pred(*it)) {
                PendingThread t = *it;
                entries_.erase(it);
                --perTrigger_[static_cast<std::size_t>(t.trig)];
                ++stats_.counter("dequeues");
                return t;
            }
        }
        return std::nullopt;
    }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    int capacity_;
    bool coalesce_;
    std::deque<PendingThread> entries_;
    std::vector<int> perTrigger_;
    StatGroup stats_;
};

} // namespace dttsim::dtt
