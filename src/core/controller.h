#pragma once

/**
 * @file
 * DttController: the control logic of the data-triggered-threads
 * extension. It owns the thread registry, thread queue and thread
 * status table, and implements the paper's mechanisms:
 *
 *  - trigger evaluation at triggering-store commit, with silent-store
 *    suppression (a store that does not change the value fires no
 *    thread — this is what eliminates redundant computation);
 *  - duplicate squash (coalescing) of pending threads for the same
 *    (trigger, address);
 *  - full-queue handling (stall the store, or drop + sticky overflow
 *    flag for a software fallback);
 *  - spawning pending threads onto free SMT contexts;
 *  - the TWAIT condition the main thread uses as a consumption fence.
 */

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "core/dtt_config.h"
#include "core/queue.h"
#include "core/registry.h"
#include "core/status.h"

namespace dttsim::sim {
class FaultPlan;
} // namespace dttsim::sim

namespace dttsim::dtt {

/** Commit-time outcome of a triggering store. */
enum class TstoreOutcome {
    Silent,     ///< value unchanged; no thread fired
    Fired,      ///< enqueued a pending thread
    Coalesced,  ///< squashed into an existing pending thread
    Dropped,    ///< queue full, Drop policy: overflow flag set
    Stall,      ///< queue full, Stall policy: retry commit next cycle
};

/** Work item handed to the core's spawn logic. */
struct SpawnRequest
{
    bool valid = false;
    TriggerId trig = invalidTrigger;
    std::uint64_t entryPc = 0;
    Addr addr = 0;
    std::uint64_t value = 0;
};

/** The DTT hardware control unit. */
class DttController
{
  public:
    DttController(const DttConfig &config, int num_contexts);

    // ----- commit-time events from the core -------------------------
    /** TREG commit. */
    void onTregCommit(TriggerId t, std::uint64_t entry_pc);

    /** TUNREG commit. */
    void onTunregCommit(TriggerId t);

    /** TCLR commit. */
    void onTclrCommit(TriggerId t);

    /**
     * Triggering-store commit: evaluates the trigger condition.
     * @param silent the store did not change memory contents.
     * @return what happened; Stall means the caller must retry.
     */
    TstoreOutcome onTstoreCommit(TriggerId t, Addr addr,
                                 std::uint64_t value, bool silent);

    /** TRET commit on @p ctx: the DTT finished. */
    void onTretCommit(CtxId ctx);

    // ----- in-flight tstore tracking (fetch <-> commit window) ------
    /** A tstore for @p t entered the pipeline (fetched). */
    void onTstoreFetched(TriggerId t);

    /** The same tstore left the pipeline (committed). Called by the
     *  core exactly once per fetched tstore, after onTstoreCommit
     *  returns a non-Stall outcome. */
    void onTstoreDone(TriggerId t);

    // ----- main-thread synchronization -------------------------------
    /**
     * TWAIT condition: no pending queue entries, no running threads
     * and no in-flight (uncommitted) triggering stores for @p t.
     */
    bool waitSatisfied(TriggerId t) const;

    /** TCHK value: outstanding-work count; bit 62 = overflow flag. */
    std::int64_t chk(TriggerId t) const;

    // ----- spawn interface -------------------------------------------
    /**
     * If a pending thread exists and its trigger is still registered,
     * dequeue it for spawning. Pending entries whose trigger was
     * unregistered after firing are discarded.
     */
    SpawnRequest takeSpawn();

    /** The core placed the spawned thread on @p ctx. */
    void onSpawned(TriggerId t, CtxId ctx);

    /**
     * A fault squashed the in-flight thread on @p ctx before TRET.
     * Marks the context done and re-queues the thread's (addr, value)
     * work item so no firing is lost. The core has already rolled
     * back the squashed run's stores (its discarded store buffer),
     * so the re-run starts from the memory state the original spawn
     * saw — handlers need not be idempotent under partial execution.
     */
    void onThreadSquashed(CtxId ctx, Addr addr, std::uint64_t value);

    // ----- fault injection --------------------------------------------
    /** Attach the simulation's fault plan (null: no injection). */
    void setFaultPlan(sim::FaultPlan *plan) { plan_ = plan; }

    // ----- introspection ----------------------------------------------
    const ThreadQueue &queue() const { return queue_; }
    const ThreadRegistry &registry() const { return registry_; }
    const ThreadStatusTable &statusTable() const { return status_; }
    const DttConfig &config() const { return config_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    /** Full-queue degradation policy dispatch (onTstoreCommit). */
    TstoreOutcome onQueueFull(TriggerId t, Addr addr,
                              std::uint64_t value);

    DttConfig config_;
    ThreadRegistry registry_;
    ThreadQueue queue_;
    ThreadStatusTable status_;
    StatGroup stats_;
    sim::FaultPlan *plan_ = nullptr;
    /** StallBounded: consecutive Stall outcomes so far. */
    int consecutiveStalls_ = 0;
};

} // namespace dttsim::dtt
