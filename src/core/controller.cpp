#include "core/controller.h"

#include "common/log.h"

namespace dttsim::dtt {

DttController::DttController(const DttConfig &config, int num_contexts)
    : config_(config),
      registry_(config.maxTriggers),
      queue_(config.threadQueueSize, config.coalesce),
      status_(config.maxTriggers, num_contexts),
      stats_("dtt")
{
    stats_.counter("tstores");
    stats_.counter("silentSuppressed");
    stats_.counter("fired");
    stats_.counter("coalesced");
    stats_.counter("dropped");
    stats_.counter("stallEvents");
    stats_.counter("spawns");
    stats_.counter("staleDiscards");
    stats_.counter("unregisteredFirings");
}

void
DttController::onTregCommit(TriggerId t, std::uint64_t entry_pc)
{
    registry_.install(t, entry_pc);
}

void
DttController::onTunregCommit(TriggerId t)
{
    registry_.remove(t);
}

void
DttController::onTclrCommit(TriggerId t)
{
    status_.of(t).overflowed = false;
}

TstoreOutcome
DttController::onTstoreCommit(TriggerId t, Addr addr,
                              std::uint64_t value, bool silent)
{
    ++stats_.counter("tstores");

    if (config_.silentSuppression && silent) {
        ++stats_.counter("silentSuppressed");
        return TstoreOutcome::Silent;
    }
    if (!registry_.lookup(t).valid) {
        // Firing with no registered handler is legal (e.g. before
        // TREG); it simply does nothing.
        ++stats_.counter("unregisteredFirings");
        return TstoreOutcome::Silent;
    }

    switch (queue_.push(PendingThread{t, addr, value})) {
      case EnqueueResult::Enqueued:
        ++stats_.counter("fired");
        return TstoreOutcome::Fired;
      case EnqueueResult::Coalesced:
        ++stats_.counter("coalesced");
        return TstoreOutcome::Coalesced;
      case EnqueueResult::Full:
        if (config_.fullPolicy == FullQueuePolicy::Stall) {
            ++stats_.counter("stallEvents");
            return TstoreOutcome::Stall;
        }
        status_.of(t).overflowed = true;
        ++stats_.counter("dropped");
        return TstoreOutcome::Dropped;
    }
    panic("unreachable");
}

void
DttController::onTretCommit(CtxId ctx)
{
    status_.markDone(ctx);
}

void
DttController::onTstoreFetched(TriggerId t)
{
    ++status_.of(t).inflightTstores;
}

void
DttController::onTstoreDone(TriggerId t)
{
    auto &s = status_.of(t);
    if (s.inflightTstores <= 0)
        panic("tstore inflight underflow for trigger %d", t);
    --s.inflightTstores;
}

bool
DttController::waitSatisfied(TriggerId t) const
{
    const TriggerStatus &s = status_.of(t);
    return queue_.pendingFor(t) == 0 && s.running == 0
        && s.inflightTstores == 0;
}

std::int64_t
DttController::chk(TriggerId t) const
{
    const TriggerStatus &s = status_.of(t);
    std::int64_t outstanding = queue_.pendingFor(t) + s.running
        + s.inflightTstores;
    if (s.overflowed)
        outstanding |= std::int64_t(1) << 62;
    return outstanding;
}

SpawnRequest
DttController::takeSpawn()
{
    while (!queue_.empty()) {
        std::optional<PendingThread> picked =
            queue_.popFirst([&](const PendingThread &p) {
                if (!config_.serializePerTrigger)
                    return true;
                return status_.of(p.trig).running == 0;
            });
        if (!picked)
            return SpawnRequest{};  // all pending triggers busy
        const RegistryEntry &e = registry_.lookup(picked->trig);
        if (!e.valid) {
            ++stats_.counter("staleDiscards");
            continue;
        }
        ++stats_.counter("spawns");
        return SpawnRequest{true, picked->trig, e.entryPc,
                            picked->addr, picked->value};
    }
    return SpawnRequest{};
}

void
DttController::onSpawned(TriggerId t, CtxId ctx)
{
    status_.markRunning(t, ctx);
}

} // namespace dttsim::dtt
