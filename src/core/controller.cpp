#include "core/controller.h"

#include "common/log.h"
#include "sim/faultplan.h"

namespace dttsim::dtt {

DttController::DttController(const DttConfig &config, int num_contexts)
    : config_(config),
      registry_(config.maxTriggers),
      queue_(config.threadQueueSize, config.coalesce),
      status_(config.maxTriggers, num_contexts),
      stats_("dtt")
{
    stats_.counter("tstores");
    stats_.counter("silentSuppressed");
    stats_.counter("fired");
    stats_.counter("coalesced");
    stats_.counter("dropped");
    stats_.counter("stallEvents");
    stats_.counter("spawns");
    stats_.counter("staleDiscards");
    stats_.counter("unregisteredFirings");
    // Degradation-policy and fault-injection accounting.
    stats_.counter("evictedOldest");
    stats_.counter("stallBoundedDrops");
    stats_.counter("faultDropped");
    stats_.counter("faultEvicted");
    stats_.counter("faultCoalesced");
    stats_.counter("faultSquashRequeues");
}

void
DttController::onTregCommit(TriggerId t, std::uint64_t entry_pc)
{
    registry_.install(t, entry_pc);
}

void
DttController::onTunregCommit(TriggerId t)
{
    registry_.remove(t);
}

void
DttController::onTclrCommit(TriggerId t)
{
    status_.of(t).overflowed = false;
}

TstoreOutcome
DttController::onTstoreCommit(TriggerId t, Addr addr,
                              std::uint64_t value, bool silent)
{
    ++stats_.counter("tstores");

    if (config_.silentSuppression && silent) {
        ++stats_.counter("silentSuppressed");
        return TstoreOutcome::Silent;
    }
    if (!registry_.lookup(t).valid) {
        // Firing with no registered handler is legal (e.g. before
        // TREG); it simply does nothing.
        ++stats_.counter("unregisteredFirings");
        return TstoreOutcome::Silent;
    }

    if (plan_ != nullptr) {
        // Lossy fault: discard the firing as if the queue had
        // rejected it — the sticky overflow flag is the only record,
        // exactly what the software fallback idiom recovers from.
        if (plan_->inject(sim::FaultSite::DropFiring)) {
            status_.of(t).overflowed = true;
            consecutiveStalls_ = 0;
            ++stats_.counter("dropped");
            ++stats_.counter("faultDropped");
            return TstoreOutcome::Dropped;
        }
        // Transparent fault: coalesce a duplicate (trigger, address)
        // firing even when the machine config disabled coalescing.
        // Safe for idempotent handlers; an opportunity exists only
        // when a duplicate is actually pending.
        if (plan_->armed(sim::FaultSite::SpuriousCoalesce)
            && queue_.hasDuplicate(t, addr)
            && plan_->inject(sim::FaultSite::SpuriousCoalesce)) {
            queue_.forceCoalesce(PendingThread{t, addr, value});
            consecutiveStalls_ = 0;
            ++stats_.counter("coalesced");
            ++stats_.counter("faultCoalesced");
            return TstoreOutcome::Coalesced;
        }
    }

    switch (queue_.push(PendingThread{t, addr, value})) {
      case EnqueueResult::Enqueued:
        consecutiveStalls_ = 0;
        ++stats_.counter("fired");
        // Lossy fault: a queue-management bug evicts the oldest
        // pending entry right after the new one lands.
        if (plan_ != nullptr && queue_.size() >= 2
            && plan_->inject(sim::FaultSite::EvictPending)) {
            PendingThread victim = queue_.evictOldest();
            status_.of(victim.trig).overflowed = true;
            ++stats_.counter("dropped");
            ++stats_.counter("faultEvicted");
        }
        return TstoreOutcome::Fired;
      case EnqueueResult::Coalesced:
        consecutiveStalls_ = 0;
        ++stats_.counter("coalesced");
        return TstoreOutcome::Coalesced;
      case EnqueueResult::Full:
        return onQueueFull(t, addr, value);
    }
    panic("unreachable");
}

TstoreOutcome
DttController::onQueueFull(TriggerId t, Addr addr, std::uint64_t value)
{
    switch (config_.fullPolicy) {
      case FullQueuePolicy::Stall:
        ++stats_.counter("stallEvents");
        return TstoreOutcome::Stall;

      case FullQueuePolicy::StallBounded:
        if (consecutiveStalls_ < config_.stallBound) {
            ++consecutiveStalls_;
            ++stats_.counter("stallEvents");
            return TstoreOutcome::Stall;
        }
        // Bound exhausted: degrade to Drop so a machine with no free
        // context cannot livelock on a saturated queue.
        consecutiveStalls_ = 0;
        ++stats_.counter("stallBoundedDrops");
        status_.of(t).overflowed = true;
        ++stats_.counter("dropped");
        return TstoreOutcome::Dropped;

      case FullQueuePolicy::Drop:
        consecutiveStalls_ = 0;
        status_.of(t).overflowed = true;
        ++stats_.counter("dropped");
        return TstoreOutcome::Dropped;

      case FullQueuePolicy::DropOldest: {
        consecutiveStalls_ = 0;
        PendingThread victim = queue_.evictOldest();
        status_.of(victim.trig).overflowed = true;
        ++stats_.counter("dropped");
        ++stats_.counter("evictedOldest");
        // The freed slot takes the new firing. push() cannot coalesce
        // here — a duplicate would have coalesced before Full — and
        // cannot be Full again.
        if (queue_.push(PendingThread{t, addr, value})
            != EnqueueResult::Enqueued)
            panic("DropOldest: enqueue failed after eviction");
        ++stats_.counter("fired");
        return TstoreOutcome::Fired;
      }
    }
    panic("unreachable");
}

void
DttController::onTretCommit(CtxId ctx)
{
    status_.markDone(ctx);
}

void
DttController::onTstoreFetched(TriggerId t)
{
    ++status_.of(t).inflightTstores;
}

void
DttController::onTstoreDone(TriggerId t)
{
    auto &s = status_.of(t);
    if (s.inflightTstores <= 0)
        panic("tstore inflight underflow for trigger %d", t);
    --s.inflightTstores;
}

bool
DttController::waitSatisfied(TriggerId t) const
{
    const TriggerStatus &s = status_.of(t);
    return queue_.pendingFor(t) == 0 && s.running == 0
        && s.inflightTstores == 0;
}

std::int64_t
DttController::chk(TriggerId t) const
{
    const TriggerStatus &s = status_.of(t);
    std::int64_t outstanding = queue_.pendingFor(t) + s.running
        + s.inflightTstores;
    if (s.overflowed)
        outstanding |= std::int64_t(1) << 62;
    return outstanding;
}

SpawnRequest
DttController::takeSpawn()
{
    while (!queue_.empty()) {
        std::optional<PendingThread> picked =
            queue_.popFirst([&](const PendingThread &p) {
                if (!config_.serializePerTrigger)
                    return true;
                return status_.of(p.trig).running == 0;
            });
        if (!picked)
            return SpawnRequest{};  // all pending triggers busy
        const RegistryEntry &e = registry_.lookup(picked->trig);
        if (!e.valid) {
            ++stats_.counter("staleDiscards");
            continue;
        }
        ++stats_.counter("spawns");
        return SpawnRequest{true, picked->trig, e.entryPc,
                            picked->addr, picked->value};
    }
    return SpawnRequest{};
}

void
DttController::onSpawned(TriggerId t, CtxId ctx)
{
    status_.markRunning(t, ctx);
}

void
DttController::onThreadSquashed(CtxId ctx, Addr addr,
                                std::uint64_t value)
{
    TriggerId t = status_.markDone(ctx);
    if (!registry_.lookup(t).valid) {
        // Unregistered since the spawn: the firing is moot.
        ++stats_.counter("staleDiscards");
        return;
    }
    queue_.unpop(PendingThread{t, addr, value});
    ++stats_.counter("faultSquashRequeues");
}

} // namespace dttsim::dtt
