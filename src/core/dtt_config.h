#pragma once

/**
 * @file
 * Configuration of the data-triggered-threads architecture extension
 * (thread registry + thread queue + thread status table), the primary
 * contribution of Tseng & Tullsen (HPCA 2011).
 */

#include "common/types.h"

namespace dttsim::dtt {

/** What a committing triggering store does when the thread queue is
 *  full. */
enum class FullQueuePolicy {
    /** Stall the store's commit until a queue slot frees up. */
    Stall,
    /**
     * Drop the trigger and set the trigger's sticky overflow flag;
     * software checks it with TCHK after TWAIT and falls back to the
     * inline recomputation path, clearing the flag with TCLR.
     */
    Drop,
};

/** DTT hardware parameters. */
struct DttConfig
{
    /** Static trigger table size (thread registry entries). */
    int maxTriggers = 64;

    /** Thread queue capacity (pending triggered threads). */
    int threadQueueSize = 16;

    FullQueuePolicy fullPolicy = FullQueuePolicy::Stall;

    /**
     * Suppress triggers whose store does not change the value (silent
     * stores). This is the redundancy-elimination mechanism at the
     * heart of the paper; turning it off is the Fig. 9 ablation
     * (every tstore spawns a thread).
     */
    bool silentSuppression = true;

    /**
     * Coalesce a newly fired trigger with an already-pending queue
     * entry for the same (trigger, address) — the paper's duplicate
     * squash. Requires handlers to be idempotent functions of current
     * memory state.
     */
    bool coalesce = true;

    /**
     * Spawn a pending thread only when no thread of the *same*
     * trigger is running (threads of different triggers still run
     * concurrently). Per-trigger serialization makes handlers atomic
     * with respect to each other, which is what lets suffix-style
     * recomputation handlers (e.g. the mcf refresh_potential DTT)
     * tolerate multiple outstanding updates; workloads get
     * concurrency by striping independent data across trigger ids.
     */
    bool serializePerTrigger = true;

    /** Cycles to initialize a hardware context at spawn. */
    Cycle spawnLatency = 4;
};

} // namespace dttsim::dtt
