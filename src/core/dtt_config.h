#pragma once

/**
 * @file
 * Configuration of the data-triggered-threads architecture extension
 * (thread registry + thread queue + thread status table), the primary
 * contribution of Tseng & Tullsen (HPCA 2011).
 */

#include "common/types.h"

namespace dttsim::dtt {

/**
 * What a committing triggering store does when the thread queue is
 * full. Stall is lossless but can livelock a machine with no spare
 * context to drain the queue (SimConfig::warnings flags that
 * combination); the Drop-class policies degrade gracefully but lose
 * a firing, which is recoverable only by programs using the software
 * fallback idiom (TCHK bit 62 -> inline recompute -> TCLR).
 */
enum class FullQueuePolicy {
    /** Stall the store's commit until a queue slot frees up. */
    Stall,
    /**
     * Drop the *new* trigger and set the trigger's sticky overflow
     * flag; software checks it with TCHK after TWAIT and falls back
     * to the inline recomputation path, clearing the flag with TCLR.
     */
    Drop,
    /**
     * Evict the *oldest* pending entry (setting its trigger's
     * overflow flag) and enqueue the new firing — fresher work is
     * likelier to still matter by the time a context frees up.
     */
    DropOldest,
    /**
     * Stall like Stall, but only for stallBound consecutive
     * commit-retry cycles; then fall back to Drop so a machine with
     * no free context cannot livelock on a saturated queue.
     */
    StallBounded,
};

/** Stable policy name for tables and messages. */
constexpr const char *
fullQueuePolicyName(FullQueuePolicy p)
{
    switch (p) {
      case FullQueuePolicy::Stall: return "stall";
      case FullQueuePolicy::Drop: return "drop";
      case FullQueuePolicy::DropOldest: return "drop-oldest";
      case FullQueuePolicy::StallBounded: return "stall-bounded";
    }
    return "?";
}

/** DTT hardware parameters. */
struct DttConfig
{
    /** Static trigger table size (thread registry entries). */
    int maxTriggers = 64;

    /** Thread queue capacity (pending triggered threads). */
    int threadQueueSize = 16;

    FullQueuePolicy fullPolicy = FullQueuePolicy::Stall;

    /** StallBounded only: consecutive stalled commit attempts allowed
     *  before the policy gives up and drops the firing. */
    int stallBound = 1024;

    /**
     * Suppress triggers whose store does not change the value (silent
     * stores). This is the redundancy-elimination mechanism at the
     * heart of the paper; turning it off is the Fig. 9 ablation
     * (every tstore spawns a thread).
     */
    bool silentSuppression = true;

    /**
     * Coalesce a newly fired trigger with an already-pending queue
     * entry for the same (trigger, address) — the paper's duplicate
     * squash. Requires handlers to be idempotent functions of current
     * memory state.
     */
    bool coalesce = true;

    /**
     * Spawn a pending thread only when no thread of the *same*
     * trigger is running (threads of different triggers still run
     * concurrently). Per-trigger serialization makes handlers atomic
     * with respect to each other, which is what lets suffix-style
     * recomputation handlers (e.g. the mcf refresh_potential DTT)
     * tolerate multiple outstanding updates; workloads get
     * concurrency by striping independent data across trigger ids.
     */
    bool serializePerTrigger = true;

    /** Cycles to initialize a hardware context at spawn. */
    Cycle spawnLatency = 4;
};

} // namespace dttsim::dtt
