#include "core/registry.h"

#include "common/log.h"

namespace dttsim::dtt {

ThreadRegistry::ThreadRegistry(int max_triggers)
    : entries_(static_cast<std::size_t>(max_triggers))
{
}

void
ThreadRegistry::checkId(TriggerId t) const
{
    if (t < 0 || t >= static_cast<TriggerId>(entries_.size()))
        fatal("trigger id %d outside registry (capacity %zu); raise "
              "DttConfig::maxTriggers", t, entries_.size());
}

void
ThreadRegistry::install(TriggerId t, std::uint64_t entry_pc)
{
    checkId(t);
    entries_[static_cast<std::size_t>(t)] = {true, entry_pc};
}

void
ThreadRegistry::remove(TriggerId t)
{
    checkId(t);
    entries_[static_cast<std::size_t>(t)] = {};
}

const RegistryEntry &
ThreadRegistry::lookup(TriggerId t) const
{
    checkId(t);
    return entries_[static_cast<std::size_t>(t)];
}

} // namespace dttsim::dtt
