#include "core/queue.h"

#include "common/log.h"

namespace dttsim::dtt {

ThreadQueue::ThreadQueue(int capacity, bool coalesce)
    : capacity_(capacity), coalesce_(coalesce), stats_("threadQueue")
{
    if (capacity <= 0)
        fatal("thread queue capacity must be positive (got %d)",
              capacity);
    stats_.counter("enqueues");
    stats_.counter("coalesces");
    stats_.counter("rejects");
    stats_.counter("dequeues");
    stats_.counter("maxOccupancy");
    stats_.counter("evictions");
    stats_.counter("unpops");
}

EnqueueResult
ThreadQueue::push(const PendingThread &t)
{
    if (coalesce_) {
        for (auto &e : entries_) {
            if (e.trig == t.trig && e.addr == t.addr) {
                e.value = t.value;  // newest value wins
                ++stats_.counter("coalesces");
                return EnqueueResult::Coalesced;
            }
        }
    }
    if (static_cast<int>(entries_.size()) >= capacity_) {
        ++stats_.counter("rejects");
        return EnqueueResult::Full;
    }
    entries_.push_back(t);
    if (static_cast<std::size_t>(t.trig) >= perTrigger_.size())
        perTrigger_.resize(static_cast<std::size_t>(t.trig) + 1, 0);
    ++perTrigger_[static_cast<std::size_t>(t.trig)];
    ++stats_.counter("enqueues");
    auto &max_occ = stats_.counter("maxOccupancy");
    if (entries_.size() > max_occ.value())
        max_occ += entries_.size() - max_occ.value();
    return EnqueueResult::Enqueued;
}

int
ThreadQueue::pendingFor(TriggerId t) const
{
    auto idx = static_cast<std::size_t>(t);
    return idx < perTrigger_.size() ? perTrigger_[idx] : 0;
}

bool
ThreadQueue::hasDuplicate(TriggerId t, Addr addr) const
{
    for (const auto &e : entries_)
        if (e.trig == t && e.addr == addr)
            return true;
    return false;
}

void
ThreadQueue::forceCoalesce(const PendingThread &t)
{
    for (auto &e : entries_) {
        if (e.trig == t.trig && e.addr == t.addr) {
            e.value = t.value;  // newest value wins
            ++stats_.counter("coalesces");
            return;
        }
    }
    panic("forceCoalesce: no pending duplicate for trigger %d", t.trig);
}

PendingThread
ThreadQueue::evictOldest()
{
    if (entries_.empty())
        panic("evictOldest from empty thread queue");
    PendingThread t = entries_.front();
    entries_.pop_front();
    --perTrigger_[static_cast<std::size_t>(t.trig)];
    ++stats_.counter("evictions");
    return t;
}

void
ThreadQueue::unpop(const PendingThread &t)
{
    if (coalesce_) {
        for (auto &e : entries_) {
            if (e.trig == t.trig && e.addr == t.addr) {
                // A newer firing for the same datum subsumes the
                // squashed one (the handler is an idempotent function
                // of current memory state).
                ++stats_.counter("coalesces");
                return;
            }
        }
    }
    entries_.push_front(t);
    if (static_cast<std::size_t>(t.trig) >= perTrigger_.size())
        perTrigger_.resize(static_cast<std::size_t>(t.trig) + 1, 0);
    ++perTrigger_[static_cast<std::size_t>(t.trig)];
    ++stats_.counter("unpops");
    auto &max_occ = stats_.counter("maxOccupancy");
    if (entries_.size() > max_occ.value())
        max_occ += entries_.size() - max_occ.value();
}

PendingThread
ThreadQueue::pop()
{
    if (entries_.empty())
        panic("pop from empty thread queue");
    PendingThread t = entries_.front();
    entries_.pop_front();
    --perTrigger_[static_cast<std::size_t>(t.trig)];
    ++stats_.counter("dequeues");
    return t;
}

} // namespace dttsim::dtt
