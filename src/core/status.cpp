#include "core/status.h"

#include "common/log.h"

namespace dttsim::dtt {

ThreadStatusTable::ThreadStatusTable(int max_triggers, int num_contexts)
    : status_(static_cast<std::size_t>(max_triggers)),
      byCtx_(static_cast<std::size_t>(num_contexts), invalidTrigger)
{
}

void
ThreadStatusTable::checkId(TriggerId t) const
{
    if (t < 0 || t >= static_cast<TriggerId>(status_.size()))
        fatal("trigger id %d outside status table (capacity %zu)",
              t, status_.size());
}

TriggerStatus &
ThreadStatusTable::of(TriggerId t)
{
    checkId(t);
    return status_[static_cast<std::size_t>(t)];
}

const TriggerStatus &
ThreadStatusTable::of(TriggerId t) const
{
    checkId(t);
    return status_[static_cast<std::size_t>(t)];
}

void
ThreadStatusTable::markRunning(TriggerId t, CtxId ctx)
{
    checkId(t);
    if (byCtx_.at(static_cast<std::size_t>(ctx)) != invalidTrigger)
        panic("context %d spawned while already running trigger %d",
              ctx, byCtx_[static_cast<std::size_t>(ctx)]);
    byCtx_[static_cast<std::size_t>(ctx)] = t;
    ++status_[static_cast<std::size_t>(t)].running;
}

TriggerId
ThreadStatusTable::markDone(CtxId ctx)
{
    TriggerId t = byCtx_.at(static_cast<std::size_t>(ctx));
    if (t == invalidTrigger)
        panic("TRET on context %d with no running trigger", ctx);
    byCtx_[static_cast<std::size_t>(ctx)] = invalidTrigger;
    --status_[static_cast<std::size_t>(t)].running;
    return t;
}

TriggerId
ThreadStatusTable::runningOn(CtxId ctx) const
{
    return byCtx_.at(static_cast<std::size_t>(ctx));
}

} // namespace dttsim::dtt
