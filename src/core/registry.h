#pragma once

/**
 * @file
 * Thread registry: the static table mapping trigger ids to DTT entry
 * points. Written by TREG/TUNREG at commit; read at spawn time.
 */

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dttsim::dtt {

/** One registry entry. */
struct RegistryEntry
{
    bool valid = false;
    std::uint64_t entryPc = 0;
};

/** The thread registry (trigger id -> handler entry point). */
class ThreadRegistry
{
  public:
    explicit ThreadRegistry(int max_triggers);

    /** Install trigger @p t -> @p entry_pc (TREG commit). */
    void install(TriggerId t, std::uint64_t entry_pc);

    /** Remove trigger @p t (TUNREG commit); idempotent. */
    void remove(TriggerId t);

    /** Entry for @p t; invalid entry if unregistered. */
    const RegistryEntry &lookup(TriggerId t) const;

    int capacity() const { return static_cast<int>(entries_.size()); }

  private:
    void checkId(TriggerId t) const;

    std::vector<RegistryEntry> entries_;
};

} // namespace dttsim::dtt
