#include "sim/simulator.h"

#include "common/log.h"

namespace dttsim::sim {

Simulator::Simulator(const SimConfig &config, isa::Program prog)
    : config_(config), prog_(std::move(prog)), hierarchy_(config.mem)
{
    if (config_.enableDtt)
        controller_ = std::make_unique<dtt::DttController>(
            config_.dtt, config_.core.numContexts);
    core_ = std::make_unique<cpu::OooCore>(
        config_.core, prog_, hierarchy_, controller_.get());
}

SimResult
Simulator::run()
{
    cpu::CoreRunResult core_result = core_->run(config_.maxCycles);

    SimResult r;
    r.cycles = core_result.cycles;
    r.mainCommitted = core_result.mainCommitted;
    r.dttCommitted = core_result.dttCommitted;
    r.totalCommitted = r.mainCommitted + r.dttCommitted;
    r.ipc = r.cycles
        ? static_cast<double>(r.totalCommitted)
            / static_cast<double>(r.cycles)
        : 0.0;
    r.halted = core_result.halted;
    r.hitMaxCycles = core_result.hitMaxCycles;
    r.dttSpawns = core_result.dttSpawns;

    if (controller_) {
        const auto &ds = controller_->stats();
        r.tstores = ds.get("tstores");
        r.silentSuppressed = ds.get("silentSuppressed");
        r.fired = ds.get("fired");
        r.coalesced = ds.get("coalesced");
        r.dropped = ds.get("dropped");
        r.tqMaxOccupancy =
            controller_->queue().stats().get("maxOccupancy");
    }
    r.twaitStallCycles = core_->stats().get("twaitStallCycles");
    r.tstoreCommitStalls = core_->stats().get("tstoreCommitStalls");

    r.l1dAccesses = hierarchy_.l1d().accesses();
    r.l1dMisses = hierarchy_.l1d().misses();
    r.l1iAccesses = hierarchy_.l1i().accesses();
    r.l1iMisses = hierarchy_.l1i().misses();
    r.l2Accesses = hierarchy_.l2().accesses();
    r.l2Misses = hierarchy_.l2().misses();
    r.memAccesses = hierarchy_.memAccesses();
    r.activityUnits = hierarchy_.activityUnits();

    r.condBranches = core_->bpred().stats().get("condBranches");
    r.condMispredicts = core_->bpred().stats().get("condMispredicts");
    return r;
}

SimResult
runProgram(const SimConfig &config, const isa::Program &prog)
{
    Simulator simulator(config, prog);
    return simulator.run();
}

} // namespace dttsim::sim
