#include "sim/simulator.h"

#include <algorithm>
#include <chrono>

#include "accel/dtt_accel.h"
#include "accel/reuse_unit.h"
#include "accel/sp_unit.h"
#include "common/log.h"

namespace dttsim::sim {

namespace {

void
checkPositive(std::vector<std::string> &errors, long long v,
              const char *name, const char *why)
{
    if (v < 1)
        errors.push_back(strfmt("%s must be >= 1 (got %lld): %s",
                                name, v, why));
}

void
checkCache(std::vector<std::string> &errors,
           const mem::CacheConfig &c)
{
    const std::string prefix = "mem." + c.name;
    checkPositive(errors, static_cast<long long>(c.sizeBytes),
                  (prefix + ".sizeBytes").c_str(),
                  "a zero-byte cache cannot hold any line");
    checkPositive(errors, c.assoc, (prefix + ".assoc").c_str(),
                  "a set needs at least one way");
    checkPositive(errors, static_cast<long long>(c.lineBytes),
                  (prefix + ".lineBytes").c_str(),
                  "lines must hold at least one byte");
    if (c.lineBytes != 0 && (c.lineBytes & (c.lineBytes - 1)) != 0)
        errors.push_back(strfmt(
            "%s.lineBytes must be a power of two (got %u): address "
            "decomposition uses bit masks", c.name.c_str(),
            c.lineBytes));
    if (c.lineBytes != 0 && c.assoc != 0
        && c.sizeBytes % (static_cast<std::uint64_t>(c.lineBytes)
                          * c.assoc) != 0)
        errors.push_back(strfmt(
            "%s.sizeBytes (%llu) must be a multiple of lineBytes * "
            "assoc so the set count is integral", c.name.c_str(),
            static_cast<unsigned long long>(c.sizeBytes)));
}

} // namespace

std::vector<std::string>
SimConfig::validate() const
{
    std::vector<std::string> errors;

    if (maxCycles == 0)
        errors.push_back(
            "maxCycles must be >= 1 (got 0): a zero cycle budget "
            "cannot commit any instruction; raise it or drop the "
            "override to keep the default");

    checkPositive(errors, core.numContexts, "core.numContexts",
                  "context 0 runs the main thread");
    checkPositive(errors, core.fetchWidth, "core.fetchWidth",
                  "the frontend must fetch at least one instruction "
                  "per cycle");
    checkPositive(errors, core.fetchThreads, "core.fetchThreads",
                  "ICOUNT fetch needs at least one context per cycle");
    checkPositive(errors, core.dispatchWidth, "core.dispatchWidth",
                  "no instruction could ever reach the backend");
    checkPositive(errors, core.issueWidth, "core.issueWidth",
                  "no instruction could ever execute");
    checkPositive(errors, core.commitWidth, "core.commitWidth",
                  "no instruction could ever retire");
    checkPositive(errors, core.robSize, "core.robSize",
                  "the ROB must hold at least one in-flight "
                  "instruction");
    checkPositive(errors, core.iqSize, "core.iqSize",
                  "the issue queue must hold at least one entry");
    checkPositive(errors, core.lqSize, "core.lqSize",
                  "loads could never dispatch");
    checkPositive(errors, core.sqSize, "core.sqSize",
                  "stores could never dispatch");
    if (core.queueReservePerCtx < 0)
        errors.push_back(strfmt(
            "core.queueReservePerCtx must be >= 0 (got %d)",
            core.queueReservePerCtx));
    else if (core.numContexts > 1) {
        int reserved = core.queueReservePerCtx
            * (core.numContexts - 1);
        int smallest = std::min(std::min(core.robSize, core.iqSize),
                                std::min(core.lqSize, core.sqSize));
        if (smallest - reserved < 1)
            errors.push_back(strfmt(
                "core.queueReservePerCtx=%d reserves %d entries for "
                "the other %d contexts, leaving none of the smallest "
                "shared queue (%d entries) for any single context; "
                "shrink the reservation or grow the queues",
                core.queueReservePerCtx, reserved,
                core.numContexts - 1, smallest));
    }
    checkPositive(errors, core.memPorts, "core.memPorts",
                  "memory operations could never issue");
    if (core.reuseBuffer)
        checkPositive(errors, core.reuseEntriesPerPc,
                      "core.reuseEntriesPerPc",
                      "an enabled reuse buffer needs capacity");

    checkCache(errors, mem.l1i);
    checkCache(errors, mem.l1d);
    checkCache(errors, mem.l2);
    checkPositive(errors, static_cast<long long>(mem.memLatency),
                  "mem.memLatency", "DRAM cannot answer in 0 cycles");
    if (mem.modelFills)
        checkPositive(errors, mem.mshrs, "mem.mshrs",
                      "fill modeling needs at least one outstanding-"
                      "miss register");

    if (accel == cpu::AccelKind::Dtt) {
        checkPositive(errors, dtt.maxTriggers, "dtt.maxTriggers",
                      "the thread registry must hold at least one "
                      "trigger");
        checkPositive(errors, dtt.threadQueueSize,
                      "dtt.threadQueueSize",
                      "a zero-entry thread queue can never spawn a "
                      "data-triggered thread (use accel=None for "
                      "the baseline machine)");
        if (dtt.fullPolicy == dtt::FullQueuePolicy::StallBounded)
            checkPositive(errors, dtt.stallBound, "dtt.stallBound",
                          "a zero bound makes StallBounded an "
                          "ill-defined Drop; use Drop directly");
    }
    if (accel == cpu::AccelKind::Sp) {
        checkPositive(errors, sp.maxTriggers, "sp.maxTriggers",
                      "the slice registry must hold at least one "
                      "trigger");
        checkPositive(errors, sp.tokenQueueSize, "sp.tokenQueueSize",
                      "a zero-entry token queue can never dispatch a "
                      "precompute slice (use accel=None for the "
                      "baseline machine)");
    }
    if (accel == cpu::AccelKind::Reuse)
        checkPositive(errors, reuse.entriesPerPc, "reuse.entriesPerPc",
                      "the reuse unit needs per-PC capacity (use "
                      "accel=None for the baseline machine)");

    if (!(fault.rate >= 0.0 && fault.rate <= 1.0))
        errors.push_back(strfmt(
            "fault.rate must be in [0, 1] (got %g): it is a "
            "per-opportunity injection probability", fault.rate));
    if ((fault.siteMask & ~kAllFaultSites) != 0)
        errors.push_back(strfmt(
            "fault.siteMask has unknown site bits 0x%x (valid mask "
            "0x%x)", fault.siteMask & ~kAllFaultSites,
            kAllFaultSites));
    if (fault.enabled() && accel == cpu::AccelKind::None)
        errors.push_back(
            "fault injection targets the accelerator machinery and "
            "needs accel != None; the baseline machine has no fault "
            "sites");
    return errors;
}

std::vector<std::string>
SimConfig::warnings() const
{
    std::vector<std::string> out;
    if (accel == cpu::AccelKind::Dtt
        && dtt.fullPolicy == dtt::FullQueuePolicy::Stall
        && core.numContexts < 2)
        out.push_back(strfmt(
            "dtt.fullPolicy=stall with core.numContexts=%d: no "
            "context can ever drain the thread queue, so a full "
            "queue livelocks the committing tstore (the watchdog "
            "will end the run with a Deadlock halt after %llu "
            "commit-free cycles); use >= 2 contexts or the "
            "stall-bounded/drop policies", core.numContexts,
            static_cast<unsigned long long>(core.watchdogWindow)));
    if (accel == cpu::AccelKind::Sp && !sp.skipWhenBusy
        && core.numContexts < 2)
        out.push_back(strfmt(
            "accel=sp with core.numContexts=%d: no context can ever "
            "drain the token queue, so a full queue livelocks the "
            "committing tstore (the watchdog will end the run with a "
            "Deadlock halt after %llu commit-free cycles); use >= 2 "
            "contexts or sp.skipWhenBusy", core.numContexts,
            static_cast<unsigned long long>(core.watchdogWindow)));
    if (accel == cpu::AccelKind::Sp && sp.skipWhenBusy)
        out.push_back(
            "sp.skipWhenBusy=true skips precompute slices when the "
            "token queue is full; architectural results are preserved "
            "only by programs using the software fallback idiom "
            "(TCHK bit 62 -> inline recompute -> TCLR)");
    return out;
}

namespace {

/** Throw FatalError before any component sees an invalid config
 *  (the hierarchy is built in the member-init list, so validation
 *  must happen while config_ itself is initialized). */
const SimConfig &
validated(const SimConfig &config)
{
    std::vector<std::string> errors = config.validate();
    if (!errors.empty()) {
        std::string all;
        for (const std::string &e : errors)
            all += "\n  - " + e;
        fatal("invalid SimConfig (%zu problem%s):%s", errors.size(),
              errors.size() == 1 ? "" : "s", all.c_str());
    }
    return config;
}

} // namespace

Simulator::Simulator(const SimConfig &config, isa::Program prog)
    : config_(validated(config)), prog_(std::move(prog)),
      hierarchy_(config.mem)
{
    for (const std::string &w : config_.warnings())
        warn("%s", w.c_str());
    switch (config_.accel) {
      case cpu::AccelKind::None:
        break;
      case cpu::AccelKind::Dtt: {
        auto dtt_accel = std::make_unique<accel::DttAccel>(
            config_.dtt, config_.core.numContexts);
        controller_ = dtt_accel->controller();
        accel_ = std::move(dtt_accel);
        break;
      }
      case cpu::AccelKind::Sp: {
        auto sp_unit = std::make_unique<sp::PrecomputeUnit>(
            config_.sp, config_.core.numContexts);
        spUnit_ = sp_unit.get();
        accel_ = std::move(sp_unit);
        break;
      }
      case cpu::AccelKind::Reuse: {
        auto reuse_unit =
            std::make_unique<reuse::ReuseUnit>(config_.reuse);
        reuseUnit_ = reuse_unit.get();
        accel_ = std::move(reuse_unit);
        break;
      }
    }
    core_ = std::make_unique<cpu::OooCore>(
        config_.core, prog_, hierarchy_, accel_.get());
    if (config_.fault.enabled()) {
        plan_ = std::make_unique<FaultPlan>(config_.fault);
        accel_->setFaultPlan(plan_.get());
        core_->setFaultPlan(plan_.get());
    }
    if (config_.shadowProfile) {
        shadowProf_ = std::make_unique<profile::ShadowProfiler>();
        core_->addCommitObserver(shadowProf_.get());
    }
    if (accel_ != nullptr)
        core_->addCommitObserver(accel_->commitObserver());
}

const analysis::ShadowReport &
Simulator::shadowReport()
{
    if (!shadowProf_)
        panic("shadowReport() without SimConfig::shadowProfile");
    return shadowProf_->report();
}

SimResult
Simulator::run(double wall_deadline_seconds, bool *cancelled)
{
    if (ran_)
        panic("Simulator::run() is one-shot: a second run would "
              "start from the dirty architectural, cache and DTT "
              "state of the first; construct a fresh Simulator (or "
              "use sim::runProgram / sim::Engine) per run");
    ran_ = true;
    if (cancelled != nullptr)
        *cancelled = false;

    cpu::CoreRunResult core_result;
    bool deadline_hit = false;
    if (wall_deadline_seconds <= 0.0) {
        core_result = core_->run(config_.maxCycles);
    } else {
        // Slice the run at the commit-progress watchdog cadence and
        // check the wall clock between slices: a runaway simulation
        // (one that commits happily forever, which the in-sim
        // watchdog by design never trips on) is cancelled within
        // one window of the deadline. Slicing never changes the
        // simulated behaviour — the core loop just re-enters.
        const Cycle slice = config_.core.watchdogWindow > 0
            ? config_.core.watchdogWindow : Cycle(100000);
        const auto deadline = std::chrono::steady_clock::now()
            + std::chrono::duration<double>(wall_deadline_seconds);
        Cycle target = 0;
        do {
            target = std::min(config_.maxCycles, target + slice);
            core_result = core_->run(target);
        } while (core_result.hitMaxCycles && target < config_.maxCycles
                 && !(deadline_hit =
                          std::chrono::steady_clock::now() >= deadline));
        if (deadline_hit) {
            core_result.detail = strfmt(
                "cancelled after %llu cycles: wall-clock deadline of "
                "%gs exceeded",
                static_cast<unsigned long long>(core_result.cycles),
                wall_deadline_seconds);
            if (cancelled != nullptr)
                *cancelled = true;
        }
    }

    SimResult r;
    r.cycles = core_result.cycles;
    r.mainCommitted = core_result.mainCommitted;
    r.dttCommitted = core_result.dttCommitted;
    r.totalCommitted = r.mainCommitted + r.dttCommitted;
    r.ipc = r.cycles
        ? static_cast<double>(r.totalCommitted)
            / static_cast<double>(r.cycles)
        : 0.0;
    r.halted = core_result.halted;
    r.hitMaxCycles = core_result.hitMaxCycles;
    r.haltReason = core_result.reason;
    r.haltDetail = core_result.detail;
    r.dttSpawns = core_result.dttSpawns;

    if (controller_ != nullptr) {
        const auto &ds = controller_->stats();
        r.tstores = ds.get("tstores");
        r.silentSuppressed = ds.get("silentSuppressed");
        r.fired = ds.get("fired");
        r.coalesced = ds.get("coalesced");
        r.dropped = ds.get("dropped");
        r.tqMaxOccupancy =
            controller_->queue().stats().get("maxOccupancy");
    } else if (spUnit_ != nullptr) {
        // The token vocabulary maps onto the same record: a token is
        // a firing, a skipped/fault-dropped slice is a drop. SP has
        // no silent-store suppression and no coalescing, so those
        // stay zero.
        const auto &ss = spUnit_->stats();
        r.tstores = ss.get("tokens");
        r.fired = ss.get("enqueued");
        r.dropped = ss.get("skippedSlices")
            + ss.get("faultDroppedTokens");
        r.tqMaxOccupancy =
            spUnit_->tokenQueue().stats().get("maxOccupancy");
    }
    r.twaitStallCycles = core_->stats().get("twaitStallCycles");
    r.tstoreCommitStalls = core_->stats().get("tstoreCommitStalls");

    r.l1dAccesses = hierarchy_.l1d().accesses();
    r.l1dMisses = hierarchy_.l1d().misses();
    r.l1iAccesses = hierarchy_.l1i().accesses();
    r.l1iMisses = hierarchy_.l1i().misses();
    r.l2Accesses = hierarchy_.l2().accesses();
    r.l2Misses = hierarchy_.l2().misses();
    r.memAccesses = hierarchy_.memAccesses();
    r.activityUnits = hierarchy_.activityUnits();

    r.condBranches = core_->bpred().stats().get("condBranches");
    r.condMispredicts = core_->bpred().stats().get("condMispredicts");
    r.reusedInsts = core_->stats().get("reusedInsts");

    r.archDigest = memoryDigest(core_->memory(), isa::kDataBase,
                                prog_.dataEnd());
    if (plan_) {
        r.faultsInjected = plan_->injected();
        r.faultFingerprint = plan_->fingerprint();
    }
    return r;
}

SimResult
runProgram(const SimConfig &config, const isa::Program &prog)
{
    Simulator simulator(config, prog);
    return simulator.run();
}

std::uint64_t
memoryDigest(mem::Memory &memory, Addr begin, Addr end)
{
    std::uint64_t h = 14695981039346656037ull;
    auto eat = [&h](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    Addr a = begin;
    for (; a + 8 <= end; a += 8) {
        std::uint64_t w = memory.read64(a);
        for (int i = 0; i < 8; ++i)
            eat(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    for (; a < end; ++a)
        eat(memory.read8(a));
    return h;
}

} // namespace dttsim::sim
