#pragma once

/**
 * @file
 * Deterministic fault-injection plan for the *host* fabric — the
 * twin of sim::FaultPlan one layer up. Where faultplan.h perturbs
 * the simulated DTT machine, this plan perturbs the machinery that
 * carries sweeps across processes and hosts: worker TCP sessions,
 * the line-delimited JSON protocol, claim files, and cache segment
 * appends. The contract under attack is the fabric's design rule
 * (docs/ROBUSTNESS.md): every fault may cost *time*, never *bytes* —
 * a sweep run under any armed plan must still exit 0 with merged
 * --json output byte-identical to a fault-free local run.
 *
 * Reproducibility contract: like sim::FaultPlan, every decision is a
 * pure function of {seed, site, per-site opportunity counter} via a
 * counter-indexed splitmix64 hash — independent of wall clock and of
 * what other sites decided. Unlike the in-sim plan, opportunity
 * *indices* are claimed by concurrent threads (dispatchers, server
 * executors), so which call lands on which index can vary with
 * scheduling; the per-site decision *stream* is identical for a
 * given {seed, rate}, making runs statistically replayable rather
 * than event-for-event replayable. The recovery assertions never
 * depend on which call was hit, only on the merged output.
 *
 * A plan is installed process-globally (installFaultPlan) because
 * the hook sites live deep in net::TcpStream / ResultStore where no
 * config travels; production builds never install one, so every hook
 * is a single relaxed atomic load on the fast path.
 */

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace dttsim::fabric {

/** Where a fabric fault can strike. All sites are "transparent" in
 *  the faultplan.h sense: the fabric must recover from every one of
 *  them with unchanged merged output (there is no lossy class — a
 *  lost record merely re-executes). */
enum class FaultSite : std::uint8_t {
    ConnectRefused, ///< WorkerClient::connect fails as if refused
    ReplyDelay,     ///< server delays a result reply (straggler)
    MidFrameEof,    ///< TcpStream::readLine sees the peer vanish
    CorruptFrame,   ///< one protocol line gets a byte flipped
    ForgeClaim,     ///< a forged far-future claim appears first
    TornAppend,     ///< a segment append stops mid-line
    NumSites,
};

inline constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::NumSites);

/** Stable kebab-case site name (spec syntax and messages). */
const char *faultSiteName(FaultSite s);

/** Inverse of faultSiteName. */
std::optional<FaultSite> faultSiteFromName(const std::string &name);

/** What to inject; parsed from --fabric-faults=SEED:SPEC. */
struct FaultConfig
{
    /** Plan seed; same seed + rates draws the same decision streams. */
    std::uint64_t seed = 0;

    /** Per-site per-opportunity injection probability, 0..1. */
    double rates[kNumFaultSites] = {};

    /** Seconds a ReplyDelay injection sleeps before replying. */
    double delaySeconds = 2.0;

    bool
    enabled() const
    {
        for (double r : rates)
            if (r > 0.0)
                return true;
        return false;
    }
};

/**
 * Parse "SEED:SPEC" where SPEC is a comma list of `site=rate`
 * entries (site from faultSiteName), a bare `rate` arming every
 * site, and/or `delay=SECONDS` setting the straggler sleep:
 *
 *     7:connect-refused=0.5
 *     7:0.25                          (all six sites at 0.25)
 *     13:reply-delay=0.5,delay=1.5
 *
 * Returns nullopt + @p error on malformed specs or rates outside
 * [0, 1].
 */
std::optional<FaultConfig> parseFaultSpec(const std::string &spec,
                                          std::string *error);

/** Canonical "SEED:site=rate,..." spelling of @p config, for banners
 *  and round-trip tests. */
std::string formatFaultSpec(const FaultConfig &config);

/**
 * The live plan. Hooks ask inject(site) at each opportunity; the
 * decision is drawn from the site's stream at the next index
 * (atomically claimed, so concurrent hooks never share a draw).
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &config);

    const FaultConfig &config() const { return config_; }

    /** Site has a nonzero rate (cheap pre-check). */
    bool
    armed(FaultSite s) const
    {
        return config_.rates[static_cast<std::size_t>(s)] > 0.0;
    }

    /** One opportunity at @p s: claims the site's next index and
     *  draws its decision. Unarmed sites return false without
     *  consuming an index. */
    bool inject(FaultSite s);

    /** Deterministically flip one byte of @p line (position and
     *  mask from the CorruptFrame decision stream). No-op on an
     *  empty line. */
    void corruptLine(std::string *line);

    /** Seconds a ReplyDelay injection sleeps. */
    double delaySeconds() const { return config_.delaySeconds; }

    /** Faults applied so far at @p s. */
    std::uint64_t injected(FaultSite s) const;

    /** Total faults applied across all sites. */
    std::uint64_t injectedTotal() const;

  private:
    FaultConfig config_;
    std::atomic<std::uint64_t> counters_[kNumFaultSites] = {};
    std::atomic<std::uint64_t> injected_[kNumFaultSites] = {};
    std::atomic<std::uint64_t> corruptCounter_{0};
};

/**
 * Install @p config as the process-global plan (replacing any
 * previous one; replaced plans are retired, not freed, so a racing
 * hook never dereferences a dead plan). Disabled configs behave like
 * clearFaultPlan().
 */
void installFaultPlan(const FaultConfig &config);

/** Disarm the global plan (tests call this in teardown). */
void clearFaultPlan();

/** The installed plan, or nullptr when injection is off — the one
 *  call every hook site makes. */
FaultPlan *faultPlan();

} // namespace dttsim::fabric
