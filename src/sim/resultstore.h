#pragma once

/**
 * @file
 * Persistent, digest-keyed simulation-result cache: the durability
 * layer under sim::Engine that makes long sweeps crash-safe and
 * figure binaries warm-startable across processes.
 *
 * On-disk layout (one directory, default bench/out/cache/):
 *
 *     MANIFEST        {"schema_version": 3, "segments": [...]}
 *     seg-*.jsonl     one JSON record per line, append-only
 *
 * Durability contract:
 *
 *  - every record append is flushed and fsync'd before put()
 *    returns, so a SIGKILL loses at most the torn tail line of the
 *    current segment. Syncs are group-committed: concurrent workers
 *    write their lines under the index lock but share fsync batches
 *    (one fsync covers every line written before it), so durability
 *    cost amortizes across the pool without weakening the contract;
 *  - the MANIFEST is rewritten atomically (tmp file + fsync +
 *    rename) whenever a new segment is registered — a crash mid-
 *    rewrite leaves the previous MANIFEST intact, and stray
 *    *.tmp / unregistered segment files are ignored on load;
 *  - corrupt or truncated records are skipped with a warning on
 *    load (json::Value::tryParse + sim::tryResultFromJson), never a
 *    fatal(): a damaged cache degrades to re-execution, it does not
 *    kill the sweep.
 *
 * Records are keyed by sim::jobDigest(), which fingerprints every
 * behaviour-relevant field of the job, so a hit is valid across
 * binaries and process lifetimes (cross-binary dedup). Only
 * deterministic simulation outcomes (JobStatus::Ok / Failed) are
 * stored; host-level Error/Timeout outcomes are always re-executed.
 */

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>

#include "sim/engine.h"

namespace dttsim::sim {

/** Append-only JSONL result cache under one directory. */
class ResultStore
{
  public:
    enum class Mode
    {
        Off,       ///< no reads, no writes (a null store)
        ReadOnly,  ///< warm-start from existing records; never write
        ReadWrite, ///< warm-start and persist new results
    };

    /** "off", "ro", "rw" — the --cache flag spelling. */
    static const char *modeName(Mode m);
    /** Inverse of modeName(); nullopt for an unknown spelling. */
    static std::optional<Mode> parseMode(const std::string &name);

    /** One cached execution. */
    struct Record
    {
        std::string digest;
        JobStatus status = JobStatus::Ok;
        int attempts = 1;
        double wallSeconds = 0.0;
        SimResult result;
    };

    /**
     * Open (and for ReadWrite, create) the store at @p dir and load
     * every record reachable from the MANIFEST. A missing directory
     * or MANIFEST is an empty store, not an error; corrupt records
     * are skipped and counted.
     */
    ResultStore(std::string dir, Mode mode);

    /** Seals the current segment (flush + fsync). */
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    Mode mode() const { return mode_; }
    bool readable() const { return mode_ != Mode::Off; }
    bool writable() const { return mode_ == Mode::ReadWrite; }
    const std::string &dir() const { return dir_; }
    std::string manifestPath() const;

    /** Cached record for @p digest, or nullopt. Thread-safe. */
    std::optional<Record> lookup(const std::string &digest) const;

    /**
     * Persist one record (ReadWrite only; otherwise a no-op). The
     * line is flushed and fsync'd before returning. A digest already
     * in the store is not re-appended. Thread-safe: workers call
     * this as jobs finish, so a kill -9 mid-batch keeps every job
     * completed so far.
     */
    void put(const Record &rec);

    /** Records loaded from disk plus records appended this run. */
    std::size_t records() const;
    /** Records skipped as corrupt/truncated during load. */
    std::size_t corruptRecords() const { return corrupt_; }
    /** Segment files successfully opened during load. */
    std::size_t segmentsLoaded() const { return segmentsLoaded_; }
    /** Segment files currently registered in the MANIFEST. */
    std::size_t segmentCount() const;

    /**
     * Rewrite every record into one fresh segment and retire the
     * rest (ReadWrite only): a long-lived cache accretes one
     * `seg-<pid>-*.jsonl` per writing process, and loading many
     * small segments is slower than one big one. The new MANIFEST is
     * published with a single atomic rewrite — a crash before the
     * rename leaves the old segment set fully intact — and the old
     * segment files are unlinked only after the publish succeeds.
     * @return number of records compacted, or nullopt on I/O error
     *         (the store is left on its previous segment set).
     */
    std::optional<std::size_t> compact();

    /**
     * Drop every record and segment (ReadWrite only): publishes an
     * empty MANIFEST atomically, then unlinks the retired segment
     * files. The in-memory index is cleared too, so subsequent
     * lookups miss and subsequent puts start a fresh segment.
     * @return true when the empty manifest was published.
     */
    bool clear();

  private:
    void load();
    bool openSegment();
    bool writeManifest(const std::vector<std::string> &segments);
    void removeSegments(const std::vector<std::string> &names);

    std::string dir_;
    Mode mode_;
    /** Guards the index + segment list: shared for lookups (engine
     *  workers probe concurrently on warm sweeps), exclusive for
     *  mutation. */
    mutable std::shared_mutex mutex_;
    /** Serializes fsync batches (see put()); always acquired after
     *  mutex_ is released, never while holding it. */
    std::mutex syncMutex_;
    std::uint64_t writeSeq_ = 0;    ///< lines written (under mutex_)
    std::uint64_t durableSeq_ = 0;  ///< lines fsync'd (under syncMutex_)
    std::map<std::string, Record> byDigest_;
    std::vector<std::string> segments_;
    std::FILE *segment_ = nullptr;
    std::size_t corrupt_ = 0;
    std::size_t segmentsLoaded_ = 0;
};

/** One cache record as a compact JSONL line (without newline). */
json::Value storeRecordToJson(const ResultStore::Record &rec);

/** Recoverable inverse of storeRecordToJson: nullopt + @p error on
 *  a missing/mistyped field (the corrupt-record skip path). */
std::optional<ResultStore::Record>
tryStoreRecordFromJson(const json::Value &v, std::string *error = nullptr);

} // namespace dttsim::sim
