#pragma once

/**
 * @file
 * Persistent, digest-keyed simulation-result cache: the durability
 * layer under sim::Engine that makes long sweeps crash-safe, warm-
 * startable across processes — and, since the distributed-fabric
 * work, safely shareable by many concurrent processes (and hosts)
 * pointed at one cache directory.
 *
 * On-disk layout (one directory, default bench/out/cache/):
 *
 *     MANIFEST            {"schema_version": 4, "segments": [...]}
 *     MANIFEST.lock       transient publish lock (stale-safe)
 *     seg-*.jsonl         one JSON record per line, append-only
 *     HITS                {"<digest>": <last-hit unix time>, ...}
 *     claims/<digest>.claim   in-flight execution claims
 *
 * Durability contract:
 *
 *  - every record append is flushed and fsync'd before put()
 *    returns, so a SIGKILL loses at most the torn tail line of the
 *    current segment. Syncs are group-committed: concurrent workers
 *    write their lines under the index lock but share fsync batches
 *    (one fsync covers every line written before it), so durability
 *    cost amortizes across the pool without weakening the contract;
 *  - the MANIFEST is rewritten atomically (unique tmp file + fsync +
 *    rename) whenever a new segment is registered — a crash mid-
 *    rewrite leaves the previous MANIFEST intact, and stray
 *    *.tmp / unregistered segment files are ignored on load. Every
 *    registration re-reads the on-disk MANIFEST under a stale-safe
 *    lock file and publishes the *union* of segment lists, so two
 *    processes registering concurrently can never drop each other's
 *    segments;
 *  - segment names carry a per-process random nonce
 *    (seg-<pid>-<nonce>-<k>.jsonl) so two hosts that share a cache
 *    directory and happen to reuse a pid can never alias each
 *    other's segment files (the legacy seg-<pid>-<k>.jsonl form is
 *    still accepted on load — the loader trusts the MANIFEST, not
 *    the spelling);
 *  - corrupt or truncated records are skipped with a warning on
 *    load (json::Value::tryParse + sim::tryResultFromJson), never a
 *    fatal(): a damaged cache degrades to re-execution, it does not
 *    kill the sweep;
 *  - every record carries a checksum ("crc", sim::recordCrc over
 *    digest/status/attempts/result — schema v4; v3 records without
 *    one are accepted read-only). It is verified when a record is
 *    decoded from disk AND re-verified on every warm lookup, so
 *    silent bit-rot in a shared cache directory — or in this
 *    process's memory — surfaces as a re-executed job, never as a
 *    wrong result. fsck() scrubs a whole directory offline.
 *
 * Multi-process coordination (docs/HARNESS.md "Distributed sweeps"):
 *
 *  - tryClaim() atomically claims an in-flight digest with an
 *    O_CREAT|O_EXCL claim record carrying pid/host/token/deadline.
 *    A process that loses the race polls refresh() until the
 *    winner's record appears. Claims from dead processes (same-host
 *    pid probe) or past their deadline are taken over, so a
 *    kill -9'd claimant never wedges a sweep;
 *  - refresh() picks up segments and records appended by *other*
 *    processes since load, reading only complete ('\n'-terminated)
 *    lines so an in-progress append is simply seen on the next call.
 *
 * Cache aging (tools/cache_prune):
 *
 *  - lookups mark per-digest last-hit times, merged into the HITS
 *    sidecar on destruction (advisory data: a lost update costs at
 *    worst a too-early eviction, never a wrong result);
 *  - prune() evicts by last-use age and/or a total-size budget and
 *    republishes the survivor set with one atomic MANIFEST rewrite.
 *
 * Records are keyed by sim::jobDigest(), which fingerprints every
 * behaviour-relevant field of the job, so a hit is valid across
 * binaries, process lifetimes and hosts (cross-binary dedup). Only
 * deterministic simulation outcomes (JobStatus::Ok / Failed) are
 * stored; host-level Error/Timeout outcomes are always re-executed.
 */

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>

#include "sim/engine.h"

namespace dttsim::sim {

/** Append-only JSONL result cache under one directory. */
class ResultStore
{
  public:
    enum class Mode
    {
        Off,       ///< no reads, no writes (a null store)
        ReadOnly,  ///< warm-start from existing records; never write
        ReadWrite, ///< warm-start and persist new results
    };

    /** "off", "ro", "rw" — the --cache flag spelling. */
    static const char *modeName(Mode m);
    /** Inverse of modeName(); nullopt for an unknown spelling. */
    static std::optional<Mode> parseMode(const std::string &name);

    /** One cached execution. */
    struct Record
    {
        std::string digest;
        JobStatus status = JobStatus::Ok;
        int attempts = 1;
        double wallSeconds = 0.0;
        /** Unix time the record was first persisted (0 for records
         *  written before aging support; treated as oldest). */
        std::uint64_t createdUnix = 0;
        /** Unix time of the most recent warm-start hit known for
         *  this digest (HITS sidecar; 0 when never hit). In-memory
         *  metadata, not part of the segment record. */
        std::uint64_t lastHitUnix = 0;
        /** sim::recordCrc over digest/status/attempts/result; 0 for
         *  legacy (pre-v4) records, which are trusted as-is. */
        std::uint64_t crc = 0;
        SimResult result;
    };

    /** Outcome of a tryClaim() attempt. */
    enum class ClaimOutcome
    {
        /** We hold the claim (fresh, re-entrant, or taken over from
         *  a stale holder) — execute the job, put(), then
         *  releaseClaim(). */
        Acquired,
        /** A live other process holds the claim: poll refresh() +
         *  lookup() for its record instead of duplicating work. */
        Busy,
        /** Claims are unavailable (store not writable, or claim I/O
         *  failed) — just execute; correctness is unaffected. */
        Unsupported,
    };

    /** Decoded contents of a claim file. */
    struct ClaimInfo
    {
        long pid = 0;
        std::string host;
        std::uint64_t token = 0;
        std::uint64_t deadlineUnix = 0;
    };

    /**
     * Open (and for ReadWrite, create) the store at @p dir and load
     * every record reachable from the MANIFEST. A missing directory
     * or MANIFEST is an empty store, not an error; corrupt records
     * are skipped and counted.
     */
    ResultStore(std::string dir, Mode mode);

    /** Seals the current segment (flush + fsync), releases every
     *  claim this store still holds, and merges pending last-hit
     *  times into the HITS sidecar. */
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    Mode mode() const { return mode_; }
    bool readable() const { return mode_ != Mode::Off; }
    bool writable() const { return mode_ == Mode::ReadWrite; }
    const std::string &dir() const { return dir_; }
    std::string manifestPath() const;

    /** Cached record for @p digest, or nullopt. Thread-safe. Marks
     *  the digest's last-hit time (flushed to HITS on destruction)
     *  when the store is writable. */
    std::optional<Record> lookup(const std::string &digest) const;

    /**
     * Persist one record (ReadWrite only; otherwise a no-op). The
     * line is flushed and fsync'd before returning. A digest already
     * in the store is not re-appended. Thread-safe: workers call
     * this as jobs finish, so a kill -9 mid-batch keeps every job
     * completed so far.
     */
    void put(const Record &rec);

    /**
     * Pick up records appended by other processes since load (or the
     * previous refresh): re-reads the MANIFEST for newly registered
     * segments and reads the newly appended *complete* lines of
     * known segments. An unterminated tail (a write in progress on
     * the other side) is left for the next call, not counted as
     * corrupt. Thread-safe. @return records newly indexed.
     */
    std::size_t refresh();

    /**
     * Atomically claim the in-flight execution of @p digest with an
     * O_CREAT|O_EXCL record under claims/. Re-entrant for this
     * store (re-claiming a digest we already hold is Acquired).
     * Stale claims — holder dead (same-host pid probe) or past the
     * claim deadline — are taken over. @p holder, when non-null, is
     * filled with the live holder on Busy.
     */
    ClaimOutcome tryClaim(const std::string &digest,
                          ClaimInfo *holder = nullptr);

    /** Release @p digest's claim if this store holds it (no-op
     *  otherwise — never unlinks another process's claim). */
    void releaseClaim(const std::string &digest);

    /** Wall-clock seconds a claim stays valid before any process may
     *  take it over (default 300; raise above the longest expected
     *  job). Takes effect on subsequently created claims. */
    void setClaimDeadline(double seconds) { claimSeconds_ = seconds; }

    /** Stale claims this store detected and took over. */
    std::size_t staleClaimsTaken() const;

    /** Records loaded from disk plus records appended this run. */
    std::size_t records() const;
    /** Records skipped as corrupt/truncated during load. */
    std::size_t corruptRecords() const { return corrupt_; }
    /** Segment files successfully opened during load. */
    std::size_t segmentsLoaded() const { return segmentsLoaded_; }
    /** Segment files currently registered in the MANIFEST. */
    std::size_t segmentCount() const;

    /** Serialized byte size of every indexed record (the line
     *  lengths a fresh compacted segment would occupy). */
    std::uint64_t recordBytes() const;

    /**
     * Rewrite every record into one fresh segment and retire the
     * rest (ReadWrite only): a long-lived cache accretes one
     * segment per writing process, and loading many small segments
     * is slower than one big one. The new MANIFEST is published
     * with a single atomic rewrite — a crash before the rename
     * leaves the old segment set fully intact — and the old
     * segment files are unlinked only after the publish succeeds.
     * Maintenance operation: run it while no other process is
     * writing the directory (tools/cache_prune).
     * @return number of records compacted, or nullopt on I/O error
     *         (the store is left on its previous segment set).
     */
    std::optional<std::size_t> compact();

    /** Eviction report from prune(). */
    struct PruneStats
    {
        std::size_t kept = 0;
        std::size_t evicted = 0;
        std::uint64_t keptBytes = 0;
        std::uint64_t evictedBytes = 0;
    };

    /**
     * Age the cache (ReadWrite only; a maintenance operation like
     * compact()): evict every record whose last use — last-hit time
     * when known, else creation time — is more than @p max_age_seconds
     * old (0 disables the age test; records with no timestamp at all
     * count as infinitely old), then, oldest-first, until the
     * serialized size of the survivors fits @p max_bytes (0 disables
     * the size budget). Survivors are rewritten into one fresh
     * segment and published atomically; the HITS sidecar is rewritten
     * to the survivor set. @p now_unix anchors "now" (0 = wall clock;
     * tests pin it). @return stats, or nullopt on I/O error.
     */
    std::optional<PruneStats> prune(std::uint64_t max_bytes,
                                    std::uint64_t max_age_seconds,
                                    std::uint64_t now_unix = 0);

    /**
     * Drop every record and segment (ReadWrite only): publishes an
     * empty MANIFEST atomically, then unlinks the retired segment
     * files. The in-memory index is cleared too, so subsequent
     * lookups miss and subsequent puts start a fresh segment.
     * @return true when the empty manifest was published.
     */
    bool clear();

    /** Merge pending last-hit times into the HITS sidecar now
     *  (ReadWrite only; the destructor calls this). */
    void flushHits();

    /** Scrub report from fsck(). */
    struct FsckReport
    {
        std::size_t segmentsScanned = 0;
        /** Records that parsed, decoded, and passed the crc check. */
        std::size_t recordsKept = 0;
        /** Torn tails + undecodable lines + crc mismatches. */
        std::size_t badRecords = 0;
        /** Subset of badRecords: well-formed records whose stored
         *  checksum does not match the payload (silent bit-rot). */
        std::size_t crcMismatches = 0;
        /** MANIFEST entries whose segment file is gone. */
        std::size_t missingSegments = 0;
        std::size_t segmentsRewritten = 0;
        bool clean() const
        {
            return badRecords == 0 && missingSegments == 0;
        }
    };

    /**
     * Offline integrity scrub of the cache directory at @p dir
     * (tools/cache_fsck): every line of every MANIFEST-registered
     * segment is parsed, decoded, and crc-checked. Unless @p dry_run,
     * bad lines are moved to quarantine/<segment> (appended verbatim,
     * for forensics), each damaged segment is rewritten atomically
     * with only its good lines, and the MANIFEST is republished
     * without missing segments. Runs under the directory publish
     * lock; a maintenance operation like compact() — run it while no
     * process is writing the directory. @return the report, or
     * nullopt + @p error when the directory cannot be locked or a
     * rewrite fails.
     */
    static std::optional<FsckReport> fsck(const std::string &dir,
                                          bool dry_run,
                                          std::string *error = nullptr);

  private:
    void load();
    void loadHits();
    bool openSegment();
    bool writeManifest(const std::vector<std::string> &toAdd,
                       const std::vector<std::string> *replaceWith);
    void removeSegments(const std::vector<std::string> &names);
    /** Read one segment from @p offset, indexing complete lines.
     *  @p tolerate_tail: leave an unterminated tail for later
     *  (refresh) instead of counting it corrupt (initial load).
     *  Requires mutex_ held exclusively. */
    std::size_t readSegment(const std::string &name, bool tolerate_tail);
    std::optional<std::size_t>
    rewriteRecords(const std::set<std::string> *keep);
    std::string claimPath(const std::string &digest) const;

    std::string dir_;
    Mode mode_;
    /** Random per-process identity: segment-name nonce and claim
     *  ownership token (re-entrancy and same-pid disambiguation
     *  across hosts). */
    std::uint64_t token_ = 0;
    std::string host_;
    double claimSeconds_ = 300.0;
    /** Guards the index + segment list: shared for lookups (engine
     *  workers probe concurrently on warm sweeps), exclusive for
     *  mutation. */
    mutable std::shared_mutex mutex_;
    /** Serializes fsync batches (see put()); always acquired after
     *  mutex_ is released, never while holding it. */
    std::mutex syncMutex_;
    std::uint64_t writeSeq_ = 0;    ///< lines written (under mutex_)
    std::uint64_t durableSeq_ = 0;  ///< lines fsync'd (under syncMutex_)
    std::map<std::string, Record> byDigest_;
    std::vector<std::string> segments_;
    /** Bytes of each segment already consumed (complete lines),
     *  keyed by name; refresh() resumes from here. */
    std::map<std::string, std::uint64_t> segmentOffsets_;
    /** Lines already consumed per segment (corrupt-line warnings
     *  keep accurate line numbers across refresh calls). */
    std::map<std::string, std::size_t> segmentLines_;
    /** Last-hit times as loaded from the HITS sidecar (under
     *  mutex_); pendingHits_ holds this run's new hits. */
    std::map<std::string, std::uint64_t> diskHits_;
    std::FILE *segment_ = nullptr;
    std::string activeSegmentName_;
    std::size_t corrupt_ = 0;
    std::size_t segmentsLoaded_ = 0;
    /** Claims currently held by this store (under mutex_). */
    std::set<std::string> ownClaims_;
    std::size_t staleClaims_ = 0;
    /** Last-hit times observed this run, merged into HITS on
     *  flushHits() (guarded by hitsMutex_, not mutex_). */
    mutable std::mutex hitsMutex_;
    mutable std::map<std::string, std::uint64_t> pendingHits_;
};

/** One cache record as a compact JSONL line (without newline). */
json::Value storeRecordToJson(const ResultStore::Record &rec);

/** Recoverable inverse of storeRecordToJson: nullopt + @p error on
 *  a missing/mistyped field (the corrupt-record skip path). */
std::optional<ResultStore::Record>
tryStoreRecordFromJson(const json::Value &v, std::string *error = nullptr);

} // namespace dttsim::sim
