#pragma once

/**
 * @file
 * Persistent, digest-keyed simulation-result cache: the durability
 * layer under sim::Engine that makes long sweeps crash-safe and
 * figure binaries warm-startable across processes.
 *
 * On-disk layout (one directory, default bench/out/cache/):
 *
 *     MANIFEST        {"schema_version": 2, "segments": [...]}
 *     seg-*.jsonl     one JSON record per line, append-only
 *
 * Durability contract:
 *
 *  - every record append is flushed and fsync'd before put()
 *    returns, so a SIGKILL loses at most the torn tail line of the
 *    current segment;
 *  - the MANIFEST is rewritten atomically (tmp file + fsync +
 *    rename) whenever a new segment is registered — a crash mid-
 *    rewrite leaves the previous MANIFEST intact, and stray
 *    *.tmp / unregistered segment files are ignored on load;
 *  - corrupt or truncated records are skipped with a warning on
 *    load (json::Value::tryParse + sim::tryResultFromJson), never a
 *    fatal(): a damaged cache degrades to re-execution, it does not
 *    kill the sweep.
 *
 * Records are keyed by sim::jobDigest(), which fingerprints every
 * behaviour-relevant field of the job, so a hit is valid across
 * binaries and process lifetimes (cross-binary dedup). Only
 * deterministic simulation outcomes (JobStatus::Ok / Failed) are
 * stored; host-level Error/Timeout outcomes are always re-executed.
 */

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "sim/engine.h"

namespace dttsim::sim {

/** Append-only JSONL result cache under one directory. */
class ResultStore
{
  public:
    enum class Mode
    {
        Off,       ///< no reads, no writes (a null store)
        ReadOnly,  ///< warm-start from existing records; never write
        ReadWrite, ///< warm-start and persist new results
    };

    /** "off", "ro", "rw" — the --cache flag spelling. */
    static const char *modeName(Mode m);
    /** Inverse of modeName(); nullopt for an unknown spelling. */
    static std::optional<Mode> parseMode(const std::string &name);

    /** One cached execution. */
    struct Record
    {
        std::string digest;
        JobStatus status = JobStatus::Ok;
        int attempts = 1;
        double wallSeconds = 0.0;
        SimResult result;
    };

    /**
     * Open (and for ReadWrite, create) the store at @p dir and load
     * every record reachable from the MANIFEST. A missing directory
     * or MANIFEST is an empty store, not an error; corrupt records
     * are skipped and counted.
     */
    ResultStore(std::string dir, Mode mode);

    /** Seals the current segment (flush + fsync). */
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    Mode mode() const { return mode_; }
    bool readable() const { return mode_ != Mode::Off; }
    bool writable() const { return mode_ == Mode::ReadWrite; }
    const std::string &dir() const { return dir_; }
    std::string manifestPath() const;

    /** Cached record for @p digest, or nullopt. Thread-safe. */
    std::optional<Record> lookup(const std::string &digest) const;

    /**
     * Persist one record (ReadWrite only; otherwise a no-op). The
     * line is flushed and fsync'd before returning. A digest already
     * in the store is not re-appended. Thread-safe: workers call
     * this as jobs finish, so a kill -9 mid-batch keeps every job
     * completed so far.
     */
    void put(const Record &rec);

    /** Records loaded from disk plus records appended this run. */
    std::size_t records() const;
    /** Records skipped as corrupt/truncated during load. */
    std::size_t corruptRecords() const { return corrupt_; }
    /** Segment files successfully opened during load. */
    std::size_t segmentsLoaded() const { return segmentsLoaded_; }

  private:
    void load();
    bool openSegment();
    bool writeManifest(const std::vector<std::string> &segments);

    std::string dir_;
    Mode mode_;
    mutable std::mutex mutex_;
    std::map<std::string, Record> byDigest_;
    std::vector<std::string> segments_;
    std::FILE *segment_ = nullptr;
    std::size_t corrupt_ = 0;
    std::size_t segmentsLoaded_ = 0;
};

/** One cache record as a compact JSONL line (without newline). */
json::Value storeRecordToJson(const ResultStore::Record &rec);

/** Recoverable inverse of storeRecordToJson: nullopt + @p error on
 *  a missing/mistyped field (the corrupt-record skip path). */
std::optional<ResultStore::Record>
tryStoreRecordFromJson(const json::Value &v, std::string *error = nullptr);

} // namespace dttsim::sim
