#pragma once

/**
 * @file
 * Differential-correctness checker for fault-injected simulations.
 *
 * A fault-injected run is architecturally correct when it ends with
 * the same data-segment image (and, optionally, the same main-thread
 * registers) as the fault-free run of the same program on the same
 * machine. DttController faults at *transparent* sites (deny-spawn,
 * squash-with-requeue, spurious-coalesce) must always pass this check
 * for well-formed DTT programs; *lossy* sites (drop-firing,
 * evict-pending) pass only for programs using the TCHK-bit62
 * software-fallback idiom. A divergence is reported as a hard
 * structured failure naming the first divergent location and the
 * fault that preceded it, and the faulted result is rewritten to
 * HaltReason::Diverged.
 *
 * Golden (fault-free) runs are cached by job digest, so sweeping many
 * {seed, rate, siteMask} points over one program pays for the golden
 * run once. The cache is mutex-guarded: check() may be called from
 * concurrent sweep threads.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "isa/program.h"
#include "sim/simulator.h"

namespace dttsim::sim {

/** Outcome of one differential check. */
struct DiffReport
{
    /** Faulted run halted and matched the golden run. */
    bool ok = false;
    /** The faulted run's result; on divergence haltReason is
     *  rewritten to Diverged and haltDetail names the divergence. */
    SimResult faulted;
    /** Human-readable failure description (empty when ok). */
    std::string detail;
};

/** Compares fault-injected runs against cached fault-free goldens. */
class DiffChecker
{
  public:
    /**
     * Run @p config (which should have fault injection enabled —
     * a fault-free config trivially passes against itself) and
     * compare against the fault-free golden of the same machine.
     * @param compare_regs also require context-0 x1..x31 and f0..f31
     *        to match. Disable for programs whose fallback path is
     *        *expected* to leave different temporaries behind.
     */
    DiffReport check(const SimConfig &config,
                     const isa::Program &program,
                     bool compare_regs = true);

    /** Golden runs executed so far (cache misses). */
    std::uint64_t goldenRuns() const { return goldenRuns_; }

  private:
    struct Golden
    {
        SimResult result;
        std::vector<std::uint8_t> image;  ///< [kDataBase, dataEnd)
        std::vector<std::uint64_t> xregs; ///< ctx0 x1..x31
        std::vector<double> fregs;        ///< ctx0 f0..f31
    };

    const Golden &goldenFor(const SimConfig &config,
                            const isa::Program &program);

    std::mutex mutex_;
    std::map<std::string, Golden> cache_;  ///< by fault-free digest
    std::uint64_t goldenRuns_ = 0;
};

} // namespace dttsim::sim
