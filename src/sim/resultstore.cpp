#include "sim/resultstore.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/log.h"

namespace dttsim::sim {

namespace fs = std::filesystem;

namespace {

/** fsync an open stdio stream. */
bool
syncStream(std::FILE *f)
{
    return std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
}

/** fsync a directory so a rename into it is durable. */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

const char *
ResultStore::modeName(Mode m)
{
    switch (m) {
    case Mode::Off: return "off";
    case Mode::ReadOnly: return "ro";
    case Mode::ReadWrite: return "rw";
    }
    return "?";
}

std::optional<ResultStore::Mode>
ResultStore::parseMode(const std::string &name)
{
    for (Mode m : {Mode::Off, Mode::ReadOnly, Mode::ReadWrite})
        if (name == modeName(m))
            return m;
    return std::nullopt;
}

json::Value
storeRecordToJson(const ResultStore::Record &rec)
{
    json::Value v = json::Value::object();
    v.set("digest", json::Value(rec.digest));
    v.set("status", json::Value(std::string(jobStatusName(rec.status))));
    v.set("attempts",
          json::Value(static_cast<std::uint64_t>(rec.attempts)));
    v.set("wall_seconds", json::Value(rec.wallSeconds));
    v.set("result", resultToJson(rec.result));
    return v;
}

std::optional<ResultStore::Record>
tryStoreRecordFromJson(const json::Value &v, std::string *error)
{
    auto fail = [&](const char *what) -> std::optional<ResultStore::Record> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    if (!v.isObject())
        return fail("record is not an object");

    ResultStore::Record rec;
    const json::Value *digest = v.find("digest");
    if (digest == nullptr || !digest->isString()
        || digest->asString().empty())
        return fail("'digest' missing or not a string");
    rec.digest = digest->asString();

    const json::Value *status = v.find("status");
    if (status == nullptr || !status->isString())
        return fail("'status' missing or not a string");
    std::optional<JobStatus> st = jobStatusFromName(status->asString());
    if (!st)
        return fail("'status' names an unknown job status");
    rec.status = *st;

    const json::Value *attempts = v.find("attempts");
    if (attempts == nullptr || !attempts->isUint()
        || attempts->asUint() < 1)
        return fail("'attempts' missing or not a positive integer");
    rec.attempts = static_cast<int>(attempts->asUint());

    const json::Value *wall = v.find("wall_seconds");
    if (wall == nullptr || !wall->isNumber())
        return fail("'wall_seconds' missing or not a number");
    rec.wallSeconds = wall->asDouble();

    const json::Value *result = v.find("result");
    if (result == nullptr)
        return fail("'result' missing");
    std::string result_error;
    std::optional<SimResult> r = tryResultFromJson(*result, &result_error);
    if (!r) {
        if (error != nullptr)
            *error = result_error;
        return std::nullopt;
    }
    rec.result = *r;
    return rec;
}

ResultStore::ResultStore(std::string dir, Mode mode)
    : dir_(std::move(dir)), mode_(mode)
{
    if (mode_ == Mode::Off)
        return;
    if (writable()) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        if (ec)
            warn("result cache: cannot create '%s': %s; caching "
                 "disabled for this run",
                 dir_.c_str(), ec.message().c_str());
    }
    load();
}

ResultStore::~ResultStore()
{
    if (segment_ != nullptr) {
        syncStream(segment_);
        std::fclose(segment_);
    }
}

std::string
ResultStore::manifestPath() const
{
    return dir_ + "/MANIFEST";
}

void
ResultStore::load()
{
    std::ifstream manifest(manifestPath());
    if (!manifest)
        return;  // empty store: first run, or a fresh directory
    std::string text((std::istreambuf_iterator<char>(manifest)),
                     std::istreambuf_iterator<char>());

    std::string error;
    std::optional<json::Value> doc = json::Value::tryParse(text, &error);
    if (!doc || !doc->isObject() || doc->find("segments") == nullptr
        || !doc->get("segments").isArray()) {
        warn("result cache: %s is corrupt (%s); starting from an "
             "empty cache",
             manifestPath().c_str(),
             error.empty() ? "unexpected shape" : error.c_str());
        return;
    }

    const json::Value &segments = doc->get("segments");
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (!segments.at(i).isString()) {
            warn("result cache: %s: segment %zu is not a string; "
                 "skipped", manifestPath().c_str(), i);
            continue;
        }
        const std::string name = segments.at(i).asString();
        const std::string path = dir_ + "/" + name;
        std::ifstream seg(path);
        if (!seg) {
            warn("result cache: segment '%s' listed in MANIFEST is "
                 "missing; its records will be re-executed",
                 path.c_str());
            continue;
        }
        segments_.push_back(name);
        ++segmentsLoaded_;
        std::string line;
        for (std::size_t lineno = 1; std::getline(seg, line); ++lineno) {
            if (line.empty())
                continue;
            std::optional<json::Value> v =
                json::Value::tryParse(line, &error);
            std::optional<Record> rec;
            if (v)
                rec = tryStoreRecordFromJson(*v, &error);
            if (!rec) {
                // A torn tail line after a SIGKILL lands here: the
                // record degrades to one re-executed job.
                warn("result cache: %s:%zu: skipping corrupt record "
                     "(%s)", path.c_str(), lineno, error.c_str());
                ++corrupt_;
                continue;
            }
            byDigest_.emplace(rec->digest, std::move(*rec));
        }
    }
}

bool
ResultStore::writeManifest(const std::vector<std::string> &segments)
{
    json::Value doc = json::Value::object();
    doc.set("schema_version",
            json::Value(static_cast<std::uint64_t>(
                kResultsSchemaVersion)));
    json::Value segs = json::Value::array();
    for (const std::string &s : segments)
        segs.push(json::Value(s));
    doc.set("segments", std::move(segs));

    const std::string tmp = manifestPath() + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string text = doc.dump(2);
    text += '\n';
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size()
        && syncStream(f);
    ok = (std::fclose(f) == 0) && ok;
    // The atomic publish: readers see either the old or the new
    // manifest, never a torn one.
    ok = ok && std::rename(tmp.c_str(), manifestPath().c_str()) == 0;
    if (ok)
        syncDir(dir_);
    else
        std::remove(tmp.c_str());
    return ok;
}

bool
ResultStore::openSegment()
{
    // A name unique across processes (and across pid reuse): probe
    // with "wx" so two concurrent writers never share a segment.
    const unsigned pid = static_cast<unsigned>(::getpid());
    for (unsigned k = 0; k < 1000; ++k) {
        std::string name = strfmt("seg-%u-%u.jsonl", pid, k);
        std::string path = dir_ + "/" + name;
        std::FILE *f = std::fopen(path.c_str(), "wx");
        if (f == nullptr) {
            if (errno == EEXIST)
                continue;
            warn("result cache: cannot create segment '%s': %s; "
                 "new results will not be persisted",
                 path.c_str(), std::strerror(errno));
            return false;
        }
        // Register before the first record: the loader tolerates an
        // empty or torn segment, while an unregistered one would
        // silently lose every record it holds.
        std::vector<std::string> all = segments_;
        all.push_back(name);
        if (!writeManifest(all)) {
            warn("result cache: cannot publish '%s' in %s; new "
                 "results will not be persisted",
                 name.c_str(), manifestPath().c_str());
            std::fclose(f);
            std::remove(path.c_str());
            return false;
        }
        segments_ = std::move(all);
        segment_ = f;
        return true;
    }
    warn("result cache: exhausted segment names in '%s'", dir_.c_str());
    return false;
}

std::optional<ResultStore::Record>
ResultStore::lookup(const std::string &digest) const
{
    if (!readable())
        return std::nullopt;
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = byDigest_.find(digest);
    if (it == byDigest_.end())
        return std::nullopt;
    return it->second;
}

void
ResultStore::put(const Record &rec)
{
    if (!writable())
        return;
    std::uint64_t mySeq;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        if (byDigest_.count(rec.digest) != 0)
            return;  // already durable; keep the store append-only
        if (segment_ == nullptr && !openSegment()) {
            // Creation failed (and warned) — remember the record in
            // memory so at least this process keeps its dedup.
            byDigest_.emplace(rec.digest, rec);
            return;
        }
        std::string line = storeRecordToJson(rec).dump();
        line += '\n';
        if (std::fwrite(line.data(), 1, line.size(), segment_)
                != line.size())
            warn("result cache: short write to segment in '%s': %s",
                 dir_.c_str(), std::strerror(errno));
        byDigest_.emplace(rec.digest, rec);
        mySeq = ++writeSeq_;
    }
    // Group commit: the record must be durable before returning, but
    // one fsync covers every line written before it started, so
    // workers queued behind a sync in flight usually find their line
    // already on disk and skip their own.
    std::lock_guard<std::mutex> sync(syncMutex_);
    if (durableSeq_ >= mySeq)
        return;  // an overlapping fsync already covered our line
    std::FILE *f;
    std::uint64_t cover;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        f = segment_;
        cover = writeSeq_;
    }
    if (f != nullptr && !syncStream(f))
        warn("result cache: fsync failed for segment in '%s': %s",
             dir_.c_str(), std::strerror(errno));
    durableSeq_ = cover;
}

std::size_t
ResultStore::records() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return byDigest_.size();
}

std::size_t
ResultStore::segmentCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return segments_.size();
}

void
ResultStore::removeSegments(const std::vector<std::string> &names)
{
    for (const std::string &name : names)
        std::remove((dir_ + "/" + name).c_str());
    syncDir(dir_);
}

std::optional<std::size_t>
ResultStore::compact()
{
    if (!writable())
        return std::nullopt;
    std::lock_guard<std::mutex> sync(syncMutex_);
    std::unique_lock<std::shared_mutex> lock(mutex_);

    // Seal the active segment; every record it held is in byDigest_.
    if (segment_ != nullptr) {
        syncStream(segment_);
        std::fclose(segment_);
        segment_ = nullptr;
    }

    // Write the whole index into one fresh segment ("c" namespace so
    // the probe cannot collide with openSegment's own counter).
    const unsigned pid = static_cast<unsigned>(::getpid());
    std::string name;
    std::FILE *f = nullptr;
    for (unsigned k = 0; k < 1000 && f == nullptr; ++k) {
        name = strfmt("seg-%u-c%u.jsonl", pid, k);
        f = std::fopen((dir_ + "/" + name).c_str(), "wx");
        if (f == nullptr && errno != EEXIST)
            break;
    }
    if (f == nullptr) {
        warn("result cache: compact: cannot create a segment in "
             "'%s': %s", dir_.c_str(), std::strerror(errno));
        return std::nullopt;
    }
    bool ok = true;
    for (const auto &[digest, rec] : byDigest_) {
        std::string line = storeRecordToJson(rec).dump();
        line += '\n';
        ok = ok && std::fwrite(line.data(), 1, line.size(), f)
            == line.size();
    }
    ok = ok && syncStream(f);
    if (!ok) {
        warn("result cache: compact: short write in '%s': %s; "
             "keeping the existing segments", dir_.c_str(),
             std::strerror(errno));
        std::fclose(f);
        std::remove((dir_ + "/" + name).c_str());
        return std::nullopt;
    }

    // One atomic publish switches the MANIFEST from the old segment
    // set to the single compacted one; a crash before the rename
    // leaves the old set fully intact (the orphaned new segment is
    // ignored on load).
    if (!writeManifest({name})) {
        warn("result cache: compact: cannot publish '%s' in %s; "
             "keeping the existing segments", name.c_str(),
             manifestPath().c_str());
        std::fclose(f);
        std::remove((dir_ + "/" + name).c_str());
        return std::nullopt;
    }
    std::vector<std::string> retired = std::move(segments_);
    segments_ = {name};
    segment_ = f;  // future puts append to the compacted segment
    durableSeq_ = writeSeq_;
    removeSegments(retired);
    return byDigest_.size();
}

bool
ResultStore::clear()
{
    if (!writable())
        return false;
    std::lock_guard<std::mutex> sync(syncMutex_);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (segment_ != nullptr) {
        std::fclose(segment_);
        segment_ = nullptr;
    }
    if (!writeManifest(std::vector<std::string>{})) {
        warn("result cache: clear: cannot publish an empty MANIFEST "
             "in '%s'", dir_.c_str());
        return false;
    }
    std::vector<std::string> retired = std::move(segments_);
    segments_.clear();
    byDigest_.clear();
    durableSeq_ = writeSeq_;
    removeSegments(retired);
    return true;
}

} // namespace dttsim::sim
