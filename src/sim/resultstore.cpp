#include "sim/resultstore.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

#include "common/log.h"
#include "sim/fabricfault.h"

namespace dttsim::sim {

namespace fs = std::filesystem;

namespace {

/** fsync an open stdio stream. */
bool
syncStream(std::FILE *f)
{
    return std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
}

/** fsync a directory so a rename into it is durable. */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

std::uint64_t
nowUnix()
{
    return static_cast<std::uint64_t>(std::time(nullptr));
}

/** Random per-process token: segment nonce + claim ownership. Not a
 *  simulation RNG — never touches determinism — so wall clock and
 *  random_device are fine (and wanted) here. */
std::uint64_t
makeToken()
{
    std::random_device rd;
    std::uint64_t t = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    t ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    t ^= static_cast<std::uint64_t>(::getpid()) << 17;
    return t ? t : 1;
}

std::string
hostName()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof buf - 1) != 0)
        return "?";
    return buf;
}

/** Atomically write @p text to @p path (unique tmp + fsync + rename
 *  + dirsync). @p unique disambiguates concurrent writers' tmps. */
bool
atomicWrite(const std::string &dir, const std::string &path,
            const std::string &text, std::uint64_t unique)
{
    const std::string tmp =
        strfmt("%s.tmp.%u.%llx", path.c_str(),
               static_cast<unsigned>(::getpid()),
               static_cast<unsigned long long>(unique));
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return false;
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size()
        && syncStream(f);
    ok = (std::fclose(f) == 0) && ok;
    ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
    if (ok)
        syncDir(dir);
    else
        std::remove(tmp.c_str());
    return ok;
}

/**
 * Acquire the directory's MANIFEST.lock (O_CREAT|O_EXCL), the mutual
 * exclusion for manifest/HITS publishes across processes. Stale-safe:
 * a lock from a dead same-host process, or older than 30 s, is taken
 * over — a publish takes milliseconds, so an old lock is a corpse.
 * Returns false after ~2 s of contention (callers degrade to an
 * unmerged publish with a warning rather than losing the record).
 */
bool
acquireDirLock(const std::string &dir, const std::string &host)
{
    const std::string path = dir + "/MANIFEST.lock";
    for (int tries = 0; tries < 400; ++tries) {
        int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY,
                        0644);
        if (fd >= 0) {
            std::string body = strfmt(
                "%ld %s\n", static_cast<long>(::getpid()),
                host.c_str());
            (void)!::write(fd, body.data(), body.size());
            ::close(fd);
            return true;
        }
        if (errno != EEXIST)
            return false;
        // Stale-holder checks: same-host dead pid, or just old.
        bool stale = false;
        {
            std::ifstream in(path);
            long pid = 0;
            std::string h;
            if (in >> pid >> h) {
                if (h == host && pid > 0 && ::kill(pid, 0) == -1
                    && errno == ESRCH)
                    stale = true;
            }
        }
        if (!stale) {
            std::error_code ec;
            auto mtime = fs::last_write_time(path, ec);
            if (!ec
                && fs::file_time_type::clock::now() - mtime
                       > std::chrono::seconds(30))
                stale = true;
        }
        if (stale) {
            ::unlink(path.c_str());
            continue;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
}

void
releaseDirLock(const std::string &dir)
{
    ::unlink((dir + "/MANIFEST.lock").c_str());
}

/** Segment names listed by the on-disk MANIFEST (empty on any
 *  parse problem — callers fall back to their in-memory view). */
std::vector<std::string>
diskManifestSegments(const std::string &manifest_path)
{
    std::vector<std::string> names;
    std::ifstream in(manifest_path);
    if (!in)
        return names;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::optional<json::Value> doc = json::Value::tryParse(text);
    if (!doc || !doc->isObject())
        return names;
    const json::Value *segs = doc->find("segments");
    if (segs == nullptr || !segs->isArray())
        return names;
    for (std::size_t i = 0; i < segs->size(); ++i)
        if (segs->at(i).isString())
            names.push_back(segs->at(i).asString());
    return names;
}

} // namespace

const char *
ResultStore::modeName(Mode m)
{
    switch (m) {
    case Mode::Off: return "off";
    case Mode::ReadOnly: return "ro";
    case Mode::ReadWrite: return "rw";
    }
    return "?";
}

std::optional<ResultStore::Mode>
ResultStore::parseMode(const std::string &name)
{
    for (Mode m : {Mode::Off, Mode::ReadOnly, Mode::ReadWrite})
        if (name == modeName(m))
            return m;
    return std::nullopt;
}

json::Value
storeRecordToJson(const ResultStore::Record &rec)
{
    json::Value v = json::Value::object();
    v.set("digest", json::Value(rec.digest));
    v.set("status", json::Value(std::string(jobStatusName(rec.status))));
    v.set("attempts",
          json::Value(static_cast<std::uint64_t>(rec.attempts)));
    v.set("wall_seconds", json::Value(rec.wallSeconds));
    if (rec.createdUnix != 0)
        v.set("created_unix", json::Value(rec.createdUnix));
    v.set("result", resultToJson(rec.result));
    // Always stamped fresh from the payload (never copied from
    // rec.crc), so rewriting a legacy record upgrades it to v4.
    v.set("crc", json::Value(recordCrc(rec.digest, rec.status,
                                       rec.attempts, rec.result)));
    return v;
}

std::optional<ResultStore::Record>
tryStoreRecordFromJson(const json::Value &v, std::string *error)
{
    auto fail = [&](const char *what) -> std::optional<ResultStore::Record> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    if (!v.isObject())
        return fail("record is not an object");

    ResultStore::Record rec;
    const json::Value *digest = v.find("digest");
    if (digest == nullptr || !digest->isString()
        || digest->asString().empty())
        return fail("'digest' missing or not a string");
    rec.digest = digest->asString();

    const json::Value *status = v.find("status");
    if (status == nullptr || !status->isString())
        return fail("'status' missing or not a string");
    std::optional<JobStatus> st = jobStatusFromName(status->asString());
    if (!st)
        return fail("'status' names an unknown job status");
    rec.status = *st;

    const json::Value *attempts = v.find("attempts");
    if (attempts == nullptr || !attempts->isUint()
        || attempts->asUint() < 1)
        return fail("'attempts' missing or not a positive integer");
    rec.attempts = static_cast<int>(attempts->asUint());

    const json::Value *wall = v.find("wall_seconds");
    if (wall == nullptr || !wall->isNumber())
        return fail("'wall_seconds' missing or not a number");
    rec.wallSeconds = wall->asDouble();

    // Aging metadata is optional: records written before the fabric
    // work have no timestamp and age as "oldest".
    const json::Value *created = v.find("created_unix");
    if (created != nullptr) {
        if (!created->isUint())
            return fail("'created_unix' is not an unsigned integer");
        rec.createdUnix = created->asUint();
    }

    const json::Value *result = v.find("result");
    if (result == nullptr)
        return fail("'result' missing");
    std::string result_error;
    std::optional<SimResult> r = tryResultFromJson(*result, &result_error);
    if (!r) {
        if (error != nullptr)
            *error = result_error;
        return std::nullopt;
    }
    rec.result = *r;

    // Integrity gate (schema v4; absent on legacy records, which are
    // trusted as-is): a stored checksum that does not match the
    // payload means the line rotted after it was written — a damaged
    // record re-executes, it is never served.
    const json::Value *crc = v.find("crc");
    if (crc != nullptr) {
        if (!crc->isUint())
            return fail("'crc' is not an unsigned integer");
        rec.crc = crc->asUint();
        const std::uint64_t computed = recordCrc(
            rec.digest, rec.status, rec.attempts, rec.result);
        if (rec.crc != computed) {
            if (error != nullptr)
                *error = strfmt(
                    "crc mismatch (stored %016llx, computed %016llx)",
                    static_cast<unsigned long long>(rec.crc),
                    static_cast<unsigned long long>(computed));
            return std::nullopt;
        }
    }
    return rec;
}

ResultStore::ResultStore(std::string dir, Mode mode)
    : dir_(std::move(dir)), mode_(mode), token_(makeToken()),
      host_(hostName())
{
    if (mode_ == Mode::Off)
        return;
    if (writable()) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        if (ec)
            warn("result cache: cannot create '%s': %s; caching "
                 "disabled for this run",
                 dir_.c_str(), ec.message().c_str());
    }
    load();
    loadHits();
}

ResultStore::~ResultStore()
{
    std::vector<std::string> held;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        held.assign(ownClaims_.begin(), ownClaims_.end());
        ownClaims_.clear();
    }
    for (const std::string &digest : held)
        ::unlink(claimPath(digest).c_str());
    flushHits();
    if (segment_ != nullptr) {
        syncStream(segment_);
        std::fclose(segment_);
    }
}

std::string
ResultStore::manifestPath() const
{
    return dir_ + "/MANIFEST";
}

std::string
ResultStore::claimPath(const std::string &digest) const
{
    return dir_ + "/claims/" + digest + ".claim";
}

std::size_t
ResultStore::readSegment(const std::string &name, bool tolerate_tail)
{
    const std::string path = dir_ + "/" + name;
    std::uint64_t &offset = segmentOffsets_[name];
    std::size_t &lineno = segmentLines_[name];
    std::ifstream seg(path, std::ios::binary);
    if (!seg)
        return 0;
    seg.seekg(static_cast<std::streamoff>(offset));
    if (!seg)
        return 0;
    std::string buf((std::istreambuf_iterator<char>(seg)),
                    std::istreambuf_iterator<char>());

    std::size_t added = 0;
    std::size_t pos = 0;
    auto indexLine = [&](const std::string &line) {
        ++lineno;
        if (line.empty())
            return true;
        std::string error;
        std::optional<json::Value> v =
            json::Value::tryParse(line, &error);
        std::optional<Record> rec;
        if (v)
            rec = tryStoreRecordFromJson(*v, &error);
        if (!rec) {
            // A torn tail line after a SIGKILL lands here: the
            // record degrades to one re-executed job.
            warn("result cache: %s:%zu: skipping corrupt record "
                 "(%s)", path.c_str(), lineno, error.c_str());
            ++corrupt_;
            return false;
        }
        auto hit = diskHits_.find(rec->digest);
        if (hit != diskHits_.end())
            rec->lastHitUnix = hit->second;
        if (byDigest_.emplace(rec->digest, std::move(*rec)).second)
            ++added;
        return true;
    };

    for (;;) {
        std::size_t nl = buf.find('\n', pos);
        if (nl == std::string::npos)
            break;
        indexLine(buf.substr(pos, nl - pos));
        pos = nl + 1;
    }
    offset += pos;
    if (pos < buf.size() && !tolerate_tail) {
        // Initial load: an unterminated tail is counted as the torn
        // record it almost certainly is — but the offset stays at
        // its start, so a later refresh() picks the line up if a
        // live writer finishes it.
        if (indexLine(buf.substr(pos))) {
            offset += buf.size() - pos;
        } else {
            --lineno;  // refresh() will renumber the finished line
        }
    }
    return added;
}

void
ResultStore::load()
{
    std::ifstream manifest(manifestPath());
    if (!manifest)
        return;  // empty store: first run, or a fresh directory
    std::string text((std::istreambuf_iterator<char>(manifest)),
                     std::istreambuf_iterator<char>());

    std::string error;
    std::optional<json::Value> doc = json::Value::tryParse(text, &error);
    if (!doc || !doc->isObject() || doc->find("segments") == nullptr
        || !doc->get("segments").isArray()) {
        warn("result cache: %s is corrupt (%s); starting from an "
             "empty cache",
             manifestPath().c_str(),
             error.empty() ? "unexpected shape" : error.c_str());
        return;
    }

    const json::Value &segments = doc->get("segments");
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (!segments.at(i).isString()) {
            warn("result cache: %s: segment %zu is not a string; "
                 "skipped", manifestPath().c_str(), i);
            continue;
        }
        const std::string name = segments.at(i).asString();
        const std::string path = dir_ + "/" + name;
        if (!fs::exists(path)) {
            warn("result cache: segment '%s' listed in MANIFEST is "
                 "missing; its records will be re-executed",
                 path.c_str());
            continue;
        }
        segments_.push_back(name);
        ++segmentsLoaded_;
        readSegment(name, /*tolerate_tail=*/false);
    }
}

void
ResultStore::loadHits()
{
    std::ifstream in(dir_ + "/HITS");
    if (!in)
        return;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::optional<json::Value> doc = json::Value::tryParse(text);
    if (!doc || !doc->isObject())
        return;  // advisory data: a corrupt HITS file just ages early
    for (const auto &[digest, ts] : doc->members()) {
        if (!ts.isUint())
            continue;
        diskHits_[digest] = ts.asUint();
        auto it = byDigest_.find(digest);
        if (it != byDigest_.end())
            it->second.lastHitUnix =
                std::max(it->second.lastHitUnix, ts.asUint());
    }
}

void
ResultStore::flushHits()
{
    if (!writable())
        return;
    std::map<std::string, std::uint64_t> pending;
    {
        std::lock_guard<std::mutex> lock(hitsMutex_);
        pending.swap(pendingHits_);
    }
    if (pending.empty())
        return;
    // Merge with the on-disk sidecar under the publish lock so two
    // processes flushing concurrently union their hit sets. Advisory
    // data: on lock failure the merge degrades to last-writer-wins,
    // which costs at worst a too-early eviction.
    bool locked = acquireDirLock(dir_, host_);
    std::map<std::string, std::uint64_t> merged;
    {
        std::ifstream in(dir_ + "/HITS");
        if (in) {
            std::string text((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            std::optional<json::Value> doc =
                json::Value::tryParse(text);
            if (doc && doc->isObject())
                for (const auto &[digest, ts] : doc->members())
                    if (ts.isUint())
                        merged[digest] = ts.asUint();
        }
    }
    for (const auto &[digest, ts] : pending) {
        auto [it, inserted] = merged.emplace(digest, ts);
        if (!inserted)
            it->second = std::max(it->second, ts);
    }
    json::Value doc = json::Value::object();
    for (const auto &[digest, ts] : merged)
        doc.set(digest, json::Value(ts));
    atomicWrite(dir_, dir_ + "/HITS", doc.dump() + "\n", token_);
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        for (const auto &[digest, ts] : merged)
            diskHits_[digest] = ts;
    }
    if (locked)
        releaseDirLock(dir_);
}

bool
ResultStore::writeManifest(const std::vector<std::string> &toAdd,
                           const std::vector<std::string> *replaceWith)
{
    // Cross-process safety: publish under the directory lock and,
    // unless replacing outright (compact/clear/prune), merge with
    // the on-disk segment list so a concurrent writer's freshly
    // registered segment is never dropped by our rewrite.
    bool locked = acquireDirLock(dir_, host_);
    if (!locked && replaceWith == nullptr)
        warn("result cache: could not lock %s for publish; a "
             "concurrent writer's segment registration may race",
             manifestPath().c_str());

    std::vector<std::string> finalSegs;
    if (replaceWith != nullptr) {
        finalSegs = *replaceWith;
    } else {
        finalSegs = diskManifestSegments(manifestPath());
        auto addUnique = [&](const std::string &name) {
            for (const std::string &s : finalSegs)
                if (s == name)
                    return;
            finalSegs.push_back(name);
        };
        for (const std::string &s : segments_)
            addUnique(s);
        for (const std::string &s : toAdd)
            addUnique(s);
    }

    json::Value doc = json::Value::object();
    doc.set("schema_version",
            json::Value(static_cast<std::uint64_t>(
                kResultsSchemaVersion)));
    json::Value segs = json::Value::array();
    for (const std::string &s : finalSegs)
        segs.push(json::Value(s));
    doc.set("segments", std::move(segs));

    // The atomic publish: readers see either the old or the new
    // manifest, never a torn one.
    bool ok = atomicWrite(dir_, manifestPath(), doc.dump(2) + "\n",
                          token_);
    if (ok)
        segments_ = std::move(finalSegs);
    if (locked)
        releaseDirLock(dir_);
    return ok;
}

bool
ResultStore::openSegment()
{
    // A name unique across processes and hosts: the random per-
    // process nonce disambiguates pid reuse across machines sharing
    // a network cache directory, and the "wx" probe still backstops
    // the (astronomically unlikely) nonce collision.
    const unsigned pid = static_cast<unsigned>(::getpid());
    const unsigned nonce =
        static_cast<unsigned>(token_ & 0xffffffffu);
    for (unsigned k = 0; k < 1000; ++k) {
        std::string name =
            strfmt("seg-%u-%08x-%u.jsonl", pid, nonce, k);
        std::string path = dir_ + "/" + name;
        std::FILE *f = std::fopen(path.c_str(), "wx");
        if (f == nullptr) {
            if (errno == EEXIST)
                continue;
            warn("result cache: cannot create segment '%s': %s; "
                 "new results will not be persisted",
                 path.c_str(), std::strerror(errno));
            return false;
        }
        // Register before the first record: the loader tolerates an
        // empty or torn segment, while an unregistered one would
        // silently lose every record it holds.
        if (!writeManifest({name}, nullptr)) {
            warn("result cache: cannot publish '%s' in %s; new "
                 "results will not be persisted",
                 name.c_str(), manifestPath().c_str());
            std::fclose(f);
            std::remove(path.c_str());
            return false;
        }
        segment_ = f;
        activeSegmentName_ = name;
        segmentOffsets_[name] = 0;
        return true;
    }
    warn("result cache: exhausted segment names in '%s'", dir_.c_str());
    return false;
}

std::optional<ResultStore::Record>
ResultStore::lookup(const std::string &digest) const
{
    if (!readable())
        return std::nullopt;
    std::optional<Record> rec;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = byDigest_.find(digest);
        if (it == byDigest_.end())
            return std::nullopt;
        rec = it->second;
    }
    // End-to-end integrity: re-verify the checksum on every warm hit
    // so a record that rotted *after* load (bad RAM, a stray write)
    // degrades to a re-executed job, never a wrong result.
    if (rec->crc != 0
        && recordCrc(rec->digest, rec->status, rec->attempts,
                     rec->result) != rec->crc) {
        warn("result cache: record %s failed its in-memory crc "
             "check; treating as a miss", digest.c_str());
        return std::nullopt;
    }
    if (writable()) {
        std::lock_guard<std::mutex> lock(hitsMutex_);
        pendingHits_[digest] = nowUnix();
    }
    return rec;
}

void
ResultStore::put(const Record &rec)
{
    if (!writable())
        return;
    std::uint64_t mySeq;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        if (byDigest_.count(rec.digest) != 0)
            return;  // already durable; keep the store append-only
        if (segment_ == nullptr && !openSegment()) {
            // Creation failed (and warned) — remember the record in
            // memory so at least this process keeps its dedup.
            byDigest_.emplace(rec.digest, rec);
            return;
        }
        Record stamped = rec;
        if (stamped.createdUnix == 0)
            stamped.createdUnix = nowUnix();
        stamped.crc = recordCrc(stamped.digest, stamped.status,
                                stamped.attempts, stamped.result);
        std::string line = storeRecordToJson(stamped).dump();
        line += '\n';
        // Fabric chaos: a torn append — the writer "dies" mid-line,
        // leaving an unterminated half record at the segment tail
        // (what a real SIGKILL between fwrite and fsync leaves
        // behind). The segment is sealed so later appends cannot
        // continue the torn line, and the record is not indexed: a
        // real crash would have lost it too.
        if (fabric::FaultPlan *fp = fabric::faultPlan();
            fp != nullptr
            && fp->inject(fabric::FaultSite::TornAppend)) {
            std::fwrite(line.data(), 1, line.size() / 2, segment_);
            std::fflush(segment_);
            std::fclose(segment_);
            segment_ = nullptr;
            activeSegmentName_.clear();
            return;
        }
        if (std::fwrite(line.data(), 1, line.size(), segment_)
                != line.size())
            warn("result cache: short write to segment in '%s': %s",
                 dir_.c_str(), std::strerror(errno));
        byDigest_.emplace(stamped.digest, std::move(stamped));
        mySeq = ++writeSeq_;
    }
    // Group commit: the record must be durable before returning, but
    // one fsync covers every line written before it started, so
    // workers queued behind a sync in flight usually find their line
    // already on disk and skip their own.
    std::lock_guard<std::mutex> sync(syncMutex_);
    if (durableSeq_ >= mySeq)
        return;  // an overlapping fsync already covered our line
    std::FILE *f;
    std::uint64_t cover;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        f = segment_;
        cover = writeSeq_;
    }
    if (f != nullptr && !syncStream(f))
        warn("result cache: fsync failed for segment in '%s': %s",
             dir_.c_str(), std::strerror(errno));
    durableSeq_ = cover;
}

std::size_t
ResultStore::refresh()
{
    if (!readable())
        return 0;
    std::unique_lock<std::shared_mutex> lock(mutex_);
    std::size_t added = 0;
    // New segments registered by other processes since we loaded.
    for (const std::string &name :
         diskManifestSegments(manifestPath())) {
        if (segmentOffsets_.count(name) != 0)
            continue;
        segments_.push_back(name);
        added += readSegment(name, /*tolerate_tail=*/true);
    }
    // New complete lines appended to segments we already track. Our
    // own active segment is skipped: its records are indexed at
    // put() time.
    for (auto &[name, offset] : segmentOffsets_) {
        (void)offset;
        if (name == activeSegmentName_)
            continue;
        added += readSegment(name, /*tolerate_tail=*/true);
    }
    return added;
}

ResultStore::ClaimOutcome
ResultStore::tryClaim(const std::string &digest, ClaimInfo *holder)
{
    if (!writable())
        return ClaimOutcome::Unsupported;
    {
        std::error_code ec;
        fs::create_directories(dir_ + "/claims", ec);
        if (ec)
            return ClaimOutcome::Unsupported;
    }
    const std::string path = claimPath(digest);

    // Fabric chaos: a forged claim — a corpse left by a buggy or
    // hostile peer, with a dead pid hiding behind an absurd
    // far-future lease. The same-host dead-pid probe (not the lease
    // deadline) must still take it over, or one bad claim file
    // wedges the digest for a century. Published via link(2) like a
    // real claim; losing the publish race to a live claimant is fine.
    if (fabric::FaultPlan *fp = fabric::faultPlan();
        fp != nullptr && fp->inject(fabric::FaultSite::ForgeClaim)) {
        json::Value forged = json::Value::object();
        forged.set("pid", json::Value(
            static_cast<std::uint64_t>(999999999)));
        forged.set("host", json::Value(host_));
        forged.set("token", json::Value(
            static_cast<std::uint64_t>(0xdead)));
        forged.set("deadline_unix", json::Value(
            static_cast<std::uint64_t>(
                nowUnix() + 3155760000u)));  // ~100 years out
        const std::string ftmp =
            strfmt("%s.forge.%llx", path.c_str(),
                   static_cast<unsigned long long>(token_));
        {
            std::ofstream out(ftmp, std::ios::trunc);
            out << forged.dump() << "\n";
        }
        ::link(ftmp.c_str(), path.c_str());
        ::unlink(ftmp.c_str());
    }

    // Compose the claim record once; publish is via link(2) from a
    // private tmp so an existing claim file always has complete
    // content — an unparsable claim is a foreign corpse, not a race.
    json::Value claim = json::Value::object();
    claim.set("pid", json::Value(
        static_cast<std::uint64_t>(::getpid())));
    claim.set("host", json::Value(host_));
    claim.set("token", json::Value(token_));
    claim.set("deadline_unix", json::Value(
        nowUnix() + static_cast<std::uint64_t>(claimSeconds_)));
    const std::string tmp =
        strfmt("%s.tmp.%llx", path.c_str(),
               static_cast<unsigned long long>(token_));

    for (int tries = 0; tries < 10; ++tries) {
        {
            std::ofstream out(tmp, std::ios::trunc);
            out << claim.dump() << "\n";
            if (!out)
                return ClaimOutcome::Unsupported;
        }
        int rc = ::link(tmp.c_str(), path.c_str());
        ::unlink(tmp.c_str());
        if (rc == 0) {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            ownClaims_.insert(digest);
            return ClaimOutcome::Acquired;
        }
        if (errno != EEXIST)
            return ClaimOutcome::Unsupported;

        // Somebody holds it. Ours (re-entrant), live, or stale?
        ClaimInfo ci;
        bool parsed = false;
        {
            std::ifstream in(path);
            if (in) {
                std::string text(
                    (std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
                std::optional<json::Value> v =
                    json::Value::tryParse(text);
                if (v && v->isObject() && v->find("pid") != nullptr
                    && v->get("pid").isUint()
                    && v->find("token") != nullptr
                    && v->get("token").isUint()) {
                    ci.pid = static_cast<long>(
                        v->get("pid").asUint());
                    ci.token = v->get("token").asUint();
                    const json::Value *h = v->find("host");
                    ci.host = h != nullptr && h->isString()
                        ? h->asString() : "";
                    const json::Value *d = v->find("deadline_unix");
                    ci.deadlineUnix =
                        d != nullptr && d->isUint() ? d->asUint() : 0;
                    parsed = true;
                }
            }
        }
        if (parsed && ci.token == token_
            && ci.pid == static_cast<long>(::getpid())) {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            ownClaims_.insert(digest);
            return ClaimOutcome::Acquired;
        }
        bool stale = !parsed;  // claims are link()-published whole
        if (parsed) {
            if (ci.deadlineUnix != 0 && nowUnix() > ci.deadlineUnix)
                stale = true;
            else if (ci.host == host_ && ci.pid > 0
                     && ::kill(static_cast<pid_t>(ci.pid), 0) == -1
                     && errno == ESRCH)
                stale = true;
        }
        if (!stale) {
            if (holder != nullptr)
                *holder = ci;
            return ClaimOutcome::Busy;
        }
        // Takeover: a kill -9'd claimant must never wedge the sweep.
        {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            ++staleClaims_;
        }
        ::unlink(path.c_str());
    }
    return ClaimOutcome::Busy;
}

void
ResultStore::releaseClaim(const std::string &digest)
{
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        if (ownClaims_.erase(digest) == 0)
            return;
    }
    ::unlink(claimPath(digest).c_str());
}

std::size_t
ResultStore::staleClaimsTaken() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return staleClaims_;
}

std::size_t
ResultStore::records() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return byDigest_.size();
}

std::size_t
ResultStore::segmentCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return segments_.size();
}

std::uint64_t
ResultStore::recordBytes() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::uint64_t bytes = 0;
    for (const auto &[digest, rec] : byDigest_)
        bytes += storeRecordToJson(rec).dump().size() + 1;
    return bytes;
}

void
ResultStore::removeSegments(const std::vector<std::string> &names)
{
    for (const std::string &name : names)
        std::remove((dir_ + "/" + name).c_str());
    syncDir(dir_);
}

std::optional<std::size_t>
ResultStore::rewriteRecords(const std::set<std::string> *keep)
{
    if (!writable())
        return std::nullopt;
    std::lock_guard<std::mutex> sync(syncMutex_);
    std::unique_lock<std::shared_mutex> lock(mutex_);

    // Seal the active segment; every record it held is in byDigest_.
    if (segment_ != nullptr) {
        syncStream(segment_);
        std::fclose(segment_);
        segment_ = nullptr;
        activeSegmentName_.clear();
    }

    // Write the kept records into one fresh segment ("c" namespace
    // so the probe cannot collide with openSegment's own counter).
    const unsigned pid = static_cast<unsigned>(::getpid());
    const unsigned nonce =
        static_cast<unsigned>(token_ & 0xffffffffu);
    std::string name;
    std::FILE *f = nullptr;
    for (unsigned k = 0; k < 1000 && f == nullptr; ++k) {
        name = strfmt("seg-%u-%08x-c%u.jsonl", pid, nonce, k);
        f = std::fopen((dir_ + "/" + name).c_str(), "wx");
        if (f == nullptr && errno != EEXIST)
            break;
    }
    if (f == nullptr) {
        warn("result cache: compact: cannot create a segment in "
             "'%s': %s", dir_.c_str(), std::strerror(errno));
        return std::nullopt;
    }
    bool ok = true;
    std::size_t kept = 0;
    std::uint64_t written = 0;
    for (const auto &[digest, rec] : byDigest_) {
        if (keep != nullptr && keep->count(digest) == 0)
            continue;
        std::string line = storeRecordToJson(rec).dump();
        line += '\n';
        ok = ok && std::fwrite(line.data(), 1, line.size(), f)
            == line.size();
        written += line.size();
        ++kept;
    }
    ok = ok && syncStream(f);
    if (!ok) {
        warn("result cache: compact: short write in '%s': %s; "
             "keeping the existing segments", dir_.c_str(),
             std::strerror(errno));
        std::fclose(f);
        std::remove((dir_ + "/" + name).c_str());
        return std::nullopt;
    }

    // One atomic publish switches the MANIFEST from the old segment
    // set to the single compacted one; a crash before the rename
    // leaves the old set fully intact (the orphaned new segment is
    // ignored on load).
    std::vector<std::string> retired = segments_;
    std::vector<std::string> just{name};
    if (!writeManifest({}, &just)) {
        warn("result cache: compact: cannot publish '%s' in %s; "
             "keeping the existing segments", name.c_str(),
             manifestPath().c_str());
        std::fclose(f);
        std::remove((dir_ + "/" + name).c_str());
        return std::nullopt;
    }
    if (keep != nullptr)
        for (auto it = byDigest_.begin(); it != byDigest_.end();)
            it = keep->count(it->first) == 0 ? byDigest_.erase(it)
                                             : std::next(it);
    segment_ = f;  // future puts append to the compacted segment
    activeSegmentName_ = name;
    segmentOffsets_.clear();
    segmentLines_.clear();
    segmentOffsets_[name] = written;
    durableSeq_ = writeSeq_;
    removeSegments(retired);
    return kept;
}

std::optional<std::size_t>
ResultStore::compact()
{
    return rewriteRecords(nullptr);
}

std::optional<ResultStore::PruneStats>
ResultStore::prune(std::uint64_t max_bytes,
                   std::uint64_t max_age_seconds,
                   std::uint64_t now_unix)
{
    if (!writable())
        return std::nullopt;
    const std::uint64_t now = now_unix != 0 ? now_unix : nowUnix();

    struct Entry
    {
        std::string digest;
        std::uint64_t lastUse;
        std::uint64_t bytes;
    };
    std::vector<Entry> entries;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        std::lock_guard<std::mutex> hits(hitsMutex_);
        entries.reserve(byDigest_.size());
        for (const auto &[digest, rec] : byDigest_) {
            std::uint64_t lastUse =
                std::max(rec.createdUnix, rec.lastHitUnix);
            auto p = pendingHits_.find(digest);
            if (p != pendingHits_.end())
                lastUse = std::max(lastUse, p->second);
            entries.push_back(
                {digest, lastUse,
                 storeRecordToJson(rec).dump().size() + 1});
        }
    }

    PruneStats stats;
    std::set<std::string> keep;
    std::uint64_t totalKept = 0;
    // Age pass first; records with no timestamp at all are treated
    // as infinitely old (they predate aging support).
    std::vector<Entry> survivors;
    for (const Entry &e : entries) {
        bool tooOld = max_age_seconds != 0
            && (e.lastUse == 0
                || now - std::min(e.lastUse, now) > max_age_seconds);
        if (tooOld) {
            ++stats.evicted;
            stats.evictedBytes += e.bytes;
        } else {
            survivors.push_back(e);
            totalKept += e.bytes;
        }
    }
    // Size budget: evict least-recently-used survivors until we fit.
    std::sort(survivors.begin(), survivors.end(),
              [](const Entry &a, const Entry &b) {
                  return a.lastUse != b.lastUse
                      ? a.lastUse < b.lastUse
                      : a.digest < b.digest;
              });
    std::size_t drop = 0;
    if (max_bytes != 0)
        while (drop < survivors.size() && totalKept > max_bytes) {
            totalKept -= survivors[drop].bytes;
            ++stats.evicted;
            stats.evictedBytes += survivors[drop].bytes;
            ++drop;
        }
    for (std::size_t i = drop; i < survivors.size(); ++i)
        keep.insert(survivors[i].digest);
    stats.kept = keep.size();
    stats.keptBytes = totalKept;

    if (stats.evicted == 0)
        return stats;  // nothing to do; leave the segments alone
    if (!rewriteRecords(&keep))
        return std::nullopt;

    // Rewrite the HITS sidecar to the survivor set so evicted
    // digests do not accrete advisory garbage.
    {
        std::lock_guard<std::mutex> hits(hitsMutex_);
        for (auto it = pendingHits_.begin();
             it != pendingHits_.end();)
            it = keep.count(it->first) == 0 ? pendingHits_.erase(it)
                                            : std::next(it);
    }
    std::map<std::string, std::uint64_t> surviving;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        for (auto it = diskHits_.begin(); it != diskHits_.end();)
            it = keep.count(it->first) == 0 ? diskHits_.erase(it)
                                            : std::next(it);
        surviving = diskHits_;
    }
    json::Value doc = json::Value::object();
    for (const auto &[digest, ts] : surviving)
        doc.set(digest, json::Value(ts));
    atomicWrite(dir_, dir_ + "/HITS", doc.dump() + "\n", token_);
    return stats;
}

bool
ResultStore::clear()
{
    if (!writable())
        return false;
    std::lock_guard<std::mutex> sync(syncMutex_);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (segment_ != nullptr) {
        std::fclose(segment_);
        segment_ = nullptr;
        activeSegmentName_.clear();
    }
    std::vector<std::string> retired = segments_;
    std::vector<std::string> none;
    if (!writeManifest({}, &none)) {
        warn("result cache: clear: cannot publish an empty MANIFEST "
             "in '%s'", dir_.c_str());
        return false;
    }
    byDigest_.clear();
    segmentOffsets_.clear();
    segmentLines_.clear();
    durableSeq_ = writeSeq_;
    removeSegments(retired);
    return true;
}

std::optional<ResultStore::FsckReport>
ResultStore::fsck(const std::string &dir, bool dry_run,
                  std::string *error)
{
    auto fail = [&](const std::string &why)
        -> std::optional<FsckReport> {
        if (error != nullptr)
            *error = why;
        return std::nullopt;
    };
    const std::string host = hostName();
    const std::uint64_t unique = makeToken();
    const std::string manifest = dir + "/MANIFEST";

    // Same mutual exclusion as every other publish: fsck rewrites
    // segments and the MANIFEST, so it must not race a live writer's
    // registration (and a live writer must not append to a segment
    // mid-rewrite — fsck is documented as an idle-directory scrub).
    const bool locked = dry_run || acquireDirLock(dir, host);
    if (!locked)
        return fail("could not acquire " + dir
                    + "/MANIFEST.lock (live writer?)");

    FsckReport report;
    std::vector<std::string> surviving;
    bool ok = true;
    for (const std::string &name : diskManifestSegments(manifest)) {
        const std::string path = dir + "/" + name;
        std::ifstream seg(path, std::ios::binary);
        if (!seg) {
            ++report.missingSegments;
            warn("cache fsck: segment '%s' listed in MANIFEST is "
                 "missing; dropping it from the manifest",
                 path.c_str());
            continue;
        }
        surviving.push_back(name);
        ++report.segmentsScanned;
        std::string buf((std::istreambuf_iterator<char>(seg)),
                        std::istreambuf_iterator<char>());

        std::vector<std::string> good, bad;
        std::size_t lineno = 0;
        auto check = [&](const std::string &line, bool torn) {
            ++lineno;
            if (line.empty() && !torn)
                return;  // blank separators carry no record
            std::string why = "unterminated tail (torn append)";
            std::optional<Record> rec;
            if (!torn) {
                std::optional<json::Value> v =
                    json::Value::tryParse(line, &why);
                if (v)
                    rec = tryStoreRecordFromJson(*v, &why);
            }
            if (rec) {
                ++report.recordsKept;
                good.push_back(line);
                return;
            }
            ++report.badRecords;
            if (why.find("crc mismatch") != std::string::npos)
                ++report.crcMismatches;
            warn("cache fsck: %s:%zu: %s%s", path.c_str(), lineno,
                 why.c_str(),
                 dry_run ? "" : "; quarantining the line");
            bad.push_back(line);
        };
        std::size_t pos = 0;
        for (;;) {
            std::size_t nl = buf.find('\n', pos);
            if (nl == std::string::npos)
                break;
            check(buf.substr(pos, nl - pos), /*torn=*/false);
            pos = nl + 1;
        }
        if (pos < buf.size())
            check(buf.substr(pos), /*torn=*/true);

        if (bad.empty() || dry_run)
            continue;

        // Quarantine first (append verbatim, for forensics), then
        // swap the cleaned segment in atomically — a crash between
        // the two at worst leaves a duplicate of the bad line in
        // quarantine, never a lost good record.
        std::error_code ec;
        fs::create_directories(dir + "/quarantine", ec);
        std::ofstream q(dir + "/quarantine/" + name,
                        std::ios::app | std::ios::binary);
        for (const std::string &line : bad)
            q << line << '\n';
        q.flush();
        if (!q) {
            ok = false;
            warn("cache fsck: cannot write %s/quarantine/%s: %s; "
                 "leaving '%s' untouched",
                 dir.c_str(), name.c_str(), std::strerror(errno),
                 name.c_str());
            continue;
        }
        std::string cleaned;
        for (const std::string &line : good) {
            cleaned += line;
            cleaned += '\n';
        }
        if (!atomicWrite(dir, path, cleaned, unique)) {
            ok = false;
            warn("cache fsck: cannot rewrite '%s': %s", path.c_str(),
                 std::strerror(errno));
            continue;
        }
        ++report.segmentsRewritten;
    }

    if (!dry_run && report.missingSegments != 0) {
        json::Value doc = json::Value::object();
        doc.set("schema_version",
                json::Value(static_cast<std::uint64_t>(
                    kResultsSchemaVersion)));
        json::Value segs = json::Value::array();
        for (const std::string &s : surviving)
            segs.push(json::Value(s));
        doc.set("segments", std::move(segs));
        if (!atomicWrite(dir, manifest, doc.dump(2) + "\n", unique))
            ok = false;
    }
    if (!dry_run)
        releaseDirLock(dir);
    if (!ok)
        return fail("fsck could not repair '" + dir
                    + "' (see warnings)");
    return report;
}

} // namespace dttsim::sim
