#include "sim/fabricfault.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/log.h"

namespace dttsim::fabric {

namespace {

/** splitmix64 finalizer — the same per-decision hash sim::FaultPlan
 *  uses. Counter-based, not a sequential stream, so one site's
 *  decisions never depend on another site's draw count. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a hash value. */
double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t
siteHash(std::uint64_t seed, std::size_t site, std::uint64_t idx)
{
    // Decorrelate the site streams by folding the site id into the
    // seed with a large odd constant (same idiom as faultplan.cpp).
    return mix(seed
               ^ (static_cast<std::uint64_t>(site) + 1)
                   * 0xd1342543de82ef95ull
               ^ idx * 0x2545f4914f6cdd1dull);
}

/** The installed plan. Replaced plans are parked in a retired list
 *  instead of freed: a hook thread may hold the old pointer across
 *  the swap, and plans are tiny. */
std::atomic<FaultPlan *> gPlan{nullptr};
std::mutex gRetiredMutex;
std::vector<std::unique_ptr<FaultPlan>> &
retiredPlans()
{
    static std::vector<std::unique_ptr<FaultPlan>> plans;
    return plans;
}

} // namespace

const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::ConnectRefused: return "connect-refused";
      case FaultSite::ReplyDelay: return "reply-delay";
      case FaultSite::MidFrameEof: return "mid-frame-eof";
      case FaultSite::CorruptFrame: return "corrupt-frame";
      case FaultSite::ForgeClaim: return "forge-claim";
      case FaultSite::TornAppend: return "torn-append";
      case FaultSite::NumSites: break;
    }
    return "?";
}

std::optional<FaultSite>
faultSiteFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        auto s = static_cast<FaultSite>(i);
        if (name == faultSiteName(s))
            return s;
    }
    return std::nullopt;
}

std::optional<FaultConfig>
parseFaultSpec(const std::string &spec, std::string *error)
{
    auto fail = [error](const std::string &what) {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };

    std::size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return fail("expected SEED:SPEC (no ':' found)");

    FaultConfig config;
    {
        const std::string seedText = spec.substr(0, colon);
        char *end = nullptr;
        config.seed = std::strtoull(seedText.c_str(), &end, 0);
        if (seedText.empty() || end == nullptr || *end != '\0')
            return fail("bad seed '" + seedText + "'");
    }

    auto parseRate = [&fail](const std::string &text, double *out)
        -> bool {
        char *end = nullptr;
        *out = std::strtod(text.c_str(), &end);
        if (text.empty() || end == nullptr || *end != '\0') {
            fail("bad rate '" + text + "'");
            return false;
        }
        return true;
    };

    std::string body = spec.substr(colon + 1);
    if (body.empty())
        return fail("empty fault spec after the seed");
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        const std::string entry = body.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            return fail("empty entry in fault spec");

        std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            // Bare rate: arm every site.
            double rate = 0.0;
            if (!parseRate(entry, &rate))
                return std::nullopt;
            if (rate < 0.0 || rate > 1.0)
                return fail("rate must be in [0, 1] (got " + entry
                            + ")");
            for (double &r : config.rates)
                r = rate;
            continue;
        }
        const std::string key = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        if (key == "delay") {
            char *end = nullptr;
            config.delaySeconds = std::strtod(value.c_str(), &end);
            if (value.empty() || end == nullptr || *end != '\0'
                || config.delaySeconds < 0.0)
                return fail("bad delay '" + value + "'");
            continue;
        }
        std::optional<FaultSite> site = faultSiteFromName(key);
        if (!site)
            return fail("unknown fault site '" + key
                        + "' (valid: connect-refused, reply-delay, "
                          "mid-frame-eof, corrupt-frame, "
                          "forge-claim, torn-append, delay)");
        double rate = 0.0;
        if (!parseRate(value, &rate))
            return std::nullopt;
        if (rate < 0.0 || rate > 1.0)
            return fail("rate must be in [0, 1] (got " + value + ")");
        config.rates[static_cast<std::size_t>(*site)] = rate;
    }
    return config;
}

std::string
formatFaultSpec(const FaultConfig &config)
{
    std::string out = strfmt("%llu:",
                             static_cast<unsigned long long>(
                                 config.seed));
    bool first = true;
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        if (config.rates[i] <= 0.0)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += strfmt("%s=%g",
                      faultSiteName(static_cast<FaultSite>(i)),
                      config.rates[i]);
    }
    if (first)
        out += "off";
    if (config.rates[static_cast<std::size_t>(
            FaultSite::ReplyDelay)] > 0.0)
        out += strfmt(",delay=%g", config.delaySeconds);
    return out;
}

FaultPlan::FaultPlan(const FaultConfig &config) : config_(config)
{
    for (double r : config_.rates)
        if (r < 0.0 || r > 1.0)
            fatal("fabric fault rate must be in [0, 1] (got %g)", r);
}

bool
FaultPlan::inject(FaultSite s)
{
    if (!armed(s))
        return false;
    auto si = static_cast<std::size_t>(s);
    std::uint64_t idx =
        counters_[si].fetch_add(1, std::memory_order_relaxed);
    if (toUnit(siteHash(config_.seed, si, idx)) >= config_.rates[si])
        return false;
    injected_[si].fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
FaultPlan::corruptLine(std::string *line)
{
    if (line == nullptr || line->empty())
        return;
    // Its own stream, keyed off NumSites so it never collides with a
    // site's decision stream.
    std::uint64_t idx =
        corruptCounter_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t h = siteHash(config_.seed, kNumFaultSites + 1, idx);
    std::size_t pos = static_cast<std::size_t>(h % line->size());
    // XOR with a sub-0x80 mask keeps the byte printable enough to
    // stay a single line (never produces '\n' from JSON text) while
    // guaranteeing a change.
    char mask = static_cast<char>(1 + ((h >> 32) % 0x1f));
    (*line)[pos] = static_cast<char>((*line)[pos] ^ mask);
}

std::uint64_t
FaultPlan::injected(FaultSite s) const
{
    return injected_[static_cast<std::size_t>(s)].load(
        std::memory_order_relaxed);
}

std::uint64_t
FaultPlan::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : injected_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

void
installFaultPlan(const FaultConfig &config)
{
    if (!config.enabled()) {
        clearFaultPlan();
        return;
    }
    auto plan = std::make_unique<FaultPlan>(config);
    FaultPlan *raw = plan.get();
    {
        std::lock_guard<std::mutex> lock(gRetiredMutex);
        retiredPlans().push_back(std::move(plan));
    }
    gPlan.store(raw, std::memory_order_release);
}

void
clearFaultPlan()
{
    gPlan.store(nullptr, std::memory_order_release);
}

FaultPlan *
faultPlan()
{
    return gPlan.load(std::memory_order_acquire);
}

} // namespace dttsim::fabric
