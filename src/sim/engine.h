#pragma once

/**
 * @file
 * Parallel experiment engine: a supervised thread-pool scheduler over
 * batches of simulation jobs. Every figure/table of the evaluation is
 * a batch of independent (config, program) simulations, so the engine
 *
 *  - runs jobs across hardware threads (each job is one single-
 *    threaded, fully deterministic Simulator instance, so a batch
 *    produces byte-identical SimResults at any thread count);
 *  - deduplicates identical jobs within a batch via a config+program
 *    fingerprint (the baseline run of each workload historically got
 *    re-simulated by nearly every figure binary; within a batch it
 *    now runs once and fans out);
 *  - isolates failures: a worker exception or a run that never halts
 *    becomes a structured per-job status (JobStatus + JobError) in
 *    the results instead of aborting the batch, with configurable
 *    bounded retry (exponential backoff) for transient host failures
 *    and a per-job wall-clock deadline that cancels runaway
 *    simulations;
 *  - warm-starts from a persistent, digest-keyed ResultStore
 *    (src/sim/resultstore.h) so completed simulations survive a
 *    killed process and are shared across figure binaries;
 *  - returns results in submission order, each tagged with the
 *    fingerprint digest, per-job wall-clock time, attempt count and
 *    status.
 *
 * The JSON helpers at the bottom are the structured-results schema
 * used by the bench harness's --json emitter (docs/HARNESS.md).
 */

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "isa/program.h"
#include "sim/simulator.h"

namespace dttsim::sim {

class ResultStore;

/** Version of the JSON record schema emitted for JobResults.
 *  v3 added the per-record "accel" field (cpu::accelKindName of the
 *  job's SimConfig::accel); v4 added the per-record "crc" integrity
 *  checksum (recordCrc over the canonical payload, verified by
 *  tools/check_results_json and on every cache load).
 *  check_results_json still accepts archived v2/v3 documents, where
 *  the newer fields are absent. Within v3+ the "worker" provenance
 *  field is *optional* (emitted only under the harness's
 *  --provenance flag, since provenance varies run to run and would
 *  break distributed-vs-local byte-identity). */
inline constexpr int kResultsSchemaVersion = 4;

/** One experiment: a machine configuration plus a program to run. */
struct SimJob
{
    /** Workload name, carried through to reports. */
    std::string workload;
    /** Variant label ("baseline", "dtt", "dtt tq=4", ...). */
    std::string variant;

    SimConfig config;
    isa::Program program;

    /**
     * Entry PCs of foreign co-runner threads, started on contexts
     * 1..N before the run (the Fig. 14 SMT co-scheduling setup).
     * Part of the job fingerprint.
     */
    std::vector<std::uint64_t> coRunnerEntries;
};

/**
 * How a job ended. `Ok` and `Failed` are deterministic simulation
 * outcomes (cacheable); `Error` and `Timeout` are host-level events
 * (never cached, re-executed on resume).
 */
enum class JobStatus
{
    /** Simulated to a clean halt. */
    Ok,
    /** Simulated to completion but did not halt cleanly: cycle
     *  limit, watchdog Deadlock or differential-checker Diverged —
     *  result.haltReason says which. */
    Failed,
    /** The worker threw (every configured attempt); the result
     *  payload is the default SimResult and `error` says what. */
    Error,
    /** The per-job wall-clock deadline cancelled the run; the result
     *  payload is a sanitized cycle-limit record. */
    Timeout,
};

/** Schema name of a status: "ok", "failed", "error", "timeout". */
const char *jobStatusName(JobStatus s);

/** Inverse of jobStatusName(); nullopt for an unknown name. */
std::optional<JobStatus> jobStatusFromName(const std::string &name);

/** Structured description of a job failure (status Error/Timeout). */
struct JobError
{
    /** What threw: "FatalError", "PanicError", "exception",
     *  "unknown" — or "deadline" for a Timeout. */
    std::string kind;
    /** The exception's what() text, or the deadline description. */
    std::string message;

    bool empty() const { return kind.empty() && message.empty(); }
    bool operator==(const JobError &) const = default;
};

/** Outcome of one submitted job, in submission order. */
struct JobResult
{
    std::string workload;
    std::string variant;
    /** Accelerator name of the job's machine (accelKindName). */
    std::string accel;
    /** 16-hex-digit fingerprint of (config, program, co-runners). */
    std::string digest;
    SimResult result;
    /** How the job ended; anything but Ok makes the harness exit
     *  nonzero, but never aborts the rest of the batch. */
    JobStatus status = JobStatus::Ok;
    /** Populated when status is Error or Timeout. */
    JobError error;
    /** Execution attempts consumed (>= 1; > 1 means retries). */
    int attempts = 1;
    /** Wall-clock seconds of the executing simulation (duplicates
     *  and cache hits inherit the original execution's time). */
    double wallSeconds = 0.0;
    /** True when this job reused another identical job's execution
     *  from the same batch instead of simulating again. */
    bool deduplicated = false;
    /** True when the result was warm-started from the persistent
     *  ResultStore instead of simulating (not serialized: a resumed
     *  sweep's merged JSON is byte-identical to an uninterrupted
     *  one). */
    bool cached = false;
    /** Provenance: the "host:port" endpoint that executed the job
     *  remotely; empty for local execution, cache hits and claim
     *  adoptions. Serialized only when the harness opts in
     *  (--provenance) — see kResultsSchemaVersion. */
    std::string worker;
};

/**
 * FNV-1a fingerprint of everything that determines a job's SimResult:
 * every SimConfig field, the full program image (text, data, entry,
 * triggers) and the co-runner entries. Labels are excluded — two
 * figure binaries naming the same experiment differently still dedup.
 */
std::string jobDigest(const SimJob &job);

/**
 * FNV-1a integrity checksum over a result record's canonical payload:
 * digest, status name, attempts, and the compact resultToJson text,
 * NUL-separated. One definition serves every layer that carries a
 * record — ResultStore segments stamp it on append and verify it on
 * load and warm hit, dttworkerd stamps it into wire replies and the
 * client re-verifies, the --json emitter writes it as the schema-v4
 * "crc" field, and check_results_json / cache_fsck recompute it —
 * so a silently flipped bit anywhere in a record's payload is caught
 * at the next hop instead of poisoning derived figures. A stored
 * crc of 0 means "legacy record, no checksum" (schema v3 and older).
 */
std::uint64_t recordCrc(const std::string &digest, JobStatus status,
                        int attempts, const SimResult &result);

/**
 * Backoff before retry number @p attempt (1-based attempt that just
 * failed): `base * 2^(attempt-1)`, stretched by a deterministic
 * jitter in [1.0, 1.5) derived from (@p seed, @p attempt). Pure
 * function of its arguments — no wall clock, no global RNG — so a
 * rerun of the same batch sleeps identically, but two jobs that fail
 * for the same cause fan out instead of hammering the host in
 * lockstep.
 */
double retryDelaySeconds(double base_seconds, int attempt,
                         std::uint64_t seed);

/** Supervision policy for the engine. */
struct EngineConfig
{
    /** Worker count; 0 picks the hardware concurrency. */
    int numThreads = 0;
    /** Executions per job before giving up on a thrown exception
     *  (1 = no retry). Deterministic simulation outcomes (Failed)
     *  are never retried; deadline cancellations are retried only
     *  when retryTimeouts is set. */
    int maxAttempts = 1;
    /** Base sleep before the first retry; doubles per further retry
     *  and is spread by a deterministic per-job jitter (see
     *  retryDelaySeconds) so a batch of same-cause failures does not
     *  retry in lockstep. */
    double retryBackoffSeconds = 0.0;
    /** Also retry deadline cancellations (--retry-on=timeout): a
     *  cancelled attempt consumes an attempt and backs off like a
     *  thrown one. Off by default — a deterministic runaway will
     *  time out again, so retrying it only helps when the deadline
     *  loss was host noise (an overloaded box). */
    bool retryTimeouts = false;
    /** Per-job wall-clock deadline in seconds; 0 disables. Checked
     *  at the commit-progress watchdog cadence, so a runaway
     *  simulation is cancelled within one watchdog window. */
    double jobDeadlineSeconds = 0.0;
    /** Persistent digest-keyed result cache; nullptr (or a store in
     *  Mode::Off) disables warm-starting. Not owned. */
    ResultStore *store = nullptr;

    // --- distributed sweep fabric (docs/HARNESS.md) ---

    /** Claim in-flight digests in the (writable) store so concurrent
     *  processes sharing a cache directory never duplicate work: a
     *  job whose digest another live process holds waits for that
     *  process's record instead of re-executing. No-op without a
     *  writable store. */
    bool claimInFlight = true;
    /** Seconds a claim stays valid before any process may take it
     *  over (keep above the longest expected job; a kill -9'd
     *  claimant is taken over immediately on the same host via a pid
     *  probe, and after this deadline from anywhere). */
    double claimDeadlineSeconds = 300.0;
    /** Remote worker endpoints ("host:port"); empty runs everything
     *  locally. Each endpoint gets a dispatcher thread that feeds it
     *  pipelined jobs; a worker that dies mid-job is dropped and its
     *  in-flight jobs re-dispatch locally (no job lost, no record
     *  duplicated). */
    std::vector<std::string> workers;
    /** In-flight jobs per worker (the client-side backpressure
     *  window; the daemon bounds its decoded queue too). */
    int workerWindow = 4;
    /** Connection attempts per worker before declaring it down. */
    int workerAttempts = 3;
    /** Base backoff between worker connection attempts; doubled per
     *  attempt with the deterministic retryDelaySeconds jitter. */
    double workerBackoffSeconds = 0.1;
    /** Per-reply deadline: a worker silent for this long mid-job is
     *  treated as lost (keep above jobDeadlineSeconds). */
    double workerRequestSeconds = 600.0;
    /** Hedged dispatch: a remote job unanswered for this long is
     *  *also* re-queued for local execution (the original stays in
     *  flight; the first Ok result wins and the duplicate is
     *  suppressed). 0 disables hedging. Keep well above a typical
     *  job's wall time — hedging trades duplicate work for tail
     *  latency, so it should fire only on genuine stragglers. */
    double stragglerSeconds = 0.0;
    /** Worker health circuit breaker: consecutive failures (failed
     *  connect attempts, losses mid-sweep) before an endpoint is
     *  quarantined. A quarantined endpoint gets exactly one
     *  probation connect attempt per run(); a successful hello
     *  handshake clears the quarantine. */
    int quarantineAfter = 3;
};

/** Supervised thread-pool experiment scheduler. */
class Engine
{
  public:
    /** @param num_threads worker count; 0 picks the hardware
     *  concurrency. */
    explicit Engine(int num_threads = 0);

    /** Full supervision policy (threads, retry, deadline, cache). */
    explicit Engine(const EngineConfig &config);

    /**
     * Run a batch. Unique jobs (by jobDigest) are warm-started from
     * the ResultStore when possible, the rest are distributed over
     * the worker pool; duplicates share the representative's result.
     * Results come back in submission order. A worker exception is
     * captured as a per-job JobStatus::Error record — it never
     * aborts the remaining jobs and is never rethrown here.
     */
    std::vector<JobResult> run(const std::vector<SimJob> &jobs);

    int threads() const { return config_.numThreads; }

    /** Jobs submitted across all run() calls. */
    std::uint64_t submitted() const { return submitted_; }
    /** Simulations actually executed (submitted minus within-batch
     *  dedup hits minus ResultStore warm starts). */
    std::uint64_t executed() const { return executed_; }
    /** Jobs warm-started from the persistent ResultStore. */
    std::uint64_t cacheHits() const { return cacheHits_; }
    /** Extra execution attempts spent on retries. */
    std::uint64_t retries() const { return retries_; }
    /** Executions that ran on a remote worker (subset of executed). */
    std::uint64_t remoteExecuted() const { return remoteExecuted_; }
    /** Workers that went down (unreachable or lost mid-sweep). */
    std::uint64_t workersLost() const { return workersLost_; }
    /** Jobs that waited on (or adopted the result of) another
     *  process's in-flight claim instead of duplicating work. */
    std::uint64_t claimWaits() const { return claimWaits_; }
    /** Endpoints quarantined by the health circuit breaker. */
    std::uint64_t workersQuarantined() const
    {
        return workersQuarantined_;
    }
    /** Jobs re-queued locally because a worker exceeded the
     *  straggler threshold (EngineConfig::stragglerSeconds). */
    std::uint64_t hedgedJobs() const { return hedgedJobs_; }
    /** Late results discarded because the other copy of a hedged
     *  job committed first. */
    std::uint64_t duplicatesSuppressed() const
    {
        return duplicatesSuppressed_;
    }

    /**
     * Test seam: replace the Simulator invocation so tests can
     * inject transient host failures (throw for the first N
     * attempts, then return a result). The hook receives the job and
     * the 1-based attempt number. Production code never sets this.
     */
    void setExecuteOverrideForTest(
        std::function<SimResult(const SimJob &, int attempt)> fn);

    /** Same seam with deadline control: setting *cancelled simulates
     *  a wall-clock cancellation (the retry-on-timeout tests). */
    void setExecuteOverrideForTest(
        std::function<SimResult(const SimJob &, int attempt,
                                bool *cancelled)> fn);

  private:
    /** Per-endpoint consecutive-failure state, persistent across
     *  run() calls (the circuit breaker's memory). */
    struct WorkerHealth
    {
        int consecutiveFailures = 0;
        bool quarantined = false;
    };

    /** One failure event (failed connect attempt, loss mid-sweep);
     *  quarantines the endpoint at quarantineAfter in a row. */
    void workerFailed(const std::string &spec);
    /** A successful hello handshake or reply: resets the failure
     *  streak and lifts any quarantine. */
    void workerHealthy(const std::string &spec);
    /** True when @p spec is quarantined (the dispatcher then probes
     *  once instead of running a full session). */
    bool workerQuarantined(const std::string &spec);

    EngineConfig config_;
    std::uint64_t submitted_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t remoteExecuted_ = 0;
    std::uint64_t workersLost_ = 0;
    std::uint64_t claimWaits_ = 0;
    std::uint64_t workersQuarantined_ = 0;
    std::uint64_t hedgedJobs_ = 0;
    std::uint64_t duplicatesSuppressed_ = 0;
    std::mutex healthMutex_;
    std::map<std::string, WorkerHealth> health_;
    std::function<SimResult(const SimJob &, int attempt,
                            bool *cancelled)>
        executeOverride_;
};

/** Serialize every SimResult field (schema in docs/HARNESS.md). */
json::Value resultToJson(const SimResult &r);

/**
 * Inverse of resultToJson. The recoverable path: a missing or
 * mistyped field returns nullopt and fills @p error with the field
 * name, so a corrupt cache record is skipped with a warning instead
 * of killing the process.
 */
std::optional<SimResult> tryResultFromJson(const json::Value &v,
                                           std::string *error = nullptr);

/** Strict inverse of resultToJson: fatal() on missing/mistyped
 *  fields (the check_results_json validation path). */
SimResult resultFromJson(const json::Value &v);

/** One schema-v2 record for a finished job (status, attempts, error
 *  when failed, and the result payload; see docs/HARNESS.md). */
json::Value jobResultToJson(const JobResult &jr);

} // namespace dttsim::sim
