#pragma once

/**
 * @file
 * Parallel experiment engine: a thread-pool scheduler over batches of
 * simulation jobs. Every figure/table of the evaluation is a batch of
 * independent (config, program) simulations, so the engine
 *
 *  - runs jobs across hardware threads (each job is one single-
 *    threaded, fully deterministic Simulator instance, so a batch
 *    produces byte-identical SimResults at any thread count);
 *  - deduplicates identical jobs within a batch via a config+program
 *    fingerprint (the baseline run of each workload historically got
 *    re-simulated by nearly every figure binary; within a batch it
 *    now runs once and fans out);
 *  - returns results in submission order, each tagged with the
 *    fingerprint digest and per-job wall-clock time.
 *
 * The JSON helpers at the bottom are the structured-results schema
 * used by the bench harness's --json emitter (docs/HARNESS.md).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "isa/program.h"
#include "sim/simulator.h"

namespace dttsim::sim {

/** Version of the JSON record schema emitted for JobResults. */
inline constexpr int kResultsSchemaVersion = 1;

/** One experiment: a machine configuration plus a program to run. */
struct SimJob
{
    /** Workload name, carried through to reports. */
    std::string workload;
    /** Variant label ("baseline", "dtt", "dtt tq=4", ...). */
    std::string variant;

    SimConfig config;
    isa::Program program;

    /**
     * Entry PCs of foreign co-runner threads, started on contexts
     * 1..N before the run (the Fig. 14 SMT co-scheduling setup).
     * Part of the job fingerprint.
     */
    std::vector<std::uint64_t> coRunnerEntries;
};

/** Outcome of one submitted job, in submission order. */
struct JobResult
{
    std::string workload;
    std::string variant;
    /** 16-hex-digit fingerprint of (config, program, co-runners). */
    std::string digest;
    SimResult result;
    /** Wall-clock seconds of the executing simulation (duplicates
     *  inherit the representative's time). */
    double wallSeconds = 0.0;
    /** True when this job reused another identical job's execution
     *  instead of simulating again. */
    bool deduplicated = false;
};

/**
 * FNV-1a fingerprint of everything that determines a job's SimResult:
 * every SimConfig field, the full program image (text, data, entry,
 * triggers) and the co-runner entries. Labels are excluded — two
 * figure binaries naming the same experiment differently still dedup.
 */
std::string jobDigest(const SimJob &job);

/** Thread-pool experiment scheduler. */
class Engine
{
  public:
    /** @param num_threads worker count; 0 picks the hardware
     *  concurrency. */
    explicit Engine(int num_threads = 0);

    /**
     * Run a batch. Unique jobs (by jobDigest) are distributed over
     * the worker pool; duplicates share the representative's result.
     * Results come back in submission order. Worker exceptions
     * (e.g. FatalError from an invalid SimConfig) are rethrown here.
     */
    std::vector<JobResult> run(const std::vector<SimJob> &jobs);

    int threads() const { return numThreads_; }

    /** Jobs submitted across all run() calls. */
    std::uint64_t submitted() const { return submitted_; }
    /** Simulations actually executed (submitted minus dedup hits). */
    std::uint64_t executed() const { return executed_; }

  private:
    int numThreads_;
    std::uint64_t submitted_ = 0;
    std::uint64_t executed_ = 0;
};

/** Serialize every SimResult field (schema in docs/HARNESS.md). */
json::Value resultToJson(const SimResult &r);

/** Inverse of resultToJson; fatal() on missing/mistyped fields. */
SimResult resultFromJson(const json::Value &v);

/** One schema record for a finished job. */
json::Value jobResultToJson(const JobResult &jr);

} // namespace dttsim::sim
