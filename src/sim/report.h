#pragma once

/**
 * @file
 * Human-readable simulation reports: renders a SimResult (and,
 * given the Simulator, the per-component statistic groups) as
 * formatted text. Used by the example tools; library users get the
 * raw SimResult instead.
 */

#include <string>

#include "analysis/shadow.h"
#include "common/json.h"
#include "sim/simulator.h"

namespace dttsim::sim {

/** Render the headline metrics of @p result. */
std::string formatResult(const SimResult &result);

/** Render a side-by-side baseline-vs-DTT comparison. */
std::string formatComparison(const SimResult &baseline,
                             const SimResult &dtt);

/** Render every component stat group of a finished simulator. */
std::string formatDetailedStats(Simulator &simulator);

/**
 * Shadow-profile JSON (part of the dttlint --json document, lint
 * schema v1 — docs/SHADOW.md): run totals plus the per-PC site map,
 * PC-ordered. Sites below @p min_executions are elided to keep
 * documents proportional to the interesting sites, not the text.
 */
json::Value shadowReportToJson(const analysis::ShadowReport &report,
                               std::uint64_t min_executions = 1);

/** Static-vs-dynamic agreement JSON (lint schema v1). */
json::Value agreementToJson(const analysis::AgreementReport &a);

/** Render the headline shadow metrics + agreement as text. */
std::string formatAgreement(const analysis::ShadowReport &report,
                            const analysis::AgreementReport &a);

} // namespace dttsim::sim
