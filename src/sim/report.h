#pragma once

/**
 * @file
 * Human-readable simulation reports: renders a SimResult (and,
 * given the Simulator, the per-component statistic groups) as
 * formatted text. Used by the example tools; library users get the
 * raw SimResult instead.
 */

#include <string>

#include "sim/simulator.h"

namespace dttsim::sim {

/** Render the headline metrics of @p result. */
std::string formatResult(const SimResult &result);

/** Render a side-by-side baseline-vs-DTT comparison. */
std::string formatComparison(const SimResult &baseline,
                             const SimResult &dtt);

/** Render every component stat group of a finished simulator. */
std::string formatDetailedStats(Simulator &simulator);

} // namespace dttsim::sim
