#pragma once

/**
 * @file
 * Simulator facade: wires the OOO SMT core, the cache hierarchy and
 * the DTT controller together, runs a program to completion and
 * returns a flat result record the benchmark harness consumes.
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.h"
#include "core/controller.h"
#include "core/dtt_config.h"
#include "cpu/core_config.h"
#include "cpu/ooo_core.h"
#include "isa/program.h"
#include "mem/hierarchy.h"

namespace dttsim::sim {

/** Full machine configuration. */
struct SimConfig
{
    cpu::CoreConfig core;
    mem::HierarchyConfig mem;
    dtt::DttConfig dtt;
    /** When false, the DTT controller is absent: triggering stores
     *  behave as plain stores (the baseline machine). */
    bool enableDtt = true;
    Cycle maxCycles = 1ull << 33;
};

/** Flat result record of one simulation. */
struct SimResult
{
    Cycle cycles = 0;
    std::uint64_t mainCommitted = 0;
    std::uint64_t dttCommitted = 0;
    std::uint64_t totalCommitted = 0;
    double ipc = 0.0;
    bool halted = false;
    bool hitMaxCycles = false;

    // DTT activity.
    std::uint64_t dttSpawns = 0;
    std::uint64_t tstores = 0;
    std::uint64_t silentSuppressed = 0;
    std::uint64_t fired = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t dropped = 0;
    std::uint64_t tqMaxOccupancy = 0;
    std::uint64_t twaitStallCycles = 0;
    std::uint64_t tstoreCommitStalls = 0;

    // Memory system.
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t activityUnits = 0;   ///< energy proxy

    // Branches.
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
};

/** One-shot simulator: construct with a config + program, call run(). */
class Simulator
{
  public:
    /** The simulator owns a copy of @p prog (temporaries are safe). */
    Simulator(const SimConfig &config, isa::Program prog);

    /** Run to main-thread HALT (or the cycle limit). */
    SimResult run();

    cpu::OooCore &core() { return *core_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    /** Null when enableDtt is false. */
    dtt::DttController *controller() { return controller_.get(); }

  private:
    SimConfig config_;
    isa::Program prog_;
    mem::Hierarchy hierarchy_;
    std::unique_ptr<dtt::DttController> controller_;
    std::unique_ptr<cpu::OooCore> core_;
};

/** Convenience: build, run, return the result. */
SimResult runProgram(const SimConfig &config, const isa::Program &prog);

} // namespace dttsim::sim
