#pragma once

/**
 * @file
 * Simulator facade: wires the OOO SMT core, the cache hierarchy and
 * the configured accelerator (DTT controller, precompute unit or
 * reuse unit — docs/ACCELERATORS.md) together, runs a program to
 * completion and returns a flat result record the benchmark harness
 * consumes.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/reuse_config.h"
#include "accel/sp_config.h"
#include "common/types.h"
#include "core/controller.h"
#include "core/dtt_config.h"
#include "cpu/accelerator.h"
#include "cpu/core_config.h"
#include "cpu/ooo_core.h"
#include "isa/program.h"
#include "mem/hierarchy.h"
#include "profile/shadowprof.h"
#include "sim/faultplan.h"

namespace dttsim::sp {
class PrecomputeUnit;
} // namespace dttsim::sp
namespace dttsim::reuse {
class ReuseUnit;
} // namespace dttsim::reuse

namespace dttsim::sim {

/** Full machine configuration. */
struct SimConfig
{
    cpu::CoreConfig core;
    mem::HierarchyConfig mem;
    /** Which accelerator the machine carries. None is the baseline
     *  machine: no helper threads, triggering stores behave as plain
     *  stores and the DTT opcodes are no-ops. */
    cpu::AccelKind accel = cpu::AccelKind::Dtt;
    /** DTT controller parameters (used only when accel == Dtt). */
    dtt::DttConfig dtt;
    /** Precompute-unit parameters (used only when accel == Sp). */
    sp::SpConfig sp;
    /** Reuse-unit parameters (used only when accel == Reuse). */
    reuse::ReuseConfig reuse;
    Cycle maxCycles = 1ull << 33;
    /** Fault injection into the accelerator machinery (off by
     *  default; requires accel != None). */
    FaultConfig fault;
    /**
     * Attach a shadow-memory redundancy profiler to the core's
     * commit stream (docs/SHADOW.md). Pure observation: SimResult is
     * byte-identical with the flag on or off — the profile comes
     * back separately through Simulator::shadowReport().
     */
    bool shadowProfile = false;

    /**
     * Check the configuration for nonsense a simulation would
     * otherwise silently "run" (zero-entry queues, a zero cycle
     * budget, pipeline widths of zero, ...). Returns one actionable
     * message per problem; empty means the machine is simulable.
     * The Simulator constructor calls this and throws FatalError on
     * the first invalid config instead of simulating it.
     */
    std::vector<std::string> validate() const;

    /**
     * Legal-but-hazardous combinations (e.g. the Stall policy on a
     * machine with no context to ever drain the queue — a documented
     * livelock the watchdog converts into a Deadlock halt). The
     * Simulator constructor prints these via warn() and proceeds.
     */
    std::vector<std::string> warnings() const;
};

/** Flat result record of one simulation. */
struct SimResult
{
    Cycle cycles = 0;
    std::uint64_t mainCommitted = 0;
    std::uint64_t dttCommitted = 0;
    std::uint64_t totalCommitted = 0;
    double ipc = 0.0;
    bool halted = false;
    bool hitMaxCycles = false;
    /** Why the run ended. Invariants: Halted <=> halted, CycleLimit
     *  <=> hitMaxCycles; Deadlock (watchdog) and Diverged (set by the
     *  DiffChecker, never by the simulator) imply neither. */
    HaltReason haltReason = HaltReason::CycleLimit;
    /** Deadlock: per-context state dump. Diverged: first divergence. */
    std::string haltDetail;

    // DTT activity.
    std::uint64_t dttSpawns = 0;
    std::uint64_t tstores = 0;
    std::uint64_t silentSuppressed = 0;
    std::uint64_t fired = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t dropped = 0;
    std::uint64_t tqMaxOccupancy = 0;
    std::uint64_t twaitStallCycles = 0;
    std::uint64_t tstoreCommitStalls = 0;

    // Memory system.
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t activityUnits = 0;   ///< energy proxy

    // Branches.
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;

    // Instruction-reuse machine (CoreConfig::reuseBuffer).
    std::uint64_t reusedInsts = 0;

    /** FNV-1a digest of the final data-segment image — the cheap
     *  architectural-correctness oracle the differential checker and
     *  fig16 compare across fault/policy variants of one program. */
    std::uint64_t archDigest = 0;

    // Fault injection (zero when SimConfig::fault is off).
    std::uint64_t faultsInjected = 0;
    /** Digest of the injected-fault trace {site, index, cycle}: equal
     *  config => equal fingerprint, however the jobs were scheduled. */
    std::uint64_t faultFingerprint = 0;

    /** Field-wise equality: the determinism oracle for the parallel
     *  experiment engine (same job => byte-identical result). */
    bool operator==(const SimResult &) const = default;
};

/** One-shot simulator: construct with a config + program, call run(). */
class Simulator
{
  public:
    /**
     * The simulator owns a copy of @p prog (temporaries are safe).
     * Throws FatalError when config.validate() reports problems.
     */
    Simulator(const SimConfig &config, isa::Program prog);

    /**
     * Run to main-thread HALT (or the cycle limit). One-shot: a
     * second call throws PanicError instead of re-running on the
     * dirty architectural/cache state of the first run — construct a
     * fresh Simulator (or use runProgram / sim::Engine) per run.
     *
     * @param wall_deadline_seconds when > 0, a wall-clock budget for
     *     this run: the core executes in commit-progress-watchdog-
     *     sized slices and a run still going when the budget expires
     *     is cancelled, coming back as a cycle-limit result whose
     *     haltDetail names the deadline. Checked only between
     *     slices, so determinism is untouched while the run is
     *     within budget.
     * @param cancelled set true iff the deadline fired (so the
     *     engine can distinguish a Timeout from a genuine cycle-
     *     limit halt).
     */
    SimResult run(double wall_deadline_seconds = 0.0,
                  bool *cancelled = nullptr);

    cpu::OooCore &core() { return *core_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    /** The attached accelerator; null when accel == None. */
    cpu::Accelerator *accelerator() { return accel_.get(); }
    /** The DTT control unit; null unless accel == Dtt. */
    dtt::DttController *controller() { return controller_; }
    /** Null unless SimConfig::fault is enabled. */
    const FaultPlan *faultPlan() const { return plan_.get(); }

    /**
     * The commit-order shadow profile of the run (finalized on each
     * call; see profile::ShadowProfiler::report). Panics unless
     * SimConfig::shadowProfile was set.
     */
    const analysis::ShadowReport &shadowReport();

  private:
    SimConfig config_;
    bool ran_ = false;
    isa::Program prog_;
    mem::Hierarchy hierarchy_;
    std::unique_ptr<cpu::Accelerator> accel_;
    // Typed views into accel_ for stats mapping; at most one is
    // non-null, matching config_.accel.
    dtt::DttController *controller_ = nullptr;
    sp::PrecomputeUnit *spUnit_ = nullptr;
    reuse::ReuseUnit *reuseUnit_ = nullptr;
    std::unique_ptr<cpu::OooCore> core_;
    std::unique_ptr<FaultPlan> plan_;
    std::unique_ptr<profile::ShadowProfiler> shadowProf_;
};

/** Convenience: build, run, return the result. */
SimResult runProgram(const SimConfig &config, const isa::Program &prog);

/** FNV-1a over memory bytes [begin, end) — archDigest's definition,
 *  exposed so the differential checker can digest golden images. */
std::uint64_t memoryDigest(mem::Memory &memory, Addr begin, Addr end);

} // namespace dttsim::sim
