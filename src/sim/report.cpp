#include "sim/report.h"

#include <sstream>

#include "common/table.h"

namespace dttsim::sim {

namespace {

void
appendRow(TextTable &t, const char *name, std::uint64_t v)
{
    t.row({name, TextTable::num(v)});
}

} // namespace

std::string
formatResult(const SimResult &r)
{
    TextTable t("simulation result");
    t.header({"metric", "value"});
    appendRow(t, "cycles", r.cycles);
    appendRow(t, "main insts", r.mainCommitted);
    appendRow(t, "dtt insts", r.dttCommitted);
    t.row({"ipc", TextTable::num(r.ipc, 3)});
    t.row({"halt reason", haltReasonName(r.haltReason)});
    if (r.faultsInjected > 0)
        appendRow(t, "faults injected", r.faultsInjected);
    appendRow(t, "tstores", r.tstores);
    appendRow(t, "silent suppressed", r.silentSuppressed);
    appendRow(t, "threads fired", r.fired);
    appendRow(t, "coalesced", r.coalesced);
    appendRow(t, "dropped", r.dropped);
    appendRow(t, "spawns", r.dttSpawns);
    appendRow(t, "twait stall cycles", r.twaitStallCycles);
    appendRow(t, "L1D misses", r.l1dMisses);
    appendRow(t, "L1I misses", r.l1iMisses);
    appendRow(t, "L2 misses", r.l2Misses);
    appendRow(t, "DRAM accesses", r.memAccesses);
    appendRow(t, "cond branches", r.condBranches);
    appendRow(t, "cond mispredicts", r.condMispredicts);
    appendRow(t, "activity units", r.activityUnits);
    return t.render();
}

std::string
formatComparison(const SimResult &baseline, const SimResult &dtt)
{
    TextTable t("baseline vs DTT");
    t.header({"metric", "baseline", "dtt"});
    auto row = [&](const char *name, std::uint64_t b, std::uint64_t d) {
        t.row({name, TextTable::num(b), TextTable::num(d)});
    };
    row("cycles", baseline.cycles, dtt.cycles);
    row("main insts", baseline.mainCommitted, dtt.mainCommitted);
    row("thread insts", baseline.dttCommitted, dtt.dttCommitted);
    row("tstores", baseline.tstores, dtt.tstores);
    row("silent suppressed", baseline.silentSuppressed,
        dtt.silentSuppressed);
    row("spawns", baseline.dttSpawns, dtt.dttSpawns);
    row("L1D misses", baseline.l1dMisses, dtt.l1dMisses);
    row("L2 misses", baseline.l2Misses, dtt.l2Misses);
    row("activity units", baseline.activityUnits, dtt.activityUnits);
    t.row({"ipc", TextTable::num(baseline.ipc, 3),
           TextTable::num(dtt.ipc, 3)});

    std::ostringstream os;
    os << t.render();
    if (dtt.cycles > 0)
        os << "speedup: "
           << TextTable::num(static_cast<double>(baseline.cycles)
                                 / static_cast<double>(dtt.cycles), 3)
           << "x\n";
    return os.str();
}

std::string
formatDetailedStats(Simulator &simulator)
{
    std::ostringstream os;
    auto dump_group = [&os](const StatGroup &g) {
        for (const auto &[name, value] : g.dump())
            os << "  " << g.name() << "." << name << " = " << value
               << "\n";
    };
    dump_group(simulator.core().stats());
    dump_group(simulator.core().bpred().stats());
    dump_group(simulator.hierarchy().l1i().stats());
    dump_group(simulator.hierarchy().l1d().stats());
    dump_group(simulator.hierarchy().l2().stats());
    if (simulator.controller() != nullptr) {
        dump_group(simulator.controller()->stats());
        dump_group(simulator.controller()->queue().stats());
    }
    return os.str();
}

} // namespace dttsim::sim
