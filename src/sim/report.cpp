#include "sim/report.h"

#include <sstream>

#include "common/table.h"

namespace dttsim::sim {

namespace {

void
appendRow(TextTable &t, const char *name, std::uint64_t v)
{
    t.row({name, TextTable::num(v)});
}

} // namespace

std::string
formatResult(const SimResult &r)
{
    TextTable t("simulation result");
    t.header({"metric", "value"});
    appendRow(t, "cycles", r.cycles);
    appendRow(t, "main insts", r.mainCommitted);
    appendRow(t, "dtt insts", r.dttCommitted);
    t.row({"ipc", TextTable::num(r.ipc, 3)});
    t.row({"halt reason", haltReasonName(r.haltReason)});
    if (r.faultsInjected > 0)
        appendRow(t, "faults injected", r.faultsInjected);
    appendRow(t, "tstores", r.tstores);
    appendRow(t, "silent suppressed", r.silentSuppressed);
    appendRow(t, "threads fired", r.fired);
    appendRow(t, "coalesced", r.coalesced);
    appendRow(t, "dropped", r.dropped);
    appendRow(t, "spawns", r.dttSpawns);
    appendRow(t, "twait stall cycles", r.twaitStallCycles);
    appendRow(t, "L1D misses", r.l1dMisses);
    appendRow(t, "L1I misses", r.l1iMisses);
    appendRow(t, "L2 misses", r.l2Misses);
    appendRow(t, "DRAM accesses", r.memAccesses);
    appendRow(t, "cond branches", r.condBranches);
    appendRow(t, "cond mispredicts", r.condMispredicts);
    appendRow(t, "activity units", r.activityUnits);
    return t.render();
}

std::string
formatComparison(const SimResult &baseline, const SimResult &dtt)
{
    TextTable t("baseline vs DTT");
    t.header({"metric", "baseline", "dtt"});
    auto row = [&](const char *name, std::uint64_t b, std::uint64_t d) {
        t.row({name, TextTable::num(b), TextTable::num(d)});
    };
    row("cycles", baseline.cycles, dtt.cycles);
    row("main insts", baseline.mainCommitted, dtt.mainCommitted);
    row("thread insts", baseline.dttCommitted, dtt.dttCommitted);
    row("tstores", baseline.tstores, dtt.tstores);
    row("silent suppressed", baseline.silentSuppressed,
        dtt.silentSuppressed);
    row("spawns", baseline.dttSpawns, dtt.dttSpawns);
    row("L1D misses", baseline.l1dMisses, dtt.l1dMisses);
    row("L2 misses", baseline.l2Misses, dtt.l2Misses);
    row("activity units", baseline.activityUnits, dtt.activityUnits);
    t.row({"ipc", TextTable::num(baseline.ipc, 3),
           TextTable::num(dtt.ipc, 3)});

    std::ostringstream os;
    os << t.render();
    if (dtt.cycles > 0)
        os << "speedup: "
           << TextTable::num(static_cast<double>(baseline.cycles)
                                 / static_cast<double>(dtt.cycles), 3)
           << "x\n";
    return os.str();
}

std::string
formatDetailedStats(Simulator &simulator)
{
    std::ostringstream os;
    auto dump_group = [&os](const StatGroup &g) {
        for (const auto &[name, value] : g.dump())
            os << "  " << g.name() << "." << name << " = " << value
               << "\n";
    };
    dump_group(simulator.core().stats());
    dump_group(simulator.core().bpred().stats());
    dump_group(simulator.hierarchy().l1i().stats());
    dump_group(simulator.hierarchy().l1d().stats());
    dump_group(simulator.hierarchy().l2().stats());
    if (simulator.controller() != nullptr) {
        dump_group(simulator.controller()->stats());
        dump_group(simulator.controller()->queue().stats());
    }
    return os.str();
}

json::Value
shadowReportToJson(const analysis::ShadowReport &r,
                   std::uint64_t min_executions)
{
    json::Value doc = json::Value::object();
    doc.set("instructions", r.instructions);
    doc.set("loads", r.loads);
    doc.set("redundant_loads", r.redundantLoads);
    doc.set("stores", r.stores);
    doc.set("silent_stores", r.silentStores);
    doc.set("dead_store_bytes", r.deadStoreBytes);
    doc.set("dead_at_exit_bytes", r.deadAtExitBytes);

    json::Value sites = json::Value::array();
    for (const auto &[pc, s] : r.sites) {
        if (s.executions < min_executions)
            continue;
        json::Value site = json::Value::object();
        site.set("pc", pc);
        site.set("kind", s.isLoad ? "load" : "store");
        site.set("width", static_cast<std::uint64_t>(s.width));
        site.set("executions", s.executions);
        if (s.isLoad) {
            site.set("redundant", s.redundant);
        } else {
            site.set("silent", s.silent);
            site.set("dead_bytes", s.deadBytes);
            site.set("dead_at_exit_bytes", s.deadAtExitBytes);
            site.set("downstream_read_bytes", s.downstreamReadBytes);
            if (!s.killers.empty()) {
                json::Value killers = json::Value::array();
                for (const auto &[killer, bytes] : s.killers) {
                    json::Value edge = json::Value::object();
                    edge.set("pc", killer);
                    edge.set("bytes", bytes);
                    killers.push(std::move(edge));
                }
                site.set("killers", std::move(killers));
            }
        }
        json::Value runs = json::Value::array();
        for (std::uint64_t n : s.valueRuns)
            runs.push(n);
        site.set("value_runs", std::move(runs));
        sites.push(std::move(site));
    }
    doc.set("sites", std::move(sites));
    return doc;
}

json::Value
agreementToJson(const analysis::AgreementReport &a)
{
    json::Value doc = json::Value::object();
    doc.set("static_sites", a.staticSites);
    doc.set("dynamic_sites", a.dynamicSites);
    doc.set("agree", a.agree);
    doc.set("static_only", a.staticOnly);
    doc.set("static_never_executed", a.staticNeverExecuted);
    doc.set("dynamic_only", a.dynamicOnly);
    doc.set("trigger_candidates", a.triggerCandidates);
    doc.set("suppressed", a.suppressed);
    doc.set("precision", a.precision());
    doc.set("recall", a.recall());
    return doc;
}

std::string
formatAgreement(const analysis::ShadowReport &r,
                const analysis::AgreementReport &a)
{
    TextTable t("static vs dynamic redundancy");
    t.header({"metric", "value"});
    appendRow(t, "committed insts", r.instructions);
    t.row({"redundant loads",
           TextTable::num(r.redundantLoads) + " / "
               + TextTable::num(r.loads)});
    t.row({"silent stores",
           TextTable::num(r.silentStores) + " / "
               + TextTable::num(r.stores)});
    appendRow(t, "dead store bytes", r.deadStoreBytes);
    appendRow(t, "dead at exit bytes", r.deadAtExitBytes);
    appendRow(t, "A008 static sites", a.staticSites);
    appendRow(t, "dynamic hot sites", a.dynamicSites);
    appendRow(t, "agree", a.agree);
    appendRow(t, "static only", a.staticOnly);
    appendRow(t, "  never executed", a.staticNeverExecuted);
    appendRow(t, "dynamic only", a.dynamicOnly);
    appendRow(t, "trigger candidates", a.triggerCandidates);
    appendRow(t, "suppressed", a.suppressed);
    t.row({"precision", TextTable::num(a.precision(), 3)});
    t.row({"recall", TextTable::num(a.recall(), 3)});
    return t.render();
}

} // namespace dttsim::sim
