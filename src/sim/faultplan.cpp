#include "sim/faultplan.h"

#include "common/log.h"

namespace dttsim::sim {

namespace {

/** splitmix64 finalizer: the per-decision hash. Counter-based (not a
 *  sequential stream) so site A's decisions never depend on how many
 *  draws site B made — cross-site interleaving cannot perturb the
 *  plan. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a hash value. */
double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::DropFiring: return "drop-firing";
      case FaultSite::EvictPending: return "evict-pending";
      case FaultSite::DenySpawn: return "deny-spawn";
      case FaultSite::SquashThread: return "squash-thread";
      case FaultSite::SpuriousCoalesce: return "spurious-coalesce";
      case FaultSite::DropToken: return "drop-token";
      case FaultSite::FlushReuseTable: return "flush-reuse-table";
      case FaultSite::NumSites: break;
    }
    return "?";
}

FaultPlan::FaultPlan(const FaultConfig &config) : config_(config)
{
    if (config_.rate < 0.0 || config_.rate > 1.0)
        fatal("fault rate must be in [0, 1] (got %g)", config_.rate);
    if ((config_.siteMask & ~kAllFaultSites) != 0)
        fatal("fault siteMask 0x%x names unknown sites (valid bits: "
              "0x%x)", config_.siteMask, kAllFaultSites);
}

bool
FaultPlan::inject(FaultSite s)
{
    if (!armed(s))
        return false;
    auto si = static_cast<std::size_t>(s);
    std::uint64_t idx = counters_[si]++;
    // Decorrelate the site streams by folding the site id into the
    // seed with a large odd constant.
    std::uint64_t h = mix(config_.seed
                          ^ (static_cast<std::uint64_t>(si) + 1)
                              * 0xd1342543de82ef95ull
                          ^ idx * 0x2545f4914f6cdd1dull);
    if (toUnit(h) >= config_.rate)
        return false;
    trace_.push_back(FaultEvent{s, idx, now_});
    return true;
}

Cycle
FaultPlan::squashDelay()
{
    std::uint64_t h = mix(config_.seed
                          ^ 0xa24baed4963ee407ull
                          ^ delayCounter_++ * 0x9fb21c651e98df25ull);
    return 1 + (h % 48);
}

std::uint64_t
FaultPlan::fingerprint() const
{
    std::uint64_t hash = 14695981039346656037ull;
    auto feed = [&hash](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 1099511628211ull;
        }
    };
    for (const FaultEvent &e : trace_) {
        feed(static_cast<std::uint64_t>(e.site));
        feed(e.index);
        feed(e.cycle);
    }
    return hash;
}

} // namespace dttsim::sim
