#pragma once

/**
 * @file
 * Deterministic fault-injection plan for the DTT microarchitecture.
 *
 * The DTT correctness claim (Tseng & Tullsen, HPCA'11) is that
 * triggered threads are a *performance* mechanism: a firing may be
 * dropped, delayed, coalesced or squashed mid-flight and the
 * program's architectural result must not change (drops are the one
 * exception — they are recoverable only through the software
 * fallback idiom: TCHK bit 62 -> inline recompute -> TCLR). A
 * FaultPlan perturbs exactly these events so the differential
 * checker (sim/diffcheck.h) can exercise the claim under adversity.
 *
 * Reproducibility contract: every decision is a pure function of
 * {seed, site, per-site opportunity counter} — independent of wall
 * clock, thread scheduling and of what the *other* sites decided —
 * so the same {seed, rate, siteMask} replays the identical fault
 * trace, and the trace fingerprint is stable whether the job runs
 * under Engine --jobs 1 or --jobs 8.
 */

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dttsim::sim {

/**
 * Where a fault can strike. Two classes:
 *
 *  - *transparent* sites only delay or redo work (a squashed
 *    thread's stores are rolled back before its work item is
 *    requeued, so even partial handler runs leave no trace); any
 *    well-formed DTT program (handlers a function of current memory,
 *    TWAIT-fenced consumers) tolerates them at any rate < 1 with an
 *    unchanged architectural result;
 *  - *lossy* sites discard a firing outright; they additionally set
 *    the trigger's sticky overflow flag, so only programs using the
 *    software fallback idiom recover (tools/dttlint's
 *    no-drop-fallback diagnostic flags programs that do not).
 */
enum class FaultSite : std::uint8_t {
    DropFiring,       ///< lossy: discard a firing at tstore commit
    EvictPending,     ///< lossy: evict the oldest pending TQ entry
    DenySpawn,        ///< transparent: spawn port busy this cycle
    SquashThread,     ///< transparent: kill an in-flight thread; the
                      ///  controller requeues its work item
    SpuriousCoalesce, ///< transparent: force-coalesce a duplicate
                      ///  (trigger, address) firing even when the
                      ///  machine config disabled coalescing
    DropToken,        ///< lossy: discard an SP slice token at tstore
                      ///  commit (sp::PrecomputeUnit only)
    FlushReuseTable,  ///< transparent: invalidate the reuse unit's
                      ///  whole table on a hit, forcing re-execution
                      ///  (reuse::ReuseUnit only; timing-only)

    NumSites,
};

/** Stable kebab-case site name for traces and messages. */
const char *faultSiteName(FaultSite s);

/** Mask bit of one site. */
constexpr std::uint32_t
faultSiteBit(FaultSite s)
{
    return 1u << static_cast<unsigned>(s);
}

/** Sites safe for any well-formed DTT program (no fallback needed).
 *  FlushReuseTable is transparent by construction: a reuse hit only
 *  short-circuits timing, never architectural state, so flushing the
 *  table merely costs cycles. */
inline constexpr std::uint32_t kTransparentSites =
    faultSiteBit(FaultSite::DenySpawn)
    | faultSiteBit(FaultSite::SquashThread)
    | faultSiteBit(FaultSite::SpuriousCoalesce)
    | faultSiteBit(FaultSite::FlushReuseTable);

/** Sites that discard work; require the TCHK/TCLR fallback idiom. */
inline constexpr std::uint32_t kLossySites =
    faultSiteBit(FaultSite::DropFiring)
    | faultSiteBit(FaultSite::EvictPending)
    | faultSiteBit(FaultSite::DropToken);

inline constexpr std::uint32_t kAllFaultSites =
    kTransparentSites | kLossySites;

/** What to inject. Part of SimConfig (and the Engine job digest). */
struct FaultConfig
{
    /** Plan seed; same seed + rate + mask replays the same trace. */
    std::uint64_t seed = 0;

    /** Per-opportunity injection probability, 0..1. */
    double rate = 0.0;

    /** OR of faultSiteBit() values; 0 disables injection. */
    std::uint32_t siteMask = 0;

    bool enabled() const { return rate > 0.0 && siteMask != 0; }
};

/** One applied fault, in application order. */
struct FaultEvent
{
    FaultSite site = FaultSite::NumSites;
    std::uint64_t index = 0;  ///< per-site opportunity counter value
    Cycle cycle = 0;          ///< core cycle when applied
};

/**
 * The live plan: DttController and OooCore hold a pointer and ask it
 * at each opportunity. One plan serves exactly one Simulator run.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &config);

    const FaultConfig &config() const { return config_; }

    /** Core tick hook: timestamps subsequently applied faults. */
    void onCycle(Cycle now) { now_ = now; }

    /** Site enabled in the mask (cheap pre-check for callers that
     *  must do work before drawing). */
    bool
    armed(FaultSite s) const
    {
        return config_.rate > 0.0
            && (config_.siteMask & faultSiteBit(s)) != 0;
    }

    /**
     * One opportunity at @p s: draws the site's next decision and
     * records an event when it injects. Unarmed sites return false
     * without consuming a draw.
     */
    bool inject(FaultSite s);

    /** Extra cycles an armed squash waits after spawn (1..48; its own
     *  deterministic stream). */
    Cycle squashDelay();

    std::uint64_t injected() const { return trace_.size(); }
    const std::vector<FaultEvent> &trace() const { return trace_; }

    /** FNV-1a over the applied-event trace: the replay oracle. */
    std::uint64_t fingerprint() const;

  private:
    FaultConfig config_;
    Cycle now_ = 0;
    std::uint64_t counters_[static_cast<std::size_t>(
        FaultSite::NumSites)] = {};
    std::uint64_t delayCounter_ = 0;
    std::vector<FaultEvent> trace_;
};

} // namespace dttsim::sim
