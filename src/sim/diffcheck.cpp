#include "sim/diffcheck.h"

#include "common/log.h"
#include "sim/engine.h"

namespace dttsim::sim {

namespace {

/** Name of the greatest data symbol at or below @p addr (the data
 *  object a divergent byte belongs to), or "?" outside all symbols. */
std::string
enclosingSymbol(const isa::Program &prog, Addr addr)
{
    std::string best = "?";
    Addr bestBase = 0;
    for (const auto &[name, base] : prog.dataSymbols()) {
        if (base <= addr && (best == "?" || base >= bestBase)) {
            best = name;
            bestBase = base;
        }
    }
    return best;
}

/** Describe the last fault injected before the divergence showed. */
std::string
lastFaultDescription(const Simulator &sim)
{
    const FaultPlan *plan = sim.faultPlan();
    if (plan == nullptr || plan->trace().empty())
        return "no fault was injected";
    const FaultEvent &e = plan->trace().back();
    return strfmt("last injected fault: %s #%llu at cycle %llu",
                  faultSiteName(e.site),
                  static_cast<unsigned long long>(e.index),
                  static_cast<unsigned long long>(e.cycle));
}

} // namespace

const DiffChecker::Golden &
DiffChecker::goldenFor(const SimConfig &config,
                       const isa::Program &program)
{
    SimConfig clean = config;
    clean.fault = FaultConfig{};

    SimJob job;
    job.config = clean;
    job.program = program;
    const std::string digest = jobDigest(job);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(digest);
        if (it != cache_.end())
            return it->second;
    }

    // Run outside the lock: goldens for different machines may be
    // produced concurrently. A racing duplicate run is wasted work
    // but harmless — the simulator is deterministic, so both compute
    // the same golden.
    Simulator sim(clean, program);
    Golden g;
    g.result = sim.run();
    if (!g.result.halted)
        fatal("differential check: the fault-free golden run did not "
              "halt (%s)%s%s — fix the program or the machine config "
              "before injecting faults",
              haltReasonName(g.result.haltReason),
              g.result.haltDetail.empty() ? "" : ": ",
              g.result.haltDetail.c_str());
    for (Addr a = isa::kDataBase; a < program.dataEnd(); ++a)
        g.image.push_back(sim.core().memory().read8(a));
    const cpu::ArchState &arch = sim.core().archState(0);
    for (int i = 1; i < 32; ++i)
        g.xregs.push_back(arch.getX(i));
    for (int i = 0; i < 32; ++i)
        g.fregs.push_back(arch.getF(i));

    std::lock_guard<std::mutex> lock(mutex_);
    ++goldenRuns_;
    return cache_.emplace(digest, std::move(g)).first->second;
}

DiffReport
DiffChecker::check(const SimConfig &config, const isa::Program &program,
                   bool compare_regs)
{
    const Golden &golden = goldenFor(config, program);

    Simulator sim(config, program);
    DiffReport rep;
    rep.faulted = sim.run();

    auto fail = [&](std::string why) {
        rep.ok = false;
        rep.detail = std::move(why);
        rep.faulted.halted = false;
        rep.faulted.hitMaxCycles = false;
        rep.faulted.haltReason = HaltReason::Diverged;
        rep.faulted.haltDetail = rep.detail;
        return rep;
    };

    if (!rep.faulted.halted)
        return fail(strfmt(
            "faulted run did not halt (%s)%s%s; %s",
            haltReasonName(rep.faulted.haltReason),
            rep.faulted.haltDetail.empty() ? "" : ": ",
            rep.faulted.haltDetail.c_str(),
            lastFaultDescription(sim).c_str()));

    // Memory image: byte-wise, reporting the first divergent address.
    for (Addr a = isa::kDataBase; a < program.dataEnd(); ++a) {
        std::uint8_t got = sim.core().memory().read8(a);
        std::uint8_t want =
            golden.image[static_cast<std::size_t>(a - isa::kDataBase)];
        if (got != want)
            return fail(strfmt(
                "memory diverged at 0x%llx (in %s): golden 0x%02x, "
                "faulted 0x%02x, after %llu injected fault%s; %s",
                static_cast<unsigned long long>(a),
                enclosingSymbol(program, a).c_str(), want, got,
                static_cast<unsigned long long>(
                    rep.faulted.faultsInjected),
                rep.faulted.faultsInjected == 1 ? "" : "s",
                lastFaultDescription(sim).c_str()));
    }

    if (compare_regs) {
        const cpu::ArchState &arch = sim.core().archState(0);
        for (int i = 1; i < 32; ++i) {
            std::uint64_t got = arch.getX(i);
            std::uint64_t want =
                golden.xregs[static_cast<std::size_t>(i - 1)];
            if (got != want)
                return fail(strfmt(
                    "register x%d diverged: golden 0x%llx, faulted "
                    "0x%llx; %s", i,
                    static_cast<unsigned long long>(want),
                    static_cast<unsigned long long>(got),
                    lastFaultDescription(sim).c_str()));
        }
        for (int i = 0; i < 32; ++i) {
            double got = arch.getF(i);
            double want = golden.fregs[static_cast<std::size_t>(i)];
            if (got != want)
                return fail(strfmt(
                    "register f%d diverged: golden %g, faulted %g; %s",
                    i, want, got, lastFaultDescription(sim).c_str()));
        }
    }

    rep.ok = true;
    return rep;
}

} // namespace dttsim::sim
