#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <type_traits>

#include "common/log.h"

namespace dttsim::sim {

namespace {

/** FNV-1a 64-bit, fed field-by-field (never raw structs: padding
 *  bytes are indeterminate and would break dedup). */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 1099511628211ull;
        }
    }

    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        bytes(&v, sizeof v);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ull;
};

void
hashConfig(Fnv1a &h, const SimConfig &cfg)
{
    const cpu::CoreConfig &c = cfg.core;
    h.pod(c.numContexts);
    h.pod(c.fetchWidth);
    h.pod(c.fetchThreads);
    h.pod(c.fetchBlockInsts);
    h.pod(c.frontendDepth);
    h.pod(c.frontendQSize);
    h.pod(c.dispatchWidth);
    h.pod(c.issueWidth);
    h.pod(c.commitWidth);
    h.pod(c.robSize);
    h.pod(c.iqSize);
    h.pod(c.lqSize);
    h.pod(c.sqSize);
    h.pod(c.queueReservePerCtx);
    h.pod(c.intAlu);
    h.pod(c.intMulDiv);
    h.pod(c.fpAlu);
    h.pod(c.fpMulDiv);
    h.pod(c.memPorts);
    h.pod(c.mispredictPenalty);
    h.pod(c.watchdogWindow);
    h.pod(c.reuseBuffer);
    h.pod(c.reuseEntriesPerPc);
    h.pod(c.bpred.historyBits);
    h.pod(c.bpred.btbEntries);
    h.pod(c.bpred.rasEntries);
    h.pod(c.bpred.numContexts);

    const mem::HierarchyConfig &m = cfg.mem;
    for (const mem::CacheConfig *cc : {&m.l1i, &m.l1d, &m.l2}) {
        h.pod(cc->sizeBytes);
        h.pod(cc->assoc);
        h.pod(cc->lineBytes);
        h.pod(cc->hitLatency);
    }
    h.pod(m.memLatency);
    h.pod(m.modelFills);
    h.pod(m.mshrs);
    h.pod(m.nextLinePrefetch);

    const dtt::DttConfig &d = cfg.dtt;
    h.pod(d.maxTriggers);
    h.pod(d.threadQueueSize);
    h.pod(d.fullPolicy);
    h.pod(d.stallBound);
    h.pod(d.silentSuppression);
    h.pod(d.coalesce);
    h.pod(d.serializePerTrigger);
    h.pod(d.spawnLatency);

    h.pod(cfg.enableDtt);
    h.pod(cfg.maxCycles);

    h.pod(cfg.fault.seed);
    h.pod(cfg.fault.rate);
    h.pod(cfg.fault.siteMask);
}

void
hashProgram(Fnv1a &h, const isa::Program &prog)
{
    h.pod(prog.entry());
    h.pod(prog.size());
    for (const isa::Inst &inst : prog.text()) {
        h.pod(inst.op);
        h.pod(inst.rd);
        h.pod(inst.rs1);
        h.pod(inst.rs2);
        h.pod(inst.trig);
        h.pod(inst.imm);
        h.pod(inst.fimm);
    }
    for (const isa::DataChunk &chunk : prog.dataChunks()) {
        h.pod(chunk.base);
        h.pod(chunk.bytes.size());
        h.bytes(chunk.bytes.data(), chunk.bytes.size());
    }
    h.pod(prog.dataEnd());
    h.pod(prog.numTriggers());
}

JobResult
executeJob(const SimJob &job)
{
    auto t0 = std::chrono::steady_clock::now();
    Simulator simulator(job.config, job.program);
    for (std::size_t i = 0; i < job.coRunnerEntries.size(); ++i)
        simulator.core().startCoRunner(static_cast<CtxId>(i + 1),
                                       job.coRunnerEntries[i]);
    JobResult jr;
    jr.workload = job.workload;
    jr.variant = job.variant;
    jr.result = simulator.run();
    jr.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return jr;
}

} // namespace

std::string
jobDigest(const SimJob &job)
{
    Fnv1a h;
    hashConfig(h, job.config);
    hashProgram(h, job.program);
    h.pod(job.coRunnerEntries.size());
    for (std::uint64_t entry : job.coRunnerEntries)
        h.pod(entry);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h.value()));
    return buf;
}

Engine::Engine(int num_threads)
{
    if (num_threads < 0)
        fatal("Engine: num_threads must be >= 0 (got %d); 0 selects "
              "the hardware concurrency", num_threads);
    if (num_threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw ? static_cast<int>(hw) : 1;
    }
    numThreads_ = num_threads;
}

std::vector<JobResult>
Engine::run(const std::vector<SimJob> &jobs)
{
    submitted_ += jobs.size();

    // Deduplicate: the first job with a given digest becomes the
    // representative; later identical jobs share its execution.
    std::vector<std::string> digests(jobs.size());
    std::vector<std::size_t> representative(jobs.size());
    std::vector<std::size_t> unique;
    std::map<std::string, std::size_t> byDigest;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        digests[i] = jobDigest(jobs[i]);
        auto [it, inserted] = byDigest.emplace(digests[i], i);
        representative[i] = it->second;
        if (inserted)
            unique.push_back(i);
    }
    executed_ += unique.size();

    // Farm the unique jobs out to the pool. Each simulation is
    // single-threaded and self-contained, so scheduling order cannot
    // affect any SimResult — only wall-clock.
    std::vector<JobResult> executedResults(jobs.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t u = next.fetch_add(1);
            if (u >= unique.size())
                return;
            std::size_t idx = unique[u];
            try {
                executedResults[idx] = executeJob(jobs[idx]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::size_t pool = std::min<std::size_t>(
        static_cast<std::size_t>(numThreads_), unique.size());
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    // Expand to submission order; duplicates copy the representative
    // but keep their own labels.
    std::vector<JobResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &rep = executedResults[representative[i]];
        results[i] = rep;
        results[i].workload = jobs[i].workload;
        results[i].variant = jobs[i].variant;
        results[i].digest = digests[i];
        results[i].deduplicated = representative[i] != i;
    }
    return results;
}

// Field lists shared by the JSON writer and reader so the two can
// never drift apart (the round-trip test locks the schema).
#define DTTSIM_SIMRESULT_U64_FIELDS(X) \
    X(cycles) X(mainCommitted) X(dttCommitted) X(totalCommitted) \
    X(dttSpawns) X(tstores) X(silentSuppressed) X(fired) \
    X(coalesced) X(dropped) X(tqMaxOccupancy) X(twaitStallCycles) \
    X(tstoreCommitStalls) X(l1dAccesses) X(l1dMisses) \
    X(l1iAccesses) X(l1iMisses) X(l2Accesses) X(l2Misses) \
    X(memAccesses) X(activityUnits) X(condBranches) \
    X(condMispredicts) X(reusedInsts) X(archDigest) \
    X(faultsInjected) X(faultFingerprint)

#define DTTSIM_SIMRESULT_BOOL_FIELDS(X) \
    X(halted) X(hitMaxCycles)

json::Value
resultToJson(const SimResult &r)
{
    json::Value v = json::Value::object();
#define DTTSIM_PUT_U64(name) \
    v.set(#name, json::Value(static_cast<std::uint64_t>(r.name)));
#define DTTSIM_PUT_BOOL(name) v.set(#name, json::Value(r.name));
    DTTSIM_SIMRESULT_U64_FIELDS(DTTSIM_PUT_U64)
    v.set("ipc", json::Value(r.ipc));
    DTTSIM_SIMRESULT_BOOL_FIELDS(DTTSIM_PUT_BOOL)
    v.set("haltReason",
          json::Value(std::string(haltReasonName(r.haltReason))));
    v.set("haltDetail", json::Value(r.haltDetail));
#undef DTTSIM_PUT_U64
#undef DTTSIM_PUT_BOOL
    return v;
}

SimResult
resultFromJson(const json::Value &v)
{
    SimResult r;
#define DTTSIM_GET_U64(name) r.name = v.get(#name).asUint();
#define DTTSIM_GET_BOOL(name) r.name = v.get(#name).asBool();
    DTTSIM_SIMRESULT_U64_FIELDS(DTTSIM_GET_U64)
    r.ipc = v.get("ipc").asDouble();
    DTTSIM_SIMRESULT_BOOL_FIELDS(DTTSIM_GET_BOOL)
    {
        const std::string name = v.get("haltReason").asString();
        bool known = false;
        for (HaltReason hr : {HaltReason::Halted, HaltReason::CycleLimit,
                              HaltReason::Deadlock,
                              HaltReason::Diverged}) {
            if (name == haltReasonName(hr)) {
                r.haltReason = hr;
                known = true;
                break;
            }
        }
        if (!known)
            fatal("unknown haltReason \"%s\" in result JSON",
                  name.c_str());
        r.haltDetail = v.get("haltDetail").asString();
    }
#undef DTTSIM_GET_U64
#undef DTTSIM_GET_BOOL
    return r;
}

json::Value
jobResultToJson(const JobResult &jr)
{
    json::Value v = json::Value::object();
    v.set("workload", json::Value(jr.workload));
    v.set("variant", json::Value(jr.variant));
    v.set("config_digest", json::Value(jr.digest));
    v.set("deduplicated", json::Value(jr.deduplicated));
    v.set("wall_seconds", json::Value(jr.wallSeconds));
    v.set("result", resultToJson(jr.result));
    return v;
}

} // namespace dttsim::sim
