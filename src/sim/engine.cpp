#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <type_traits>

#include "common/log.h"
#include "sim/resultstore.h"

namespace dttsim::sim {

namespace {

/** FNV-1a 64-bit, fed field-by-field (never raw structs: padding
 *  bytes are indeterminate and would break dedup). */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 1099511628211ull;
        }
    }

    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        bytes(&v, sizeof v);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ull;
};

void
hashConfig(Fnv1a &h, const SimConfig &cfg)
{
    const cpu::CoreConfig &c = cfg.core;
    h.pod(c.numContexts);
    h.pod(c.fetchWidth);
    h.pod(c.fetchThreads);
    h.pod(c.fetchBlockInsts);
    h.pod(c.frontendDepth);
    h.pod(c.frontendQSize);
    h.pod(c.dispatchWidth);
    h.pod(c.issueWidth);
    h.pod(c.commitWidth);
    h.pod(c.robSize);
    h.pod(c.iqSize);
    h.pod(c.lqSize);
    h.pod(c.sqSize);
    h.pod(c.queueReservePerCtx);
    h.pod(c.intAlu);
    h.pod(c.intMulDiv);
    h.pod(c.fpAlu);
    h.pod(c.fpMulDiv);
    h.pod(c.memPorts);
    h.pod(c.mispredictPenalty);
    h.pod(c.watchdogWindow);
    h.pod(c.reuseBuffer);
    h.pod(c.reuseEntriesPerPc);
    h.pod(c.bpred.historyBits);
    h.pod(c.bpred.btbEntries);
    h.pod(c.bpred.rasEntries);
    h.pod(c.bpred.numContexts);

    const mem::HierarchyConfig &m = cfg.mem;
    for (const mem::CacheConfig *cc : {&m.l1i, &m.l1d, &m.l2}) {
        h.pod(cc->sizeBytes);
        h.pod(cc->assoc);
        h.pod(cc->lineBytes);
        h.pod(cc->hitLatency);
    }
    h.pod(m.memLatency);
    h.pod(m.modelFills);
    h.pod(m.mshrs);
    h.pod(m.nextLinePrefetch);

    const dtt::DttConfig &d = cfg.dtt;
    h.pod(d.maxTriggers);
    h.pod(d.threadQueueSize);
    h.pod(d.fullPolicy);
    h.pod(d.stallBound);
    h.pod(d.silentSuppression);
    h.pod(d.coalesce);
    h.pod(d.serializePerTrigger);
    h.pod(d.spawnLatency);

    const sp::SpConfig &s = cfg.sp;
    h.pod(s.maxTriggers);
    h.pod(s.tokenQueueSize);
    h.pod(s.skipWhenBusy);
    h.pod(s.serializePerTrigger);
    h.pod(s.spawnLatency);

    h.pod(cfg.reuse.entriesPerPc);

    h.pod(cfg.accel);
    h.pod(cfg.maxCycles);

    h.pod(cfg.fault.seed);
    h.pod(cfg.fault.rate);
    h.pod(cfg.fault.siteMask);

    h.pod(cfg.shadowProfile);
}

void
hashProgram(Fnv1a &h, const isa::Program &prog)
{
    h.pod(prog.entry());
    h.pod(prog.size());
    for (const isa::Inst &inst : prog.text()) {
        h.pod(inst.op);
        h.pod(inst.rd);
        h.pod(inst.rs1);
        h.pod(inst.rs2);
        h.pod(inst.trig);
        h.pod(inst.imm);
        h.pod(inst.fimm);
    }
    for (const isa::DataChunk &chunk : prog.dataChunks()) {
        h.pod(chunk.base);
        h.pod(chunk.bytes.size());
        h.bytes(chunk.bytes.data(), chunk.bytes.size());
    }
    h.pod(prog.dataEnd());
    h.pod(prog.numTriggers());
}

/** One simulation attempt; may throw, may be deadline-cancelled. */
SimResult
simulateOnce(const SimJob &job, double deadline_seconds,
             bool *cancelled)
{
    Simulator simulator(job.config, job.program);
    for (std::size_t i = 0; i < job.coRunnerEntries.size(); ++i)
        simulator.core().startCoRunner(static_cast<CtxId>(i + 1),
                                       job.coRunnerEntries[i]);
    return simulator.run(deadline_seconds, cancelled);
}

/** Classify a completed (non-thrown, non-cancelled) simulation. */
JobStatus
statusOf(const SimResult &r)
{
    return r.halted && !r.hitMaxCycles ? JobStatus::Ok
                                       : JobStatus::Failed;
}

} // namespace

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
    case JobStatus::Ok: return "ok";
    case JobStatus::Failed: return "failed";
    case JobStatus::Error: return "error";
    case JobStatus::Timeout: return "timeout";
    }
    return "?";
}

std::optional<JobStatus>
jobStatusFromName(const std::string &name)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Error, JobStatus::Timeout})
        if (name == jobStatusName(s))
            return s;
    return std::nullopt;
}

std::string
jobDigest(const SimJob &job)
{
    Fnv1a h;
    hashConfig(h, job.config);
    hashProgram(h, job.program);
    h.pod(job.coRunnerEntries.size());
    for (std::uint64_t entry : job.coRunnerEntries)
        h.pod(entry);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h.value()));
    return buf;
}

double
retryDelaySeconds(double base_seconds, int attempt,
                  std::uint64_t seed)
{
    double backoff = base_seconds
        * static_cast<double>(1ull << (attempt - 1));
    // splitmix64 of (seed, attempt): cheap, stateless, and good
    // enough to decorrelate jobs that fail at the same attempt.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull
        * static_cast<std::uint64_t>(attempt);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    // Jitter factor in [1.0, 1.5).
    double frac = static_cast<double>(z >> 11)
        / static_cast<double>(1ull << 53);
    return backoff * (1.0 + 0.5 * frac);
}

Engine::Engine(int num_threads)
    : Engine(EngineConfig{.numThreads = num_threads,
                          .maxAttempts = 1})
{
}

Engine::Engine(const EngineConfig &config) : config_(config)
{
    if (config_.numThreads < 0)
        fatal("Engine: numThreads must be >= 0 (got %d); 0 selects "
              "the hardware concurrency", config_.numThreads);
    if (config_.numThreads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        config_.numThreads = hw ? static_cast<int>(hw) : 1;
    }
    if (config_.maxAttempts < 1)
        fatal("Engine: maxAttempts must be >= 1 (got %d); the first "
              "execution is attempt 1", config_.maxAttempts);
    if (config_.retryBackoffSeconds < 0)
        fatal("Engine: retryBackoffSeconds must be >= 0 (got %g)",
              config_.retryBackoffSeconds);
    if (config_.jobDeadlineSeconds < 0)
        fatal("Engine: jobDeadlineSeconds must be >= 0 (got %g); 0 "
              "disables the per-job deadline",
              config_.jobDeadlineSeconds);
}

void
Engine::setExecuteOverrideForTest(
    std::function<SimResult(const SimJob &, int attempt)> fn)
{
    executeOverride_ = [fn = std::move(fn)](const SimJob &job,
                                            int attempt, bool *) {
        return fn(job, attempt);
    };
}

void
Engine::setExecuteOverrideForTest(
    std::function<SimResult(const SimJob &, int attempt,
                            bool *cancelled)> fn)
{
    executeOverride_ = std::move(fn);
}

std::vector<JobResult>
Engine::run(const std::vector<SimJob> &jobs)
{
    submitted_ += jobs.size();

    // Phase 1 — fingerprint every job across the pool. jobDigest
    // hashes the whole program image, so on a warm sweep (everything
    // cached) digesting used to dominate the main thread; each digest
    // is a pure function of its own job, so the fan-out is trivially
    // deterministic.
    std::vector<std::string> digests(jobs.size());
    {
        std::atomic<std::size_t> nextDigest{0};
        auto digestWorker = [&]() {
            for (;;) {
                std::size_t i = nextDigest.fetch_add(1);
                if (i >= jobs.size())
                    return;
                digests[i] = jobDigest(jobs[i]);
            }
        };
        std::size_t pool = std::min<std::size_t>(
            static_cast<std::size_t>(config_.numThreads),
            jobs.size());
        if (pool <= 1) {
            digestWorker();
        } else {
            std::vector<std::thread> threads;
            threads.reserve(pool);
            for (std::size_t t = 0; t < pool; ++t)
                threads.emplace_back(digestWorker);
            for (std::thread &t : threads)
                t.join();
        }
    }

    // Deduplicate: the first job with a given digest becomes the
    // representative; later identical jobs share its execution.
    std::vector<std::size_t> representative(jobs.size());
    std::vector<std::size_t> unique;
    std::map<std::string, std::size_t> byDigest;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto [it, inserted] = byDigest.emplace(digests[i], i);
        representative[i] = it->second;
        if (inserted)
            unique.push_back(i);
    }

    // Phase 2 — run the unique jobs on the pool. The warm-start
    // lookup happens inside the workers (the store's read side is a
    // shared lock), so a mostly-cached sweep scales with --jobs
    // instead of serializing every digest probe on the main thread.
    // Each simulation is single-threaded and self-contained, so
    // scheduling order cannot affect any SimResult — only wall-clock.
    // Failures are isolated: a thrown attempt is retried up to
    // maxAttempts times with jittered exponential backoff, then
    // recorded as a structured Error; a deadline cancellation becomes
    // a Timeout (retried only with retryTimeouts). Nothing a job does
    // aborts the rest of the batch.
    ResultStore *store =
        config_.store != nullptr && config_.store->readable()
            ? config_.store : nullptr;
    std::vector<JobResult> executedResults(jobs.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> retried{0};
    std::atomic<std::uint64_t> warmHits{0};
    std::atomic<std::uint64_t> executed{0};

    auto attemptOnce = [&](const SimJob &job, int attempt,
                           bool *cancelled) {
        if (executeOverride_)
            return executeOverride_(job, attempt, cancelled);
        return simulateOnce(job, config_.jobDeadlineSeconds,
                            cancelled);
    };

    auto worker = [&]() {
        for (;;) {
            std::size_t u = next.fetch_add(1);
            if (u >= unique.size())
                return;
            std::size_t idx = unique[u];
            JobResult &jr = executedResults[idx];
            // Warm start: a digest already in the persistent store
            // skips execution entirely, inheriting the original
            // run's result, wall time and attempt count — this is
            // both the cross-binary dedup and the checkpoint/resume
            // path.
            if (store != nullptr) {
                if (std::optional<ResultStore::Record> rec =
                        store->lookup(digests[idx])) {
                    jr.result = rec->result;
                    jr.status = rec->status;
                    jr.attempts = rec->attempts;
                    jr.wallSeconds = rec->wallSeconds;
                    jr.cached = true;
                    warmHits.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
            }
            executed.fetch_add(1, std::memory_order_relaxed);
            std::uint64_t jitterSeed = 0;
            for (char ch : digests[idx])
                jitterSeed = (jitterSeed
                              ^ static_cast<unsigned char>(ch))
                    * 1099511628211ull;
            auto t0 = std::chrono::steady_clock::now();
            for (int attempt = 1;; ++attempt) {
                jr.attempts = attempt;
                bool cancelled = false;
                bool retryThis = false;
                try {
                    jr.result = attemptOnce(jobs[idx], attempt,
                                            &cancelled);
                    if (cancelled) {
                        jr.error = {"deadline", strfmt(
                            "wall-clock deadline of %gs exceeded",
                            config_.jobDeadlineSeconds)};
                        if (config_.retryTimeouts
                            && attempt < config_.maxAttempts) {
                            // Opt-in --retry-on=timeout: burn an
                            // attempt and back off like a thrown one.
                            retryThis = true;
                        } else {
                            // Sanitize: the partial counters of a
                            // cancelled run depend on host timing, so
                            // they must not reach the deterministic
                            // results document.
                            jr.status = JobStatus::Timeout;
                            jr.result = SimResult{};
                            jr.result.hitMaxCycles = true;
                            jr.result.haltReason =
                                HaltReason::CycleLimit;
                            jr.result.haltDetail =
                                "cancelled: " + jr.error.message;
                            break;
                        }
                    } else {
                        jr.status = statusOf(jr.result);
                        jr.error = {};
                        break;
                    }
                } catch (const FatalError &e) {
                    jr.error = {"FatalError", e.what()};
                } catch (const PanicError &e) {
                    jr.error = {"PanicError", e.what()};
                } catch (const std::exception &e) {
                    jr.error = {"exception", e.what()};
                } catch (...) {
                    jr.error = {"unknown", "non-std exception"};
                }
                if (!retryThis && attempt >= config_.maxAttempts) {
                    jr.status = JobStatus::Error;
                    jr.result = SimResult{};
                    jr.result.hitMaxCycles = true;
                    jr.result.haltReason = HaltReason::CycleLimit;
                    jr.result.haltDetail =
                        "not simulated: " + jr.error.message;
                    break;
                }
                retried.fetch_add(1, std::memory_order_relaxed);
                double backoff = retryDelaySeconds(
                    config_.retryBackoffSeconds, attempt, jitterSeed);
                if (backoff > 0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(backoff));
            }
            jr.wallSeconds = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0).count();
            // Persist as soon as the job completes (not at batch
            // end), so a killed sweep resumes from every finished
            // simulation. Only deterministic outcomes are cached.
            if (store != nullptr && store->writable()
                && (jr.status == JobStatus::Ok
                    || jr.status == JobStatus::Failed))
                store->put({digests[idx], jr.status, jr.attempts,
                            jr.wallSeconds, jr.result});
        }
    };

    std::size_t pool = std::min<std::size_t>(
        static_cast<std::size_t>(config_.numThreads), unique.size());
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }
    retries_ += retried.load();
    cacheHits_ += warmHits.load();
    executed_ += executed.load();

    // Expand to submission order; duplicates copy the representative
    // but keep their own labels.
    std::vector<JobResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &rep = executedResults[representative[i]];
        results[i] = rep;
        results[i].workload = jobs[i].workload;
        results[i].variant = jobs[i].variant;
        results[i].accel = cpu::accelKindName(jobs[i].config.accel);
        results[i].digest = digests[i];
        results[i].deduplicated = representative[i] != i;
    }
    return results;
}

// Field lists shared by the JSON writer and reader so the two can
// never drift apart (the round-trip test locks the schema).
#define DTTSIM_SIMRESULT_U64_FIELDS(X) \
    X(cycles) X(mainCommitted) X(dttCommitted) X(totalCommitted) \
    X(dttSpawns) X(tstores) X(silentSuppressed) X(fired) \
    X(coalesced) X(dropped) X(tqMaxOccupancy) X(twaitStallCycles) \
    X(tstoreCommitStalls) X(l1dAccesses) X(l1dMisses) \
    X(l1iAccesses) X(l1iMisses) X(l2Accesses) X(l2Misses) \
    X(memAccesses) X(activityUnits) X(condBranches) \
    X(condMispredicts) X(reusedInsts) X(archDigest) \
    X(faultsInjected) X(faultFingerprint)

#define DTTSIM_SIMRESULT_BOOL_FIELDS(X) \
    X(halted) X(hitMaxCycles)

json::Value
resultToJson(const SimResult &r)
{
    json::Value v = json::Value::object();
#define DTTSIM_PUT_U64(name) \
    v.set(#name, json::Value(static_cast<std::uint64_t>(r.name)));
#define DTTSIM_PUT_BOOL(name) v.set(#name, json::Value(r.name));
    DTTSIM_SIMRESULT_U64_FIELDS(DTTSIM_PUT_U64)
    v.set("ipc", json::Value(r.ipc));
    DTTSIM_SIMRESULT_BOOL_FIELDS(DTTSIM_PUT_BOOL)
    v.set("haltReason",
          json::Value(std::string(haltReasonName(r.haltReason))));
    v.set("haltDetail", json::Value(r.haltDetail));
#undef DTTSIM_PUT_U64
#undef DTTSIM_PUT_BOOL
    return v;
}

std::optional<SimResult>
tryResultFromJson(const json::Value &v, std::string *error)
{
    auto fail = [&](const std::string &what)
        -> std::optional<SimResult> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    if (!v.isObject())
        return fail("result is not an object");

    SimResult r;
#define DTTSIM_GET_U64(name) \
    { \
        const json::Value *f = v.find(#name); \
        if (f == nullptr || !f->isUint()) \
            return fail("result." #name \
                        " missing or not an unsigned integer"); \
        r.name = f->asUint(); \
    }
#define DTTSIM_GET_BOOL(name) \
    { \
        const json::Value *f = v.find(#name); \
        if (f == nullptr || !f->isBool()) \
            return fail("result." #name " missing or not a bool"); \
        r.name = f->asBool(); \
    }
    DTTSIM_SIMRESULT_U64_FIELDS(DTTSIM_GET_U64)
    DTTSIM_SIMRESULT_BOOL_FIELDS(DTTSIM_GET_BOOL)
#undef DTTSIM_GET_U64
#undef DTTSIM_GET_BOOL

    const json::Value *ipc = v.find("ipc");
    if (ipc == nullptr || !ipc->isNumber())
        return fail("result.ipc missing or not a number");
    r.ipc = ipc->asDouble();

    const json::Value *reason = v.find("haltReason");
    if (reason == nullptr || !reason->isString())
        return fail("result.haltReason missing or not a string");
    bool known = false;
    for (HaltReason hr : {HaltReason::Halted, HaltReason::CycleLimit,
                          HaltReason::Deadlock, HaltReason::Diverged}) {
        if (reason->asString() == haltReasonName(hr)) {
            r.haltReason = hr;
            known = true;
            break;
        }
    }
    if (!known)
        return fail("unknown haltReason \"" + reason->asString()
                    + "\" in result JSON");

    const json::Value *detail = v.find("haltDetail");
    if (detail == nullptr || !detail->isString())
        return fail("result.haltDetail missing or not a string");
    r.haltDetail = detail->asString();
    return r;
}

SimResult
resultFromJson(const json::Value &v)
{
    // The strict path (check_results_json): same decoding, but a
    // malformed record is a hard validation failure.
    std::string error;
    std::optional<SimResult> r = tryResultFromJson(v, &error);
    if (!r)
        fatal("%s", error.c_str());
    return *r;
}

json::Value
jobResultToJson(const JobResult &jr)
{
    // Schema v3. Deliberately free of wall-clock measurements: the
    // emitted document is a pure function of the submitted jobs, so
    // a resumed sweep's merged output is byte-identical to an
    // uninterrupted run's (timings live in the result cache and the
    // stderr summary instead).
    json::Value v = json::Value::object();
    v.set("workload", json::Value(jr.workload));
    v.set("variant", json::Value(jr.variant));
    v.set("accel", json::Value(jr.accel));
    v.set("config_digest", json::Value(jr.digest));
    v.set("deduplicated", json::Value(jr.deduplicated));
    v.set("status",
          json::Value(std::string(jobStatusName(jr.status))));
    v.set("attempts",
          json::Value(static_cast<std::uint64_t>(jr.attempts)));
    if (jr.status == JobStatus::Error
        || jr.status == JobStatus::Timeout) {
        json::Value e = json::Value::object();
        e.set("kind", json::Value(jr.error.kind));
        e.set("message", json::Value(jr.error.message));
        v.set("error", std::move(e));
    }
    v.set("result", resultToJson(jr.result));
    return v;
}

} // namespace dttsim::sim
