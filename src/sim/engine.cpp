#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <type_traits>

#include "common/log.h"
#include "net/client.h"
#include "sim/resultstore.h"

namespace dttsim::sim {

namespace {

/** FNV-1a 64-bit, fed field-by-field (never raw structs: padding
 *  bytes are indeterminate and would break dedup). */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 1099511628211ull;
        }
    }

    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        bytes(&v, sizeof v);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ull;
};

void
hashConfig(Fnv1a &h, const SimConfig &cfg)
{
    const cpu::CoreConfig &c = cfg.core;
    h.pod(c.numContexts);
    h.pod(c.fetchWidth);
    h.pod(c.fetchThreads);
    h.pod(c.fetchBlockInsts);
    h.pod(c.frontendDepth);
    h.pod(c.frontendQSize);
    h.pod(c.dispatchWidth);
    h.pod(c.issueWidth);
    h.pod(c.commitWidth);
    h.pod(c.robSize);
    h.pod(c.iqSize);
    h.pod(c.lqSize);
    h.pod(c.sqSize);
    h.pod(c.queueReservePerCtx);
    h.pod(c.intAlu);
    h.pod(c.intMulDiv);
    h.pod(c.fpAlu);
    h.pod(c.fpMulDiv);
    h.pod(c.memPorts);
    h.pod(c.mispredictPenalty);
    h.pod(c.watchdogWindow);
    h.pod(c.reuseBuffer);
    h.pod(c.reuseEntriesPerPc);
    h.pod(c.bpred.historyBits);
    h.pod(c.bpred.btbEntries);
    h.pod(c.bpred.rasEntries);
    h.pod(c.bpred.numContexts);

    const mem::HierarchyConfig &m = cfg.mem;
    for (const mem::CacheConfig *cc : {&m.l1i, &m.l1d, &m.l2}) {
        h.pod(cc->sizeBytes);
        h.pod(cc->assoc);
        h.pod(cc->lineBytes);
        h.pod(cc->hitLatency);
    }
    h.pod(m.memLatency);
    h.pod(m.modelFills);
    h.pod(m.mshrs);
    h.pod(m.nextLinePrefetch);

    const dtt::DttConfig &d = cfg.dtt;
    h.pod(d.maxTriggers);
    h.pod(d.threadQueueSize);
    h.pod(d.fullPolicy);
    h.pod(d.stallBound);
    h.pod(d.silentSuppression);
    h.pod(d.coalesce);
    h.pod(d.serializePerTrigger);
    h.pod(d.spawnLatency);

    const sp::SpConfig &s = cfg.sp;
    h.pod(s.maxTriggers);
    h.pod(s.tokenQueueSize);
    h.pod(s.skipWhenBusy);
    h.pod(s.serializePerTrigger);
    h.pod(s.spawnLatency);

    h.pod(cfg.reuse.entriesPerPc);

    h.pod(cfg.accel);
    h.pod(cfg.maxCycles);

    h.pod(cfg.fault.seed);
    h.pod(cfg.fault.rate);
    h.pod(cfg.fault.siteMask);

    h.pod(cfg.shadowProfile);
}

void
hashProgram(Fnv1a &h, const isa::Program &prog)
{
    h.pod(prog.entry());
    h.pod(prog.size());
    for (const isa::Inst &inst : prog.text()) {
        h.pod(inst.op);
        h.pod(inst.rd);
        h.pod(inst.rs1);
        h.pod(inst.rs2);
        h.pod(inst.trig);
        h.pod(inst.imm);
        h.pod(inst.fimm);
    }
    for (const isa::DataChunk &chunk : prog.dataChunks()) {
        h.pod(chunk.base);
        h.pod(chunk.bytes.size());
        h.bytes(chunk.bytes.data(), chunk.bytes.size());
    }
    h.pod(prog.dataEnd());
    h.pod(prog.numTriggers());
}

/** One simulation attempt; may throw, may be deadline-cancelled. */
SimResult
simulateOnce(const SimJob &job, double deadline_seconds,
             bool *cancelled)
{
    Simulator simulator(job.config, job.program);
    for (std::size_t i = 0; i < job.coRunnerEntries.size(); ++i)
        simulator.core().startCoRunner(static_cast<CtxId>(i + 1),
                                       job.coRunnerEntries[i]);
    return simulator.run(deadline_seconds, cancelled);
}

/** Classify a completed (non-thrown, non-cancelled) simulation. */
JobStatus
statusOf(const SimResult &r)
{
    return r.halted && !r.hitMaxCycles ? JobStatus::Ok
                                       : JobStatus::Failed;
}

} // namespace

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
    case JobStatus::Ok: return "ok";
    case JobStatus::Failed: return "failed";
    case JobStatus::Error: return "error";
    case JobStatus::Timeout: return "timeout";
    }
    return "?";
}

std::optional<JobStatus>
jobStatusFromName(const std::string &name)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Error, JobStatus::Timeout})
        if (name == jobStatusName(s))
            return s;
    return std::nullopt;
}

std::string
jobDigest(const SimJob &job)
{
    Fnv1a h;
    hashConfig(h, job.config);
    hashProgram(h, job.program);
    h.pod(job.coRunnerEntries.size());
    for (std::uint64_t entry : job.coRunnerEntries)
        h.pod(entry);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h.value()));
    return buf;
}

std::uint64_t
recordCrc(const std::string &digest, JobStatus status, int attempts,
          const SimResult &result)
{
    // Canonical payload: every field that determines what a record
    // *means*, in a fixed NUL-separated text form. The result half
    // goes through the compact JSON codec so the checksum covers
    // exactly what travels and is stored.
    Fnv1a h;
    h.bytes(digest.data(), digest.size());
    h.pod('\0');
    const char *status_name = jobStatusName(status);
    h.bytes(status_name, std::string::traits_type::length(status_name));
    h.pod('\0');
    const std::string attempts_text = std::to_string(attempts);
    h.bytes(attempts_text.data(), attempts_text.size());
    h.pod('\0');
    const std::string payload = resultToJson(result).dump();
    h.bytes(payload.data(), payload.size());
    return h.value();
}

double
retryDelaySeconds(double base_seconds, int attempt,
                  std::uint64_t seed)
{
    double backoff = base_seconds
        * static_cast<double>(1ull << (attempt - 1));
    // splitmix64 of (seed, attempt): cheap, stateless, and good
    // enough to decorrelate jobs that fail at the same attempt.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull
        * static_cast<std::uint64_t>(attempt);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    // Jitter factor in [1.0, 1.5).
    double frac = static_cast<double>(z >> 11)
        / static_cast<double>(1ull << 53);
    return backoff * (1.0 + 0.5 * frac);
}

Engine::Engine(int num_threads)
    : Engine([num_threads] {
          EngineConfig c;
          c.numThreads = num_threads;
          c.maxAttempts = 1;
          return c;
      }())
{
}

Engine::Engine(const EngineConfig &config) : config_(config)
{
    if (config_.numThreads < 0)
        fatal("Engine: numThreads must be >= 0 (got %d); 0 selects "
              "the hardware concurrency", config_.numThreads);
    if (config_.numThreads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        config_.numThreads = hw ? static_cast<int>(hw) : 1;
    }
    if (config_.maxAttempts < 1)
        fatal("Engine: maxAttempts must be >= 1 (got %d); the first "
              "execution is attempt 1", config_.maxAttempts);
    if (config_.retryBackoffSeconds < 0)
        fatal("Engine: retryBackoffSeconds must be >= 0 (got %g)",
              config_.retryBackoffSeconds);
    if (config_.jobDeadlineSeconds < 0)
        fatal("Engine: jobDeadlineSeconds must be >= 0 (got %g); 0 "
              "disables the per-job deadline",
              config_.jobDeadlineSeconds);
    if (config_.stragglerSeconds < 0)
        fatal("Engine: stragglerSeconds must be >= 0 (got %g); 0 "
              "disables hedged dispatch", config_.stragglerSeconds);
    if (config_.quarantineAfter < 1)
        fatal("Engine: quarantineAfter must be >= 1 (got %d)",
              config_.quarantineAfter);
}

void
Engine::workerFailed(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    WorkerHealth &h = health_[spec];
    ++h.consecutiveFailures;
    if (!h.quarantined
        && h.consecutiveFailures >= config_.quarantineAfter) {
        h.quarantined = true;
        ++workersQuarantined_;
        warn("engine: worker %s quarantined after %d consecutive "
             "failure(s); will re-probe next batch",
             spec.c_str(), h.consecutiveFailures);
    }
}

void
Engine::workerHealthy(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    WorkerHealth &h = health_[spec];
    h.consecutiveFailures = 0;
    if (h.quarantined) {
        h.quarantined = false;
        inform("engine: worker %s passed probation; quarantine "
               "lifted", spec.c_str());
    }
}

bool
Engine::workerQuarantined(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(healthMutex_);
    auto it = health_.find(spec);
    return it != health_.end() && it->second.quarantined;
}

void
Engine::setExecuteOverrideForTest(
    std::function<SimResult(const SimJob &, int attempt)> fn)
{
    executeOverride_ = [fn = std::move(fn)](const SimJob &job,
                                            int attempt, bool *) {
        return fn(job, attempt);
    };
}

void
Engine::setExecuteOverrideForTest(
    std::function<SimResult(const SimJob &, int attempt,
                            bool *cancelled)> fn)
{
    executeOverride_ = std::move(fn);
}

std::vector<JobResult>
Engine::run(const std::vector<SimJob> &jobs)
{
    submitted_ += jobs.size();

    // Phase 1 — fingerprint every job across the pool. jobDigest
    // hashes the whole program image, so on a warm sweep (everything
    // cached) digesting used to dominate the main thread; each digest
    // is a pure function of its own job, so the fan-out is trivially
    // deterministic.
    std::vector<std::string> digests(jobs.size());
    {
        std::atomic<std::size_t> nextDigest{0};
        auto digestWorker = [&]() {
            for (;;) {
                std::size_t i = nextDigest.fetch_add(1);
                if (i >= jobs.size())
                    return;
                digests[i] = jobDigest(jobs[i]);
            }
        };
        std::size_t pool = std::min<std::size_t>(
            static_cast<std::size_t>(config_.numThreads),
            jobs.size());
        if (pool <= 1) {
            digestWorker();
        } else {
            std::vector<std::thread> threads;
            threads.reserve(pool);
            for (std::size_t t = 0; t < pool; ++t)
                threads.emplace_back(digestWorker);
            for (std::thread &t : threads)
                t.join();
        }
    }

    // Deduplicate: the first job with a given digest becomes the
    // representative; later identical jobs share its execution.
    std::vector<std::size_t> representative(jobs.size());
    std::vector<std::size_t> unique;
    std::map<std::string, std::size_t> byDigest;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto [it, inserted] = byDigest.emplace(digests[i], i);
        representative[i] = it->second;
        if (inserted)
            unique.push_back(i);
    }

    // Phase 2 — drain the unique jobs through a shared work queue.
    // The warm-start lookup happens inside the consumers (the store's
    // read side is a shared lock), so a mostly-cached sweep scales
    // with --jobs instead of serializing every digest probe on the
    // main thread. Each simulation is single-threaded and self-
    // contained, so scheduling order cannot affect any SimResult —
    // only wall-clock. Failures are isolated: a thrown attempt is
    // retried up to maxAttempts times with jittered exponential
    // backoff, then recorded as a structured Error; a deadline
    // cancellation becomes a Timeout (retried only with
    // retryTimeouts). Nothing a job does aborts the rest of the
    // batch.
    //
    // The queue (rather than an atomic cursor) exists for the fabric:
    // remote dispatcher threads pull from the same queue as the local
    // pool, and a worker that dies mid-job pushes its in-flight jobs
    // back for anyone else to finish — graceful degradation with no
    // job lost and no record duplicated (put() is digest-idempotent).
    ResultStore *store =
        config_.store != nullptr && config_.store->readable()
            ? config_.store : nullptr;
    const bool claims = store != nullptr && store->writable()
        && config_.claimInFlight;
    if (claims)
        store->setClaimDeadline(config_.claimDeadlineSeconds);

    std::vector<JobResult> executedResults(jobs.size());
    std::atomic<std::uint64_t> retried{0};
    std::atomic<std::uint64_t> warmHits{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> remote{0};
    std::atomic<std::uint64_t> lostWorkers{0};
    std::atomic<std::uint64_t> claimWaited{0};
    std::atomic<std::uint64_t> hedged{0};
    std::atomic<std::uint64_t> dupSuppressed{0};

    // First-wins commit gate. With hedged dispatch one unique job
    // can finish twice (the remote original and its local hedge);
    // whoever flips the flag first owns executedResults[idx] and the
    // finishOne() bookkeeping, the loser is suppressed. Identical
    // digest => identical payload, so which copy wins cannot change
    // the merged output.
    std::vector<std::atomic<bool>> resolved(unique.size());

    std::mutex qm;
    std::condition_variable qcv;
    std::deque<std::size_t> queue(unique.size());
    for (std::size_t u = 0; u < unique.size(); ++u)
        queue[u] = u;
    std::size_t unresolved = unique.size();

    auto finishOne = [&]() {
        std::lock_guard<std::mutex> lock(qm);
        --unresolved;
        qcv.notify_all();
    };
    auto requeue = [&](const std::vector<std::size_t> &us) {
        std::lock_guard<std::mutex> lock(qm);
        for (std::size_t u : us)
            queue.push_back(u);
        qcv.notify_all();
    };
    auto tryPop = [&](std::size_t *u) {
        std::lock_guard<std::mutex> lock(qm);
        if (queue.empty())
            return false;
        *u = queue.front();
        queue.pop_front();
        return true;
    };
    // Blocks until an item is available or every job is resolved
    // (an empty queue alone is not the end: a dying worker may still
    // push its in-flight jobs back).
    auto popBlocking = [&](std::size_t *u) {
        std::unique_lock<std::mutex> lock(qm);
        qcv.wait(lock,
                 [&] { return !queue.empty() || unresolved == 0; });
        if (queue.empty())
            return false;
        *u = queue.front();
        queue.pop_front();
        return true;
    };

    auto adopt = [&](JobResult &jr, const ResultStore::Record &rec) {
        jr.result = rec.result;
        jr.status = rec.status;
        jr.attempts = rec.attempts;
        jr.wallSeconds = rec.wallSeconds;
        jr.error = {};
        jr.cached = true;
        warmHits.fetch_add(1, std::memory_order_relaxed);
    };

    // Decide how one popped job gets its result: a warm start from
    // the store, adoption of another process's in-flight execution
    // (claim wait), or execution here (with the claim held when the
    // store supports claims). Returns true when jr is already final.
    auto resolveToCached = [&](std::size_t idx, JobResult &jr,
                               bool *claimed) {
        *claimed = false;
        if (store != nullptr) {
            if (std::optional<ResultStore::Record> rec =
                    store->lookup(digests[idx])) {
                adopt(jr, *rec);
                return true;
            }
        }
        if (!claims)
            return false;
        bool waited = false;
        for (;;) {
            ResultStore::ClaimOutcome outcome =
                store->tryClaim(digests[idx]);
            if (outcome == ResultStore::ClaimOutcome::Unsupported)
                break;
            if (outcome == ResultStore::ClaimOutcome::Acquired) {
                // Won-after-finish race: the previous holder may
                // have published its record and released between our
                // lookup and our claim — never re-execute a digest
                // that is already durable.
                store->refresh();
                if (std::optional<ResultStore::Record> rec =
                        store->lookup(digests[idx])) {
                    store->releaseClaim(digests[idx]);
                    adopt(jr, *rec);
                    if (waited)
                        claimWaited.fetch_add(
                            1, std::memory_order_relaxed);
                    return true;
                }
                *claimed = true;
                break;
            }
            // Busy: a live process is executing this digest right
            // now. Poll for its record instead of duplicating the
            // simulation; a holder that dies is taken over by
            // tryClaim (pid probe / deadline) on a later iteration.
            waited = true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            store->refresh();
            if (std::optional<ResultStore::Record> rec =
                    store->lookup(digests[idx])) {
                adopt(jr, *rec);
                claimWaited.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        if (waited)
            claimWaited.fetch_add(1, std::memory_order_relaxed);
        return false;
    };

    auto attemptOnce = [&](const SimJob &job, int attempt,
                           bool *cancelled) {
        if (executeOverride_)
            return executeOverride_(job, attempt, cancelled);
        return simulateOnce(job, config_.jobDeadlineSeconds,
                            cancelled);
    };

    auto executeLocal = [&](std::size_t idx, JobResult &jr) {
        executed.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t jitterSeed = 0;
        for (char ch : digests[idx])
            jitterSeed = (jitterSeed
                          ^ static_cast<unsigned char>(ch))
                * 1099511628211ull;
        auto t0 = std::chrono::steady_clock::now();
        for (int attempt = 1;; ++attempt) {
            jr.attempts = attempt;
            bool cancelled = false;
            bool retryThis = false;
            try {
                jr.result = attemptOnce(jobs[idx], attempt,
                                        &cancelled);
                if (cancelled) {
                    jr.error = {"deadline", strfmt(
                        "wall-clock deadline of %gs exceeded",
                        config_.jobDeadlineSeconds)};
                    if (config_.retryTimeouts
                        && attempt < config_.maxAttempts) {
                        // Opt-in --retry-on=timeout: burn an
                        // attempt and back off like a thrown one.
                        retryThis = true;
                    } else {
                        // Sanitize: the partial counters of a
                        // cancelled run depend on host timing, so
                        // they must not reach the deterministic
                        // results document.
                        jr.status = JobStatus::Timeout;
                        jr.result = SimResult{};
                        jr.result.hitMaxCycles = true;
                        jr.result.haltReason =
                            HaltReason::CycleLimit;
                        jr.result.haltDetail =
                            "cancelled: " + jr.error.message;
                        break;
                    }
                } else {
                    jr.status = statusOf(jr.result);
                    jr.error = {};
                    break;
                }
            } catch (const FatalError &e) {
                jr.error = {"FatalError", e.what()};
            } catch (const PanicError &e) {
                jr.error = {"PanicError", e.what()};
            } catch (const std::exception &e) {
                jr.error = {"exception", e.what()};
            } catch (...) {
                jr.error = {"unknown", "non-std exception"};
            }
            if (!retryThis && attempt >= config_.maxAttempts) {
                jr.status = JobStatus::Error;
                jr.result = SimResult{};
                jr.result.hitMaxCycles = true;
                jr.result.haltReason = HaltReason::CycleLimit;
                jr.result.haltDetail =
                    "not simulated: " + jr.error.message;
                break;
            }
            retried.fetch_add(1, std::memory_order_relaxed);
            double backoff = retryDelaySeconds(
                config_.retryBackoffSeconds, attempt, jitterSeed);
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
        }
        jr.wallSeconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
    };

    // Persist as soon as the job completes (not at batch end), so a
    // killed sweep resumes from every finished simulation. Only
    // deterministic outcomes are cached. put() before releaseClaim:
    // a waiter that sees the claim vanish must find the record.
    auto persist = [&](std::size_t idx, const JobResult &jr,
                       bool claimed) {
        if (store != nullptr && store->writable()
            && (jr.status == JobStatus::Ok
                || jr.status == JobStatus::Failed)) {
            ResultStore::Record rec;
            rec.digest = digests[idx];
            rec.status = jr.status;
            rec.attempts = jr.attempts;
            rec.wallSeconds = jr.wallSeconds;
            rec.result = jr.result;
            store->put(rec);
        }
        if (claimed)
            store->releaseClaim(digests[idx]);
    };

    // Commit one finished unique job exactly once (see the resolved
    // gate above). Cached adoptions never hold a claim, so only a
    // fresh execution persists.
    auto commit = [&](std::size_t u, const JobResult &jr,
                      bool claimed) {
        std::size_t idx = unique[u];
        if (resolved[u].exchange(true)) {
            dupSuppressed.fetch_add(1, std::memory_order_relaxed);
            if (claimed)
                store->releaseClaim(digests[idx]);
            return;
        }
        executedResults[idx] = jr;
        if (!jr.cached)
            persist(idx, jr, claimed);
        finishOne();
    };

    auto localWorker = [&]() {
        std::size_t u;
        while (popBlocking(&u)) {
            // A hedged duplicate whose twin already committed: the
            // winner did the finishOne(), nothing left to do.
            if (resolved[u].load(std::memory_order_acquire))
                continue;
            std::size_t idx = unique[u];
            JobResult jr;
            bool claimed = false;
            if (!resolveToCached(idx, jr, &claimed))
                executeLocal(idx, jr);
            commit(u, jr, claimed);
        }
    };

    // One dispatcher thread per remote worker endpoint: connect with
    // bounded retry/backoff (the hello handshake is the health
    // check), then keep up to workerWindow jobs pipelined. Any
    // failure — unreachable, protocol violation, silence past the
    // request deadline, death mid-job — demotes the worker and
    // requeues its in-flight jobs; the sweep always completes from
    // the local pool alone.
    auto dispatcher = [&](const std::string &spec) {
        std::string err;
        std::optional<net::Endpoint> ep =
            net::parseEndpoint(spec, &err);
        if (!ep) {
            warn("engine: %s", err.c_str());
            lostWorkers.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        Fnv1a seedHash;
        seedHash.bytes(spec.data(), spec.size());
        const std::uint64_t seed = seedHash.value();
        // Circuit breaker: a quarantined endpoint gets exactly one
        // probation connect (the hello handshake is the probe)
        // instead of the full retry budget.
        const bool probation = workerQuarantined(spec);
        const int maxConnect =
            probation ? 1 : std::max(1, config_.workerAttempts);
        std::unique_ptr<net::WorkerClient> client;
        for (int attempt = 1; attempt <= maxConnect; ++attempt) {
            client = net::WorkerClient::connect(*ep, 10.0, &err);
            if (client)
                break;
            workerFailed(spec);
            if (attempt < maxConnect)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(retryDelaySeconds(
                        config_.workerBackoffSeconds, attempt,
                        seed)));
        }
        if (!client) {
            if (probation) {
                warn("engine: quarantined worker %s failed its "
                     "probation probe (%s); skipping it this batch",
                     spec.c_str(), err.c_str());
                return;
            }
            warn("engine: worker %s unreachable after %d attempt(s) "
                 "(%s); continuing without it",
                 spec.c_str(), maxConnect, err.c_str());
            lostWorkers.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        workerHealthy(spec);

        const net::RetryPolicy policy{
            config_.maxAttempts, config_.retryBackoffSeconds,
            config_.retryTimeouts, config_.jobDeadlineSeconds};
        const std::size_t window = static_cast<std::size_t>(
            std::max(1, config_.workerWindow));
        struct InFlight
        {
            std::size_t u;
            bool claimed;
            std::chrono::steady_clock::time_point sentAt;
            /** Re-queued for local execution after exceeding the
             *  straggler threshold; its claim now belongs to the
             *  local twin and it must not be requeued again. */
            bool hedged = false;
        };
        std::map<std::uint64_t, InFlight> inflight;
        std::uint64_t nextId = 1;
        bool lost = false;
        std::string why;
        // Loss detection under the sliced receive below: the worker
        // is lost when it has been *silent* (no reply accepted, no
        // job sent) past workerRequestSeconds, not merely when one
        // recv slice expires.
        auto lastActivity = std::chrono::steady_clock::now();

        auto abandon = [&](std::uint64_t id) {
            // The daemon rejected this job (codec drift, decode
            // failure): release its claim and put it back for the
            // local pool — unless a hedge twin already owns it.
            auto it = inflight.find(id);
            if (it == inflight.end())
                return;
            if (!it->second.hedged) {
                if (it->second.claimed)
                    store->releaseClaim(
                        digests[unique[it->second.u]]);
                requeue({it->second.u});
            }
            inflight.erase(it);
        };

        while (!lost) {
            {
                // Everything resolved (possibly by hedge twins of
                // our own stragglers): the session is done.
                std::lock_guard<std::mutex> lock(qm);
                if (unresolved == 0)
                    break;
            }
            while (inflight.size() < window) {
                std::size_t u;
                if (!tryPop(&u))
                    break;
                if (resolved[u].load(std::memory_order_acquire))
                    continue;
                std::size_t idx = unique[u];
                JobResult jr;
                bool claimed = false;
                if (resolveToCached(idx, jr, &claimed)) {
                    commit(u, jr, claimed);
                    continue;
                }
                std::uint64_t id = nextId++;
                if (!client->sendJob(id, jobs[idx], digests[idx],
                                     policy)) {
                    if (claimed)
                        store->releaseClaim(digests[idx]);
                    requeue({u});
                    lost = true;
                    why = "send failed";
                    break;
                }
                lastActivity = std::chrono::steady_clock::now();
                inflight.emplace(id, InFlight{u, claimed,
                                              lastActivity, false});
            }
            if (lost)
                break;
            if (inflight.empty()) {
                std::unique_lock<std::mutex> lock(qm);
                if (unresolved == 0)
                    break;
                if (queue.empty())
                    qcv.wait_for(lock,
                                 std::chrono::milliseconds(50));
                continue;
            }
            // Sliced receive: wake periodically to tell a genuinely
            // dead worker (silent past workerRequestSeconds) from a
            // straggler (reply overdue past stragglerSeconds, which
            // hedges the job locally instead of abandoning the
            // session).
            const double slice = config_.stragglerSeconds > 0.0
                ? std::clamp(config_.stragglerSeconds / 4.0, 0.01,
                             0.25)
                : std::min(0.25, config_.workerRequestSeconds);
            net::WireResult wr;
            bool got = false;
            while (!got) {
                err.clear();
                if (client->recvResult(&wr, slice, &err)) {
                    got = true;
                    break;
                }
                if (err != net::kReadTimedOut) {
                    lost = true;
                    why = err;
                    break;
                }
                auto now = std::chrono::steady_clock::now();
                if (std::chrono::duration<double>(now - lastActivity)
                        .count() > config_.workerRequestSeconds) {
                    lost = true;
                    why = net::kReadTimedOut;
                    break;
                }
                {
                    std::lock_guard<std::mutex> lock(qm);
                    if (unresolved == 0)
                        break;  // hedge twins finished everything
                }
                if (config_.stragglerSeconds <= 0.0)
                    continue;
                for (auto &[id, item] : inflight) {
                    if (item.hedged
                        || resolved[item.u].load(
                               std::memory_order_acquire))
                        continue;
                    if (std::chrono::duration<double>(
                            now - item.sentAt).count()
                        < config_.stragglerSeconds)
                        continue;
                    item.hedged = true;
                    hedged.fetch_add(1, std::memory_order_relaxed);
                    warn("engine: worker %s straggling on job %s "
                         "(> %gs); hedging it locally",
                         spec.c_str(),
                         digests[unique[item.u]].c_str(),
                         config_.stragglerSeconds);
                    requeue({item.u});
                }
            }
            if (lost)
                break;
            if (!got)
                break;  // unresolved hit 0 mid-wait
            lastActivity = std::chrono::steady_clock::now();
            auto it = inflight.find(wr.id);
            if (it == inflight.end()) {
                lost = true;
                why = "reply for unknown job id";
                break;
            }
            std::size_t idx = unique[it->second.u];
            if (!wr.ok || wr.digest != digests[idx]) {
                warn("engine: worker %s rejected job %s (%s); "
                     "executing locally",
                     spec.c_str(), digests[idx].c_str(),
                     wr.ok ? "digest mismatch"
                           : wr.message.c_str());
                abandon(wr.id);
                continue;
            }
            workerHealthy(spec);
            JobResult jr;
            jr.status = wr.status;
            jr.attempts = wr.attempts;
            jr.wallSeconds = wr.wallSeconds;
            jr.error = wr.error;
            jr.result = wr.result;
            jr.worker = spec;
            executed.fetch_add(1, std::memory_order_relaxed);
            remote.fetch_add(1, std::memory_order_relaxed);
            if (wr.attempts > 1)
                retried.fetch_add(
                    static_cast<std::uint64_t>(wr.attempts - 1),
                    std::memory_order_relaxed);
            std::size_t u = it->second.u;
            bool claimed = it->second.claimed;
            inflight.erase(it);
            commit(u, jr, claimed);
        }
        if (lost) {
            workerFailed(spec);
            lostWorkers.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::size_t> back;
            back.reserve(inflight.size());
            for (const auto &[id, item] : inflight) {
                // A hedged job's local twin is already queued (or
                // running) and owns the claim; requeuing it again
                // would only duplicate work.
                if (item.hedged)
                    continue;
                if (item.claimed)
                    store->releaseClaim(digests[unique[item.u]]);
                back.push_back(item.u);
            }
            warn("engine: worker %s lost mid-sweep (%s); "
                 "re-dispatching %zu in-flight job(s)",
                 spec.c_str(), why.c_str(), back.size());
            requeue(back);
        }
    };

    if (!unique.empty()) {
        std::size_t pool = std::min<std::size_t>(
            static_cast<std::size_t>(config_.numThreads),
            unique.size());
        if (config_.workers.empty() && pool <= 1) {
            localWorker();
        } else {
            std::vector<std::thread> threads;
            threads.reserve(pool + config_.workers.size());
            for (std::size_t t = 0; t < std::max<std::size_t>(
                     pool, 1); ++t)
                threads.emplace_back(localWorker);
            for (const std::string &spec : config_.workers)
                threads.emplace_back(dispatcher, spec);
            for (std::thread &t : threads)
                t.join();
        }
    }
    retries_ += retried.load();
    cacheHits_ += warmHits.load();
    executed_ += executed.load();
    remoteExecuted_ += remote.load();
    workersLost_ += lostWorkers.load();
    claimWaits_ += claimWaited.load();
    hedgedJobs_ += hedged.load();
    duplicatesSuppressed_ += dupSuppressed.load();

    // Expand to submission order; duplicates copy the representative
    // but keep their own labels.
    std::vector<JobResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &rep = executedResults[representative[i]];
        results[i] = rep;
        results[i].workload = jobs[i].workload;
        results[i].variant = jobs[i].variant;
        results[i].accel = cpu::accelKindName(jobs[i].config.accel);
        results[i].digest = digests[i];
        results[i].deduplicated = representative[i] != i;
    }
    return results;
}

// Field lists shared by the JSON writer and reader so the two can
// never drift apart (the round-trip test locks the schema).
#define DTTSIM_SIMRESULT_U64_FIELDS(X) \
    X(cycles) X(mainCommitted) X(dttCommitted) X(totalCommitted) \
    X(dttSpawns) X(tstores) X(silentSuppressed) X(fired) \
    X(coalesced) X(dropped) X(tqMaxOccupancy) X(twaitStallCycles) \
    X(tstoreCommitStalls) X(l1dAccesses) X(l1dMisses) \
    X(l1iAccesses) X(l1iMisses) X(l2Accesses) X(l2Misses) \
    X(memAccesses) X(activityUnits) X(condBranches) \
    X(condMispredicts) X(reusedInsts) X(archDigest) \
    X(faultsInjected) X(faultFingerprint)

#define DTTSIM_SIMRESULT_BOOL_FIELDS(X) \
    X(halted) X(hitMaxCycles)

json::Value
resultToJson(const SimResult &r)
{
    json::Value v = json::Value::object();
#define DTTSIM_PUT_U64(name) \
    v.set(#name, json::Value(static_cast<std::uint64_t>(r.name)));
#define DTTSIM_PUT_BOOL(name) v.set(#name, json::Value(r.name));
    DTTSIM_SIMRESULT_U64_FIELDS(DTTSIM_PUT_U64)
    v.set("ipc", json::Value(r.ipc));
    DTTSIM_SIMRESULT_BOOL_FIELDS(DTTSIM_PUT_BOOL)
    v.set("haltReason",
          json::Value(std::string(haltReasonName(r.haltReason))));
    v.set("haltDetail", json::Value(r.haltDetail));
#undef DTTSIM_PUT_U64
#undef DTTSIM_PUT_BOOL
    return v;
}

std::optional<SimResult>
tryResultFromJson(const json::Value &v, std::string *error)
{
    auto fail = [&](const std::string &what)
        -> std::optional<SimResult> {
        if (error != nullptr)
            *error = what;
        return std::nullopt;
    };
    if (!v.isObject())
        return fail("result is not an object");

    SimResult r;
#define DTTSIM_GET_U64(name) \
    { \
        const json::Value *f = v.find(#name); \
        if (f == nullptr || !f->isUint()) \
            return fail("result." #name \
                        " missing or not an unsigned integer"); \
        r.name = f->asUint(); \
    }
#define DTTSIM_GET_BOOL(name) \
    { \
        const json::Value *f = v.find(#name); \
        if (f == nullptr || !f->isBool()) \
            return fail("result." #name " missing or not a bool"); \
        r.name = f->asBool(); \
    }
    DTTSIM_SIMRESULT_U64_FIELDS(DTTSIM_GET_U64)
    DTTSIM_SIMRESULT_BOOL_FIELDS(DTTSIM_GET_BOOL)
#undef DTTSIM_GET_U64
#undef DTTSIM_GET_BOOL

    const json::Value *ipc = v.find("ipc");
    if (ipc == nullptr || !ipc->isNumber())
        return fail("result.ipc missing or not a number");
    r.ipc = ipc->asDouble();

    const json::Value *reason = v.find("haltReason");
    if (reason == nullptr || !reason->isString())
        return fail("result.haltReason missing or not a string");
    bool known = false;
    for (HaltReason hr : {HaltReason::Halted, HaltReason::CycleLimit,
                          HaltReason::Deadlock, HaltReason::Diverged}) {
        if (reason->asString() == haltReasonName(hr)) {
            r.haltReason = hr;
            known = true;
            break;
        }
    }
    if (!known)
        return fail("unknown haltReason \"" + reason->asString()
                    + "\" in result JSON");

    const json::Value *detail = v.find("haltDetail");
    if (detail == nullptr || !detail->isString())
        return fail("result.haltDetail missing or not a string");
    r.haltDetail = detail->asString();
    return r;
}

SimResult
resultFromJson(const json::Value &v)
{
    // The strict path (check_results_json): same decoding, but a
    // malformed record is a hard validation failure.
    std::string error;
    std::optional<SimResult> r = tryResultFromJson(v, &error);
    if (!r)
        fatal("%s", error.c_str());
    return *r;
}

json::Value
jobResultToJson(const JobResult &jr)
{
    // Schema v4. Deliberately free of wall-clock measurements: the
    // emitted document is a pure function of the submitted jobs, so
    // a resumed sweep's merged output is byte-identical to an
    // uninterrupted run's (timings live in the result cache and the
    // stderr summary instead).
    json::Value v = json::Value::object();
    v.set("workload", json::Value(jr.workload));
    v.set("variant", json::Value(jr.variant));
    v.set("accel", json::Value(jr.accel));
    // Provenance is opt-in (harness --provenance): by default the
    // field is absent so a distributed sweep's document stays
    // byte-identical to a purely local run's.
    if (!jr.worker.empty())
        v.set("worker", json::Value(jr.worker));
    v.set("config_digest", json::Value(jr.digest));
    v.set("deduplicated", json::Value(jr.deduplicated));
    v.set("status",
          json::Value(std::string(jobStatusName(jr.status))));
    v.set("attempts",
          json::Value(static_cast<std::uint64_t>(jr.attempts)));
    if (jr.status == JobStatus::Error
        || jr.status == JobStatus::Timeout) {
        json::Value e = json::Value::object();
        e.set("kind", json::Value(jr.error.kind));
        e.set("message", json::Value(jr.error.message));
        v.set("error", std::move(e));
    }
    v.set("result", resultToJson(jr.result));
    // Schema v4: end-to-end record integrity. Recomputable from the
    // other fields, so validators catch a silently flipped bit in
    // any of them.
    v.set("crc", json::Value(recordCrc(jr.digest, jr.status,
                                       jr.attempts, jr.result)));
    return v;
}

} // namespace dttsim::sim
