#include "workloads/workload.h"

#include "common/log.h"

namespace dttsim::workloads {

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<const Workload *> all = {
        &mcfWorkload(),    &artWorkload(),   &equakeWorkload(),
        &bzip2Workload(),  &gzipWorkload(),  &twolfWorkload(),
        &vprWorkload(),    &parserWorkload(), &ammpWorkload(),
        &gccWorkload(),    &craftyWorkload(), &perlbmkWorkload(),
        &gapWorkload(),    &vortexWorkload(),  &mesaWorkload(),
    };
    return all;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload *w : allWorkloads())
        if (w->info().name == name)
            return *w;
    fatal("unknown workload '%s'", name.c_str());
}

std::uint64_t
resultChecksum(const isa::Program &prog, const mem::Memory &memory)
{
    return memory.read64(prog.dataSymbol("result"));
}

} // namespace dttsim::workloads
