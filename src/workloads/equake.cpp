#include "workloads/workload.h"

/**
 * @file
 * equake analogue (183.equake): sparse-matrix assembly + banded
 * matrix-vector product per timestep. The matrix coefficients are
 * derived from mesh coordinates that rarely change; the vector
 * evolves every timestep (non-redundant).
 *
 * Baseline: reassembles every matrix coefficient each timestep before
 * the SMVP. DTT: coordinate writes trigger a handler that reassembles
 * only the touched element's coefficients; the main thread runs the
 * SMVP directly. Both variants execute the identical FP assembly
 * expression, so results match bit-for-bit; the checksum is the
 * fixed-point conversion of the per-timestep vector sum.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;

class EquakeWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "equake";
        i.specAnalogue = "183.equake";
        i.kernelDesc = "matrix assembly from mesh coords + banded"
                       " SMVP timestepping";
        i.triggerDesc = "mesh coordinate words, striped by element";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.2;
        i.defaultIterations = 15;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int E = 1024 * p.scale;   // elements
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<double> coord(static_cast<std::size_t>(E));
        for (auto &c : coord)
            c = rng.real() * 2.0 - 1.0;

        auto asm0 = [](double c) { return 0.20 * (c * c) + 0.75; };
        auto asm1 = [](double c) {
            double t = c < 0 ? -c : c;
            return 0.05 * __builtin_sqrt(t + 1.0);
        };
        std::vector<double> mat0(coord.size()), mat1(coord.size());
        for (std::size_t e = 0; e < coord.size(); ++e) {
            mat0[e] = asm0(coord[e]);
            mat1[e] = asm1(coord[e]);
        }
        // Padded vectors: index E is a zero boundary element.
        std::vector<double> vin(static_cast<std::size_t>(E) + 1, 0.0);
        for (int i = 0; i < E; ++i)
            vin[size_t(i)] = rng.real();
        std::vector<double> vout(static_cast<std::size_t>(E) + 1, 0.0);

        std::vector<std::int64_t> mirror = doubleBits(coord);
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return doubleBits(rng.real() * 2.0 - 1.0);
            });

        ProgramBuilder b;
        Addr coord_a = b.quads("coord", doubleBits(coord));
        Addr a0_a = b.quads("A0", doubleBits(mat0));
        Addr a1_a = b.quads("A1", doubleBits(mat1));
        Addr vin_a = b.quads("vin", doubleBits(vin));
        Addr vout_a = b.quads("vout", doubleBits(vout));
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 3072 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label assemble = b.newLabel();  // shared assembly subroutine

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);            // checksum
        b.li(s1, 0);            // t
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);
        b.la(s8, vin_a);        // current input vector
        b.la(s9, vout_a);       // current output vector

        Label outer = b.here();

        // -- coordinate updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);                // e
            b.ld(t3, s5, 0);                // new coord bits
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(coord_a));
            if (!dtt) {
                b.sd(t3, t5, 0);
            } else {
                b.andi(t4, t2, kStripes - 1);
                Label l1 = b.newLabel(), l2 = b.newLabel();
                Label l3 = b.newLabel(), done = b.newLabel();
                b.bnez(t4, l1);
                b.tsd(t3, t5, 0, 0);
                b.j(done);
                b.bind(l1);
                b.li(t6, 1);
                b.bne(t4, t6, l2);
                b.tsd(t3, t5, 0, 1);
                b.j(done);
                b.bind(l2);
                b.li(t6, 2);
                b.bne(t4, t6, l3);
                b.tsd(t3, t5, 0, 2);
                b.j(done);
                b.bind(l3);
                b.tsd(t3, t5, 0, 3);
                b.bind(done);
            }
        });

        if (!dtt) {
            // -- full matrix reassembly (redundant computation) --
            b.li(t1, E);
            b.loop(t0, t1, [&] {
                b.slli(a0, t0, 3);
                b.addi(a0, a0, std::int64_t(coord_a));
                b.call(assemble);
            });
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s6, 0);
            emitMixer(b, mixer_a, mixer_elems, s6);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- banded SMVP: vout[i] = A0[i]*vin[i] + A1[i]*vin[i+1],
        //    accumulating the vector sum (shared, non-redundant) --
        b.fli(fs0, 0.0);
        b.la(t2, a0_a);
        b.la(t3, a1_a);
        b.mv(t4, s8);
        b.mv(t5, s9);
        b.li(t1, E);
        b.loop(t0, t1, [&] {
            b.fld(ft0, t2, 0);
            b.fld(ft1, t4, 0);
            b.fmul(ft0, ft0, ft1);
            b.fld(ft2, t3, 0);
            b.fld(ft3, t4, 8);
            b.fmul(ft2, ft2, ft3);
            b.fadd(ft0, ft0, ft2);
            b.fsd(ft0, t5, 0);
            b.fadd(fs0, fs0, ft0);
            b.addi(t2, t2, 8);
            b.addi(t3, t3, 8);
            b.addi(t4, t4, 8);
            b.addi(t5, t5, 8);
        });

        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s6, 0);
            emitMixer(b, mixer_a, mixer_elems, s6);
        }

        // -- fold sum into checksum (fixed point) and swap vectors --
        b.fli(ft1, 256.0);
        b.fmul(ft1, fs0, ft1);
        b.fcvtwd(t0, ft1);
        b.li(t1, 31);
        b.mul(s0, s0, t1);
        b.add(s0, s0, t0);
        b.add(s0, s0, s6);
        b.mv(t0, s8);
        b.mv(s8, s9);
        b.mv(s9, t0);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- assembly subroutine: a0 = &coord[e]; recompute A0/A1 --
        b.bind(assemble);
        b.li(t6, std::int64_t(coord_a));
        b.sub(t6, a0, t6);                  // byte offset of element
        b.fld(ft0, a0, 0);                  // c
        b.fmul(ft1, ft0, ft0);
        b.fli(ft2, 0.20);
        b.fmul(ft1, ft1, ft2);
        b.fli(ft2, 0.75);
        b.fadd(ft1, ft1, ft2);              // A0
        b.addi(t7, t6, std::int64_t(a0_a));
        b.fsd(ft1, t7, 0);
        b.fabs_(ft3, ft0);
        b.fli(ft2, 1.0);
        b.fadd(ft3, ft3, ft2);
        b.fsqrt(ft3, ft3);
        b.fli(ft2, 0.05);
        b.fmul(ft3, ft3, ft2);              // A1
        b.addi(t7, t6, std::int64_t(a1_a));
        b.fsd(ft3, t7, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &coord[e]; reassemble one element.
            b.bind(handler);
            b.call(assemble);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
equakeWorkload()
{
    static EquakeWorkload w;
    return w;
}

} // namespace dttsim::workloads
