#include "workloads/workload.h"

/**
 * @file
 * art analogue (179.art): the F1-layer weight scan, the paper's
 * largest DTT win. y[j] = sum_i w[i][j] * x[i] over a weight matrix
 * that changes only sparsely between input presentations.
 *
 * Baseline: every presentation recomputes the full I x J
 * multiply-accumulate even though almost no weights changed.
 *
 * DTT: weight writes are triggering stores (striped by column group).
 * The O(1) handler applies the delta through a shadow copy:
 * y[j] += (w[k] - shadow[k]) * x[i]; shadow[k] = w[k]. The main
 * thread consumes y directly behind TWAIT. All arithmetic is integer,
 * so baseline and DTT checksums match exactly.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kCols = 64;       // J (power of two)
constexpr int kColShift = 6;

class ArtWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "art";
        i.specAnalogue = "179.art";
        i.kernelDesc = "F1-layer weight scan (y = W^T x) with sparse"
                       " weight updates + exemplar resonance pass";
        i.triggerDesc = "weight matrix entries, striped by column";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.2;
        i.defaultIterations = 30;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int I = 64 * p.scale;   // input neurons (rows)
        const int J = kCols;          // F1 neurons (columns)
        const int N = I * J;
        const int E = 9;              // exemplars (shared work)
        const int T = p.iterations;
        const int U = 8;

        Rng rng(p.seed);

        std::vector<std::int64_t> w(static_cast<std::size_t>(N));
        for (auto &v : w)
            v = rng.range(-64, 64);
        std::vector<std::int64_t> x(static_cast<std::size_t>(I));
        for (auto &v : x)
            v = rng.range(-8, 8);
        std::vector<std::int64_t> y(static_cast<std::size_t>(J), 0);
        for (int i = 0; i < I; ++i)
            for (int j = 0; j < J; ++j)
                y[size_t(j)] += w[size_t(i * J + j)] * x[size_t(i)];
        std::vector<std::int64_t> ex(static_cast<std::size_t>(E * J));
        for (auto &v : ex)
            v = rng.range(-16, 16);

        std::vector<std::int64_t> mirror = w;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate,
            [&](std::int64_t) { return rng.range(-64, 64); });

        ProgramBuilder b;
        Addr w_a = b.quads("w", w);
        Addr shadow_a = b.quads("shadow", w);
        Addr x_a = b.quads("x", x);
        Addr y_a = b.quads("y", y);
        Addr ex_a = b.quads("exemplars", ex);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);            // checksum
        b.li(s1, 0);            // t
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- weight updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);                // k
            b.ld(t3, s5, 0);                // value
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(w_a));
            if (!dtt) {
                b.sd(t3, t5, 0);
            } else {
                b.andi(t4, t2, kStripes - 1);  // stripe = j & 3
                Label l1 = b.newLabel(), l2 = b.newLabel();
                Label l3 = b.newLabel(), done = b.newLabel();
                b.bnez(t4, l1);
                b.tsd(t3, t5, 0, 0);
                b.j(done);
                b.bind(l1);
                b.li(t6, 1);
                b.bne(t4, t6, l2);
                b.tsd(t3, t5, 0, 1);
                b.j(done);
                b.bind(l2);
                b.li(t6, 2);
                b.bne(t4, t6, l3);
                b.tsd(t3, t5, 0, 2);
                b.j(done);
                b.bind(l3);
                b.tsd(t3, t5, 0, 3);
                b.bind(done);
            }
        });

        if (!dtt) {
            // -- full F1 recompute (the redundant computation) --
            // zero y, then accumulate row by row.
            b.la(t2, y_a);
            b.li(t1, J);
            b.loop(t0, t1, [&] {
                b.sd(zero, t2, 0);
                b.addi(t2, t2, 8);
            });
            b.li(t1, I);
            b.loop(t0, t1, [&] {
                b.slli(t2, t0, 3);
                b.addi(t2, t2, std::int64_t(x_a));
                b.ld(t2, t2, 0);            // x[i]
                b.slli(t3, t0, kColShift + 3);
                b.addi(t3, t3, std::int64_t(w_a));  // row base
                b.la(t4, y_a);
                b.li(t6, J);
                b.loop(t5, t6, [&] {
                    b.ld(t7, t3, 0);
                    b.mul(t7, t7, t2);
                    b.ld(t8, t4, 0);
                    b.add(t8, t8, t7);
                    b.sd(t8, t4, 0);
                    b.addi(t3, t3, 8);
                    b.addi(t4, t4, 8);
                });
            });
        } else {
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- resonance pass over exemplars (shared, non-redundant) --
        b.li(s6, 0);
        for (int e = 0; e < E; ++e) {
            b.la(t2, y_a);
            b.la(t3, ex_a + static_cast<Addr>(e * J * 8));
            b.li(t4, 0);
            b.li(t1, J);
            b.loop(t0, t1, [&] {
                b.ld(t5, t2, 0);
                b.ld(t6, t3, 0);
                b.mul(t5, t5, t6);
                b.add(t4, t4, t5);
                b.addi(t2, t2, 8);
                b.addi(t3, t3, 8);
            });
            // keep the best (max) resonance
            Label skip = b.newLabel();
            b.blt(t4, s6, skip);
            b.mv(s6, t4);
            b.bind(skip);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        if (dtt) {
            // Handler: a0 = &w[k], a1 = new value.
            b.bind(handler);
            b.li(t0, std::int64_t(w_a));
            b.sub(t0, a0, t0);
            b.srli(t0, t0, 3);              // k
            b.srli(t1, t0, kColShift);      // i = k / J
            b.andi(t2, t0, kCols - 1);      // j = k % J
            // delta = w[k] - shadow[k]
            b.ld(t3, a0, 0);                // current w[k]
            b.slli(t4, t0, 3);
            b.addi(t4, t4, std::int64_t(shadow_a));
            b.ld(t5, t4, 0);                // shadow
            b.sub(t6, t3, t5);              // delta
            b.sd(t3, t4, 0);                // shadow = w[k]
            // y[j] += delta * x[i]
            b.slli(t7, t1, 3);
            b.addi(t7, t7, std::int64_t(x_a));
            b.ld(t7, t7, 0);                // x[i]
            b.mul(t6, t6, t7);
            b.slli(t8, t2, 3);
            b.addi(t8, t8, std::int64_t(y_a));
            b.ld(t7, t8, 0);
            b.add(t7, t7, t6);
            b.sd(t7, t8, 0);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
artWorkload()
{
    static ArtWorkload w;
    return w;
}

} // namespace dttsim::workloads
