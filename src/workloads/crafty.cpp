#include "workloads/workload.h"

/**
 * @file
 * crafty analogue (186.crafty): chess attack/mobility tables. The
 * board changes two squares per move (and search revisits positions,
 * so squares are often rewritten with the piece they already held);
 * per-square pseudo-mobility values are pure functions of the square
 * contents and precomputed ray masks.
 *
 * Baseline recomputes all 64 x BOARDS mobility entries per search
 * step; DTT triggers on board-square writes and re-derives just that
 * square. Evaluation (a popcount-style fold over mobility plus the
 * search's other work) is shared.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kSquares = 64;     // squares per board

/** Host mobility function, mirrored by the emitted sequence:
 *  fold the piece code with the square's ray mask. */
std::int64_t
mobilityHost(std::int64_t piece, std::int64_t mask)
{
    auto v = static_cast<std::uint64_t>(piece * 0x0101010101010101ll)
        & static_cast<std::uint64_t>(mask);
    // popcount via the classic parallel fold.
    v = v - ((v >> 1) & 0x5555555555555555ull);
    v = (v & 0x3333333333333333ull) + ((v >> 2)
                                       & 0x3333333333333333ull);
    v = (v + (v >> 4)) & 0x0f0f0f0f0f0f0f0full;
    return static_cast<std::int64_t>(
        (v * 0x0101010101010101ull) >> 56);
}

class CraftyWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "crafty";
        i.specAnalogue = "186.crafty";
        i.kernelDesc = "per-square pseudo-mobility tables under"
                       " search-move board updates";
        i.triggerDesc = "board squares, striped by square id mod 4";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.45;
        i.defaultIterations = 20;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int B = 8 * p.scale;       // boards in the search stack
        const int N = B * kSquares;      // board cells
        const int T = p.iterations;
        const int U = 8;                 // square writes per step

        Rng rng(p.seed);

        std::vector<std::int64_t> board(static_cast<std::size_t>(N));
        for (auto &v : board)
            v = rng.range(0, 12);        // piece codes
        std::vector<std::int64_t> masks(static_cast<std::size_t>(N));
        for (auto &v : masks)
            v = static_cast<std::int64_t>(rng.next());
        std::vector<std::int64_t> mobility(board.size());
        for (std::size_t i = 0; i < board.size(); ++i)
            mobility[i] = mobilityHost(board[i], masks[i]);

        std::vector<std::int64_t> mirror = board;
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate,
            [&](std::int64_t) { return rng.range(0, 12); });

        ProgramBuilder b;
        Addr board_a = b.quads("board", board);
        Addr masks_a = b.quads("rayMasks", masks);
        Addr mob_a = b.quads("mobility", mobility);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 4608 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label derive = b.newLabel();     // a0 = cell index

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- board updates (search makes/unmakes moves) --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(board_a));
            b.andi(t4, t2, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- recompute every square's mobility (redundant) --
            b.li(s7, N);
            b.li(s6, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(derive);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            // Idiomatic DTT main loop: overlap independent work with
            // the triggered threads, then fence.
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
        }

        // -- evaluation: fold the mobility tables --
        b.li(s6, 0);
        b.la(t2, mob_a);
        b.li(t1, N);
        b.loop(t0, t1, [&] {
            b.ld(t4, t2, 0);
            b.add(s6, s6, t4);
            b.addi(t2, t2, 8);
        });

        if (!dtt) {
            b.li(s8, 0);
            emitMixer(b, mixer_a, mixer_elems, s8);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s6);
        b.add(s0, s0, s8);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- derive subroutine: a0 = cell index --
        b.bind(derive);
        b.slli(t0, a0, 3);
        b.addi(t1, t0, std::int64_t(board_a));
        b.ld(t2, t1, 0);                    // piece
        b.li(t3, 0x0101010101010101);
        b.mul(t2, t2, t3);
        b.addi(t1, t0, std::int64_t(masks_a));
        b.ld(t4, t1, 0);
        b.and_(t2, t2, t4);
        // popcount fold (mirrors mobilityHost exactly)
        b.srli(t4, t2, 1);
        b.li(t5, 0x5555555555555555);
        b.and_(t4, t4, t5);
        b.sub(t2, t2, t4);
        b.li(t5, 0x3333333333333333);
        b.and_(t4, t2, t5);
        b.srli(t2, t2, 2);
        b.and_(t2, t2, t5);
        b.add(t2, t2, t4);
        b.srli(t4, t2, 4);
        b.add(t2, t2, t4);
        b.li(t5, 0x0f0f0f0f0f0f0f0f);
        b.and_(t2, t2, t5);
        b.mul(t2, t2, t3);
        b.srli(t2, t2, 56);
        b.addi(t1, t0, std::int64_t(mob_a));
        b.sd(t2, t1, 0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &board[cell]; re-derive that square.
            b.bind(handler);
            b.li(t0, std::int64_t(board_a));
            b.sub(t0, a0, t0);
            b.srli(a0, t0, 3);
            b.call(derive);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
craftyWorkload()
{
    static CraftyWorkload w;
    return w;
}

} // namespace dttsim::workloads
