#include "workloads/workload.h"

/**
 * @file
 * ammp analogue (188.ammp): non-bonded pairwise energy. Atom
 * coordinates move sparsely during relaxation; pair energies are pure
 * FP functions of the two endpoints' coordinates, accumulated into
 * stripe totals in exact fixed point.
 *
 * Baseline recomputes every pair each step. DTT triggers on
 * coordinate writes; the handler re-evaluates only the moved atom's
 * pairs and maintains the stripe totals by integer deltas. Pairs
 * connect atoms of the same stripe (atom id mod 4), so per-trigger
 * serialization makes the read-modify-writes safe.
 */

#include "common/rng.h"
#include "isa/builder.h"
#include "workloads/kernel_util.h"

namespace dttsim::workloads {

namespace {

using namespace isa::regs;
using isa::Label;
using isa::ProgramBuilder;

constexpr int kStripes = 4;
constexpr int kPairsPerAtom = 6;

class AmmpWorkload : public Workload
{
  public:
    WorkloadInfo
    info() const override
    {
        WorkloadInfo i;
        i.name = "ammp";
        i.specAnalogue = "188.ammp";
        i.kernelDesc = "pairwise non-bonded energy with sparse"
                       " coordinate updates";
        i.triggerDesc = "atom coordinates, striped by atom id mod 4";
        i.staticTriggers = kStripes;
        i.defaultUpdateRate = 0.3;
        i.defaultIterations = 15;
        return i;
    }

    isa::Program
    build(Variant variant, const WorkloadParams &params) const override
    {
        WorkloadParams p = resolve(params);
        const int At = 256 * p.scale;    // atoms
        const int P = 512 * p.scale;     // pairs
        const int T = p.iterations;
        const int U = 6;

        Rng rng(p.seed);

        std::vector<double> coord(static_cast<std::size_t>(At));
        for (auto &c : coord)
            c = rng.real() * 8.0;

        // Pairs within a stripe; each atom in at most kPairsPerAtom.
        std::vector<std::int64_t> pair_atoms(
            static_cast<std::size_t>(2 * P));
        std::vector<std::int64_t> atom_pairs(
            static_cast<std::size_t>(At * kPairsPerAtom), -1);
        {
            std::vector<int> fill(static_cast<std::size_t>(At), 0);
            auto pick = [&](int g) {
                int a;
                do {
                    a = static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(At / kStripes)))
                        * kStripes + g;
                } while (fill[size_t(a)] >= kPairsPerAtom);
                return a;
            };
            for (int pr = 0; pr < P; ++pr) {
                int g = pr % kStripes;
                int i = pick(g);
                int j = pick(g);
                pair_atoms[size_t(2 * pr)] = i;
                pair_atoms[size_t(2 * pr + 1)] = j;
                atom_pairs[size_t(i * kPairsPerAtom + fill[size_t(i)]++)]
                    = pr;
                if (j != i)
                    atom_pairs[size_t(
                        j * kPairsPerAtom + fill[size_t(j)]++)] = pr;
            }
        }

        // Energy model, mirrored exactly by the emitted sequence:
        // d = ci - cj; e = 1 / sqrt(d*d + 0.5); (int64)(e * 4096).
        auto pair_energy_host = [&](int pr) {
            double ci = coord[static_cast<std::size_t>(
                pair_atoms[size_t(2 * pr)])];
            double cj = coord[static_cast<std::size_t>(
                pair_atoms[size_t(2 * pr + 1)])];
            double d = ci - cj;
            double e = 1.0 / __builtin_sqrt(d * d + 0.5);
            return static_cast<std::int64_t>(e * 4096.0);
        };
        std::vector<std::int64_t> pair_e(static_cast<std::size_t>(P));
        std::vector<std::int64_t> stripe_e(kStripes, 0);
        for (int pr = 0; pr < P; ++pr) {
            pair_e[size_t(pr)] = pair_energy_host(pr);
            stripe_e[size_t(pr % kStripes)] += pair_e[size_t(pr)];
        }

        std::vector<std::int64_t> mirror = doubleBits(coord);
        UpdateSchedule sched = makeSchedule(
            rng, mirror, T, U, p.updateRate, [&](std::int64_t) {
                return doubleBits(rng.real() * 8.0);
            });

        ProgramBuilder b;
        Addr coord_a = b.quads("coord", doubleBits(coord));
        Addr patoms_a = b.quads("pairAtoms", pair_atoms);
        Addr apairs_a = b.quads("atomPairs", atom_pairs);
        Addr pe_a = b.quads("pairE", pair_e);
        Addr se_a = b.quads("stripeE", stripe_e);
        Addr sidx_a = b.quads("schedIdx", sched.indices);
        Addr sval_a = b.quads("schedVal", sched.values);
        const int mixer_elems = 5120 * p.scale;
        Addr mixer_a = b.quads("mixer", makeMixerData(rng, mixer_elems));
        Addr result_a = b.space("result", 8);

        bool dtt = variant == Variant::Dtt;
        Label handler = b.newLabel();
        Label energy = b.newLabel();     // a0 = pair -> energy in a1

        b.bindNamed("main");
        if (dtt) {
            for (int s = 0; s < kStripes; ++s)
                b.treg(s, handler);
        }
        b.li(s0, 0);
        b.li(s1, 0);
        b.li(s2, T);
        b.la(s4, sidx_a);
        b.la(s5, sval_a);

        Label outer = b.here();

        // -- coordinate updates --
        b.li(t1, U);
        b.loop(t0, t1, [&] {
            b.ld(t2, s4, 0);
            b.ld(t3, s5, 0);
            b.addi(s4, s4, 8);
            b.addi(s5, s5, 8);
            b.slli(t5, t2, 3);
            b.addi(t5, t5, std::int64_t(coord_a));
            b.andi(t4, t2, kStripes - 1);
            emitStripedStore(b, dtt, t3, t5, t4, t6);
        });

        if (!dtt) {
            // -- recompute all pair energies (redundant) --
            b.li(s7, P);
            b.li(s6, 0);
            b.li(s8, 0);
            Label again = b.here();
            b.mv(a0, s6);
            b.call(energy);
            b.add(s8, s8, a1);
            b.slli(t0, s6, 3);
            b.addi(t0, t0, std::int64_t(pe_a));
            b.sd(a1, t0, 0);
            b.addi(s6, s6, 1);
            b.blt(s6, s7, again);
        } else {
            // Idiomatic DTT main loop: overlap the independent
            // rest-of-program pass with the triggered threads, then
            // fence before consuming their results.
            b.li(s6, 0);
            emitMixer(b, mixer_a, mixer_elems, s6);
            for (int s = 0; s < kStripes; ++s)
                b.twait(s);
            b.li(s8, 0);
            b.la(t2, se_a);
            for (int s = 0; s < kStripes; ++s) {
                b.ld(t3, t2, 8 * s);
                b.add(s8, s8, t3);
            }
        }

        // -- rest-of-program pass (shared) --
        if (!dtt) {
            // -- rest-of-program pass (baseline position) --
            b.li(s6, 0);
            emitMixer(b, mixer_a, mixer_elems, s6);
        }

        b.li(t0, 31);
        b.mul(s0, s0, t0);
        b.add(s0, s0, s8);
        b.add(s0, s0, s6);

        b.addi(s1, s1, 1);
        b.blt(s1, s2, outer);

        emitEpilogue(b, s0, result_a, t0);

        // -- pair energy subroutine: a0 = pair index, energy in a1 --
        b.bind(energy);
        b.slli(t0, a0, 4);                   // pair * 2 atoms * 8
        b.addi(t0, t0, std::int64_t(patoms_a));
        b.ld(t1, t0, 0);                     // atom i
        b.ld(t2, t0, 8);                     // atom j
        b.slli(t1, t1, 3);
        b.addi(t1, t1, std::int64_t(coord_a));
        b.fld(ft0, t1, 0);                   // ci
        b.slli(t2, t2, 3);
        b.addi(t2, t2, std::int64_t(coord_a));
        b.fld(ft1, t2, 0);                   // cj
        b.fsub(ft0, ft0, ft1);               // d
        b.fmul(ft0, ft0, ft0);
        b.fli(ft1, 0.5);
        b.fadd(ft0, ft0, ft1);
        b.fsqrt(ft0, ft0);
        b.fli(ft1, 1.0);
        b.fdiv(ft0, ft1, ft0);
        b.fli(ft1, 4096.0);
        b.fmul(ft0, ft0, ft1);
        b.fcvtwd(a1, ft0);
        b.ret();

        if (dtt) {
            // Handler: a0 = &coord[atom]; re-evaluate its pairs.
            b.bind(handler);
            b.li(t0, std::int64_t(coord_a));
            b.sub(t0, a0, t0);
            b.srli(s1, t0, 3);               // atom
            b.andi(s2, s1, kStripes - 1);    // stripe
            b.li(t0, kPairsPerAtom);
            b.mul(s3, s1, t0);
            b.slli(s3, s3, 3);
            b.addi(s3, s3, std::int64_t(apairs_a));
            b.li(s4, 0);
            Label next = b.newLabel();
            Label top = b.here();
            b.ld(s5, s3, 0);                 // pair id
            b.blt(s5, zero, next);
            b.mv(a0, s5);
            b.call(energy);
            b.slli(t0, s5, 3);
            b.addi(t0, t0, std::int64_t(pe_a));
            b.ld(t1, t0, 0);
            b.sd(a1, t0, 0);
            b.sub(t1, a1, t1);               // delta
            b.slli(t2, s2, 3);
            b.addi(t2, t2, std::int64_t(se_a));
            b.ld(t3, t2, 0);
            b.add(t3, t3, t1);
            b.sd(t3, t2, 0);
            b.bind(next);
            b.addi(s3, s3, 8);
            b.addi(s4, s4, 1);
            b.li(t0, kPairsPerAtom);
            b.blt(s4, t0, top);
            b.tret();
        }

        return b.take();
    }
};

} // namespace

const Workload &
ammpWorkload()
{
    static AmmpWorkload w;
    return w;
}

} // namespace dttsim::workloads
